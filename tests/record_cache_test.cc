#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"
#include "rede/builtin_derefs.h"
#include "rede/deref_batch.h"
#include "rede/record_cache.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {
namespace {

RecordCacheOptions SmallCache(size_t byte_budget, size_t shards = 1) {
  RecordCacheOptions options;
  options.enabled = true;
  options.byte_budget = byte_budget;
  options.shards = shards;
  options.entry_overhead_bytes = 0;  // byte math in tests stays exact
  return options;
}

/// Admit one entry holding a single record of `bytes` payload bytes.
void Admit(RecordCache& cache, const std::string& key, size_t bytes) {
  ASSERT_TRUE(cache.StartAdmission(key)) << key;
  cache.CommitAdmission(key, {io::Record(std::string(bytes, 'x'))});
}

bool IsHit(RecordCache& cache, const std::string& key) {
  return cache.Lookup(key).has_value();
}

// ------------------------------------------------------------ LRU semantics

TEST(RecordCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard, budget for exactly three 101-byte entries (1-byte key + 100).
  RecordCache cache(SmallCache(303));
  Admit(cache, "a", 100);
  Admit(cache, "b", 100);
  Admit(cache, "c", 100);
  EXPECT_EQ(cache.entries(), 3u);
  ASSERT_TRUE(IsHit(cache, "a"));  // promote a to MRU; b is now the LRU tail

  Admit(cache, "d", 100);  // over budget: evict exactly the tail
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 303u);
  EXPECT_FALSE(IsHit(cache, "b"));
  EXPECT_TRUE(IsHit(cache, "a"));
  EXPECT_TRUE(IsHit(cache, "c"));
  EXPECT_TRUE(IsHit(cache, "d"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.CheckConsistency());
}

TEST(RecordCacheTest, PinnedEntriesSurviveEvictionUntilUnpinned) {
  RecordCache cache(SmallCache(303));
  Admit(cache, "a", 100);
  Admit(cache, "b", 100);
  Admit(cache, "c", 100);
  ASSERT_TRUE(cache.Pin("a"));  // a is the LRU tail, but pinned

  Admit(cache, "d", 100);  // eviction must skip a and take b instead
  EXPECT_TRUE(IsHit(cache, "a"));
  EXPECT_FALSE(IsHit(cache, "b"));

  cache.Unpin("a");
  // a was just promoted by the hit above; c is now the tail.
  Admit(cache, "e", 100);
  EXPECT_FALSE(IsHit(cache, "c"));
  EXPECT_TRUE(IsHit(cache, "a"));
  EXPECT_TRUE(cache.CheckConsistency());

  EXPECT_FALSE(cache.Pin("nope"));  // non-resident keys cannot be pinned
  cache.Unpin("nope");              // and a dangling unpin is a no-op
}

TEST(RecordCacheTest, ByteAccountingTracksAdmissionInvalidationAndClear) {
  RecordCache cache(SmallCache(10'000));
  Admit(cache, "k1", 50);  // 2 + 50
  Admit(cache, "k2", 30);  // 2 + 30
  EXPECT_EQ(cache.bytes(), 84u);
  EXPECT_EQ(cache.entries(), 2u);

  EXPECT_TRUE(cache.Invalidate("k1"));
  EXPECT_EQ(cache.bytes(), 32u);
  EXPECT_FALSE(cache.Invalidate("k1"));  // already gone
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // Invalidate is allowed on pinned entries: pin holders keep their copies.
  ASSERT_TRUE(cache.Pin("k2"));
  EXPECT_TRUE(cache.Invalidate("k2"));
  EXPECT_EQ(cache.bytes(), 0u);

  Admit(cache, "k3", 10);
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_TRUE(cache.CheckConsistency());
}

TEST(RecordCacheTest, EntryLargerThanBudgetIsRejectedNotAdmitted) {
  RecordCache cache(SmallCache(100));
  ASSERT_TRUE(cache.StartAdmission("big"));
  cache.CommitAdmission("big", {io::Record(std::string(500, 'x'))});
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().rejected_admissions, 1u);
  EXPECT_EQ(cache.inflight(), 0u);  // the reservation was still consumed
  EXPECT_TRUE(cache.CheckConsistency());
}

// ----------------------------------------------------- two-phase admission

TEST(RecordCacheTest, AdmissionIsTwoPhaseAndNeverDoubleAdmits) {
  RecordCache cache(SmallCache(10'000));
  ASSERT_TRUE(cache.StartAdmission("k"));
  EXPECT_EQ(cache.inflight(), 1u);
  // A concurrent admitter of the same key is refused while reserved...
  EXPECT_FALSE(cache.StartAdmission("k"));
  cache.CommitAdmission("k", {io::Record("v")});
  EXPECT_EQ(cache.inflight(), 0u);
  // ...and refused once resident — committing twice is impossible.
  EXPECT_FALSE(cache.StartAdmission("k"));
  EXPECT_EQ(cache.stats().admissions, 1u);

  // Abort drops the reservation without publishing anything.
  ASSERT_TRUE(cache.StartAdmission("k2"));
  cache.AbortAdmission("k2");
  EXPECT_EQ(cache.inflight(), 0u);
  EXPECT_FALSE(IsHit(cache, "k2"));
  EXPECT_EQ(cache.stats().aborted_admissions, 1u);
  // The key is admittable again after the abort (a retry re-reads it).
  EXPECT_TRUE(cache.StartAdmission("k2"));
  cache.CommitAdmission("k2", {});
  EXPECT_TRUE(cache.CheckConsistency());
}

TEST(RecordCacheTest, EmptyResultsAreCachedNegatively) {
  RecordCache cache(SmallCache(10'000));
  EXPECT_FALSE(cache.Lookup("absent").has_value());  // true miss
  ASSERT_TRUE(cache.StartAdmission("absent"));
  cache.CommitAdmission("absent", {});  // the lookup found nothing
  auto hit = cache.Lookup("absent");
  ASSERT_TRUE(hit.has_value());  // hit...
  EXPECT_TRUE(hit->empty());     // ...on the cached empty result
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(RecordCacheTest, MakeKeySeparatesFilePartitionAndKey) {
  EXPECT_NE(RecordCache::MakeKey("f", 1, "2k"),
            RecordCache::MakeKey("f", 12, "k"));
  EXPECT_NE(RecordCache::MakeKey("f", 1, "k"),
            RecordCache::MakeKey("g", 1, "k"));
  EXPECT_EQ(RecordCache::MakeKey("f", 3, "k"),
            RecordCache::MakeKey("f", 3, "k"));
}

// ------------------------------------------------------- concurrent races
// Run under LH_SANITIZE=thread to verify the sharded locking: concurrent
// hits, misses, admissions, pins and invalidations on overlapping keys.

TEST(RecordCacheTest, ConcurrentHitMissAdmitRaceKeepsInvariants) {
  RecordCache cache(SmallCache(8 * 1024, /*shards=*/4));
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Random rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "k" + std::to_string(rng.Uniform(kKeySpace));
        switch (rng.Uniform(5)) {
          case 0:
          case 1:
            (void)cache.Lookup(key);
            break;
          case 2:
            if (cache.StartAdmission(key)) {
              if (rng.Bernoulli(0.9)) {
                cache.CommitAdmission(
                    key, {io::Record(std::string(rng.Uniform(64) + 1, 'x'))});
              } else {
                cache.AbortAdmission(key);
              }
            }
            break;
          case 3:
            if (cache.Pin(key)) {
              (void)cache.Lookup(key);
              cache.Unpin(key);
            }
            break;
          case 4:
            (void)cache.Invalidate(key);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.inflight(), 0u);
  EXPECT_TRUE(cache.CheckConsistency());
  RecordCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.admissions, 0u);
}

// --------------------------------------------------- batch coalescing unit

Tuple KeyedTuple(int64_t key) {
  return Tuple::Point(io::Pointer::Keyed(io::EncodeInt64Key(key)));
}

TEST(CoalesceByPartitionTest, BoundaryCases) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  auto file = std::make_shared<io::PartitionedFile>(
      "f", std::make_shared<io::HashPartitioner>(4), &cluster);
  file->Seal();
  StageFunctionPtr deref = MakePointDereferencer("deref", file);
  ASSERT_TRUE(deref->SupportsBatchedDereference());

  // Empty input: no batches.
  EXPECT_TRUE(CoalesceByPartition({}, *deref, 8).empty());

  // Single pointer: one singleton batch.
  auto single = CoalesceByPartition({KeyedTuple(7)}, *deref, 8);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].tuples.size(), 1u);
  EXPECT_EQ(single[0].partition,
            deref->PartitionOfPointer(KeyedTuple(7).pointer));

  // Cross-partition split: tuples of different partitions never share a
  // batch, and batches come out in ascending partition order.
  std::vector<Tuple> mixed;
  for (int64_t k = 0; k < 40; ++k) mixed.push_back(KeyedTuple(k));
  auto batches = CoalesceByPartition(std::move(mixed), *deref, 1000);
  std::set<uint32_t> partitions;
  size_t total = 0;
  uint32_t prev = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(batches[i].partition, prev);
    }
    prev = batches[i].partition;
    partitions.insert(batches[i].partition);
    total += batches[i].tuples.size();
    for (const Tuple& t : batches[i].tuples) {
      EXPECT_EQ(deref->PartitionOfPointer(t.pointer), batches[i].partition);
    }
  }
  EXPECT_EQ(total, 40u);
  EXPECT_EQ(partitions.size(), batches.size());  // one batch per partition

  // Duplicate pointers are preserved (dedup happens at resolution time).
  auto dups = CoalesceByPartition({KeyedTuple(3), KeyedTuple(3), KeyedTuple(3)},
                                  *deref, 8);
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_EQ(dups[0].tuples.size(), 3u);

  // max_batch_size splits an oversized same-partition group.
  std::vector<Tuple> same;
  for (int i = 0; i < 10; ++i) same.push_back(KeyedTuple(3));
  auto split = CoalesceByPartition(std::move(same), *deref, 4);
  ASSERT_EQ(split.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(split[0].tuples.size(), 4u);
  EXPECT_EQ(split[1].tuples.size(), 4u);
  EXPECT_EQ(split[2].tuples.size(), 2u);
}

// ------------------------------------------- batched reads through the file

struct BatchFileFixture : ::testing::Test {
  BatchFileFixture() : cluster(sim::ClusterOptions::ForNodes(2)) {
    file = std::make_shared<io::PartitionedFile>(
        "base", std::make_shared<io::HashPartitioner>(4), &cluster);
    for (int64_t i = 0; i < 64; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(file->Append(key, key, io::Record("r" + std::to_string(i)))
                   .ok());
    }
    file->Seal();
  }

  sim::Cluster cluster;
  std::shared_ptr<io::PartitionedFile> file;
};

TEST_F(BatchFileFixture, GetBatchInPartitionChargesOneReadForManyKeys) {
  uint32_t partition = file->partitioner().PartitionOf(io::EncodeInt64Key(5));
  std::vector<std::string> keys;
  for (int64_t i = 0; i < 64; ++i) {
    std::string key = io::EncodeInt64Key(i);
    if (file->partitioner().PartitionOf(key) == partition) keys.push_back(key);
  }
  ASSERT_GE(keys.size(), 3u);
  keys.push_back(io::EncodeInt64Key(10'000));  // a miss inside the batch

  cluster.ResetStats();
  std::vector<std::vector<io::Record>> batched;
  ASSERT_TRUE(
      file->GetBatchInPartition(0, partition, keys, &batched).ok());
  sim::ResourceTotals stats = cluster.TotalStats();
  EXPECT_EQ(stats.random_reads, 1u);  // ONE fused read for the whole batch
  EXPECT_EQ(stats.batched_reads, 1u);
  EXPECT_EQ(stats.batched_ops, keys.size());

  // Same results as per-key lookups (which cost one read each).
  cluster.ResetStats();
  ASSERT_EQ(batched.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    std::vector<io::Record> single;
    ASSERT_TRUE(file->GetInPartition(0, partition, keys[i], &single).ok());
    EXPECT_EQ(batched[i], single) << keys[i];
  }
  EXPECT_EQ(cluster.TotalStats().random_reads, keys.size());
  EXPECT_TRUE(batched.back().empty());  // the missing key resolved to nothing
}

TEST_F(BatchFileFixture, ExecuteBatchMatchesSequentialExecute) {
  StageFunctionPtr deref = MakePointDereferencer("deref", file);
  std::vector<Tuple> inputs;
  for (int64_t i = 0; i < 32; ++i) inputs.push_back(KeyedTuple(i % 20));

  ExecContext ctx{0, &cluster, nullptr, nullptr};
  std::vector<Tuple> sequential;
  for (const Tuple& t : inputs) {
    ASSERT_TRUE(deref->Execute(ctx, t, &sequential).ok());
  }

  cluster.ResetStats();
  std::vector<Tuple> batched;
  ASSERT_TRUE(deref->ExecuteBatch(ctx, inputs, &batched).ok());
  // One fused read per partition touched (duplicates resolved once), never
  // one per pointer.
  EXPECT_LE(cluster.TotalStats().random_reads, 4u);

  auto canonical = [](const std::vector<Tuple>& tuples) {
    std::multiset<std::string> rows;
    for (const Tuple& t : tuples) {
      std::string row;
      for (const io::Record& r : t.records) {
        row += r.bytes();
        row += '#';
      }
      rows.insert(std::move(row));
    }
    return rows;
  };
  EXPECT_EQ(canonical(batched), canonical(sequential));
}

TEST_F(BatchFileFixture, ExecuteBatchPopulatesAndHitsTheCache) {
  StageFunctionPtr deref = MakePointDereferencer("deref", file);
  RecordCache cache(SmallCache(1 << 20, /*shards=*/4));
  ExecContext ctx{0, &cluster, nullptr, &cache};

  std::vector<Tuple> inputs;
  for (int64_t i = 0; i < 16; ++i) inputs.push_back(KeyedTuple(i));
  std::vector<Tuple> first;
  ASSERT_TRUE(deref->ExecuteBatch(ctx, inputs, &first).ok());
  EXPECT_EQ(cache.entries(), 16u);
  EXPECT_EQ(cache.inflight(), 0u);

  cluster.ResetStats();
  std::vector<Tuple> second;
  ASSERT_TRUE(deref->ExecuteBatch(ctx, inputs, &second).ok());
  EXPECT_EQ(cluster.TotalStats().random_reads, 0u);  // served from cache
  EXPECT_EQ(cache.stats().hits, 16u);
  EXPECT_EQ(second.size(), first.size());
  EXPECT_TRUE(cache.CheckConsistency());
}

}  // namespace
}  // namespace lakeharbor::rede
