// Stress and adversarial-configuration tests: tiny pools, deep chains,
// huge fan-out, races around queue shutdown — the regressions that bite
// task-per-record executors.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "common/string_util.h"
#include "concurrent/mpmc_queue.h"
#include "index/index_entry.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"

namespace lakeharbor {
namespace {

/// A lake with one self-referential file: record i points at (i * fanout +
/// 1 .. i * fanout + fanout) while those exist, giving an exponential task
/// tree from a single root — maximal executor fan-out with minimal setup.
struct FanoutFixture {
  explicit FanoutFixture(int num_records, uint32_t nodes = 4)
      : cluster(sim::ClusterOptions::ForNodes(nodes)) {
    file = std::make_shared<io::PartitionedFile>(
        "tree", std::make_shared<io::HashPartitioner>(nodes * 2), &cluster);
    for (int i = 0; i < num_records; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(file->Append(key, key, io::Record(StrFormat("%d", i))).ok());
    }
    file->Seal();
  }

  /// Job: fetch root, then `depth` (referencer, dereferencer, collapse)
  /// levels, each mapping record i -> its `fanout` children. Missing
  /// children simply resolve to nothing, so the tree is bounded by the
  /// record count.
  StatusOr<rede::Job> TreeJob(int depth, int fanout) {
    using namespace rede;  // NOLINT
    JobBuilder builder("tree-walk");
    builder.Initial(Tuple::Point(io::Pointer::Keyed(io::EncodeInt64Key(0))));
    builder.Add(MakePointDereferencer("deref-root", file));
    for (int d = 0; d < depth; ++d) {
      builder.Add(std::make_shared<ChildReferencer>(d, fanout));
      builder.Add(MakePointDereferencer(StrFormat("deref-%d", d), file));
      // Collapse back to a single-record bundle so bundle size stays O(1)
      // regardless of depth.
      builder.Add(std::make_shared<KeepLastReferencer>());
    }
    return builder.Build();
  }

  class ChildReferencer final : public rede::Referencer {
   public:
    ChildReferencer(int depth, int fanout)
        : rede::Referencer(StrFormat("children-%d", depth)),
          fanout_(fanout) {}
    Status Execute(const rede::ExecContext&, const rede::Tuple& input,
                   std::vector<rede::Tuple>* out) const override {
      LH_ASSIGN_OR_RETURN(
          int64_t id, ParseInt64(input.last_record().slice().view()));
      for (int c = 1; c <= fanout_; ++c) {
        rede::Tuple next;
        next.records = input.records;
        next.pointer =
            io::Pointer::Keyed(io::EncodeInt64Key(id * fanout_ + c));
        out->push_back(std::move(next));
      }
      return Status::OK();
    }

   private:
    int fanout_;
  };

  class KeepLastReferencer final : public rede::Referencer {
   public:
    KeepLastReferencer() : rede::Referencer("keep-last") {}
    Status Execute(const rede::ExecContext&, const rede::Tuple& input,
                   std::vector<rede::Tuple>* out) const override {
      rede::Tuple next;
      next.records.push_back(input.last_record());
      out->push_back(std::move(next));
      return Status::OK();
    }
  };

  sim::Cluster cluster;
  std::shared_ptr<io::PartitionedFile> file;
};

TEST(Stress, ExponentialFanOutCompletesOnTinyPools) {
  FanoutFixture fixture(100000);
  // fanout 4, depth 7 -> ~4^7 = 16384 leaf tasks from one root.
  auto job = fixture.TreeJob(/*depth=*/7, /*fanout=*/4);
  ASSERT_TRUE(job.ok());
  rede::SmpeOptions tiny;
  tiny.threads_per_node = 1;  // minimal pool: any lost wakeup deadlocks
  rede::SmpeExecutor executor(&fixture.cluster, tiny);
  std::atomic<uint64_t> outputs{0};
  auto result =
      executor.Execute(*job, [&](const rede::Tuple&) { ++outputs; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(outputs.load(), 16384u);
  EXPECT_EQ(result->metrics.output_tuples, 16384u);
}

TEST(Stress, DeepChainDoesNotOverflowAnything) {
  FanoutFixture fixture(64);
  // fanout 1, depth 40: a 120-stage pipeline (3 stages per level).
  auto job = fixture.TreeJob(/*depth=*/40, /*fanout=*/1);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->num_stages(), 1u + 40u * 3u);
  for (auto mode :
       {rede::ExecutionMode::kSmpe, rede::ExecutionMode::kPartitioned}) {
    rede::Engine engine(&fixture.cluster);
    // Register is not needed; executors take files via the job.
    auto result = engine.Execute(*job, mode, nullptr);
    ASSERT_TRUE(result.ok()) << rede::ExecutionModeToString(mode);
    EXPECT_EQ(result->metrics.output_tuples, 1u);
  }
}

TEST(Stress, ManyConcurrentExecutesOnSharedExecutor) {
  FanoutFixture fixture(4096);
  auto job = fixture.TreeJob(/*depth=*/5, /*fanout=*/3);
  ASSERT_TRUE(job.ok());
  rede::SmpeOptions options;
  options.threads_per_node = 8;
  rede::SmpeExecutor executor(&fixture.cluster, options);
  constexpr int kJobs = 6;
  std::vector<std::thread> threads;
  std::vector<uint64_t> counts(kJobs, 0);
  std::vector<Status> statuses(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    threads.emplace_back([&, i] {
      std::atomic<uint64_t> n{0};
      auto result = executor.Execute(*job, [&](const rede::Tuple&) { ++n; });
      statuses[i] = result.ok() ? Status::OK() : result.status();
      counts[i] = n.load();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    EXPECT_EQ(counts[i], counts[0]);
    EXPECT_EQ(counts[i], 243u);  // 3^5
  }
}

TEST(Stress, QueueCloseRaceWithProducersAndConsumers) {
  for (int round = 0; round < 20; ++round) {
    MpmcQueue<int> queue;
    std::atomic<int> consumed{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < 3; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) {
          if (!queue.Push(i)) return;  // closed under our feet: fine
        }
      });
    }
    for (int c = 0; c < 3; ++c) {
      threads.emplace_back([&] {
        while (queue.Pop()) consumed.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    queue.Close();
    for (auto& t : threads) t.join();
    // No element is delivered twice and nothing hangs; consumed is at most
    // what producers managed to push.
    EXPECT_LE(consumed.load(), 3000);
  }
}

TEST(Stress, BtreeRandomizedInvariantSweep) {
  Random rng(2024);
  for (int round = 0; round < 5; ++round) {
    index::Btree<int> tree(4 + rng.Uniform(60));
    int n = 200 + static_cast<int>(rng.Uniform(2000));
    for (int i = 0; i < n; ++i) {
      tree.Insert(io::EncodeInt64Key(
                      static_cast<int64_t>(rng.Uniform(300))),
                  i);
      if (i % 257 == 0) tree.CheckInvariants();
    }
    tree.CheckInvariants();
    EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  }
}

}  // namespace
}  // namespace lakeharbor
