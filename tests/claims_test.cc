#include <gtest/gtest.h>

#include "claims/fhir.h"
#include "claims/format.h"
#include "claims/generator.h"
#include "claims/loader.h"
#include "claims/queries.h"

namespace lakeharbor::claims {
namespace {

Claim SampleClaim() {
  Claim claim;
  claim.ir = {42, 7, "DPC"};
  claim.re = {99, "IN", 63, "F"};
  claim.total_expense = 12345;
  claim.treatments = {{"8001", 2, 150}, {"8500", 1, 90}};
  claim.medicines = {{"5003", 30, 200}, {"7123", 14, 50}};
  claim.diseases = {{"1005", true}, {"3777", false}};
  return claim;
}

// ------------------------------------------------------------------- format

TEST(ClaimsFormat, RoundTrip) {
  Claim original = SampleClaim();
  io::Record record(FormatClaim(original));
  auto parsed = ParseClaim(record);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ir.claim_id, 42);
  EXPECT_EQ(parsed->ir.hospital_id, 7);
  EXPECT_EQ(parsed->ir.type, "DPC");
  EXPECT_EQ(parsed->re.patient_id, 99);
  EXPECT_EQ(parsed->re.category, "IN");
  EXPECT_EQ(parsed->re.age, 63);
  EXPECT_EQ(parsed->re.sex, "F");
  EXPECT_EQ(parsed->total_expense, 12345);
  ASSERT_EQ(parsed->treatments.size(), 2u);
  EXPECT_EQ(parsed->treatments[0].treatment_code, "8001");
  ASSERT_EQ(parsed->medicines.size(), 2u);
  EXPECT_EQ(parsed->medicines[1].medicine_code, "7123");
  ASSERT_EQ(parsed->diseases.size(), 2u);
  EXPECT_TRUE(parsed->diseases[0].primary);
  EXPECT_FALSE(parsed->diseases[1].primary);
}

TEST(ClaimsFormat, NarrowExtractors) {
  io::Record record(FormatClaim(SampleClaim()));
  EXPECT_EQ(*ExtractClaimId(record), 42);
  EXPECT_EQ(*ExtractTotalExpense(record), 12345);
  std::vector<std::string> diseases, medicines;
  ASSERT_TRUE(ExtractDiseaseCodes(record, &diseases).ok());
  EXPECT_EQ(diseases, (std::vector<std::string>{"1005", "3777"}));
  ASSERT_TRUE(ExtractMedicineCodes(record, &medicines).ok());
  EXPECT_EQ(medicines, (std::vector<std::string>{"5003", "7123"}));
}

TEST(ClaimsFormat, RangePredicates) {
  io::Record record(FormatClaim(SampleClaim()));
  EXPECT_TRUE(*HasDiseaseInRange(record, "1000", "1019"));
  EXPECT_FALSE(*HasDiseaseInRange(record, "1100", "1104"));
  EXPECT_TRUE(*HasMedicineInRange(record, "5000", "5019"));
  EXPECT_FALSE(*HasMedicineInRange(record, "5200", "5204"));
}

TEST(ClaimsFormat, RejectsUnknownSubRecord) {
  io::Record record(std::string("IR,1,2,PW\nRE,1,OUT,5,M\nHO,10\nXX,9\n"));
  EXPECT_TRUE(ParseClaim(record).status().IsCorruption());
}

TEST(ClaimsFormat, RejectsMissingMandatorySubRecords) {
  io::Record record(std::string("SI,8000,1,2\n"));
  EXPECT_TRUE(ParseClaim(record).status().IsCorruption());
  EXPECT_TRUE(ExtractClaimId(record).status().IsCorruption());
  EXPECT_TRUE(ExtractTotalExpense(record).status().IsCorruption());
}

// ---------------------------------------------------------------- generator

TEST(ClaimsGenerator, DeterministicAndWellFormed) {
  ClaimsConfig config;
  config.num_claims = 500;
  ClaimsData a = GenerateClaims(config);
  ClaimsData b = GenerateClaims(config);
  EXPECT_EQ(a.raw, b.raw);
  ASSERT_EQ(a.raw.size(), 500u);
  ASSERT_EQ(a.parsed.size(), 500u);
  for (size_t i = 0; i < a.raw.size(); ++i) {
    auto parsed = ParseClaim(io::Record(std::string(a.raw[i])));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->ir.claim_id, a.parsed[i].ir.claim_id);
    EXPECT_EQ(parsed->total_expense, a.parsed[i].total_expense);
  }
}

TEST(ClaimsGenerator, CohortRatesRoughlyRespected) {
  ClaimsConfig config;
  config.num_claims = 5000;
  ClaimsData data = GenerateClaims(config);
  ClaimsAnswer q1 = ClaimsOracle(data, Q1());
  // ~ num_claims * rate * treated = 5000 * 0.08 * 0.7 = 280.
  EXPECT_GT(q1.distinct_claims, 150u);
  EXPECT_LT(q1.distinct_claims, 450u);
  ClaimsAnswer q3 = ClaimsOracle(data, Q3());
  EXPECT_GT(q3.distinct_claims, 20u);
  EXPECT_LT(q3.distinct_claims, 150u);
  // Q1 cohort is the largest.
  EXPECT_GT(q1.distinct_claims, q3.distinct_claims);
}

// -------------------------------------------------- both deployments agree

struct ClaimsFixture : ::testing::Test {
  static void SetUpTestSuite() {
    ClaimsConfig config;
    config.num_claims = 3000;
    data_ = new ClaimsData(GenerateClaims(config));

    lake_cluster_ = new sim::Cluster(sim::ClusterOptions::ForNodes(4));
    lake_ = new rede::Engine(lake_cluster_);
    LH_CHECK(LoadRawClaims(*lake_, *data_).ok());

    wh_cluster_ = new sim::Cluster(sim::ClusterOptions::ForNodes(4));
    warehouse_ = new rede::Engine(wh_cluster_);
    LH_CHECK(LoadWarehouseClaims(*warehouse_, *data_).ok());
  }
  static void TearDownTestSuite() {
    delete lake_;
    delete warehouse_;
    delete lake_cluster_;
    delete wh_cluster_;
    delete data_;
  }

  static ClaimsData* data_;
  static sim::Cluster* lake_cluster_;
  static sim::Cluster* wh_cluster_;
  static rede::Engine* lake_;
  static rede::Engine* warehouse_;
};

ClaimsData* ClaimsFixture::data_ = nullptr;
sim::Cluster* ClaimsFixture::lake_cluster_ = nullptr;
sim::Cluster* ClaimsFixture::wh_cluster_ = nullptr;
rede::Engine* ClaimsFixture::lake_ = nullptr;
rede::Engine* ClaimsFixture::warehouse_ = nullptr;

TEST_F(ClaimsFixture, LoadersRegisterEverything) {
  EXPECT_TRUE(lake_->catalog().Contains(names::kRawClaims));
  EXPECT_TRUE(lake_->catalog().Contains(names::kRawDiseaseIndex));
  for (const char* name :
       {names::kWhClaims, names::kWhDiagnosis, names::kWhPrescription,
        names::kWhTreatment, names::kWhDiseaseIndex,
        names::kWhPrescriptionClaimIndex}) {
    EXPECT_TRUE(warehouse_->catalog().Contains(name)) << name;
  }
  EXPECT_EQ((*lake_->catalog().Get(names::kRawClaims))->num_records(),
            data_->raw.size());
  EXPECT_EQ((*warehouse_->catalog().Get(names::kWhClaims))->num_records(),
            data_->raw.size());
}

class ClaimsQueryTest : public ClaimsFixture,
                        public ::testing::WithParamInterface<int> {};

TEST_P(ClaimsQueryTest, BothDeploymentsMatchOracleInBothModes) {
  ClaimsQuery query = AllQueries()[static_cast<size_t>(GetParam())];
  ClaimsAnswer oracle = ClaimsOracle(*data_, query);
  ASSERT_GT(oracle.distinct_claims, 0u) << query.name;

  auto raw_job = BuildRawClaimsJob(*lake_, query);
  ASSERT_TRUE(raw_job.ok());
  auto wh_job = BuildWarehouseClaimsJob(*warehouse_, query);
  ASSERT_TRUE(wh_job.ok());

  for (auto mode :
       {rede::ExecutionMode::kSmpe, rede::ExecutionMode::kPartitioned}) {
    auto raw = lake_->ExecuteCollect(*raw_job, mode);
    ASSERT_TRUE(raw.ok());
    auto raw_answer = SummarizeRawOutput(raw->tuples);
    ASSERT_TRUE(raw_answer.ok());
    EXPECT_EQ(*raw_answer, oracle) << query.name << " raw/"
                                   << ExecutionModeToString(mode);

    auto wh = warehouse_->ExecuteCollect(*wh_job, mode);
    ASSERT_TRUE(wh.ok());
    auto wh_answer = SummarizeWarehouseOutput(wh->tuples);
    ASSERT_TRUE(wh_answer.ok());
    EXPECT_EQ(*wh_answer, oracle) << query.name << " wh/"
                                  << ExecutionModeToString(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(AllThree, ClaimsQueryTest, ::testing::Values(0, 1, 2));

TEST_F(ClaimsFixture, RedeAccessesSignificantlyFewerRecords) {
  // The Fig 9 claim: for every query, the normalized warehouse touches
  // strictly more records than the raw-claims deployment.
  for (const ClaimsQuery& query : AllQueries()) {
    lake_->catalog().ResetAccessStats();
    auto raw_job = BuildRawClaimsJob(*lake_, query);
    ASSERT_TRUE(raw_job.ok());
    ASSERT_TRUE(lake_->Execute(*raw_job, rede::ExecutionMode::kSmpe).ok());
    uint64_t lake_accesses = lake_->catalog().TotalRecordAccesses();

    warehouse_->catalog().ResetAccessStats();
    auto wh_job = BuildWarehouseClaimsJob(*warehouse_, query);
    ASSERT_TRUE(wh_job.ok());
    ASSERT_TRUE(
        warehouse_->Execute(*wh_job, rede::ExecutionMode::kSmpe).ok());
    uint64_t wh_accesses = warehouse_->catalog().TotalRecordAccesses();

    EXPECT_LT(lake_accesses, wh_accesses) << query.name;
    EXPECT_GT(lake_accesses, 0u);
  }
}

TEST_F(ClaimsFixture, ScanBaselineMatchesOracleButTouchesEverything) {
  baseline::ScanEngine scan_engine(lake_cluster_);
  for (const ClaimsQuery& query : AllQueries()) {
    lake_->catalog().ResetAccessStats();
    auto answer =
        RunClaimsScanBaseline(scan_engine, lake_->catalog(), query);
    ASSERT_TRUE(answer.ok()) << query.name;
    EXPECT_EQ(*answer, ClaimsOracle(*data_, query)) << query.name;
    // The scan touches every claim regardless of selectivity.
    auto raw = *lake_->catalog().Get(names::kRawClaims);
    EXPECT_GE(raw->access_stats().records_scanned.load(),
              data_->raw.size());
  }
}

// ----------------------------------------------------------- FHIR (§IV)

TEST(Fhir, BundleEncodesEveryResource) {
  Claim claim = SampleClaim();
  Json bundle = ClaimToFhirBundle(claim);
  EXPECT_EQ(bundle.Find("resourceType")->AsString(), "Bundle");
  const Json* entries = bundle.Find("entry");
  ASSERT_NE(entries, nullptr);
  // Claim + Patient + Encounter + 2 Conditions + 2 MedicationRequests +
  // 2 Procedures = 9 entries.
  EXPECT_EQ(entries->AsArray().size(), 9u);
}

TEST(Fhir, NarrowExtractorsMatchFixedTextExtractors) {
  Claim claim = SampleClaim();
  io::Record fhir_record(ClaimToFhirJson(claim));
  io::Record text_record(FormatClaim(claim));

  EXPECT_EQ(*FhirExtractClaimId(fhir_record), *ExtractClaimId(text_record));
  EXPECT_EQ(*FhirExtractTotalExpense(fhir_record),
            *ExtractTotalExpense(text_record));
  std::vector<std::string> fhir_codes, text_codes;
  ASSERT_TRUE(FhirExtractConditionCodes(fhir_record, &fhir_codes).ok());
  ASSERT_TRUE(ExtractDiseaseCodes(text_record, &text_codes).ok());
  EXPECT_EQ(fhir_codes, text_codes);
  EXPECT_EQ(*FhirHasMedicationInRange(fhir_record, "5000", "5019"),
            *HasMedicineInRange(text_record, "5000", "5019"));
  EXPECT_EQ(*FhirHasMedicationInRange(fhir_record, "5200", "5204"),
            *HasMedicineInRange(text_record, "5200", "5204"));
}

TEST(Fhir, RejectsNonBundleDocuments) {
  io::Record not_bundle(std::string(R"({"resourceType": "Patient"})"));
  EXPECT_TRUE(FhirExtractClaimId(not_bundle).status().IsCorruption());
  io::Record not_json(std::string("IR,1,2,PW"));
  EXPECT_FALSE(FhirExtractClaimId(not_json).ok());
}

class FhirQueryTest : public ClaimsFixture,
                      public ::testing::WithParamInterface<int> {};

TEST_P(FhirQueryTest, FhirDeploymentMatchesOracle) {
  // Re-encode the same claims as FHIR bundles in a fresh lake.
  static sim::Cluster* fhir_cluster = nullptr;
  static rede::Engine* fhir_engine = nullptr;
  if (fhir_engine == nullptr) {
    fhir_cluster = new sim::Cluster(sim::ClusterOptions::ForNodes(4));
    fhir_engine = new rede::Engine(fhir_cluster);
    ASSERT_TRUE(LoadFhirBundles(*fhir_engine, *data_).ok());
  }
  ClaimsQuery query = AllQueries()[static_cast<size_t>(GetParam())];
  ClaimsAnswer oracle = ClaimsOracle(*data_, query);

  auto job = BuildFhirClaimsJob(*fhir_engine, query);
  ASSERT_TRUE(job.ok());
  for (auto mode :
       {rede::ExecutionMode::kSmpe, rede::ExecutionMode::kPartitioned}) {
    auto result = fhir_engine->ExecuteCollect(*job, mode);
    ASSERT_TRUE(result.ok());
    auto answer = SummarizeFhirOutput(result->tuples);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(*answer, oracle)
        << query.name << " fhir/" << ExecutionModeToString(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(AllThree, FhirQueryTest, ::testing::Values(0, 1, 2));

TEST_F(ClaimsFixture, DiskFaultSurfacesThroughClaimsJob) {
  auto job = BuildRawClaimsJob(*lake_, Q1());
  ASSERT_TRUE(job.ok());
  for (uint32_t n = 0; n < lake_cluster_->num_nodes(); ++n) {
    lake_cluster_->node(n).disk().InjectFaultAfter(3);
  }
  auto result = lake_->ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  EXPECT_FALSE(result.ok());
  for (uint32_t n = 0; n < lake_cluster_->num_nodes(); ++n) {
    lake_cluster_->node(n).disk().ClearFault();
  }
  auto retry = lake_->ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  EXPECT_TRUE(retry.ok());
}

}  // namespace
}  // namespace lakeharbor::claims
