#include <gtest/gtest.h>

#include "common/string_util.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "tpch/dates.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/part_join.h"
#include "tpch/q5.h"
#include "tpch/schema.h"

namespace lakeharbor::tpch {
namespace {

// -------------------------------------------------------------------- dates

TEST(Dates, KnownAnchors) {
  EXPECT_EQ(DayToDate(0), "1992-01-01");
  EXPECT_EQ(DayToDate(30), "1992-01-31");
  EXPECT_EQ(DayToDate(31), "1992-02-01");
  EXPECT_EQ(DayToDate(59), "1992-02-29");  // 1992 is a leap year
  EXPECT_EQ(DayToDate(60), "1992-03-01");
  EXPECT_EQ(DayToDate(366), "1993-01-01");
  EXPECT_EQ(DayToDate(kMaxOrderDay), "1998-08-02");
}

TEST(Dates, RoundTripEveryDay) {
  for (int day = kMinOrderDay; day <= kMaxOrderDay; ++day) {
    std::string date = DayToDate(day);
    auto back = DateToDay(date);
    ASSERT_TRUE(back.ok()) << date;
    EXPECT_EQ(*back, day);
  }
}

TEST(Dates, LexicographicOrderEqualsChronological) {
  for (int day = kMinOrderDay; day < kMaxOrderDay; ++day) {
    EXPECT_LT(DayToDate(day), DayToDate(day + 1));
  }
}

TEST(Dates, RejectsMalformed) {
  EXPECT_FALSE(DateToDay("1992/01/01").ok());
  EXPECT_FALSE(DateToDay("92-01-01").ok());
  EXPECT_FALSE(DateToDay("1992-13-01").ok());
}

// ---------------------------------------------------------------- generator

TEST(Generator, CardinalitiesFollowScale) {
  TpchConfig config;
  config.scale_factor = 0.002;
  TpchData data = Generate(config);
  EXPECT_EQ(data.region.size(), 5u);
  EXPECT_EQ(data.nation.size(), 25u);
  EXPECT_EQ(data.customer.size(), 300u);
  EXPECT_EQ(data.orders.size(), 3000u);
  EXPECT_EQ(data.supplier.size(), 20u);
  EXPECT_EQ(data.part.size(), 40u);
  // 1..7 lineitems per order.
  EXPECT_GE(data.lineitem.size(), data.orders.size());
  EXPECT_LE(data.lineitem.size(), data.orders.size() * 7);
}

TEST(Generator, DeterministicForSameSeed) {
  TpchConfig config;
  config.scale_factor = 0.001;
  TpchData a = Generate(config);
  TpchData b = Generate(config);
  EXPECT_EQ(a.orders, b.orders);
  EXPECT_EQ(a.lineitem, b.lineitem);
  config.seed += 1;
  TpchData c = Generate(config);
  EXPECT_NE(a.orders, c.orders);
}

TEST(Generator, RowsAreWellFormed) {
  TpchConfig config;
  config.scale_factor = 0.001;
  TpchData data = Generate(config);
  for (const auto& row : data.orders) {
    EXPECT_TRUE(ParseInt64(FieldAt(row, kDelim, orders::kOrderKey)).ok());
    EXPECT_TRUE(ParseInt64(FieldAt(row, kDelim, orders::kCustKey)).ok());
    std::string date(FieldAt(row, kDelim, orders::kOrderDate));
    EXPECT_TRUE(DateToDay(date).ok()) << date;
  }
  for (const auto& row : data.lineitem) {
    EXPECT_TRUE(ParseInt64(FieldAt(row, kDelim, lineitem::kOrderKey)).ok());
    EXPECT_TRUE(ParseInt64(FieldAt(row, kDelim, lineitem::kSuppKey)).ok());
    EXPECT_TRUE(
        ParseDouble(FieldAt(row, kDelim, lineitem::kExtendedPrice)).ok());
  }
}

TEST(Generator, ForeignKeysResolve) {
  TpchConfig config;
  config.scale_factor = 0.001;
  TpchData data = Generate(config);
  for (const auto& row : data.orders) {
    int64_t cust = *ParseInt64(FieldAt(row, kDelim, orders::kCustKey));
    EXPECT_GE(cust, 1);
    EXPECT_LE(cust, static_cast<int64_t>(data.customer.size()));
  }
  for (const auto& row : data.lineitem) {
    int64_t supp = *ParseInt64(FieldAt(row, kDelim, lineitem::kSuppKey));
    EXPECT_GE(supp, 1);
    EXPECT_LE(supp, static_cast<int64_t>(data.supplier.size()));
  }
}

TEST(QParams, SelectivityMapsToDateWidth) {
  Q5Params p = MakeQ5Params(1.0);
  EXPECT_EQ(p.date_lo, "1992-01-01");
  EXPECT_EQ(p.date_hi, "1998-08-02");
  Q5Params tiny = MakeQ5Params(1e-9);
  EXPECT_EQ(tiny.date_lo, tiny.date_hi);  // clamped to one day
}

// ------------------------------------------------------ loaded-lake fixture

struct TpchFixture : ::testing::Test {
  static void SetUpTestSuite() {
    cluster_ = new sim::Cluster(sim::ClusterOptions::ForNodes(4));
    engine_ = new rede::Engine(cluster_);
    TpchConfig config;
    config.scale_factor = 0.004;  // 600 customers / 6000 orders
    data_ = new TpchData(Generate(config));
    LH_CHECK(LoadIntoLake(*engine_, *data_).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete cluster_;
    delete data_;
    engine_ = nullptr;
    cluster_ = nullptr;
    data_ = nullptr;
  }

  static sim::Cluster* cluster_;
  static rede::Engine* engine_;
  static TpchData* data_;
};

sim::Cluster* TpchFixture::cluster_ = nullptr;
rede::Engine* TpchFixture::engine_ = nullptr;
TpchData* TpchFixture::data_ = nullptr;

TEST_F(TpchFixture, LoaderRegistersFilesAndStructures) {
  auto& catalog = engine_->catalog();
  for (const char* name :
       {names::kRegion, names::kNation, names::kSupplier, names::kCustomer,
        names::kPart, names::kOrders, names::kLineitem,
        names::kOrdersDateIndex, names::kLineitemOrderKeyIndex}) {
    EXPECT_TRUE(catalog.Contains(name)) << name;
  }
  EXPECT_EQ((*catalog.Get(names::kOrders))->num_records(),
            data_->orders.size());
  EXPECT_EQ((*catalog.Get(names::kLineitem))->num_records(),
            data_->lineitem.size());
  EXPECT_EQ((*catalog.Get(names::kOrdersDateIndex))->num_records(),
            data_->orders.size());
  EXPECT_EQ((*catalog.Get(names::kLineitemOrderKeyIndex))->num_records(),
            data_->lineitem.size());
  EXPECT_TRUE(engine_->index_catalog()
                  .FindReady(names::kOrders, "o_orderdate")
                  .has_value());
}

TEST_F(TpchFixture, OracleIsMonotoneInSelectivity) {
  auto small = Q5Oracle(*data_, MakeQ5Params(0.01));
  auto big = Q5Oracle(*data_, MakeQ5Params(0.5));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_LE(small->rows, big->rows);
  EXPECT_GT(big->rows, 0u);
}

class TpchSelectivityTest : public TpchFixture,
                            public ::testing::WithParamInterface<double> {};

TEST_P(TpchSelectivityTest, AllThreeImplementationsAgree) {
  const double selectivity = GetParam();
  Q5Params params = MakeQ5Params(selectivity);

  auto oracle = Q5Oracle(*data_, params);
  ASSERT_TRUE(oracle.ok());

  auto job = BuildQ5RedeJob(*engine_, params);
  ASSERT_TRUE(job.ok());
  auto smpe = engine_->ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(smpe.ok());
  auto smpe_summary = SummarizeRedeOutput(smpe->tuples);
  ASSERT_TRUE(smpe_summary.ok());
  EXPECT_EQ(*smpe_summary, *oracle) << "SMPE vs oracle, sel=" << selectivity;

  auto part = engine_->ExecuteCollect(*job, rede::ExecutionMode::kPartitioned);
  ASSERT_TRUE(part.ok());
  auto part_summary = SummarizeRedeOutput(part->tuples);
  ASSERT_TRUE(part_summary.ok());
  EXPECT_EQ(*part_summary, *oracle) << "partitioned vs oracle";

  baseline::ScanEngine scan_engine(cluster_);
  auto base = RunQ5Baseline(scan_engine, engine_->catalog(), params);
  ASSERT_TRUE(base.ok());
  auto base_summary = SummarizeBaselineOutput(*base);
  ASSERT_TRUE(base_summary.ok());
  EXPECT_EQ(*base_summary, *oracle) << "baseline vs oracle";
}

INSTANTIATE_TEST_SUITE_P(Selectivities, TpchSelectivityTest,
                         ::testing::Values(0.0005, 0.005, 0.05, 0.3, 1.0));

TEST_F(TpchFixture, RedeTouchesFarFewerRecordsAtLowSelectivity) {
  Q5Params params = MakeQ5Params(0.002);
  auto& catalog = engine_->catalog();

  catalog.ResetAccessStats();
  auto job = BuildQ5RedeJob(*engine_, params);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(engine_->Execute(*job, rede::ExecutionMode::kSmpe).ok());
  uint64_t rede_accesses = catalog.TotalRecordAccesses();

  catalog.ResetAccessStats();
  baseline::ScanEngine scan_engine(cluster_);
  ASSERT_TRUE(RunQ5Baseline(scan_engine, catalog, params).ok());
  uint64_t baseline_accesses = catalog.TotalRecordAccesses();

  EXPECT_LT(rede_accesses * 10, baseline_accesses)
      << "rede=" << rede_accesses << " baseline=" << baseline_accesses;
}

// ---------------------------------------------- range-partitioned structure

struct RangeIndexFixture : ::testing::Test {
  RangeIndexFixture()
      : cluster(sim::ClusterOptions::ForNodes(4)), engine(&cluster) {
    TpchConfig config;
    config.scale_factor = 0.002;
    data = Generate(config);
    LoadOptions options;
    options.partitions = 8;
    options.build_range_partitioned_date_index = true;
    LH_CHECK(LoadIntoLake(engine, data, options).ok());
  }

  StatusOr<rede::Job> DateJob(const char* index_name,
                              rede::RangeRouting routing,
                              const Q5Params& params) {
    LH_ASSIGN_OR_RETURN(auto orders, engine.catalog().Get(names::kOrders));
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(
        *engine.catalog().Get(index_name));
    LH_CHECK(idx != nullptr);
    using namespace rede;  // NOLINT
    return JobBuilder("date-select")
        .Initial(Tuple::Range(io::Pointer::Broadcast(params.date_lo),
                              io::Pointer::Broadcast(params.date_hi)))
        .Add(MakeRangeDereferencer("deref-idx", idx, nullptr, routing))
        .Add(MakeIndexEntryReferencer("ref-order"))
        .Add(MakePointDereferencer("deref-orders", orders))
        .Build();
  }

  std::multiset<std::string> OrderKeys(const std::vector<rede::Tuple>& ts) {
    std::multiset<std::string> out;
    for (const auto& t : ts) {
      out.insert(std::string(
          FieldAt(t.last_record().slice().view(), kDelim, orders::kOrderKey)));
    }
    return out;
  }

  sim::Cluster cluster;
  rede::Engine engine;
  TpchData data;
};

TEST_F(RangeIndexFixture, PrunedRangeMatchesLocalIndexInBothModes) {
  Q5Params params = MakeQ5Params(0.05);
  auto local_job =
      DateJob(names::kOrdersDateIndex, rede::RangeRouting::kBroadcast, params);
  auto pruned_job = DateJob(names::kOrdersDateRangeIndex,
                            rede::RangeRouting::kPruneByKeyRange, params);
  ASSERT_TRUE(local_job.ok());
  ASSERT_TRUE(pruned_job.ok());
  auto local = engine.ExecuteCollect(*local_job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(local.ok());
  ASSERT_GT(local->tuples.size(), 0u);
  for (auto mode :
       {rede::ExecutionMode::kSmpe, rede::ExecutionMode::kPartitioned}) {
    auto pruned = engine.ExecuteCollect(*pruned_job, mode);
    ASSERT_TRUE(pruned.ok());
    EXPECT_EQ(OrderKeys(local->tuples), OrderKeys(pruned->tuples))
        << rede::ExecutionModeToString(mode);
    // Pruning means no broadcast at all.
    EXPECT_EQ(pruned->metrics.broadcasts, 0u);
  }
}

TEST_F(RangeIndexFixture, NarrowRangeProbesFewPartitions) {
  Q5Params params = MakeQ5Params(0.002);
  auto pruned_job = DateJob(names::kOrdersDateRangeIndex,
                            rede::RangeRouting::kPruneByKeyRange, params);
  ASSERT_TRUE(pruned_job.ok());
  auto ridx = *engine.catalog().Get(names::kOrdersDateRangeIndex);
  ridx->mutable_access_stats().Reset();
  ASSERT_TRUE(engine.Execute(*pruned_job, rede::ExecutionMode::kSmpe).ok());
  // A ~5-day range out of 2406 days fits in one or two quantile buckets.
  EXPECT_LE(ridx->access_stats().range_lookups.load(), 2u);

  auto local_job =
      DateJob(names::kOrdersDateIndex, rede::RangeRouting::kBroadcast, params);
  ASSERT_TRUE(local_job.ok());
  auto lidx = *engine.catalog().Get(names::kOrdersDateIndex);
  lidx->mutable_access_stats().Reset();
  ASSERT_TRUE(engine.Execute(*local_job, rede::ExecutionMode::kSmpe).ok());
  EXPECT_EQ(lidx->access_stats().range_lookups.load(),
            lidx->num_partitions());
}

TEST_F(RangeIndexFixture, RangeIndexIsBalancedByQuantiles) {
  auto ridx = std::dynamic_pointer_cast<io::BtreeFile>(
      *engine.catalog().Get(names::kOrdersDateRangeIndex));
  ASSERT_NE(ridx, nullptr);
  // Quantile boundaries should spread entries within ~3x of each other.
  uint64_t min_records = UINT64_MAX, max_records = 0;
  for (uint32_t p = 0; p < ridx->num_partitions(); ++p) {
    min_records = std::min(min_records, ridx->partition_records(p));
    max_records = std::max(max_records, ridx->partition_records(p));
  }
  EXPECT_GT(min_records, 0u);
  EXPECT_LT(max_records, min_records * 3);
}

struct PartJoinFixture : ::testing::Test {
  PartJoinFixture()
      : cluster(sim::ClusterOptions::ForNodes(4)), engine(&cluster) {
    TpchConfig config;
    config.scale_factor = 0.002;
    data = Generate(config);
    LoadOptions options;
    options.build_part_join_indexes = true;
    LH_CHECK(LoadIntoLake(engine, data, options).ok());
  }

  sim::Cluster cluster;
  rede::Engine engine;
  TpchData data;
};

TEST_F(PartJoinFixture, LoaderBuildsTheFig4Structures) {
  EXPECT_TRUE(engine.catalog().Contains(names::kPartRetailPriceIndex));
  EXPECT_TRUE(engine.catalog().Contains(names::kLineitemPartKeyIndex));
  EXPECT_TRUE(engine.index_catalog()
                  .FindReady(names::kPart, "p_retailprice")
                  .has_value());
  EXPECT_TRUE(engine.index_catalog()
                  .FindReady(names::kLineitem, "l_partkey")
                  .has_value());
}

TEST_F(PartJoinFixture, GlobalIndexJoinMatchesOracle) {
  PartJoinParams params;
  params.price_lo = 900.0;
  params.price_hi = 902.0;
  auto oracle = PartJoinOracle(data, params);
  ASSERT_GT(oracle.size(), 0u);
  auto job = BuildPartLineitemJoinJob(engine, params);
  ASSERT_TRUE(job.ok());
  for (auto mode :
       {rede::ExecutionMode::kSmpe, rede::ExecutionMode::kPartitioned}) {
    auto result = engine.ExecuteCollect(*job, mode);
    ASSERT_TRUE(result.ok());
    auto summary = SummarizePartJoinOutput(result->tuples);
    ASSERT_TRUE(summary.ok());
    EXPECT_EQ(*summary, oracle) << rede::ExecutionModeToString(mode);
  }
}

TEST_F(PartJoinFixture, BroadcastJoinMatchesGlobalIndexJoin) {
  PartJoinParams global_params;
  global_params.price_hi = 901.5;
  PartJoinParams bcast_params = global_params;
  bcast_params.broadcast = true;

  auto global_job = BuildPartLineitemJoinJob(engine, global_params);
  auto bcast_job = BuildPartLineitemJoinJob(engine, bcast_params);
  ASSERT_TRUE(global_job.ok());
  ASSERT_TRUE(bcast_job.ok());
  auto global_result =
      engine.ExecuteCollect(*global_job, rede::ExecutionMode::kSmpe);
  auto bcast_result =
      engine.ExecuteCollect(*bcast_job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(global_result.ok());
  ASSERT_TRUE(bcast_result.ok());
  EXPECT_EQ(*SummarizePartJoinOutput(global_result->tuples),
            *SummarizePartJoinOutput(bcast_result->tuples));
  EXPECT_EQ(*SummarizePartJoinOutput(global_result->tuples),
            PartJoinOracle(data, global_params));
  // The broadcast plan replicates pointers instead of hash-routing them.
  EXPECT_GT(bcast_result->metrics.broadcasts, 0u);
  EXPECT_EQ(global_result->metrics.broadcasts, 0u);
}

}  // namespace
}  // namespace lakeharbor::tpch
