#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "index/btree.h"
#include "io/key_codec.h"

namespace lakeharbor::index {
namespace {

TEST(Btree, EmptyTree) {
  Btree<int> tree;
  EXPECT_TRUE(tree.empty());
  std::vector<int> out;
  tree.Get("k", &out);
  EXPECT_TRUE(out.empty());
  int visited = 0;
  tree.Scan([&](const std::string&, const int&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 0);
  tree.CheckInvariants();
}

TEST(Btree, InsertAndGet) {
  Btree<int> tree;
  tree.Insert("b", 2);
  tree.Insert("a", 1);
  tree.Insert("c", 3);
  std::vector<int> out;
  tree.Get("b", &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 2);
  out.clear();
  tree.Get("zzz", &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 3u);
}

TEST(Btree, DuplicateKeysAllReturned) {
  Btree<int> tree(4);  // small fanout: duplicates spill across leaves
  for (int i = 0; i < 50; ++i) tree.Insert("dup", i);
  tree.Insert("aaa", -1);
  tree.Insert("zzz", -2);
  std::vector<int> out;
  tree.Get("dup", &out);
  EXPECT_EQ(out.size(), 50u);
  tree.CheckInvariants();
}

TEST(Btree, RangeInclusiveBothEnds) {
  Btree<int> tree;
  for (int i = 0; i < 10; ++i) {
    tree.Insert(StrFormat("k%02d", i), i);
  }
  std::vector<int> got;
  tree.GetRange("k03", "k06", [&](const std::string&, const int& v) {
    got.push_back(v);
    return true;
  });
  EXPECT_EQ(got, (std::vector<int>{3, 4, 5, 6}));
}

TEST(Btree, RangeEmptyWhenHiBelowLo) {
  Btree<int> tree;
  tree.Insert("a", 1);
  int count = 0;
  tree.GetRange("z", "a", [&](const std::string&, const int&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(Btree, RangeEarlyStop) {
  Btree<int> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(StrFormat("k%03d", i), i);
  int count = 0;
  tree.GetRange("k000", "k099", [&](const std::string&, const int&) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(Btree, ScanIsOrdered) {
  Btree<int> tree(4);
  Random rng(3);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(StrFormat("%06llu",
                          static_cast<unsigned long long>(rng.Uniform(1000))),
                i);
  }
  std::string prev;
  bool first = true;
  tree.Scan([&](const std::string& k, const int&) {
    if (!first) {
      EXPECT_LE(prev, k);
    }
    prev = k;
    first = false;
    return true;
  });
  tree.CheckInvariants();
}

TEST(Btree, GrowsInHeight) {
  Btree<int> tree(4);
  EXPECT_EQ(tree.height(), 1u);
  for (int i = 0; i < 1000; ++i) tree.Insert(StrFormat("k%04d", i), i);
  EXPECT_GT(tree.height(), 2u);
  tree.CheckInvariants();
}

/// Property test: a Btree with random duplicate-heavy workloads agrees with
/// std::multimap on point and range queries, across fanouts.
class BtreeOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BtreeOracleTest, AgreesWithMultimap) {
  const size_t fanout = GetParam();
  Btree<int> tree(fanout);
  std::multimap<std::string, int> oracle;
  Random rng(fanout * 977 + 13);
  for (int i = 0; i < 3000; ++i) {
    std::string key = io::EncodeInt64Key(
        static_cast<int64_t>(rng.Uniform(400)) - 200);
    tree.Insert(key, i);
    oracle.emplace(key, i);
  }
  tree.CheckInvariants();
  ASSERT_EQ(tree.size(), oracle.size());

  // Point lookups.
  for (int trial = 0; trial < 200; ++trial) {
    std::string key = io::EncodeInt64Key(
        static_cast<int64_t>(rng.Uniform(500)) - 250);
    std::vector<int> got;
    tree.Get(key, &got);
    auto [begin, end] = oracle.equal_range(key);
    std::multiset<int> expect_set, got_set(got.begin(), got.end());
    for (auto it = begin; it != end; ++it) expect_set.insert(it->second);
    EXPECT_EQ(got_set, expect_set) << "key=" << key;
  }

  // Range queries.
  for (int trial = 0; trial < 100; ++trial) {
    int64_t a = static_cast<int64_t>(rng.Uniform(500)) - 250;
    int64_t b = static_cast<int64_t>(rng.Uniform(500)) - 250;
    if (a > b) std::swap(a, b);
    std::string lo = io::EncodeInt64Key(a), hi = io::EncodeInt64Key(b);
    std::multiset<int> got;
    tree.GetRange(lo, hi, [&](const std::string&, const int& v) {
      got.insert(v);
      return true;
    });
    std::multiset<int> expect;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && it->first <= hi; ++it) {
      expect.insert(it->second);
    }
    EXPECT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BtreeOracleTest,
                         ::testing::Values(4, 8, 16, 64, 128));

}  // namespace
}  // namespace lakeharbor::index
