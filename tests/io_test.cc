#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "io/catalog.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"
#include "sim/cluster.h"

namespace lakeharbor::io {
namespace {

// ---------------------------------------------------------------- key codec

TEST(KeyCodec, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456789},
                    int64_t{-987654}, INT64_MAX, INT64_MIN}) {
    std::string key = EncodeInt64Key(v);
    EXPECT_EQ(key.size(), 16u);
    auto back = DecodeInt64Key(key);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(KeyCodec, Int64OrderPreserving) {
  Random rng(5);
  for (int i = 0; i < 2000; ++i) {
    int64_t a = static_cast<int64_t>(rng.Next());
    int64_t b = static_cast<int64_t>(rng.Next());
    EXPECT_EQ(a < b, EncodeInt64Key(a) < EncodeInt64Key(b))
        << a << " vs " << b;
  }
}

TEST(KeyCodec, DoubleRoundTrip) {
  for (double v : {0.0, 1.5, -1.5, 1e-300, -1e300, 3.14159}) {
    auto back = DecodeDoubleKey(EncodeDoubleKey(v));
    ASSERT_TRUE(back.ok());
    EXPECT_DOUBLE_EQ(*back, v);
  }
}

TEST(KeyCodec, DoubleOrderPreserving) {
  Random rng(6);
  std::vector<double> values = {-1e9, -5.5, -1.0, -0.25, 0.0,
                                0.25, 1.0,  5.5,  1e9};
  for (int i = 0; i < 500; ++i) {
    values.push_back((rng.NextDouble() - 0.5) * 1e6);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      if (values[i] < values[j]) {
        EXPECT_LT(EncodeDoubleKey(values[i]), EncodeDoubleKey(values[j]))
            << values[i] << " vs " << values[j];
      }
    }
  }
}

TEST(KeyCodec, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeInt64Key("short").ok());
  EXPECT_FALSE(DecodeInt64Key("zzzzzzzzzzzzzzzz").ok());
  EXPECT_FALSE(DecodeDoubleKey("0123").ok());
}

TEST(KeyCodec, ComposeKeyOrders) {
  // Composite (a, b) order == lexicographic order of fixed-width parts.
  std::string k11 = ComposeKey(EncodeInt64Key(1), EncodeInt64Key(1));
  std::string k12 = ComposeKey(EncodeInt64Key(1), EncodeInt64Key(2));
  std::string k21 = ComposeKey(EncodeInt64Key(2), EncodeInt64Key(1));
  EXPECT_LT(k11, k12);
  EXPECT_LT(k12, k21);
}

// -------------------------------------------------------------- partitioner

TEST(HashPartitioner, DeterministicAndInRange) {
  HashPartitioner part(7);
  for (int i = 0; i < 100; ++i) {
    std::string key = StrFormat("key-%d", i);
    uint32_t p = part.PartitionOf(key);
    EXPECT_LT(p, 7u);
    EXPECT_EQ(p, part.PartitionOf(key));
  }
}

TEST(HashPartitioner, RoughlyBalanced) {
  HashPartitioner part(8);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[part.PartitionOf(EncodeInt64Key(i))]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);  // expected 1000 each; allow wide slack
    EXPECT_LT(c, 1300);
  }
}

TEST(RangePartitioner, RoutesByBoundaries) {
  RangePartitioner part({"g", "p"});
  EXPECT_EQ(part.num_partitions(), 3u);
  EXPECT_EQ(part.PartitionOf("a"), 0u);
  EXPECT_EQ(part.PartitionOf("g"), 1u);  // boundary belongs right
  EXPECT_EQ(part.PartitionOf("m"), 1u);
  EXPECT_EQ(part.PartitionOf("p"), 2u);
  EXPECT_EQ(part.PartitionOf("z"), 2u);
}

TEST(RangePartitionerSample, QuantileBoundaries) {
  std::vector<std::string> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(StrFormat("%03d", i));
  auto part = BuildRangePartitionerFromSample(sample, 4);
  EXPECT_EQ(part->num_partitions(), 4u);
  ASSERT_EQ(part->boundaries().size(), 3u);
  EXPECT_EQ(part->boundaries()[0], "025");
  EXPECT_EQ(part->boundaries()[1], "050");
  EXPECT_EQ(part->boundaries()[2], "075");
  // Every key routes to a valid partition, monotonically.
  uint32_t prev = 0;
  for (const auto& key : sample) {
    uint32_t p = part->PartitionOf(key);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RangePartitionerSample, SkewedSampleCollapsesDuplicates) {
  std::vector<std::string> sample(100, "same");
  auto part = BuildRangePartitionerFromSample(sample, 8);
  // All quantiles are equal -> a single boundary survives at most.
  EXPECT_LE(part->num_partitions(), 2u);
}

TEST(RangePartitionerSample, EmptySampleGivesOnePartition) {
  auto part = BuildRangePartitionerFromSample({}, 4);
  EXPECT_EQ(part->num_partitions(), 1u);
  EXPECT_EQ(part->PartitionOf("anything"), 0u);
}

// ------------------------------------------------------------------- record

TEST(Record, SharesImmutableBytes) {
  Record a(std::string("hello"));
  Record b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.slice().ToString(), "hello");
  EXPECT_EQ(Record().size(), 0u);
}

TEST(Pointer, FactoryHelpers) {
  Pointer keyed = Pointer::Keyed("k");
  EXPECT_TRUE(keyed.has_partition);
  EXPECT_EQ(keyed.partition_key, "k");
  EXPECT_EQ(keyed.key, "k");
  Pointer bcast = Pointer::Broadcast("k");
  EXPECT_FALSE(bcast.has_partition);
  EXPECT_TRUE(bcast.partition_key.empty());
}

// --------------------------------------------------------- partitioned file

struct FileFixture : ::testing::Test {
  FileFixture()
      : cluster(sim::ClusterOptions::ForNodes(4)),
        file(std::make_shared<PartitionedFile>(
            "t", std::make_shared<HashPartitioner>(8), &cluster)) {}

  void Load(int n) {
    for (int i = 0; i < n; ++i) {
      std::string key = EncodeInt64Key(i);
      ASSERT_TRUE(file->Append(key, key,
                               Record(StrFormat("%d|payload-%d", i, i)))
                      .ok());
    }
    file->Seal();
  }

  sim::Cluster cluster;
  std::shared_ptr<PartitionedFile> file;
};

TEST_F(FileFixture, QueryBeforeSealRejected) {
  std::vector<Record> out;
  EXPECT_TRUE(file->Get(0, Pointer::Keyed(EncodeInt64Key(1)), &out)
                  .IsAborted());
}

TEST_F(FileFixture, AppendAfterSealRejected) {
  Load(1);
  EXPECT_TRUE(
      file->Append("k", "k", Record(std::string("x"))).IsAborted());
}

TEST_F(FileFixture, GetFindsRecord) {
  Load(100);
  std::vector<Record> out;
  ASSERT_TRUE(file->Get(0, Pointer::Keyed(EncodeInt64Key(42)), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(FieldAt(out[0].slice().view(), '|', 0), "42");
  EXPECT_EQ(file->access_stats().records_read.load(), 1u);
  EXPECT_EQ(file->access_stats().lookups.load(), 1u);
}

TEST_F(FileFixture, GetMissIsEmptyNotError) {
  Load(10);
  std::vector<Record> out;
  ASSERT_TRUE(file->Get(0, Pointer::Keyed(EncodeInt64Key(999)), &out).ok());
  EXPECT_TRUE(out.empty());
  // A miss still probed the device.
  EXPECT_EQ(cluster.TotalStats().random_reads, 1u);
}

TEST_F(FileFixture, GetOnBroadcastPointerRejected) {
  Load(10);
  std::vector<Record> out;
  EXPECT_TRUE(
      file->Get(0, Pointer::Broadcast(EncodeInt64Key(1)), &out)
          .IsInvalidArgument());
}

TEST_F(FileFixture, RemoteGetChargesNetwork) {
  Load(100);
  // Find a key on a partition NOT owned by node 0.
  for (int i = 0; i < 100; ++i) {
    std::string key = EncodeInt64Key(i);
    uint32_t p = file->partitioner().PartitionOf(key);
    if (file->NodeOfPartition(p) != 0) {
      std::vector<Record> out;
      ASSERT_TRUE(file->Get(0, Pointer::Keyed(key), &out).ok());
      EXPECT_EQ(cluster.TotalStats().network_messages, 1u);
      return;
    }
  }
  FAIL() << "no remote key found";
}

TEST_F(FileFixture, ScanPartitionVisitsAllInOrder) {
  Load(200);
  uint64_t visited = 0;
  for (uint32_t p = 0; p < file->num_partitions(); ++p) {
    std::string prev;
    bool first = true;
    ASSERT_TRUE(file->ScanPartition(file->NodeOfPartition(p), p,
                                    [&](const Record& r) {
                                      ++visited;
                                      std::string key(FieldAt(
                                          r.slice().view(), '|', 0));
                                      (void)first;
                                      (void)prev;
                                      return true;
                                    })
                    .ok());
  }
  EXPECT_EQ(visited, 200u);
  EXPECT_EQ(file->access_stats().records_scanned.load(), 200u);
  EXPECT_EQ(file->access_stats().partition_scans.load(),
            file->num_partitions());
}

TEST_F(FileFixture, RangeLookupUnsupportedOnPlainFile) {
  Load(10);
  EXPECT_TRUE(file->GetRangeInPartition(0, 0, "a", "z",
                                        [](const Record&) { return true; })
                  .IsNotImplemented());
}

TEST_F(FileFixture, PartitionOutOfRange) {
  Load(10);
  std::vector<Record> out;
  EXPECT_TRUE(file->GetInPartition(0, 99, "k", &out).IsOutOfRange());
}

TEST_F(FileFixture, FaultPropagatesAsIOError) {
  Load(50);
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().InjectFaultAfter(0);
  }
  std::vector<Record> out;
  EXPECT_TRUE(
      file->Get(0, Pointer::Keyed(EncodeInt64Key(1)), &out).IsIOError());
}

TEST(BtreeFileTest, RangeWithinAndAcrossPartitions) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  auto file = std::make_shared<BtreeFile>(
      "idx", std::make_shared<HashPartitioner>(4), &cluster);
  // Local-secondary-style load: entries spread over partitions round-robin,
  // keyed by date-ish strings.
  for (int i = 0; i < 100; ++i) {
    std::string key = StrFormat("2024-%02d", i % 12 + 1);
    ASSERT_TRUE(file->AppendToPartition(i % 4, key,
                                        Record(StrFormat("v%d", i)))
                    .ok());
  }
  file->Seal();
  uint64_t count = 0;
  ASSERT_TRUE(file->GetRangeAllPartitions(0, "2024-03", "2024-05",
                                          [&](const Record&) {
                                            ++count;
                                            return true;
                                          })
                  .ok());
  // Months 3,4,5: i%12+1 in {3,4,5} -> i%12 in {2,3,4} -> 9 values of i per
  // 12, 100 items -> 25 (i%12==2,3,4 occur 9,9,8... compute: counts of i%12==2:9, ==3:9, ==4:8) = 26? verify below.
  uint64_t expect = 0;
  for (int i = 0; i < 100; ++i) {
    int m = i % 12 + 1;
    if (m >= 3 && m <= 5) ++expect;
  }
  EXPECT_EQ(count, expect);
  EXPECT_EQ(file->access_stats().range_lookups.load(),
            file->num_partitions());
}

// ------------------------------------------------------------------ catalog

TEST(Catalog, RegisterGetDrop) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  Catalog catalog;
  auto file = std::make_shared<PartitionedFile>(
      "f1", std::make_shared<HashPartitioner>(2), &cluster);
  ASSERT_TRUE(catalog.Register(file).ok());
  EXPECT_TRUE(catalog.Register(file).IsAlreadyExists());
  EXPECT_TRUE(catalog.Contains("f1"));
  ASSERT_TRUE(catalog.Get("f1").ok());
  EXPECT_TRUE(catalog.Get("nope").status().IsNotFound());
  EXPECT_EQ(catalog.ListNames(), std::vector<std::string>{"f1"});
  ASSERT_TRUE(catalog.Drop("f1").ok());
  EXPECT_TRUE(catalog.Drop("f1").IsNotFound());
}

TEST(Catalog, RegisterOrReplaceSwaps) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  Catalog catalog;
  auto a = std::make_shared<PartitionedFile>(
      "f", std::make_shared<HashPartitioner>(2), &cluster);
  auto b = std::make_shared<PartitionedFile>(
      "f", std::make_shared<HashPartitioner>(4), &cluster);
  catalog.RegisterOrReplace(a);
  catalog.RegisterOrReplace(b);
  EXPECT_EQ((*catalog.Get("f"))->num_partitions(), 4u);
}

TEST(Catalog, ConcurrentRegisterAndLookup) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  Catalog catalog;
  std::vector<std::thread> threads;
  std::atomic<int> found{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto file = std::make_shared<PartitionedFile>(
            StrFormat("f-%d-%d", t, i),
            std::make_shared<HashPartitioner>(2), &cluster);
        catalog.RegisterOrReplace(file);
        if (catalog.Contains(StrFormat("f-%d-%d", t, i))) found.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(found.load(), 200);
  EXPECT_EQ(catalog.ListNames().size(), 200u);
}

TEST_F(FileFixture, PartitionAccountingSumsToTotals) {
  Load(300);
  uint64_t records = 0, bytes = 0;
  for (uint32_t p = 0; p < file->num_partitions(); ++p) {
    records += file->partition_records(p);
    bytes += file->partition_bytes(p);
  }
  EXPECT_EQ(records, file->num_records());
  EXPECT_EQ(bytes, file->total_bytes());
  EXPECT_EQ(records, 300u);
}

TEST(Catalog, TotalRecordAccessesSumsFiles) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  Catalog catalog;
  auto file = std::make_shared<PartitionedFile>(
      "f", std::make_shared<HashPartitioner>(2), &cluster);
  std::string key = EncodeInt64Key(1);
  ASSERT_TRUE(file->Append(key, key, Record(std::string("r"))).ok());
  file->Seal();
  catalog.RegisterOrReplace(file);
  std::vector<Record> out;
  ASSERT_TRUE(file->Get(0, Pointer::Keyed(key), &out).ok());
  EXPECT_EQ(catalog.TotalRecordAccesses(), 1u);
  catalog.ResetAccessStats();
  EXPECT_EQ(catalog.TotalRecordAccesses(), 0u);
}

}  // namespace
}  // namespace lakeharbor::io
