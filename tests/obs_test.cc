#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/string_util.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"
#include "obs/chrome_trace.h"
#include "obs/histogram.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "rede/functions.h"

namespace lakeharbor::obs {
namespace {

// -------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 2u);
  EXPECT_EQ(HistogramBucketOf(4), 3u);
  EXPECT_EQ(HistogramBucketOf(1023), 10u);
  EXPECT_EQ(HistogramBucketOf(1024), 11u);
  EXPECT_EQ(HistogramBucketOf(UINT64_MAX), 64u);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    const uint64_t lo = HistogramBucketLower(i);
    const uint64_t hi = HistogramBucketUpper(i);
    EXPECT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(HistogramBucketOf(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(HistogramBucketOf(hi), i) << "upper bound of bucket " << i;
  }
  // Adjacent buckets tile the domain with no gap.
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketUpper(i) + 1, HistogramBucketLower(i + 1));
  }
}

TEST(Histogram, CountSumMinMax) {
  LatencyHistogram h;
  for (uint64_t v : {5u, 100u, 0u, 1000u, 7u}) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1112u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.Mean(), 1112.0 / 5.0);
  EXPECT_FALSE(s.Summary().empty());
}

TEST(Histogram, QuantilesOfConstantDistribution) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(42);
  HistogramSnapshot s = h.Snapshot();
  // Every quantile of a constant distribution is the constant: min/max
  // clamping must defeat the bucket's [32, 63] spread.
  EXPECT_EQ(s.Quantile(0.0), 42u);
  EXPECT_EQ(s.P50(), 42u);
  EXPECT_EQ(s.P95(), 42u);
  EXPECT_EQ(s.P99(), 42u);
  EXPECT_EQ(s.Quantile(1.0), 42u);
}

TEST(Histogram, QuantilesOfUniformDistribution) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1024; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  // Log-bucket interpolation is approximate: the estimate must land in the
  // same power-of-two bucket as the exact quantile and stay monotone.
  const uint64_t p50 = s.P50();
  const uint64_t p95 = s.P95();
  const uint64_t p99 = s.P99();
  EXPECT_EQ(HistogramBucketOf(p50), HistogramBucketOf(512));
  EXPECT_EQ(HistogramBucketOf(p95), HistogramBucketOf(973));
  EXPECT_EQ(HistogramBucketOf(p99), HistogramBucketOf(1014));
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1024u);
}

TEST(Histogram, TwoPointDistributionTail) {
  // 990 fast ops at 10us, 10 slow at 10000us: p50 must sit in the fast
  // bucket, the extreme tail must see the stragglers' bucket. A mean would
  // report ~110 and hide the bimodality entirely.
  LatencyHistogram h;
  for (int i = 0; i < 990; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(10000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(HistogramBucketOf(s.P50()), HistogramBucketOf(10));
  EXPECT_EQ(HistogramBucketOf(s.Quantile(0.995)), HistogramBucketOf(10000));
  EXPECT_EQ(s.max, 10000u);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10; ++i) a.Record(8);
  for (int i = 0; i < 20; ++i) b.Record(64);
  HistogramSnapshot s = a.Snapshot();
  s.Merge(b.Snapshot());
  EXPECT_EQ(s.count, 30u);
  EXPECT_EQ(s.sum, 10u * 8 + 20u * 64);
  EXPECT_EQ(s.min, 8u);
  EXPECT_EQ(s.max, 64u);
  // Merging an empty snapshot changes nothing.
  s.Merge(HistogramSnapshot{});
  EXPECT_EQ(s.count, 30u);
  EXPECT_EQ(s.min, 8u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, static_cast<uint64_t>(kThreads * kPerThread - 1));
}

// --------------------------------------------------------------- recorder

TEST(TraceRecorder, CollectSortsAcrossThreads) {
  TraceRecorder recorder(NextJobId());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 600;  // > one chunk, forces chunk chaining
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span;
        span.name = "s";
        span.kind = SpanKind::kReferencer;
        span.node = static_cast<uint32_t>(t);
        span.t_start_us = t * kPerThread + i;
        span.t_end_us = span.t_start_us + 1;
        span.AddAttr("i", i);
        recorder.Record(std::move(span));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.spans_recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  std::vector<Span> spans = recorder.Collect();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_TRUE(std::is_sorted(
      spans.begin(), spans.end(),
      [](const Span& a, const Span& b) { return a.t_start_us < b.t_start_us; }));
  // Dense thread indices, and attrs survive the chunked storage.
  for (const Span& span : spans) {
    EXPECT_LT(span.thread, static_cast<uint32_t>(kThreads));
    EXPECT_GE(span.AttrOr("i", -1), 0);
    EXPECT_EQ(span.AttrOr("absent", -7), -7);
  }
}

TEST(TraceRecorder, TwoRecordersDoNotCrosstalk) {
  // Back-to-back recorders on the SAME thread: the thread-local chunk cache
  // must not leak spans of the first into the second (the epoch check).
  auto first = std::make_unique<TraceRecorder>(NextJobId());
  Span span;
  span.name = "a";
  span.t_start_us = 1;
  span.t_end_us = 2;
  first->Record(span);
  EXPECT_EQ(first->Collect().size(), 1u);
  first.reset();
  TraceRecorder second(NextJobId());
  span.name = "b";
  second.Record(span);
  std::vector<Span> collected = second.Collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].name, "b");
}

// ------------------------------------------------- end-to-end traced runs

/// Small employees/departments lake with a global index over emp.dept —
/// enough stages (range deref -> referencer -> point deref -> referencer ->
/// point deref) to exercise every span kind a healthy run can produce.
struct TracedEngineTest : ::testing::Test {
  static constexpr int kEmployees = 60;
  static constexpr int kDepts = 6;

  explicit TracedEngineTest(rede::EngineOptions options = MakeOptions())
      : cluster(sim::ClusterOptions::ForNodes(4)),
        engine(&cluster, options) {
    auto emp = std::make_shared<io::PartitionedFile>(
        "emp", std::make_shared<io::HashPartitioner>(8), &cluster);
    for (int i = 0; i < kEmployees; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(emp->Append(key, key,
                           io::Record(StrFormat("%d|emp%d|%d", i, i,
                                                i % kDepts)))
                   .ok());
    }
    emp->Seal();
    LH_CHECK(engine.catalog().Register(emp).ok());

    auto dept = std::make_shared<io::PartitionedFile>(
        "dept", std::make_shared<io::HashPartitioner>(4), &cluster);
    for (int d = 0; d < kDepts; ++d) {
      std::string key = io::EncodeInt64Key(d);
      LH_CHECK(dept->Append(key, key,
                            io::Record(StrFormat("%d|dept%d", d, d)))
                   .ok());
    }
    dept->Seal();
    LH_CHECK(engine.catalog().Register(dept).ok());

    index::IndexSpec spec;
    spec.index_name = "emp.dept.idx";
    spec.base_file = "emp";
    spec.placement = index::IndexPlacement::kGlobal;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) -> Status {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(int64_t dept, ParseInt64(FieldAt(row, '|', 2)));
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      posting.index_key = io::EncodeInt64Key(dept);
      posting.target_partition_key = io::EncodeInt64Key(id);
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_CHECK(engine.BuildStructure(spec, "dept").ok());
  }

  static rede::EngineOptions MakeOptions() {
    rede::EngineOptions options;
    options.smpe.trace_sample_n = 1;
    options.smpe.deterministic_seed = 1234;  // replayable schedule
    return options;
  }

  StatusOr<rede::Job> DeptJoinJob() {
    LH_ASSIGN_OR_RETURN(auto emp, engine.catalog().Get("emp"));
    LH_ASSIGN_OR_RETURN(auto dept, engine.catalog().Get("dept"));
    LH_ASSIGN_OR_RETURN(auto idx_file, engine.catalog().Get("emp.dept.idx"));
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(idx_file);
    LH_CHECK(idx != nullptr);
    return rede::JobBuilder("dept-join")
        .Initial(rede::Tuple::Range(
            io::Pointer::Broadcast(io::EncodeInt64Key(0)),
            io::Pointer::Broadcast(io::EncodeInt64Key(kDepts - 1))))
        .Add(rede::MakeRangeDereferencer("deref-idx", idx))
        .Add(rede::MakeIndexEntryReferencer("ref-entry"))
        .Add(rede::MakePointDereferencer("deref-emp", emp))
        .Add(rede::MakeKeyReferencer("ref-dept",
                                     rede::EncodedInt64FieldInterpreter(2)))
        .Add(rede::MakePointDereferencer("deref-dept", dept))
        .Build();
  }

  sim::Cluster cluster;
  rede::Engine engine;
};

TEST_F(TracedEngineTest, SmpeTraceReconcilesWithCounters) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tuples.size(), static_cast<size_t>(kEmployees));
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->job_id, result->metrics.job_id);
  EXPECT_EQ(result->trace->job_name, "dept-join");

  // Spans are sorted, well-formed, and attributed to real stages/nodes.
  const TraceLog& trace = *result->trace;
  ASSERT_FALSE(trace.spans.empty());
  EXPECT_TRUE(std::is_sorted(trace.spans.begin(), trace.spans.end(),
                             [](const Span& a, const Span& b) {
                               return a.t_start_us < b.t_start_us;
                             }));
  for (const Span& span : trace.spans) {
    EXPECT_GE(span.duration_us(), 0);
    EXPECT_LT(span.stage, job->num_stages());
    EXPECT_LT(span.node, cluster.num_nodes());
  }

  // Exactly one successful work span per counted stage invocation.
  std::vector<uint64_t> per_stage(job->num_stages(), 0);
  uint64_t queue_waits = 0;
  for (const Span& span : trace.spans) {
    if (span.kind == SpanKind::kQueueWait) ++queue_waits;
    if ((span.kind == SpanKind::kReferencer ||
         span.kind == SpanKind::kDereference ||
         span.kind == SpanKind::kDerefBatch) &&
        span.AttrOr("failed", 0) == 0) {
      ++per_stage[span.stage];
    }
  }
  ASSERT_EQ(result->metrics.per_stage.size(), per_stage.size());
  for (size_t i = 0; i < per_stage.size(); ++i) {
    EXPECT_EQ(per_stage[i], result->metrics.per_stage[i].invocations)
        << "stage " << i;
  }
  EXPECT_GT(queue_waits, 0u);

  // The profiler agrees and flags nothing.
  JobProfile profile = rede::ProfileOf(*result);
  EXPECT_TRUE(profile.Reconciles())
      << (profile.warnings().empty() ? "" : profile.warnings()[0]);
  EXPECT_EQ(profile.job_id(), result->metrics.job_id);
  EXPECT_EQ(profile.stages().size(), job->num_stages());
  EXPECT_FALSE(profile.ToText().empty());

  // Executor-side histograms saw the run.
  EXPECT_EQ(result->metrics.deref_latency_us.count,
            result->metrics.deref_invocations);
  EXPECT_GT(result->metrics.queue_dwell_us.count, 0u);
}

TEST_F(TracedEngineTest, PartitionedTraceReconcilesToo) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto result =
      engine.ExecuteCollect(*job, rede::ExecutionMode::kPartitioned);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tuples.size(), static_cast<size_t>(kEmployees));
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->executor, "rede-partitioned");
  JobProfile profile = rede::ProfileOf(*result);
  EXPECT_TRUE(profile.Reconciles())
      << (profile.warnings().empty() ? "" : profile.warnings()[0]);
}

TEST_F(TracedEngineTest, ChromeTraceJsonRoundTrips) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);

  const std::string json = ToChromeTraceJson(*result->trace);
  auto parsed = Json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t complete_events = 0;
  int64_t prev_ts = -1;
  for (const Json& event : events->AsArray()) {
    const Json* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->AsString() == "M") continue;  // process_name metadata
    ASSERT_EQ(ph->AsString(), "X");
    ++complete_events;
    const Json* ts = event.Find("ts");
    const Json* dur = event.Find("dur");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    // Timestamps are normalized to the trace start, non-negative, and keep
    // the span sort order.
    EXPECT_GE(ts->AsNumber(), 0.0);
    EXPECT_GE(dur->AsNumber(), 0.0);
    EXPECT_GE(static_cast<int64_t>(ts->AsNumber()), prev_ts);
    prev_ts = static_cast<int64_t>(ts->AsNumber());
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    const Json* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    const Json* job_id = args->Find("job_id");
    ASSERT_NE(job_id, nullptr);
    EXPECT_EQ(static_cast<uint64_t>(job_id->AsNumber()),
              result->trace->job_id);
  }
  EXPECT_EQ(complete_events, result->trace->spans.size());
}

struct UntracedEngineTest : TracedEngineTest {
  UntracedEngineTest() : TracedEngineTest(UntracedOptions()) {}
  static rede::EngineOptions UntracedOptions() {
    rede::EngineOptions options;
    options.smpe.trace_sample_n = 0;  // tracing off
    options.smpe.deterministic_seed = 1234;
    return options;
  }
};

TEST_F(UntracedEngineTest, TraceOffFastPathRecordsNothing) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  const uint64_t spans_before = TraceCounters::SpansRecorded();
  const uint64_t chunks_before = TraceCounters::ChunksAllocated();
  auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace, nullptr);
  // Zero spans and zero trace-buffer allocations: with sampling off no
  // recorder exists, so the hot path is exactly one null check.
  EXPECT_EQ(TraceCounters::SpansRecorded(), spans_before);
  EXPECT_EQ(TraceCounters::ChunksAllocated(), chunks_before);
  // The untraced profile is explicitly empty.
  JobProfile profile = rede::ProfileOf(*result);
  EXPECT_EQ(profile.total_spans(), 0u);
  EXPECT_TRUE(profile.stages().empty());
}

struct SampledEngineTest : TracedEngineTest {
  SampledEngineTest() : TracedEngineTest(SampledOptions()) {}
  static rede::EngineOptions SampledOptions() {
    rede::EngineOptions options;
    options.smpe.trace_sample_n = 2;  // every other run
    options.smpe.deterministic_seed = 1234;
    return options;
  }
};

TEST_F(SampledEngineTest, EveryNthRunIsTraced) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  for (int run = 0; run < 4; ++run) {
    auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
    ASSERT_TRUE(result.ok());
    if (run % 2 == 0) {
      EXPECT_NE(result->trace, nullptr) << "run " << run;
    } else {
      EXPECT_EQ(result->trace, nullptr) << "run " << run;
    }
  }
}

// --------------------------------------------------------------- profiler

TEST(JobProfile, BuildsBreakdownAndCatchesMismatch) {
  TraceLog trace;
  trace.job_id = 7;
  trace.job_name = "synthetic";
  trace.executor = "test";
  auto add = [&trace](SpanKind kind, uint32_t stage, uint32_t node,
                      int64_t start, int64_t end, int64_t emitted) {
    Span span;
    span.name = kind == SpanKind::kReferencer ? "ref" : "deref";
    span.kind = kind;
    span.stage = stage;
    span.node = node;
    span.t_start_us = start;
    span.t_end_us = end;
    span.AddAttr("emitted", emitted);
    trace.spans.push_back(std::move(span));
  };
  add(SpanKind::kDereference, 0, 0, 0, 100, 2);
  add(SpanKind::kDereference, 0, 1, 10, 250, 3);
  add(SpanKind::kReferencer, 1, 0, 100, 110, 1);
  {
    Span wait;
    wait.name = "queue-wait";
    wait.kind = SpanKind::kQueueWait;
    wait.stage = 0;
    wait.node = 1;
    wait.t_start_us = 0;
    wait.t_end_us = 10;
    trace.spans.push_back(std::move(wait));
  }

  ProfileInputs inputs;
  inputs.stage_invocations = {2, 1};
  inputs.wall_ms = 0.25;
  JobProfile profile = JobProfile::Build(trace, inputs);
  EXPECT_TRUE(profile.Reconciles());
  ASSERT_EQ(profile.stages().size(), 2u);
  EXPECT_EQ(profile.stages()[0].work_spans, 2u);
  EXPECT_EQ(profile.stages()[0].emitted, 5u);
  EXPECT_EQ(profile.stages()[0].exec_us, 340);
  EXPECT_EQ(profile.stages()[0].io_us, 340);
  EXPECT_EQ(profile.stages()[0].queue_us, 10);
  EXPECT_EQ(profile.stages()[1].cpu_us, 10);
  ASSERT_EQ(profile.nodes().size(), 2u);
  EXPECT_FALSE(profile.stragglers().empty());
  // The longest work span ranks first.
  EXPECT_EQ(profile.stragglers()[0].duration_us(), 240);

  // A dropped span breaks reconciliation loudly.
  ProfileInputs wrong = inputs;
  wrong.stage_invocations = {3, 1};
  JobProfile bad = JobProfile::Build(trace, wrong);
  EXPECT_FALSE(bad.Reconciles());
  ASSERT_FALSE(bad.warnings().empty());
}

}  // namespace
}  // namespace lakeharbor::obs
