#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/scan_engine.h"
#include "common/string_util.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"

namespace lakeharbor::baseline {
namespace {

struct BaselineFixture : ::testing::Test {
  BaselineFixture()
      : cluster(sim::ClusterOptions::ForNodes(4)),
        engine(&cluster, ScanEngineOptions{.workers_per_node = 4}) {}

  std::shared_ptr<io::PartitionedFile> MakeFile(
      const std::string& name, int rows,
      const std::function<std::string(int)>& row_fn) {
    auto file = std::make_shared<io::PartitionedFile>(
        name, std::make_shared<io::HashPartitioner>(8), &cluster);
    for (int i = 0; i < rows; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(file->Append(key, key, io::Record(row_fn(i))).ok());
    }
    file->Seal();
    return file;
  }

  sim::Cluster cluster;
  ScanEngine engine;
};

TEST_F(BaselineFixture, ScanReturnsEverything) {
  auto file = MakeFile("t", 100,
                       [](int i) { return StrFormat("%d|val%d", i, i); });
  auto rows = engine.Scan(*file, nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 100u);
  EXPECT_EQ(engine.stats().records_scanned.load(), 100u);
  // A full scan reads every partition sequentially.
  EXPECT_EQ(file->access_stats().partition_scans.load(),
            file->num_partitions());
  EXPECT_GT(cluster.TotalStats().bytes_sequential, 0u);
}

TEST_F(BaselineFixture, ScanPushesDownPredicate) {
  auto file = MakeFile("t", 100,
                       [](int i) { return StrFormat("%d|%d", i, i % 3); });
  auto rows =
      engine.Scan(*file, FieldEqualsPredicate(1, "0"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 34u);  // i % 3 == 0 for i in [0,100)
}

TEST_F(BaselineFixture, ScanPredicateErrorSurfaces) {
  auto file = MakeFile("t", 10,
                       [](int i) { return StrFormat("%d|x", i); });
  auto rows = engine.Scan(*file, [](const io::Record&) -> StatusOr<bool> {
    return Status::Corruption("boom");
  });
  EXPECT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsCorruption());
}

TEST_F(BaselineFixture, ScanDiskFaultSurfaces) {
  auto file = MakeFile("t", 10,
                       [](int i) { return StrFormat("%d|x", i); });
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().InjectFaultAfter(0);
  }
  auto rows = engine.Scan(*file, nullptr);
  EXPECT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsIOError());
}

TEST_F(BaselineFixture, HashJoinInnerSemantics) {
  // left: id -> id%4 ; right: dept rows 0..3
  auto left = MakeFile("l", 40,
                       [](int i) { return StrFormat("%d|%d", i, i % 4); });
  auto right = MakeFile("r", 4,
                        [](int d) { return StrFormat("%d|dept%d", d, d); });
  auto lrows = engine.Scan(*left, nullptr);
  auto rrows = engine.Scan(*right, nullptr);
  ASSERT_TRUE(lrows.ok());
  ASSERT_TRUE(rrows.ok());
  auto joined = engine.HashJoin(std::move(*lrows), FieldKeyOfRow(0, 1),
                                std::move(*rrows), FieldKeyOfRow(0, 0));
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 40u);
  for (const Row& row : *joined) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(FieldAt(row[0].slice().view(), '|', 1),
              FieldAt(row[1].slice().view(), '|', 0));
  }
}

TEST_F(BaselineFixture, HashJoinDuplicateKeysFanOut) {
  auto left = MakeFile("l", 6, [](int i) { return StrFormat("%d|k", i); });
  auto right = MakeFile("r", 3, [](int i) { return StrFormat("%d|k", i); });
  auto lrows = engine.Scan(*left, nullptr);
  auto rrows = engine.Scan(*right, nullptr);
  auto joined = engine.HashJoin(std::move(*lrows), FieldKeyOfRow(0, 1),
                                std::move(*rrows), FieldKeyOfRow(0, 1));
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 18u);  // 6 x 3 cross on the shared key
}

TEST_F(BaselineFixture, HashJoinEmptySides) {
  auto left = MakeFile("l", 5, [](int i) { return StrFormat("%d|a", i); });
  auto lrows = engine.Scan(*left, nullptr);
  auto joined = engine.HashJoin(std::move(*lrows), FieldKeyOfRow(0, 1),
                                {}, FieldKeyOfRow(0, 1));
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->empty());
}

TEST_F(BaselineFixture, GraceJoinTriggersOnBigInputsAndMatchesInMemory) {
  auto left = MakeFile("l", 500, [](int i) {
    return StrFormat("%d|%d|%s", i, i % 50, std::string(200, 'x').c_str());
  });
  auto right = MakeFile("r", 50, [](int d) {
    return StrFormat("%d|%s", d, std::string(200, 'y').c_str());
  });

  auto join_with = [&](size_t budget) -> std::multiset<std::string> {
    ScanEngine e(&cluster, ScanEngineOptions{.workers_per_node = 4,
                                             .join_memory_budget_bytes =
                                                 budget});
    auto lrows = e.Scan(*left, nullptr);
    auto rrows = e.Scan(*right, nullptr);
    LH_CHECK(lrows.ok() && rrows.ok());
    auto joined = e.HashJoin(std::move(*lrows), FieldKeyOfRow(0, 1),
                             std::move(*rrows), FieldKeyOfRow(0, 0));
    LH_CHECK(joined.ok());
    std::multiset<std::string> canon;
    for (const Row& row : *joined) {
      canon.insert(row[0].bytes() + "#" + row[1].bytes());
    }
    if (budget < 10000) {
      EXPECT_GE(e.stats().grace_joins.load(), 1u);
      EXPECT_GT(e.stats().spilled_bytes.load(), 0u);
    } else {
      EXPECT_EQ(e.stats().grace_joins.load(), 0u);
    }
    return canon;
  };

  auto grace = join_with(4096);             // tiny budget -> spills
  auto in_memory = join_with(1 << 30);      // huge budget -> in-memory
  EXPECT_EQ(grace.size(), 500u);
  EXPECT_EQ(grace, in_memory);
}

TEST_F(BaselineFixture, KeyExtractorErrorSurfaces) {
  auto left = MakeFile("l", 5, [](int i) { return StrFormat("%d|a", i); });
  auto lrows = engine.Scan(*left, nullptr);
  auto joined = engine.HashJoin(
      std::move(*lrows),
      [](const Row&) -> StatusOr<std::string> {
        return Status::InvalidArgument("bad key");
      },
      {}, FieldKeyOfRow(0, 0));
  EXPECT_FALSE(joined.ok());
}

}  // namespace
}  // namespace lakeharbor::baseline
