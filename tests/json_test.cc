#include <gtest/gtest.h>

#include "common/json.h"

namespace lakeharbor {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5e2")->AsNumber(), -350.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  auto doc = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  const Json* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[0].AsNumber(), 1.0);
  EXPECT_EQ(a->AsArray()[2].Find("b")->AsString(), "c");
  EXPECT_TRUE(doc->FindPath("d.e")->is_null());
  EXPECT_EQ(doc->FindPath("d.missing"), nullptr);
  EXPECT_EQ(doc->FindPath("missing.e"), nullptr);
}

TEST(Json, ParsesEscapes) {
  auto doc = Json::Parse(R"("line\nbreak \"quoted\" tab\t slash\/ é")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "line\nbreak \"quoted\" tab\t slash/ \xC3\xA9");
}

TEST(Json, SkipsWhitespaceEverywhere) {
  auto doc = Json::Parse("  {  \"k\" :\n[ 1 ,\t2 ]  }  ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("k")->AsArray().size(), 2u);
}

TEST(Json, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul", "\"unterminated",
        "1 2", "{\"a\":1} x", "[1 2]", "{'a':1}", "\"bad\\escape\"",
        "\"\\u12\"", "\"\\uzzzz\""}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

TEST(Json, RejectsUnescapedControlChars) {
  std::string s = "\"a\nb\"";
  EXPECT_FALSE(Json::Parse(s).ok());
}

TEST(Json, RejectsPathologicalNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(Json, DumpParseRoundTrip) {
  Json object = Json::MakeObject();
  object.Set("name", Json::MakeString("r&d \"dept\"\n"));
  object.Set("count", Json::MakeNumber(42));
  object.Set("ratio", Json::MakeNumber(0.25));
  object.Set("flag", Json::MakeBool(true));
  object.Set("nothing", Json());
  Json array = Json::MakeArray();
  array.Append(Json::MakeNumber(1));
  array.Append(Json::MakeString("two"));
  object.Set("list", std::move(array));

  auto reparsed = Json::Parse(object.Dump());
  ASSERT_TRUE(reparsed.ok()) << object.Dump();
  EXPECT_EQ(reparsed->Find("name")->AsString(), "r&d \"dept\"\n");
  EXPECT_DOUBLE_EQ(reparsed->Find("count")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(reparsed->Find("ratio")->AsNumber(), 0.25);
  EXPECT_TRUE(reparsed->Find("flag")->AsBool());
  EXPECT_TRUE(reparsed->Find("nothing")->is_null());
  EXPECT_EQ(reparsed->Find("list")->AsArray()[1].AsString(), "two");
  // Dump is stable (map ordering), so double round-trip is a fixpoint.
  EXPECT_EQ(reparsed->Dump(), object.Dump());
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json::MakeNumber(12345).Dump(), "12345");
  EXPECT_EQ(Json::MakeNumber(-7).Dump(), "-7");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::Parse("[]")->AsArray().size(), 0u);
  EXPECT_EQ(Json::Parse("{}")->AsObject().size(), 0u);
  EXPECT_EQ(Json::MakeArray().Dump(), "[]");
  EXPECT_EQ(Json::MakeObject().Dump(), "{}");
}

}  // namespace
}  // namespace lakeharbor
