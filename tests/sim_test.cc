#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"
#include "sim/cluster.h"

namespace lakeharbor::sim {
namespace {

DiskOptions CountingDisk() {
  DiskOptions opts;
  opts.timing_enabled = false;
  return opts;
}

TEST(Disk, CountsRandomReads) {
  Disk disk(CountingDisk());
  ASSERT_TRUE(disk.RandomRead(100).ok());
  ASSERT_TRUE(disk.RandomRead(50).ok());
  EXPECT_EQ(disk.stats().random_reads.load(), 2u);
  EXPECT_EQ(disk.stats().bytes_random.load(), 150u);
}

TEST(Disk, SequentialReadChunksAndCounts) {
  DiskOptions opts = CountingDisk();
  opts.scan_chunk_bytes = 100;
  Disk disk(opts);
  ASSERT_TRUE(disk.SequentialRead(250).ok());
  EXPECT_EQ(disk.stats().sequential_chunks.load(), 3u);  // 100+100+50
  EXPECT_EQ(disk.stats().bytes_sequential.load(), 250u);
}

TEST(Disk, WriteCounts) {
  Disk disk(CountingDisk());
  ASSERT_TRUE(disk.Write(64).ok());
  EXPECT_EQ(disk.stats().writes.load(), 1u);
  EXPECT_EQ(disk.stats().bytes_written.load(), 64u);
}

TEST(Disk, FaultInjectionAfterN) {
  Disk disk(CountingDisk());
  disk.InjectFaultAfter(2);
  EXPECT_TRUE(disk.RandomRead(10).ok());
  EXPECT_TRUE(disk.RandomRead(10).ok());
  Status s = disk.RandomRead(10);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(disk.SequentialRead(10).IsIOError());
  EXPECT_GE(disk.stats().injected_faults.load(), 2u);
  disk.ClearFault();
  EXPECT_TRUE(disk.RandomRead(10).ok());
}

TEST(Disk, TransientFaultEveryNth) {
  Disk disk(CountingDisk());
  disk.InjectFaultEvery(3);
  int failures = 0;
  for (int i = 1; i <= 12; ++i) {
    Status s = disk.RandomRead(8);
    if (i % 3 == 0) {
      EXPECT_TRUE(s.IsIOError()) << i;
      ++failures;
    } else {
      EXPECT_TRUE(s.ok()) << i;
    }
  }
  EXPECT_EQ(failures, 4);
  EXPECT_EQ(disk.stats().injected_faults.load(), 4u);
  disk.ClearFault();
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(disk.RandomRead(8).ok());
}

TEST(Disk, TimingModeDelaysRandomReads) {
  DiskOptions opts;
  opts.timing_enabled = true;
  opts.io_slots = 1;
  opts.random_read_latency_us = 3000;
  Disk disk(opts);
  StopWatch watch;
  ASSERT_TRUE(disk.RandomRead(10).ok());
  ASSERT_TRUE(disk.RandomRead(10).ok());
  // Two serialized 3 ms reads must take at least ~6 ms.
  EXPECT_GE(watch.ElapsedMicros(), 5000);
}

TEST(Disk, SlotsAllowOverlap) {
  DiskOptions opts;
  opts.timing_enabled = true;
  opts.io_slots = 8;
  opts.random_read_latency_us = 10000;
  Disk disk(opts);
  StopWatch watch;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] { ASSERT_TRUE(disk.RandomRead(10).ok()); });
  }
  for (auto& t : threads) t.join();
  // 8 overlapping 10 ms reads on 8 slots: far less than the serial 80 ms.
  EXPECT_LT(watch.ElapsedMicros(), 60000);
}

TEST(Network, CountsMessages) {
  NetworkOptions opts;
  Network net(opts);
  ASSERT_TRUE(net.Transfer(100).ok());
  ASSERT_TRUE(net.Transfer(28).ok());
  EXPECT_EQ(net.stats().network_messages.load(), 2u);
  EXPECT_EQ(net.stats().network_bytes.load(), 128u);
}

ClusterOptions SmallCluster(uint32_t nodes = 4) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.EnableTiming(false);
  return opts;
}

TEST(Cluster, LocalReadChargesNoNetwork) {
  Cluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.ChargeRandomRead(1, 1, 100).ok());
  auto totals = cluster.TotalStats();
  EXPECT_EQ(totals.random_reads, 1u);
  EXPECT_EQ(totals.network_messages, 0u);
  EXPECT_EQ(cluster.node(1).disk().stats().random_reads.load(), 1u);
  EXPECT_EQ(cluster.node(0).disk().stats().random_reads.load(), 0u);
}

TEST(Cluster, RemoteReadChargesNetwork) {
  Cluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.ChargeRandomRead(0, 2, 100).ok());
  auto totals = cluster.TotalStats();
  EXPECT_EQ(totals.random_reads, 1u);
  EXPECT_EQ(totals.network_messages, 1u);
  EXPECT_EQ(totals.network_bytes, 100u);
}

TEST(Cluster, MessageBetweenSameNodeIsFree) {
  Cluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.ChargeMessage(3, 3, 100).ok());
  EXPECT_EQ(cluster.TotalStats().network_messages, 0u);
  ASSERT_TRUE(cluster.ChargeMessage(3, 1, 100).ok());
  EXPECT_EQ(cluster.TotalStats().network_messages, 1u);
}

TEST(Cluster, WriteChargesTargetDisk) {
  Cluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.ChargeWrite(0, 3, 64).ok());
  EXPECT_EQ(cluster.node(3).disk().stats().writes.load(), 1u);
  EXPECT_EQ(cluster.TotalStats().network_messages, 1u);  // remote write ships
}

TEST(Cluster, ResetStatsClearsEverything) {
  Cluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.ChargeRandomRead(0, 1, 10).ok());
  ASSERT_TRUE(cluster.ChargeSequentialRead(0, 0, 10).ok());
  cluster.ResetStats();
  auto totals = cluster.TotalStats();
  EXPECT_EQ(totals.random_reads, 0u);
  EXPECT_EQ(totals.bytes_sequential, 0u);
  EXPECT_EQ(totals.network_messages, 0u);
}

TEST(Cluster, FaultOnOneNodePropagates) {
  Cluster cluster(SmallCluster());
  cluster.node(2).disk().InjectFaultAfter(0);
  EXPECT_TRUE(cluster.ChargeRandomRead(0, 1, 10).ok());
  EXPECT_TRUE(cluster.ChargeRandomRead(0, 2, 10).IsIOError());
}

}  // namespace
}  // namespace lakeharbor::sim
