#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "index/index_entry.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "rede/smpe_executor.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {
namespace {

/// Deterministic-schedule SMPE tests: with `deterministic_seed` set, the
/// executor runs single-threaded, drawing the next (node, task) choice from
/// a seeded PRNG, so any interleaving it exhibits is replayable bit-for-bit
/// from the seed alone. Results and schedule-independent metrics must be
/// identical across seeds AND identical to the real threaded executor.
struct ScheduleFixture : ::testing::Test {
  static constexpr int kEmployees = 120;
  static constexpr int kDepts = 10;

  ScheduleFixture() : cluster(sim::ClusterOptions::ForNodes(4)) {
    engine = std::make_unique<Engine>(&cluster, EngineOptions{});
    auto emp = std::make_shared<io::PartitionedFile>(
        "emp", std::make_shared<io::HashPartitioner>(8), &cluster);
    for (int i = 0; i < kEmployees; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(emp->Append(key, key,
                           io::Record(StrFormat("%d|emp%d|%d", i, i,
                                                i % kDepts)))
                   .ok());
    }
    emp->Seal();
    LH_CHECK(engine->catalog().Register(emp).ok());

    auto dept = std::make_shared<io::PartitionedFile>(
        "dept", std::make_shared<io::HashPartitioner>(4), &cluster);
    for (int d = 0; d < kDepts; ++d) {
      std::string key = io::EncodeInt64Key(d);
      LH_CHECK(
          dept->Append(key, key, io::Record(StrFormat("%d|dept%d", d, d)))
              .ok());
    }
    dept->Seal();
    LH_CHECK(engine->catalog().Register(dept).ok());

    index::IndexSpec spec;
    spec.index_name = "emp.dept.idx";
    spec.base_file = "emp";
    spec.placement = index::IndexPlacement::kGlobal;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) -> Status {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(int64_t dept, ParseInt64(FieldAt(row, '|', 2)));
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      posting.index_key = io::EncodeInt64Key(dept);
      posting.target_partition_key = io::EncodeInt64Key(id);
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_CHECK(engine->BuildStructure(spec, "dept").ok());
  }

  /// Index scan → inline Referencer cascade → two point-deref joins: the
  /// stage chain exercising every routing path (broadcast range, inline
  /// referencers, keyed point lookups).
  StatusOr<Job> DeptJoinJob() {
    LH_ASSIGN_OR_RETURN(auto emp, engine->catalog().Get("emp"));
    LH_ASSIGN_OR_RETURN(auto dept, engine->catalog().Get("dept"));
    LH_ASSIGN_OR_RETURN(auto idx_file, engine->catalog().Get("emp.dept.idx"));
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(idx_file);
    LH_CHECK(idx != nullptr);
    return JobBuilder("dept-join")
        .Initial(Tuple::Range(io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                              io::Pointer::Broadcast(
                                  io::EncodeInt64Key(kDepts - 1))))
        .Add(MakeRangeDereferencer("deref-idx", idx))
        .Add(MakeIndexEntryReferencer("ref-entry"))
        .Add(MakePointDereferencer("deref-emp", emp))
        .Add(MakeKeyReferencer("ref-dept", EncodedInt64FieldInterpreter(2)))
        .Add(MakePointDereferencer("deref-dept", dept))
        .Build();
  }

  struct Run {
    std::vector<std::string> ordered;  // output rows in emission order
    std::multiset<std::string> rows;   // unordered canonical result set
    MetricsSnapshot metrics;
  };

  static std::string RowOf(const Tuple& tuple) {
    std::string row;
    for (const io::Record& r : tuple.records) {
      row += r.bytes();
      row += '#';
    }
    return row;
  }

  StatusOr<Run> RunWith(const Job& job, SmpeOptions options) {
    SmpeExecutor executor(&cluster, options);
    Run run;
    LH_ASSIGN_OR_RETURN(JobResult result,
                        executor.Execute(job, [&run](const Tuple& tuple) {
                          run.ordered.push_back(RowOf(tuple));
                        }));
    run.rows = std::multiset<std::string>(run.ordered.begin(),
                                          run.ordered.end());
    run.metrics = result.metrics;
    return run;
  }

  static SmpeOptions Seeded(uint64_t seed) {
    SmpeOptions options;
    options.deterministic_seed = seed;
    options.threads_per_node = 1;  // ignored in seeded mode; keep it tiny
    return options;
  }

  /// The metrics that are a pure function of the task DAG, independent of
  /// which valid schedule the executor happens to walk.
  static void ExpectScheduleIndependentMetricsEq(const MetricsSnapshot& a,
                                                 const MetricsSnapshot& b) {
    EXPECT_EQ(a.ref_invocations, b.ref_invocations);
    EXPECT_EQ(a.deref_invocations, b.deref_invocations);
    EXPECT_EQ(a.tuples_emitted, b.tuples_emitted);
    EXPECT_EQ(a.broadcasts, b.broadcasts);
    EXPECT_EQ(a.output_tuples, b.output_tuples);
    ASSERT_EQ(a.per_stage.size(), b.per_stage.size());
    for (size_t s = 0; s < a.per_stage.size(); ++s) {
      EXPECT_EQ(a.per_stage[s].invocations, b.per_stage[s].invocations) << s;
      EXPECT_EQ(a.per_stage[s].emitted, b.per_stage[s].emitted) << s;
    }
  }

  sim::Cluster cluster;
  std::unique_ptr<Engine> engine;
};

TEST_F(ScheduleFixture, SeedsAgreeWithEachOtherAndWithThreadedExecution) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto threaded = RunWith(*job, SmpeOptions{});
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(threaded->rows.size(), static_cast<size_t>(kEmployees));

  for (uint64_t seed : {1ull, 2ull, 3ull, 42ull, 20260806ull}) {
    auto seeded = RunWith(*job, Seeded(seed));
    ASSERT_TRUE(seeded.ok()) << "seed " << seed;
    EXPECT_EQ(seeded->rows, threaded->rows) << "seed " << seed;
    ExpectScheduleIndependentMetricsEq(seeded->metrics, threaded->metrics);
    // Single-threaded by construction.
    EXPECT_LE(seeded->metrics.peak_parallel_derefs, 1);
  }
}

TEST_F(ScheduleFixture, SameSeedReplaysTheExactInterleaving) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto first = RunWith(*job, Seeded(42));
  auto second = RunWith(*job, Seeded(42));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Not just the same SET — the same emission ORDER, task for task.
  EXPECT_EQ(first->ordered, second->ordered);
  ExpectScheduleIndependentMetricsEq(first->metrics, second->metrics);
  EXPECT_EQ(first->metrics.retries, second->metrics.retries);
}

TEST_F(ScheduleFixture, BroadcastFanOutIsScheduleIndependent) {
  auto emp = engine->catalog().Get("emp");
  auto dept = engine->catalog().Get("dept");
  ASSERT_TRUE(emp.ok());
  ASSERT_TRUE(dept.ok());
  // A mid-job broadcast: fetch one employee, then replicate its dept pointer
  // to all 4 nodes, each resolving its local partitions.
  auto job =
      JobBuilder("bcast-join")
          .Initial(Tuple::Point(io::Pointer::Keyed(io::EncodeInt64Key(7))))
          .Add(MakePointDereferencer("deref-emp", *emp))
          .Add(MakeBroadcastReferencer("ref-dept",
                                       EncodedInt64FieldInterpreter(2)))
          .Add(MakePointDereferencer("deref-dept", *dept))
          .Build();
  ASSERT_TRUE(job.ok());

  auto threaded = RunWith(*job, SmpeOptions{});
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(threaded->rows.size(), 1u);  // unique keys: one joined row
  for (uint64_t seed : {7ull, 8ull, 9ull}) {
    auto seeded = RunWith(*job, Seeded(seed));
    ASSERT_TRUE(seeded.ok());
    EXPECT_EQ(seeded->rows, threaded->rows);
    EXPECT_EQ(seeded->metrics.broadcasts, 1u);
    // One emp fetch plus one replica task per node from the fan-out.
    EXPECT_EQ(seeded->metrics.deref_invocations, 1u + cluster.num_nodes());
  }
}

TEST_F(ScheduleFixture, RetryThenSucceedReplaysUnderSeededSchedules) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto clean = RunWith(*job, Seeded(1));
  ASSERT_TRUE(clean.ok());

  SmpeOptions retrying = Seeded(5);
  retrying.retry.max_retries = 6;
  retrying.retry.backoff_initial_us = 1;
  retrying.retry.backoff_max_us = 10;

  auto arm_faults = [this] {
    // Re-arm before every run: InjectFaultEvery counts operations from the
    // moment it is set, so re-arming rewinds the deterministic fault stream.
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      cluster.node(n).disk().InjectFaultEvery(16);
    }
  };

  arm_faults();
  auto faulty1 = RunWith(*job, retrying);
  ASSERT_TRUE(faulty1.ok()) << faulty1.status().ToString();
  EXPECT_EQ(faulty1->rows, clean->rows);
  EXPECT_GT(faulty1->metrics.retries, 0u);

  // Same seed + re-armed fault stream ⇒ the identical retry storm.
  arm_faults();
  auto faulty2 = RunWith(*job, retrying);
  ASSERT_TRUE(faulty2.ok());
  EXPECT_EQ(faulty2->ordered, faulty1->ordered);
  EXPECT_EQ(faulty2->metrics.retries, faulty1->metrics.retries);
  EXPECT_EQ(faulty2->metrics.retry_backoff_us,
            faulty1->metrics.retry_backoff_us);

  // Other seeds reorder the schedule (so faults land on different tasks)
  // but the result set never changes.
  for (uint64_t seed : {11ull, 12ull}) {
    SmpeOptions other = retrying;
    other.deterministic_seed = seed;
    arm_faults();
    auto run = RunWith(*job, other);
    ASSERT_TRUE(run.ok()) << "seed " << seed;
    EXPECT_EQ(run->rows, clean->rows) << "seed " << seed;
  }
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().ClearFault();
  }
}

TEST_F(ScheduleFixture, BatchingAndCachingPreserveResultsUnderSeededRuns) {
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto reference = RunWith(*job, Seeded(1));
  ASSERT_TRUE(reference.ok());

  SmpeOptions tuned = Seeded(9);
  tuned.batch.enabled = true;
  tuned.batch.max_batch_size = 16;
  tuned.cache.enabled = true;
  tuned.cache.byte_budget = 1 << 20;

  auto first = RunWith(*job, tuned);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->rows, reference->rows);
  // The index-scan cascade emits many same-partition employee pointers per
  // node: batching must have coalesced them.
  EXPECT_GT(first->metrics.deref_batches, 0u);
  EXPECT_GT(first->metrics.deref_batched_pointers,
            first->metrics.deref_batches);
  // Fewer dereference invocations than the unbatched plan.
  EXPECT_LT(first->metrics.deref_invocations,
            reference->metrics.deref_invocations);
  // 120 employees share 10 dept rows: the dept deref stage must hit.
  EXPECT_GT(first->metrics.cache_hits, 0u);
  EXPECT_GT(first->metrics.cache_admissions, 0u);

  // Replay: same seed, fresh executor (fresh cache) ⇒ identical everything.
  auto second = RunWith(*job, tuned);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->ordered, first->ordered);
  EXPECT_EQ(second->metrics.deref_batches, first->metrics.deref_batches);
  EXPECT_EQ(second->metrics.cache_hits, first->metrics.cache_hits);
  EXPECT_EQ(second->metrics.cache_misses, first->metrics.cache_misses);
}

}  // namespace
}  // namespace lakeharbor::rede
