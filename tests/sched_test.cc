// Multi-tenant JobScheduler tests: the per-job isolation contract under
// overlap (every profile reconciles exactly, per-job cache attribution sums
// to the shared cache's global counters), weighted-fair vs FIFO dispatch
// order, admission control, deadlines, and cancellation latency. The
// overlap suite is the regression test for the accounting bug this layer
// fixed — it runs a real mixed Q5'/claims/point-lookup traffic sample
// through one SMPE executor with the record cache enabled.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "claims/generator.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "common/clock.h"
#include "common/retry.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"
#include "io/partitioner.h"
#include "rede/builtin_derefs.h"
#include "rede/engine.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

namespace lakeharbor::sched {
namespace {

// ------------------------------------------------ overlapped-run isolation

/// Thread-safe per-job tuple collector (one per submitted job: sinks may be
/// driven by many executor threads).
struct Collector {
  std::mutex mu;
  std::vector<rede::Tuple> tuples;

  rede::ResultSink Sink() {
    return [this](const rede::Tuple& tuple) {
      std::lock_guard<std::mutex> lock(mu);
      tuples.push_back(tuple);
    };
  }
};

TEST(SchedulerOverlap, MixedTenantsReconcileExactlyAndCacheAttributionSums) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  rede::EngineOptions options;
  options.smpe.trace_sample_n = 1;  // trace every run
  options.smpe.cache.enabled = true;
  // Small budget so overlapped jobs evict each other's entries — eviction
  // attribution must still sum exactly.
  options.smpe.cache.byte_budget = 256 * 1024;
  rede::Engine engine(&cluster, options);

  tpch::TpchConfig tpch_config;
  tpch_config.scale_factor = 0.002;
  tpch_config.seed = 42;
  tpch::TpchData tpch_data = tpch::Generate(tpch_config);
  ASSERT_TRUE(tpch::LoadIntoLake(engine, tpch_data).ok());

  claims::ClaimsConfig claims_config;
  claims_config.num_claims = 1200;
  claims_config.seed = 7;
  claims::ClaimsData claims_data = claims::GenerateClaims(claims_config);
  ASSERT_TRUE(claims::LoadRawClaims(engine, claims_data).ok());

  // Baseline answers computed sequentially against in-memory oracles.
  tpch::Q5Params q5_params = tpch::MakeQ5Params(0.3);
  auto q5_oracle = tpch::Q5Oracle(tpch_data, q5_params);
  ASSERT_TRUE(q5_oracle.ok());
  auto q5_job = tpch::BuildQ5RedeJob(engine, q5_params);
  ASSERT_TRUE(q5_job.ok());

  const std::vector<claims::ClaimsQuery> queries = claims::AllQueries();
  std::vector<claims::ClaimsAnswer> claims_oracles;
  std::vector<rede::Job> claims_jobs;
  claims_jobs.reserve(queries.size());
  for (const claims::ClaimsQuery& query : queries) {
    claims_oracles.push_back(claims::ClaimsOracle(claims_data, query));
    auto job = claims::BuildRawClaimsJob(engine, query);
    ASSERT_TRUE(job.ok());
    claims_jobs.push_back(*std::move(job));
  }

  // Primary-key lookups against the raw claims file (point-lookup class).
  auto claims_file = engine.catalog().Get(claims::names::kRawClaims);
  ASSERT_TRUE(claims_file.ok());
  std::vector<rede::Job> lookup_jobs;
  constexpr int kLookups = 4;
  lookup_jobs.reserve(kLookups);
  for (int i = 0; i < kLookups; ++i) {
    const int64_t claim_id = 1 + i;  // claim ids are 1-based
    auto job =
        rede::JobBuilder("pk-" + std::to_string(claim_id))
            .Initial(rede::Tuple::Point(
                io::Pointer::Keyed(io::EncodeInt64Key(claim_id))))
            .Add(rede::MakePointDereferencer("pk-deref", *claims_file))
            .Build();
    ASSERT_TRUE(job.ok());
    lookup_jobs.push_back(*std::move(job));
  }

  SchedulerOptions sched_options;
  sched_options.execution_slots = 4;  // 4 concurrent runs on one executor
  sched_options.fair = true;
  sched_options.io_tokens = 8;
  JobScheduler scheduler(&engine.executor(rede::ExecutionMode::kSmpe),
                         sched_options);

  // 8+ overlapping jobs across 3 tenants: Q5', every claims query (twice),
  // and point lookups, interleaved so tenants contend for the shared cache.
  struct Submission {
    const rede::Job* job;
    JobClass job_class;
    std::string tenant;
    enum class Kind { kQ5, kClaims, kLookup } kind;
    size_t oracle_index = 0;
  };
  std::vector<Submission> submissions;
  const std::string tenants[3] = {"alice", "bob", "carol"};
  for (int round = 0; round < 2; ++round) {
    submissions.push_back({&*q5_job, JobClass::kAnalyticalScan,
                           tenants[round % 3], Submission::Kind::kQ5, 0});
    for (size_t q = 0; q < claims_jobs.size(); ++q) {
      submissions.push_back({&claims_jobs[q], JobClass::kAnalyticalScan,
                             tenants[(round + q + 1) % 3],
                             Submission::Kind::kClaims, q});
    }
  }
  for (int i = 0; i < kLookups; ++i) {
    submissions.push_back({&lookup_jobs[i], JobClass::kPointLookup,
                           tenants[i % 3], Submission::Kind::kLookup,
                           static_cast<size_t>(i)});
  }
  ASSERT_GE(submissions.size(), 8u);

  std::vector<std::unique_ptr<Collector>> collectors;
  std::vector<JobHandlePtr> handles;
  for (const Submission& submission : submissions) {
    collectors.push_back(std::make_unique<Collector>());
    JobSpec spec;
    spec.tenant = submission.tenant;
    spec.job_class = submission.job_class;
    spec.sink = collectors.back()->Sink();
    auto handle = scheduler.Submit(*submission.job, std::move(spec));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(*handle);
  }

  uint64_t sum_hits = 0, sum_misses = 0, sum_admissions = 0;
  uint64_t sum_evictions = 0, sum_invalidations = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    auto result = handles[i]->Wait();
    ASSERT_TRUE(result.ok()) << "job " << i << ": "
                             << result.status().ToString();

    // Checksums: every overlapped run returns exactly the sequential answer.
    const Submission& submission = submissions[i];
    switch (submission.kind) {
      case Submission::Kind::kQ5: {
        auto summary = tpch::SummarizeRedeOutput(collectors[i]->tuples);
        ASSERT_TRUE(summary.ok());
        EXPECT_EQ(*summary, *q5_oracle) << "job " << i;
        break;
      }
      case Submission::Kind::kClaims: {
        auto answer = claims::SummarizeRawOutput(collectors[i]->tuples);
        ASSERT_TRUE(answer.ok());
        EXPECT_EQ(*answer, claims_oracles[submission.oracle_index])
            << "job " << i << " (" << queries[submission.oracle_index].name
            << ")";
        break;
      }
      case Submission::Kind::kLookup:
        EXPECT_EQ(collectors[i]->tuples.size(), 1u) << "job " << i;
        break;
    }

    // The bugfix contract: every overlapped job's profile reconciles
    // exactly — no overlapped_run escape hatch, no warnings.
    ASSERT_NE(result->trace, nullptr) << "job " << i;
    obs::JobProfile profile = rede::ProfileOf(*result);
    EXPECT_TRUE(profile.Reconciles())
        << "job " << i << ": "
        << (profile.warnings().empty() ? "" : profile.warnings()[0]);

    sum_hits += result->metrics.cache_hits;
    sum_misses += result->metrics.cache_misses;
    sum_admissions += result->metrics.cache_admissions;
    sum_evictions += result->metrics.cache_evictions;
    sum_invalidations += result->metrics.cache_invalidations;
  }

  // Per-job cache attribution sums EXACTLY to the shared cache's global
  // counters: every hit/miss/admission/eviction/invalidation was charged to
  // precisely one job.
  rede::RecordCache* cache = engine.smpe_record_cache();
  ASSERT_NE(cache, nullptr);
  const rede::RecordCacheStats cache_stats = cache->stats();
  EXPECT_EQ(sum_hits, cache_stats.hits);
  EXPECT_EQ(sum_misses, cache_stats.misses);
  EXPECT_EQ(sum_admissions, cache_stats.admissions);
  EXPECT_EQ(sum_evictions, cache_stats.evictions);
  EXPECT_EQ(sum_invalidations, cache_stats.invalidations);
  // Zero leaked in-flight admission reservations after quiescence.
  EXPECT_EQ(cache->inflight(), 0u);
  // The mix actually exercised the cache.
  EXPECT_GT(cache_stats.hits + cache_stats.misses, 0u);

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, submissions.size());
  EXPECT_EQ(stats.completed, submissions.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(
      stats.per_class[static_cast<size_t>(JobClass::kPointLookup)]
          .total_us.count,
      static_cast<uint64_t>(kLookups));
  EXPECT_EQ(scheduler.queued(), 0u);
  EXPECT_EQ(scheduler.running(), 0u);
}

// ------------------------------------------------------- dispatch ordering

/// Executor double: records the order jobs reach Execute(), can hold a
/// designated "plug" job on a gate (to pin the single worker while a
/// backlog builds), and parks "hang" jobs on their CancelToken.
class StubExecutor : public rede::Executor {
 public:
  const std::string& name() const override { return name_; }

  using rede::Executor::Execute;
  StatusOr<rede::JobResult> Execute(const rede::Job& job,
                                    const rede::ResultSink& sink,
                                    CancelToken* cancel) override {
    (void)sink;
    {
      std::lock_guard<std::mutex> lock(mu_);
      order_.push_back(job.name());
    }
    started_.fetch_add(1, std::memory_order_relaxed);
    if (job.name() == "plug") {
      std::unique_lock<std::mutex> lock(mu_);
      gate_cv_.wait(lock, [&] { return gate_open_; });
    } else if (job.name().rfind("hang", 0) == 0) {
      // Park until cancelled (10 s backstop — the test cancels much
      // sooner; reaching the backstop is itself a failure signal).
      if (cancel != nullptr) cancel->WaitFor(10'000'000);
    }
    if (cancel != nullptr && cancel->cancelled()) return cancel->cause();
    return rede::JobResult{};
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_open_ = true;
    }
    gate_cv_.notify_all();
  }

  int started() const { return started_.load(std::memory_order_relaxed); }

  std::vector<std::string> order() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  const std::string name_ = "stub";
  mutable std::mutex mu_;
  std::condition_variable gate_cv_;
  bool gate_open_ = false;
  std::vector<std::string> order_;
  std::atomic<int> started_{0};
};

/// Tiny one-file lake so the stub tests can build real (validated) Jobs;
/// the stub never actually executes them.
struct StubSchedTest : ::testing::Test {
  StubSchedTest()
      : cluster(sim::ClusterOptions::ForNodes(1)), engine(&cluster) {
    auto file = std::make_shared<io::PartitionedFile>(
        "t", std::make_shared<io::HashPartitioner>(1), &cluster);
    LH_CHECK(file->Append(io::EncodeInt64Key(0), io::EncodeInt64Key(0),
                          io::Record("r0"))
                 .ok());
    file->Seal();
    LH_CHECK(engine.catalog().Register(file).ok());
  }

  rede::Job MakeJob(const std::string& name) {
    auto file = engine.catalog().Get("t");
    LH_CHECK(file.ok());
    auto job =
        rede::JobBuilder(name)
            .Initial(
                rede::Tuple::Point(io::Pointer::Keyed(io::EncodeInt64Key(0))))
            .Add(rede::MakePointDereferencer("d", *file))
            .Build();
    LH_CHECK(job.ok());
    return *std::move(job);
  }

  /// Block until the stub has started `n` jobs (bounded spin).
  static void AwaitStarted(const StubExecutor& stub, int n) {
    const int64_t deadline_us = NowMicros() + 10'000'000;
    while (stub.started() < n && NowMicros() < deadline_us) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(stub.started(), n);
  }

  sim::Cluster cluster;
  rede::Engine engine;
};

TEST_F(StubSchedTest, FairDispatchInterleavesLookupsAheadOfScanBacklog) {
  // One slot; a plug job pins it while a backlog builds: four analytical
  // scans from tenant-a, then four point lookups from tenant-b. Under SFQ
  // (scan cost 4 / weight 1 vs lookup cost 1 / weight 4) the lookups all
  // overtake the second scan despite being submitted last.
  StubExecutor stub;
  SchedulerOptions options;
  options.execution_slots = 1;
  options.fair = true;
  JobScheduler scheduler(&stub, options);

  std::vector<rede::Job> jobs;
  jobs.push_back(MakeJob("plug"));
  for (int i = 1; i <= 4; ++i) jobs.push_back(MakeJob("s" + std::to_string(i)));
  for (int i = 1; i <= 4; ++i) jobs.push_back(MakeJob("l" + std::to_string(i)));

  std::vector<JobHandlePtr> handles;
  JobSpec plug_spec;
  plug_spec.tenant = "ops";
  auto plug = scheduler.Submit(jobs[0], std::move(plug_spec));
  ASSERT_TRUE(plug.ok());
  handles.push_back(*plug);
  AwaitStarted(stub, 1);  // the backlog below queues behind the plug

  for (int i = 1; i <= 4; ++i) {
    JobSpec spec;
    spec.tenant = "tenant-a";
    spec.job_class = JobClass::kAnalyticalScan;
    auto handle = scheduler.Submit(jobs[i], std::move(spec));
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  for (int i = 5; i <= 8; ++i) {
    JobSpec spec;
    spec.tenant = "tenant-b";
    spec.job_class = JobClass::kPointLookup;
    auto handle = scheduler.Submit(jobs[i], std::move(spec));
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }

  stub.OpenGate();
  for (auto& handle : handles) ASSERT_TRUE(handle->Wait().ok());

  const std::vector<std::string> expected = {"plug", "s1", "l1", "l2", "l3",
                                             "l4",   "s2", "s3", "s4"};
  EXPECT_EQ(stub.order(), expected);
}

TEST_F(StubSchedTest, FifoDispatchesInStrictSubmissionOrder) {
  StubExecutor stub;
  SchedulerOptions options;
  options.execution_slots = 1;
  options.fair = false;
  JobScheduler scheduler(&stub, options);

  std::vector<rede::Job> jobs;
  jobs.push_back(MakeJob("plug"));
  for (int i = 1; i <= 4; ++i) jobs.push_back(MakeJob("s" + std::to_string(i)));
  for (int i = 1; i <= 4; ++i) jobs.push_back(MakeJob("l" + std::to_string(i)));

  std::vector<JobHandlePtr> handles;
  auto plug = scheduler.Submit(jobs[0], JobSpec{});
  ASSERT_TRUE(plug.ok());
  handles.push_back(*plug);
  AwaitStarted(stub, 1);

  for (size_t i = 1; i < jobs.size(); ++i) {
    JobSpec spec;
    spec.tenant = i <= 4 ? "tenant-a" : "tenant-b";
    spec.job_class = i <= 4 ? JobClass::kAnalyticalScan
                            : JobClass::kPointLookup;
    auto handle = scheduler.Submit(jobs[i], std::move(spec));
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }

  stub.OpenGate();
  for (auto& handle : handles) ASSERT_TRUE(handle->Wait().ok());

  const std::vector<std::string> expected = {"plug", "s1", "s2", "s3", "s4",
                                             "l1",   "l2", "l3", "l4"};
  EXPECT_EQ(stub.order(), expected);
}

// ------------------------------------------------------- admission control

TEST_F(StubSchedTest, AdmissionControlRejectsBeyondQueueDepth) {
  StubExecutor stub;
  SchedulerOptions options;
  options.execution_slots = 1;
  options.max_queue_depth = 2;
  JobScheduler scheduler(&stub, options);

  rede::Job plug_job = MakeJob("plug");
  rede::Job work = MakeJob("w");
  auto plug = scheduler.Submit(plug_job, JobSpec{});
  ASSERT_TRUE(plug.ok());
  AwaitStarted(stub, 1);  // plug holds the slot; the queue is now empty

  auto first = scheduler.Submit(work, JobSpec{});
  auto second = scheduler.Submit(work, JobSpec{});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(scheduler.queued(), 2u);

  // Third queued job exceeds max_queue_depth: shed with kResourceExhausted.
  auto third = scheduler.Submit(work, JobSpec{});
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsResourceExhausted())
      << third.status().ToString();

  stub.OpenGate();
  ASSERT_TRUE((*plug)->Wait().ok());
  ASSERT_TRUE((*first)->Wait().ok());
  ASSERT_TRUE((*second)->Wait().ok());

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

// -------------------------------------------------- deadlines and cancels

TEST_F(StubSchedTest, DeadlineExpiresQueuedJobWithoutWaitingForASlot) {
  StubExecutor stub;
  SchedulerOptions options;
  options.execution_slots = 1;
  JobScheduler scheduler(&stub, options);

  rede::Job plug_job = MakeJob("plug");
  rede::Job victim_job = MakeJob("victim");
  auto plug = scheduler.Submit(plug_job, JobSpec{});
  ASSERT_TRUE(plug.ok());
  AwaitStarted(stub, 1);

  JobSpec spec;
  spec.tenant = "latency-tenant";
  spec.job_class = JobClass::kPointLookup;
  spec.deadline_ms = 50;
  const int64_t t0 = NowMicros();
  auto victim = scheduler.Submit(victim_job, std::move(spec));
  ASSERT_TRUE(victim.ok());

  // The deadline timer must finish the still-queued victim itself — the
  // plug never releases the slot until after we've observed the failure.
  auto result = (*victim)->Wait();
  const int64_t elapsed_us = NowMicros() - t0;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_LT(elapsed_us, 5'000'000);  // promptly, not when the plug drains
  EXPECT_EQ(stub.started(), 1);      // the victim never reached Execute()

  stub.OpenGate();
  ASSERT_TRUE((*plug)->Wait().ok());
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(StubSchedTest, DeadlineInterruptsRunningJobThroughItsToken) {
  StubExecutor stub;
  SchedulerOptions options;
  options.execution_slots = 1;
  JobScheduler scheduler(&stub, options);

  rede::Job job = MakeJob("hang");  // parks on its CancelToken for 10 s
  JobSpec spec;
  spec.deadline_ms = 100;
  const int64_t t0 = NowMicros();
  auto result = scheduler.Run(job, std::move(spec));
  const int64_t elapsed_us = NowMicros() - t0;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_LT(elapsed_us, 5'000'000);  // token flip cut the 10 s park short
}

TEST_F(StubSchedTest, CancelStopsRunningJobPromptly) {
  StubExecutor stub;
  SchedulerOptions options;
  options.execution_slots = 1;
  JobScheduler scheduler(&stub, options);

  rede::Job job = MakeJob("hang");
  auto handle = scheduler.Submit(job, JobSpec{});
  ASSERT_TRUE(handle.ok());
  AwaitStarted(stub, 1);

  const int64_t t0 = NowMicros();
  (*handle)->Cancel(Status::Aborted("tenant evicted"));
  auto result = (*handle)->Wait();
  const int64_t elapsed_us = NowMicros() - t0;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status().ToString();
  EXPECT_LT(elapsed_us, 5'000'000);
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
}

TEST_F(StubSchedTest, ShutdownFailsQueuedJobsAndRejectsNewOnes) {
  rede::Job plug_job = MakeJob("plug");
  rede::Job queued_job = MakeJob("q");
  auto stub = std::make_unique<StubExecutor>();
  SchedulerOptions options;
  options.execution_slots = 1;
  JobScheduler scheduler(stub.get(), options);

  auto plug = scheduler.Submit(plug_job, JobSpec{});
  ASSERT_TRUE(plug.ok());
  AwaitStarted(*stub, 1);
  auto queued = scheduler.Submit(queued_job, JobSpec{});
  ASSERT_TRUE(queued.ok());

  // Shut down while the plug still holds the only slot: the queued job is
  // failed immediately (before worker join), so its Wait() returns Aborted
  // even though the plug is still running. Only then release the plug so
  // Shutdown can join its worker.
  std::thread shutdown_thread([&] { scheduler.Shutdown(); });
  auto queued_result = (*queued)->Wait();
  ASSERT_FALSE(queued_result.ok());
  EXPECT_TRUE(queued_result.status().IsAborted())
      << queued_result.status().ToString();
  stub->OpenGate();
  shutdown_thread.join();
  ASSERT_TRUE((*plug)->Wait().ok());

  auto late = scheduler.Submit(queued_job, JobSpec{});
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsAborted());
}

// ------------------------------------------- retry backoff interruption

TEST(RetryCancellation, CancelInterruptsBackoffSleepWithinTheQuantum) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_us = 10'000'000;  // one 10 s quantum
  policy.backoff_max_us = 10'000'000;

  CancelToken token;
  std::atomic<int> calls{0};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel(Status::Aborted("tenant evicted"));
  });

  const int64_t t0 = NowMicros();
  Status status = RunWithRetry(
      policy,
      [&]() -> Status {
        calls.fetch_add(1, std::memory_order_relaxed);
        return Status::IOError("device down");
      },
      /*observe=*/nullptr, &token, /*jitter_seed=*/1);
  const int64_t elapsed_us = NowMicros() - t0;
  canceller.join();

  // The cancel must land mid-backoff: the operation failed once, the 10 s
  // sleep was interrupted, and the token's cause came back — well within
  // one backoff quantum.
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_LT(elapsed_us, 5'000'000);
}

}  // namespace
}  // namespace lakeharbor::sched
