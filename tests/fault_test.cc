#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "index/index_entry.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "rede/smpe_executor.h"
#include "rede/statistics.h"
#include "sim/cluster.h"
#include "sim/fault.h"

namespace lakeharbor::rede {
namespace {

// ------------------------------------------------------- retryable taxonomy

TEST(StatusRetryable, TransientCodesAreRetryablePermanentOnesAreNot) {
  EXPECT_TRUE(Status::IOError("x").IsRetryable());
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Aborted("x").IsRetryable());
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyUpToCap) {
  RetryPolicy policy;
  policy.backoff_initial_us = 100;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_us = 500;
  EXPECT_EQ(policy.BackoffUs(1), 100u);
  EXPECT_EQ(policy.BackoffUs(2), 200u);
  EXPECT_EQ(policy.BackoffUs(3), 400u);
  EXPECT_EQ(policy.BackoffUs(4), 500u);  // capped
  EXPECT_EQ(policy.BackoffUs(10), 500u);
  EXPECT_FALSE(policy.enabled());
  policy.max_retries = 1;
  EXPECT_TRUE(policy.enabled());
}

TEST(RetryPolicyTest, SeededJitterDesynchronizesRetryStorms) {
  RetryPolicy policy;
  policy.backoff_initial_us = 100'000;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_us = 800'000;
  policy.jitter = 0.5;

  // Deterministic: the same (seed, retry) always yields the same backoff —
  // replayable schedules stay replayable.
  for (size_t retry = 1; retry <= 4; ++retry) {
    EXPECT_EQ(policy.JitteredBackoffUs(retry, 77),
              policy.JitteredBackoffUs(retry, 77));
  }

  // Bounded: jitter only shortens, never stretches past the classic ladder
  // and never collapses to zero.
  const uint64_t base = policy.BackoffUs(2);
  std::set<uint64_t> distinct;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    const uint64_t jittered = policy.JitteredBackoffUs(2, seed);
    EXPECT_LE(jittered, base);
    EXPECT_GE(jittered, base / 2);  // factor in (1 - jitter, 1]
    distinct.insert(jittered);
  }
  // De-synchronization: 32 workers that fail together (distinct per-task
  // seeds) spread over many distinct backoffs instead of retrying in
  // lockstep against the same recovering disk.
  EXPECT_GT(distinct.size(), 16u);

  // jitter == 0 (the default) preserves the exact deterministic ladder.
  RetryPolicy plain;
  plain.backoff_initial_us = 100;
  EXPECT_EQ(plain.JitteredBackoffUs(3, 99), plain.BackoffUs(3));
}

TEST(RunWithRetryTest, RetriesTransientFailuresUntilSuccess) {
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_initial_us = 1;
  int calls = 0;
  int observed = 0;
  Status status = RunWithRetry(
      policy,
      [&]() -> Status {
        return ++calls < 3 ? Status::IOError("flaky") : Status::OK();
      },
      [&](size_t, uint64_t backoff_us) {
        ++observed;
        EXPECT_GT(backoff_us, 0u);
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(observed, 2);
}

TEST(RunWithRetryTest, ExhaustionKeepsOriginalCodeAndAddsAttemptContext) {
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_initial_us = 1;
  int calls = 0;
  Status status = RunWithRetry(policy, [&]() -> Status {
    ++calls;
    return Status::Unavailable("replica down");
  });
  EXPECT_EQ(calls, 3);  // 1 attempt + 2 retries
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_NE(status.message().find("after 3 attempts"), std::string::npos);
  EXPECT_NE(status.message().find("replica down"), std::string::npos);
}

TEST(RunWithRetryTest, PermanentErrorsFailFast) {
  RetryPolicy policy;
  policy.max_retries = 5;
  int calls = 0;
  Status status = RunWithRetry(policy, [&]() -> Status {
    ++calls;
    return Status::Aborted("not transient");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(status.IsAborted());
}

// --------------------------------------------------------- fault injection

TEST(FaultInjector, ReplaysDeterministicallyFromFixedSeed) {
  sim::FaultOptions faults;
  faults.fault_rate = 0.2;
  faults.seed = 1234;
  sim::FaultInjector injector(faults);
  std::vector<size_t> first;
  for (size_t i = 0; i < 500; ++i) {
    if (injector.Assess("disk").faulted()) first.push_back(i);
  }
  // ~100 expected faults; very loose bounds, deterministic given the seed.
  EXPECT_GT(first.size(), 50u);
  EXPECT_LT(first.size(), 160u);

  injector.Configure(faults);  // rewind the stream
  std::vector<size_t> replay;
  for (size_t i = 0; i < 500; ++i) {
    if (injector.Assess("disk").faulted()) replay.push_back(i);
  }
  EXPECT_EQ(first, replay);

  faults.seed = 99;
  injector.Configure(faults);
  std::vector<size_t> other;
  for (size_t i = 0; i < 500; ++i) {
    if (injector.Assess("disk").faulted()) other.push_back(i);
  }
  EXPECT_NE(first, other);
}

TEST(FaultInjector, UnavailableFractionSelectsTheInjectedCode) {
  sim::FaultOptions faults;
  faults.fault_rate = 1.0;
  faults.unavailable_fraction = 1.0;
  faults.seed = 7;
  sim::FaultInjector injector(faults);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.Assess("disk").status.IsUnavailable()) << i;
  }
  faults.unavailable_fraction = 0.0;
  injector.Configure(faults);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.Assess("disk").status.IsIOError()) << i;
  }
}

TEST(FaultInjector, ReconfigurationSwapsKnobsAtomicallyUnderConcurrentAssess) {
  // "Hot" knobs: every operation faults, and every fault is kUnavailable.
  // "Off" knobs: nothing faults. A torn reconfiguration — the hot
  // fault_rate observed together with the off unavailable_fraction — would
  // surface as an injected kIoError, which NEITHER knob set can produce.
  sim::FaultOptions hot;
  hot.fault_rate = 1.0;
  hot.unavailable_fraction = 1.0;
  hot.seed = 9;
  sim::FaultOptions off;

  sim::FaultInjector injector(hot);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> faults_seen{0};
  std::vector<std::thread> assessors;
  for (int t = 0; t < 4; ++t) {
    assessors.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        sim::FaultInjector::Decision decision = injector.Assess("disk");
        if (decision.faulted()) {
          faults_seen.fetch_add(1, std::memory_order_relaxed);
          if (!decision.status.IsUnavailable()) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Keep toggling until the assessors have demonstrably raced a few
  // thousand hot-knob assessments (bounded so a pathological scheduler
  // cannot hang the test; the atomicity assertion holds regardless).
  uint64_t toggles = 0;
  while (faults_seen.load(std::memory_order_relaxed) < 2000 &&
         toggles < 20000000) {
    injector.Configure((toggles++ % 2 != 0) ? off : hot);
  }
  stop.store(true);
  for (auto& thread : assessors) thread.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(faults_seen.load(), 0u);  // the race was actually exercised
}

TEST(DiskFaults, SeededProbabilisticFaultsReplayDeterministically) {
  sim::DiskOptions opts;
  opts.faults.fault_rate = 0.25;
  opts.faults.seed = 42;
  sim::Disk disk(opts);
  std::set<int> first;
  for (int i = 0; i < 200; ++i) {
    if (!disk.RandomRead(8).ok()) first.insert(i);
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(disk.stats().injected_faults.load(), first.size());

  disk.ConfigureFaults(opts.faults);  // same seed: identical fault pattern
  std::set<int> replay;
  for (int i = 0; i < 200; ++i) {
    if (!disk.RandomRead(8).ok()) replay.insert(i);
  }
  EXPECT_EQ(first, replay);
}

TEST(DiskFaults, LatencySpikesAreCountedAndSlowTimedReads) {
  sim::DiskOptions opts;
  opts.faults.latency_spike_rate = 1.0;
  opts.faults.latency_spike_multiplier = 5.0;
  opts.faults.seed = 7;
  {
    sim::Disk counting(opts);
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(counting.RandomRead(8).ok());
    EXPECT_EQ(counting.stats().injected_latency_spikes.load(), 10u);
    EXPECT_EQ(counting.stats().injected_faults.load(), 0u);
  }
  opts.timing_enabled = true;
  opts.io_slots = 1;
  opts.random_read_latency_us = 300;
  sim::Disk timed(opts);
  StopWatch watch;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(timed.RandomRead(8).ok());
  // Four spiked reads at 5 x 300 us each; un-spiked they would take 1.2 ms.
  EXPECT_GE(watch.ElapsedMicros(), 4000);
  EXPECT_EQ(timed.stats().injected_latency_spikes.load(), 4u);
}

TEST(ClusterFaults, NodeOutageFailsItsDiskAndItsMessages) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(3));
  cluster.SetNodeOutage(1, true);
  EXPECT_TRUE(cluster.NodeIsDown(1));
  EXPECT_TRUE(cluster.node(1).disk().in_outage());

  EXPECT_TRUE(cluster.ChargeRandomRead(0, 0, 8).ok());
  EXPECT_TRUE(cluster.ChargeRandomRead(1, 1, 8).IsUnavailable());
  EXPECT_TRUE(cluster.ChargeRandomRead(0, 1, 8).IsUnavailable());
  EXPECT_TRUE(cluster.ChargeMessage(0, 1, 8).IsUnavailable());
  EXPECT_TRUE(cluster.ChargeMessage(1, 2, 8).IsUnavailable());
  EXPECT_TRUE(cluster.ChargeMessage(0, 2, 8).ok());

  cluster.SetNodeOutage(1, false);
  EXPECT_FALSE(cluster.NodeIsDown(1));
  EXPECT_TRUE(cluster.ChargeRandomRead(0, 1, 8).ok());
  EXPECT_TRUE(cluster.ChargeMessage(0, 1, 8).ok());
}

TEST(ClusterFaults, NetworkFaultsFailOnlyRemoteAccess) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  sim::FaultOptions faults;
  faults.fault_rate = 1.0;
  faults.seed = 5;
  cluster.ConfigureNetworkFaults(faults);
  EXPECT_TRUE(cluster.ChargeRandomRead(0, 0, 8).ok());  // local: no network
  Status remote = cluster.ChargeRandomRead(0, 1, 8);
  ASSERT_FALSE(remote.ok());
  EXPECT_TRUE(remote.IsRetryable());

  faults.unavailable_fraction = 1.0;
  cluster.ConfigureNetworkFaults(faults);
  EXPECT_TRUE(cluster.ChargeMessage(0, 1, 8).IsUnavailable());

  cluster.ConfigureNetworkFaults(sim::FaultOptions{});
  EXPECT_TRUE(cluster.ChargeRandomRead(0, 1, 8).ok());
}

// ------------------------------------------------- executor fault handling

/// The rede_test employee/department dataset, with an engine whose retry
/// policy each test chooses.
struct FaultEngineFixture : ::testing::Test {
  static constexpr int kEmployees = 120;
  static constexpr int kDepts = 10;

  FaultEngineFixture() : cluster(sim::ClusterOptions::ForNodes(4)) {}

  void BuildEngine(EngineOptions options) {
    engine = std::make_unique<Engine>(&cluster, options);
    auto emp = std::make_shared<io::PartitionedFile>(
        "emp", std::make_shared<io::HashPartitioner>(8), &cluster);
    for (int i = 0; i < kEmployees; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(emp->Append(key, key,
                           io::Record(StrFormat("%d|emp%d|%d", i, i,
                                                i % kDepts)))
                   .ok());
    }
    emp->Seal();
    LH_CHECK(engine->catalog().Register(emp).ok());

    auto dept = std::make_shared<io::PartitionedFile>(
        "dept", std::make_shared<io::HashPartitioner>(4), &cluster);
    for (int d = 0; d < kDepts; ++d) {
      std::string key = io::EncodeInt64Key(d);
      LH_CHECK(dept->Append(key, key,
                            io::Record(StrFormat("%d|dept%d", d, d)))
                   .ok());
    }
    dept->Seal();
    LH_CHECK(engine->catalog().Register(dept).ok());

    index::IndexSpec spec;
    spec.index_name = "emp.dept.idx";
    spec.base_file = "emp";
    spec.placement = index::IndexPlacement::kGlobal;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) -> Status {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(int64_t dept, ParseInt64(FieldAt(row, '|', 2)));
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      posting.index_key = io::EncodeInt64Key(dept);
      posting.target_partition_key = io::EncodeInt64Key(id);
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_CHECK(engine->BuildStructure(spec, "dept").ok());
  }

  /// Full dept join (all employees), with plain, undecorated Dereferencers —
  /// fault tolerance comes from the executor's retry policy alone.
  StatusOr<Job> DeptJoinJob() {
    LH_ASSIGN_OR_RETURN(auto emp, engine->catalog().Get("emp"));
    LH_ASSIGN_OR_RETURN(auto dept, engine->catalog().Get("dept"));
    LH_ASSIGN_OR_RETURN(auto idx_file, engine->catalog().Get("emp.dept.idx"));
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(idx_file);
    LH_CHECK(idx != nullptr);
    return JobBuilder("dept-join")
        .Initial(Tuple::Range(io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                              io::Pointer::Broadcast(
                                  io::EncodeInt64Key(kDepts - 1))))
        .Add(MakeRangeDereferencer("deref-idx", idx))
        .Add(MakeIndexEntryReferencer("ref-entry"))
        .Add(MakePointDereferencer("deref-emp", emp))
        .Add(MakeKeyReferencer("ref-dept", EncodedInt64FieldInterpreter(2)))
        .Add(MakePointDereferencer("deref-dept", dept))
        .Build();
  }

  static std::multiset<std::string> Canonical(
      const std::vector<Tuple>& tuples) {
    std::multiset<std::string> out;
    for (const auto& t : tuples) {
      std::string row;
      for (const auto& r : t.records) {
        row += r.bytes();
        row += '#';
      }
      out.insert(std::move(row));
    }
    return out;
  }

  static EngineOptions WithRetries(size_t max_retries) {
    EngineOptions options;
    options.smpe.retry.max_retries = max_retries;
    options.smpe.retry.backoff_initial_us = 10;
    options.smpe.retry.backoff_max_us = 100;
    return options;
  }

  sim::Cluster cluster;
  std::unique_ptr<Engine> engine;
};

TEST_F(FaultEngineFixture, ExecutorRetriesTransientFaultsUntilSuccess) {
  BuildEngine(WithRetries(5));
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto clean = engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->tuples.size(), static_cast<size_t>(kEmployees));

  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().InjectFaultEvery(16);
  }
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    auto faulty = engine->ExecuteCollect(*job, mode);
    ASSERT_TRUE(faulty.ok()) << ExecutionModeToString(mode) << ": "
                             << faulty.status().ToString();
    EXPECT_EQ(Canonical(faulty->tuples), Canonical(clean->tuples));
    EXPECT_GT(faulty->metrics.retries, 0u) << ExecutionModeToString(mode);
    EXPECT_GT(faulty->metrics.retry_backoff_us, 0u)
        << ExecutionModeToString(mode);
    EXPECT_EQ(faulty->metrics.tasks_dropped_on_failure, 0u);
  }
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().ClearFault();
  }
}

TEST_F(FaultEngineFixture, SeededFaultRateIsSurvivedWithRetries) {
  BuildEngine(WithRetries(8));
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto clean = engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());

  sim::FaultOptions faults;
  faults.fault_rate = 0.05;
  faults.unavailable_fraction = 0.5;  // mix of kUnavailable and kIoError
  faults.seed = 20260806;
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    cluster.ConfigureDiskFaults(faults);
    auto faulty = engine->ExecuteCollect(*job, mode);
    ASSERT_TRUE(faulty.ok()) << ExecutionModeToString(mode) << ": "
                             << faulty.status().ToString();
    EXPECT_EQ(Canonical(faulty->tuples), Canonical(clean->tuples));
    EXPECT_GT(faulty->metrics.retries, 0u) << ExecutionModeToString(mode);
  }
  cluster.ConfigureDiskFaults(sim::FaultOptions{});
}

TEST_F(FaultEngineFixture, RetryExhaustionSurfacesOriginalErrorWithContext) {
  BuildEngine(WithRetries(3));
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      cluster.node(n).disk().InjectFaultAfter(0);  // permanent failure
    }
    auto result = engine->ExecuteCollect(*job, mode);
    ASSERT_FALSE(result.ok()) << ExecutionModeToString(mode);
    // The original transient code survives retry exhaustion, annotated with
    // the attempt count.
    EXPECT_TRUE(result.status().IsIOError());
    EXPECT_NE(result.status().message().find("attempts"), std::string::npos)
        << result.status().ToString();
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      cluster.node(n).disk().ClearFault();
    }
    // No hung dispatchers: the engine runs the same job again cleanly.
    auto recovered = engine->ExecuteCollect(*job, mode);
    ASSERT_TRUE(recovered.ok()) << ExecutionModeToString(mode);
    EXPECT_EQ(recovered->tuples.size(), static_cast<size_t>(kEmployees));
  }
}

TEST_F(FaultEngineFixture, ExhaustedRetryErrorNamesStageFunctionNodeAndAttempts) {
  BuildEngine(WithRetries(2));
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      cluster.node(n).disk().InjectFaultAfter(0);  // permanent failure
    }
    auto result = engine->ExecuteCollect(*job, mode);
    ASSERT_FALSE(result.ok()) << ExecutionModeToString(mode);
    const std::string message = result.status().message();
    // A post-mortem needs no guessing: the exhausted-retry error names the
    // stage index, the stage function, the node, and how hard we tried, on
    // top of the original device error.
    EXPECT_NE(message.find("stage "), std::string::npos) << message;
    EXPECT_NE(message.find("(deref-"), std::string::npos) << message;
    EXPECT_NE(message.find("on node "), std::string::npos) << message;
    EXPECT_NE(message.find("attempts"), std::string::npos) << message;
    EXPECT_NE(message.find("injected"), std::string::npos) << message;
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      cluster.node(n).disk().ClearFault();
    }
  }
}

TEST_F(FaultEngineFixture, FailsFastWithoutRetriesUnderInjectedFaults) {
  BuildEngine(EngineOptions{});  // retries disabled (the default)
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  sim::FaultOptions faults;
  faults.fault_rate = 0.05;
  faults.seed = 77;
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    cluster.ConfigureDiskFaults(faults);
    auto result = engine->ExecuteCollect(*job, mode);
    ASSERT_FALSE(result.ok()) << ExecutionModeToString(mode);
    EXPECT_TRUE(result.status().IsRetryable())
        << result.status().ToString();  // the injected error, unmasked
  }
  cluster.ConfigureDiskFaults(sim::FaultOptions{});
  auto recovered = engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->tuples.size(), static_cast<size_t>(kEmployees));
}

TEST_F(FaultEngineFixture, NodeOutageFailsJobsCleanlyUntilLifted) {
  BuildEngine(EngineOptions{});
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  cluster.SetNodeOutage(2, true);
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    auto result = engine->ExecuteCollect(*job, mode);
    ASSERT_FALSE(result.ok()) << ExecutionModeToString(mode);
    EXPECT_TRUE(result.status().IsUnavailable())
        << result.status().ToString();
  }
  cluster.SetNodeOutage(2, false);
  auto recovered = engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->tuples.size(), static_cast<size_t>(kEmployees));
}

// ------------------------------------- batching + caching under faults

TEST_F(FaultEngineFixture, RetriedBatchesReReadInsteadOfReAdmitting) {
  BuildEngine(EngineOptions{});  // engine only builds the data + catalog
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto clean = engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());

  SmpeOptions options;
  options.retry.max_retries = 8;
  options.retry.backoff_initial_us = 1;
  options.retry.backoff_max_us = 10;
  options.batch.enabled = true;
  options.batch.max_batch_size = 16;
  options.cache.enabled = true;
  SmpeExecutor executor(&cluster, options);
  ASSERT_NE(executor.record_cache(), nullptr);

  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().InjectFaultEvery(8);
  }
  TupleCollector collector;
  auto result = executor.Execute(*job, collector.AsSink());
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().ClearFault();
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Canonical(collector.TakeTuples()), Canonical(clean->tuples));
  EXPECT_GT(result->metrics.retries, 0u);
  EXPECT_GT(result->metrics.deref_batches, 0u);

  // A failed batch attempt aborted its reservations and invalidated its own
  // partial admissions before the retry re-read the data, so afterwards:
  // nothing is stuck in admission, the LRU books balance, and every resident
  // entry was admitted exactly once (CommitAdmission LH_CHECKs that a
  // reserved key cannot already be resident — a double-admit would abort).
  const RecordCache& cache = *executor.record_cache();
  EXPECT_EQ(cache.inflight(), 0u);
  EXPECT_TRUE(cache.CheckConsistency());
  RecordCacheStats stats = cache.stats();
  EXPECT_EQ(cache.entries(),
            stats.admissions - stats.invalidations - stats.evictions);
  // Nothing beyond the 120 employees + 10 departments is cacheable.
  EXPECT_LE(cache.entries(), static_cast<size_t>(kEmployees + kDepts));

  // No phantom hits: a rerun against the now-warm cache must produce the
  // exact clean result from cached records alone (plus any cold misses).
  TupleCollector warm;
  auto warm_result = executor.Execute(*job, warm.AsSink());
  ASSERT_TRUE(warm_result.ok());
  EXPECT_EQ(Canonical(warm.TakeTuples()), Canonical(clean->tuples));
  EXPECT_GT(warm_result->metrics.cache_hits, 0u);
}

TEST_F(FaultEngineFixture, MidBatchFaultWithoutRetriesLeavesCacheConsistent) {
  BuildEngine(EngineOptions{});
  auto job = DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto clean = engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());

  SmpeOptions options;  // retries disabled: the first fault fails the job
  options.batch.enabled = true;
  options.batch.max_batch_size = 16;
  options.cache.enabled = true;
  SmpeExecutor executor(&cluster, options);

  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().InjectFaultEvery(8);
  }
  TupleCollector sink;
  auto failed = executor.Execute(*job, sink.AsSink());
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().ClearFault();
  }
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsRetryable()) << failed.status().ToString();

  // The faulted batch read was charged before any of its records were
  // admitted, so the cache holds only wholly-read batches: no in-flight
  // reservations, balanced books.
  const RecordCache& cache = *executor.record_cache();
  EXPECT_EQ(cache.inflight(), 0u);
  EXPECT_TRUE(cache.CheckConsistency());

  // Entries that did survive are real: a clean rerun through the same
  // (partially warm) cache reproduces the exact result set.
  TupleCollector recovered;
  auto recovered_result = executor.Execute(*job, recovered.AsSink());
  ASSERT_TRUE(recovered_result.ok()) << recovered_result.status().ToString();
  EXPECT_EQ(Canonical(recovered.TakeTuples()), Canonical(clean->tuples));
  EXPECT_GT(recovered_result->metrics.cache_hits, 0u);
}

// ------------------------------------------------- statistics build retry

TEST(HistogramFaults, BuildRetriesTransientScanFailures) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  auto index = std::make_shared<io::BtreeFile>(
      "idx", std::make_shared<io::HashPartitioner>(4), &cluster);
  for (int i = 0; i < 64; ++i) {
    LH_CHECK(index
                 ->AppendToPartition(static_cast<uint32_t>(i) % 4,
                                     io::EncodeInt64Key(i),
                                     io::Record(std::string("e")))
                 .ok());
  }
  index->Seal();
  auto clean = EquiDepthHistogram::Build(*index, 8);
  ASSERT_TRUE(clean.ok());

  sim::FaultOptions faults;
  faults.fault_rate = 1.0;
  faults.seed = 3;
  cluster.ConfigureDiskFaults(faults);
  // Default policy: fail fast on the injected error.
  EXPECT_TRUE(EquiDepthHistogram::Build(*index, 8).status().IsRetryable());

  faults.fault_rate = 0.4;
  cluster.ConfigureDiskFaults(faults);
  RetryPolicy retry;
  retry.max_retries = 25;
  retry.backoff_initial_us = 1;
  retry.backoff_max_us = 10;
  auto retried = EquiDepthHistogram::Build(*index, 8, retry);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->total_entries(), clean->total_entries());
  EXPECT_EQ(retried->min_key(), clean->min_key());
  EXPECT_EQ(retried->max_key(), clean->max_key());
  cluster.ConfigureDiskFaults(sim::FaultOptions{});
}

}  // namespace
}  // namespace lakeharbor::rede
