#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/string_util.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"
#include "io/placement.h"
#include "io/rebalancer.h"
#include "obs/profile.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {
namespace {

// ---------------------------------------------------- loud rf clamping

TEST(PlacementClamp, RequestedRfIsKeptAlongsideTheEffectiveOne) {
  io::PlacementMap clamped({0, 1}, 3);
  EXPECT_TRUE(clamped.clamped());
  EXPECT_EQ(clamped.replication_factor(), 2u);
  EXPECT_EQ(clamped.requested_replication_factor(), 3u);

  io::PlacementMap exact(4, 2);
  EXPECT_FALSE(exact.clamped());
  EXPECT_EQ(exact.replication_factor(), 2u);
  EXPECT_EQ(exact.requested_replication_factor(), 2u);
}

TEST(PlacementClamp, RebalanceOntoMoreMembersRegainsTheRequestedRf) {
  // A file loaded with rf=3 on 2 nodes serves with rf=2; a new map built
  // from the REQUESTED rf over 3 members restores full replication. This
  // is the contract RebalanceFile relies on.
  io::PlacementMap before({0, 1}, 3);
  io::PlacementMap after({0, 1, 2}, before.requested_replication_factor());
  EXPECT_FALSE(after.clamped());
  EXPECT_EQ(after.replication_factor(), 3u);
}

// ------------------------------------------- placement epoch state machine

TEST(PlacementTransition, PlanMovesOnlyPartitionsWhoseReplicaSetChanged) {
  io::PlacementManager manager(io::PlacementMap(3, 1));
  auto plan = manager.BeginTransition(io::PlacementMap(4, 1), 8);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->partitions_total, 8u);
  // Primaries: old p%3 vs new p%4 — partitions 0..2 stay put.
  EXPECT_EQ(plan->partitions_unchanged, 3u);
  ASSERT_EQ(plan->moves.size(), 5u);
  for (const io::PartitionMove& move : plan->moves) {
    ASSERT_EQ(move.targets.size(), 1u) << move.partition;
    EXPECT_EQ(move.targets[0], move.partition % 4) << move.partition;
    ASSERT_EQ(move.sources.size(), 1u) << move.partition;
    EXPECT_EQ(move.sources[0], move.partition % 3) << move.partition;
  }
  // Unchanged partitions are pre-flipped; moved ones are not.
  EXPECT_TRUE(manager.PartitionMigrated(0));
  EXPECT_FALSE(manager.PartitionMigrated(3));
  EXPECT_TRUE(manager.rebalancing());
}

TEST(PlacementTransition, DoubleBeginAndEarlyCommitAreRejected) {
  io::PlacementManager manager(io::PlacementMap(3, 1));
  ASSERT_TRUE(manager.BeginTransition(io::PlacementMap(4, 1), 8).ok());

  auto again = manager.BeginTransition(io::PlacementMap(4, 1), 8);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsInvalidArgument());

  Status early = manager.CommitTransition(1);
  ASSERT_FALSE(early.ok());
  EXPECT_TRUE(early.IsInvalidArgument());
  EXPECT_NE(early.message().find("not yet drained"), std::string::npos);

  for (uint32_t p = 0; p < 8; ++p) manager.MarkPartitionMigrated(p);
  EXPECT_TRUE(manager.CommitTransition(1).ok());
  EXPECT_FALSE(manager.rebalancing());
  // Committed: only the new map serves.
  EXPECT_EQ(manager.ReplicaCountFor(7), 1u);
  EXPECT_EQ(manager.ReplicaNode(7, 0), 7u % 4);
}

TEST(PlacementTransition, FlipWidensTheReplicaSetWithTheOldTail) {
  // rf=2 over {0,1,2,3} -> rf=2 over {0,1,2,3,4}.
  io::PlacementManager manager(io::PlacementMap(4, 2));
  ASSERT_TRUE(
      manager.BeginTransition(io::PlacementMap({0, 1, 2, 3, 4}, 2), 8).ok());

  // Unflipped partition 3: serve the OLD replicas only ({3, 0}).
  EXPECT_EQ(manager.ReplicaCountFor(3), 2u);
  EXPECT_EQ(manager.ReplicaNode(3, 0), 3u);
  EXPECT_EQ(manager.ReplicaNode(3, 1), 0u);
  EXPECT_EQ(manager.AttributeRead(3, 0), io::ReadEpoch::kOldEpoch);

  manager.MarkPartitionMigrated(3);
  // Flipped: new replicas {3, 4} first, old {3, 0} appended as failover.
  EXPECT_EQ(manager.ReplicaCountFor(3), 4u);
  EXPECT_EQ(manager.ReplicaNode(3, 0), 3u);
  EXPECT_EQ(manager.ReplicaNode(3, 1), 4u);
  EXPECT_EQ(manager.ReplicaNode(3, 2), 3u);
  EXPECT_EQ(manager.ReplicaNode(3, 3), 0u);
  EXPECT_EQ(manager.AttributeRead(3, 0), io::ReadEpoch::kNewEpoch);
  EXPECT_EQ(manager.AttributeRead(3, 1), io::ReadEpoch::kNewEpoch);
  EXPECT_EQ(manager.AttributeRead(3, 3), io::ReadEpoch::kOldEpoch);
  // A replica index from a pre-flip count is folded, never out of range.
  EXPECT_EQ(manager.ReplicaNode(3, 5), manager.ReplicaNode(3, 1));
}

TEST(PlacementTransition, FirstLiveReplicaFailsOverAcrossTheEpochFlip) {
  sim::ClusterOptions cluster_options = sim::ClusterOptions::ForNodes(4);
  cluster_options.max_nodes = 5;
  sim::Cluster cluster(cluster_options);
  ASSERT_TRUE(cluster.AddNode().ok());

  io::PlacementManager manager(io::PlacementMap(4, 2));
  ASSERT_TRUE(
      manager.BeginTransition(io::PlacementMap({0, 1, 2, 3, 4}, 2), 8).ok());
  manager.MarkPartitionMigrated(3);

  // New replicas of partition 3 are {3, 4}; down both. The read falls
  // through to the OLD failover tail {3, 0} -> node 0 at slot 3.
  cluster.SetNodeOutage(3, true);
  cluster.SetNodeOutage(4, true);
  auto live = manager.FirstLiveReplica(cluster, 3);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(*live, 3u);
  EXPECT_EQ(manager.ReplicaNode(3, *live), 0u);
  EXPECT_EQ(manager.AttributeRead(3, *live), io::ReadEpoch::kOldEpoch);

  // Lift the new primary: it is preferred again.
  cluster.SetNodeOutage(3, false);
  live = manager.FirstLiveReplica(cluster, 3);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(*live, 0u);
  EXPECT_EQ(manager.AttributeRead(3, *live), io::ReadEpoch::kNewEpoch);
  cluster.SetNodeOutage(4, false);
}

TEST(PlacementTransition, AbortRestoresTheOldServingMap) {
  io::PlacementManager manager(io::PlacementMap(4, 2));
  ASSERT_TRUE(
      manager.BeginTransition(io::PlacementMap({0, 1, 2, 3, 4}, 2), 8).ok());
  manager.MarkPartitionMigrated(2);
  manager.AbortTransition();
  EXPECT_FALSE(manager.rebalancing());
  EXPECT_EQ(manager.ReplicaCountFor(2), 2u);
  EXPECT_EQ(manager.ReplicaNode(2, 0), 2u);
  EXPECT_EQ(manager.ReplicaNode(2, 1), 3u);
  // Aborting again is a no-op, and a new transition can begin.
  manager.AbortTransition();
  EXPECT_TRUE(
      manager.BeginTransition(io::PlacementMap({0, 1, 2, 3, 4}, 2), 8).ok());
}

TEST(PlacementTransition, BroadcastOwnerHonorsTheStampedFanoutEpoch) {
  io::PlacementManager manager(io::PlacementMap(4, 1));
  // Mid-rebalance: the old primary owns broadcasts, flipped or not.
  ASSERT_TRUE(
      manager.BeginTransition(io::PlacementMap({0, 1, 2, 3, 4}, 1), 8).ok());
  manager.MarkPartitionMigrated(4);
  EXPECT_EQ(manager.BroadcastOwner(4, io::kEpochCurrent), 4u % 4);
  for (uint32_t p = 0; p < 8; ++p) manager.MarkPartitionMigrated(p);
  ASSERT_TRUE(manager.CommitTransition(/*serving_epoch=*/1).ok());

  // A tuple fanned out BEFORE the commit (stamped epoch 0) resolves
  // against the retired map; live tuples resolve against the new one.
  EXPECT_EQ(manager.BroadcastOwner(4, /*fanout_epoch=*/0), 4u % 4);
  EXPECT_EQ(manager.BroadcastOwner(4, io::kEpochCurrent), 4u % 5);
  EXPECT_EQ(manager.BroadcastOwner(4, /*fanout_epoch=*/1), 4u % 5);
}

// -------------------------------------------------- elastic membership

TEST(ElasticCluster, JoinsAreDenseAndBoundedByCapacity) {
  sim::ClusterOptions options = sim::ClusterOptions::ForNodes(2);
  options.max_nodes = 3;
  sim::Cluster cluster(options);

  auto id = cluster.AddNode();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);
  EXPECT_EQ(cluster.num_nodes(), 3u);

  auto full = cluster.AddNode();
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(full.status().IsResourceExhausted()) << full.status().ToString();
}

TEST(ElasticCluster, RemoveNodeValidatesAndExcludesFromActiveSet) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(3));
  EXPECT_TRUE(cluster.RemoveNode(7).IsInvalidArgument());
  ASSERT_TRUE(cluster.RemoveNode(1).ok());
  EXPECT_TRUE(cluster.NodeIsRemoved(1));
  EXPECT_TRUE(cluster.NodeIsDown(1));
  EXPECT_TRUE(cluster.RemoveNode(1).IsInvalidArgument());
  EXPECT_EQ(cluster.num_active_nodes(), 2u);
  EXPECT_EQ(cluster.ActiveNodeIds(), (std::vector<sim::NodeId>{0, 2}));
  // Ids stay dense: the removed slot is never reused.
  EXPECT_EQ(cluster.num_nodes(), 3u);

  ASSERT_TRUE(cluster.RemoveNode(2).ok());
  Status last = cluster.RemoveNode(0);
  ASSERT_FALSE(last.ok());
  EXPECT_TRUE(last.IsInvalidArgument());
  EXPECT_NE(last.message().find("last active node"), std::string::npos);
}

TEST(ElasticCluster, ReplicatedWriteAgainstANodeRemovedMidWrite) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(3));
  ASSERT_TRUE(cluster.ChargeReplicatedWrite(0, {1, 2}, 64).ok());
  const uint64_t node1_before =
      cluster.node(1).disk().stats().bytes_written.load();
  const uint64_t node2_before =
      cluster.node(2).disk().stats().bytes_written.load();

  ASSERT_TRUE(cluster.RemoveNode(2).ok());
  // {1, 2}: replica 1 is charged, then the removed node fails the write.
  Status mid = cluster.ChargeReplicatedWrite(0, {1, 2}, 64);
  ASSERT_FALSE(mid.ok());
  EXPECT_TRUE(mid.IsUnavailable()) << mid.ToString();
  EXPECT_NE(mid.message().find("node 2"), std::string::npos) << mid.ToString();
  EXPECT_EQ(cluster.node(2).disk().stats().bytes_written.load(), node2_before)
      << "a removed node must never be charged";

  // {2, 1}: the removed node fails first; node 1 is not charged either.
  const uint64_t node1_mid = cluster.node(1).disk().stats().bytes_written.load();
  EXPECT_GT(node1_mid, node1_before);
  Status first = cluster.ChargeReplicatedWrite(0, {2, 1}, 64);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.IsUnavailable());
  EXPECT_EQ(cluster.node(1).disk().stats().bytes_written.load(), node1_mid);
}

// ------------------------------------------------------- rate limiting

TEST(RateLimiter, PacesAcquiresAndCancelsPromptly) {
  io::RateLimiter unlimited(0);
  EXPECT_TRUE(unlimited.Acquire(1 << 30, nullptr));

  // 10 MB/s: the second 100 KB chunk must wait ~10 ms for the first.
  io::RateLimiter limiter(10 * 1000 * 1000);
  EXPECT_TRUE(limiter.Acquire(100 * 1000, nullptr));
  StopWatch watch;
  EXPECT_TRUE(limiter.Acquire(100 * 1000, nullptr));
  EXPECT_GE(watch.ElapsedMillis(), 5.0);

  // A cancelled token aborts the wait instead of draining it.
  io::RateLimiter slow(1000);  // 1 KB/s: the next acquire would wait ~100 s
  EXPECT_TRUE(slow.Acquire(100 * 1000, nullptr));
  CancelToken cancel;
  cancel.Cancel(Status::Aborted("stop"));
  StopWatch cancelled_watch;
  EXPECT_FALSE(slow.Acquire(1000, &cancel));
  EXPECT_LT(cancelled_watch.ElapsedMillis(), 1000.0);
}

// --------------------------------------------------- engine lab fixture

/// The failover_test employee/department dataset on an elastic cluster:
/// 120 employees over 8 partitions, 10 departments over 4, and a global
/// B-tree over emp's dept field, all replicated `rf`-way with headroom
/// (max_nodes) for joins.
struct ElasticLab {
  static constexpr int kEmployees = 120;
  static constexpr int kDepts = 10;

  explicit ElasticLab(uint32_t rf, EngineOptions options = {},
                      uint32_t num_nodes = 4, uint32_t max_nodes = 8)
      : cluster(MakeClusterOptions(num_nodes, max_nodes)) {
    engine = std::make_unique<Engine>(&cluster, options);
    emp = std::make_shared<io::PartitionedFile>(
        "emp", std::make_shared<io::HashPartitioner>(8), &cluster);
    emp->SetReplicationFactor(rf);
    for (int i = 0; i < kEmployees; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(emp->Append(key, key,
                           io::Record(StrFormat("%d|emp%d|%d", i, i,
                                                i % kDepts)))
                   .ok());
    }
    emp->Seal();
    LH_CHECK(engine->catalog().Register(emp).ok());

    dept = std::make_shared<io::PartitionedFile>(
        "dept", std::make_shared<io::HashPartitioner>(4), &cluster);
    dept->SetReplicationFactor(rf);
    for (int d = 0; d < kDepts; ++d) {
      std::string key = io::EncodeInt64Key(d);
      LH_CHECK(dept->Append(key, key,
                            io::Record(StrFormat("%d|dept%d", d, d)))
                   .ok());
    }
    dept->Seal();
    LH_CHECK(engine->catalog().Register(dept).ok());

    index::IndexSpec spec;
    spec.index_name = "emp.dept.idx";
    spec.base_file = "emp";
    spec.placement = index::IndexPlacement::kGlobal;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) -> Status {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(int64_t d, ParseInt64(FieldAt(row, '|', 2)));
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      posting.index_key = io::EncodeInt64Key(d);
      posting.target_partition_key = io::EncodeInt64Key(id);
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    auto built = engine->BuildStructure(spec, "dept");
    LH_CHECK(built.ok());
    idx = std::move(built).value();
    LH_CHECK(idx != nullptr);
  }

  static sim::ClusterOptions MakeClusterOptions(uint32_t num_nodes,
                                                uint32_t max_nodes) {
    sim::ClusterOptions options = sim::ClusterOptions::ForNodes(num_nodes);
    options.max_nodes = max_nodes;
    return options;
  }

  StatusOr<Job> DeptJoinJob() {
    return JobBuilder("dept-join")
        .Initial(Tuple::Range(io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                              io::Pointer::Broadcast(
                                  io::EncodeInt64Key(kDepts - 1))))
        .Add(MakeRangeDereferencer("deref-idx", idx))
        .Add(MakeIndexEntryReferencer("ref-entry"))
        .Add(MakePointDereferencer("deref-emp", emp))
        .Add(MakeKeyReferencer("ref-dept", EncodedInt64FieldInterpreter(2)))
        .Add(MakePointDereferencer("deref-dept", dept))
        .Build();
  }

  StatusOr<Job> LookupJob(int employee) {
    return JobBuilder("emp-lookup")
        .Initial(Tuple::Point(io::Pointer::Keyed(io::EncodeInt64Key(employee))))
        .Add(MakePointDereferencer("deref-emp", emp))
        .Build();
  }

  /// Register every file of the lab with `rebalancer`.
  void RegisterAll(io::Rebalancer* rebalancer) {
    rebalancer->RegisterFile(emp.get());
    rebalancer->RegisterFile(dept.get());
    rebalancer->RegisterFile(idx.get());
  }

  /// Bytes a rebalance from this lab's current placements onto `members`
  /// must copy: one PartitionBytes charge per (partition, new replica not
  /// already holding a copy).
  uint64_t ExpectedCopyBytes(const std::vector<sim::NodeId>& members) const {
    uint64_t total = 0;
    for (const io::File* file :
         std::vector<const io::File*>{emp.get(), dept.get(), idx.get()}) {
      const io::PlacementMap old_map = file->placement();
      io::PlacementMap new_map(members,
                               old_map.requested_replication_factor());
      for (uint32_t p = 0; p < file->num_partitions(); ++p) {
        std::vector<sim::NodeId> old_nodes = old_map.ReplicaNodes(p);
        for (sim::NodeId n : new_map.ReplicaNodes(p)) {
          if (std::find(old_nodes.begin(), old_nodes.end(), n) ==
              old_nodes.end()) {
            total += file->PartitionBytes(p);
          }
        }
      }
    }
    return total;
  }

  static std::multiset<std::string> Canonical(
      const std::vector<Tuple>& tuples) {
    std::multiset<std::string> out;
    for (const auto& t : tuples) {
      std::string row;
      for (const auto& r : t.records) {
        row += r.bytes();
        row += '#';
      }
      out.insert(std::move(row));
    }
    return out;
  }

  sim::Cluster cluster;
  std::unique_ptr<Engine> engine;
  std::shared_ptr<io::PartitionedFile> emp;
  std::shared_ptr<io::PartitionedFile> dept;
  std::shared_ptr<io::BtreeFile> idx;
};

/// JobHandle::Wait returns when the result is published, a hair before the
/// worker thread releases its slot — so "zero leaked in-flight work" is
/// asserted as quiescence within a bounded grace period, not instantly.
bool SchedulerDrained(const sched::JobScheduler& scheduler) {
  for (int i = 0; i < 2000; ++i) {
    if (scheduler.queued() == 0 && scheduler.running() == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// Thread-safe tuple sink for scheduler submissions.
struct Collector {
  std::mutex mutex;
  std::vector<Tuple> tuples;
  ResultSink Sink() {
    return [this](const Tuple& t) {
      std::lock_guard<std::mutex> lock(mutex);
      tuples.push_back(t);
    };
  }
};

// ------------------------------------------------ end-to-end rebalancing

TEST(Rebalance, JoinCopiesExactlyTheMovedBytesAndRemapsPlacement) {
  ElasticLab lab(2);
  auto baseline_job = lab.DeptJoinJob();
  ASSERT_TRUE(baseline_job.ok());
  auto baseline = lab.engine->ExecuteCollect(*baseline_job,
                                             ExecutionMode::kSmpe);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->tuples.size(),
            static_cast<size_t>(ElasticLab::kEmployees));

  sched::SchedulerOptions sched_options;
  sched_options.execution_slots = 4;
  sched_options.io_tokens = 8;
  sched::JobScheduler scheduler(&lab.engine->executor(ExecutionMode::kSmpe),
                                sched_options);
  io::RebalanceOptions options;
  options.copy_chunk_bytes = 64;
  io::Rebalancer rebalancer(&lab.cluster, &scheduler, options);
  lab.RegisterAll(&rebalancer);

  const uint64_t expected_bytes =
      lab.ExpectedCopyBytes({0, 1, 2, 3, 4});
  auto joined = rebalancer.AddNodeAndRebalance();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(*joined, 4u);

  // Exactly-once copy accounting: every moved (partition, target) pair is
  // charged its partition bytes once — no duplicates, nothing skipped.
  EXPECT_EQ(rebalancer.progress().bytes_copied.load(), expected_bytes);
  EXPECT_EQ(rebalancer.progress().partitions_done.load(),
            rebalancer.progress().partitions_total.load());
  const io::RebalanceReport& report = rebalancer.last_report();
  EXPECT_GT(report.partitions_moved, 0u);
  EXPECT_EQ(report.bytes_copied, expected_bytes);
  EXPECT_EQ(report.job_resubmissions, 0u);
  EXPECT_GT(report.partition_copy_us.count, 0u);

  // All three files committed: the epoch advanced once per file, the new
  // node serves primaries, and no transition is left open.
  EXPECT_EQ(lab.cluster.placement_epoch(), 3u);
  EXPECT_EQ(lab.emp->placement().num_nodes(), 5u);
  EXPECT_FALSE(lab.emp->placement_manager().rebalancing());
  bool node4_serves = false;
  for (uint32_t p = 0; p < lab.emp->num_partitions(); ++p) {
    if (lab.emp->NodeOfPartition(p) == 4u) node4_serves = true;
  }
  EXPECT_TRUE(node4_serves);

  // Zero leaked in-flight work, and the migration flow shows up (drained)
  // in the scheduler's per-(tenant, class) backlog stats.
  EXPECT_TRUE(SchedulerDrained(scheduler));
  bool migration_flow_seen = false;
  for (const auto& flow : scheduler.stats().flows) {
    if (flow.tenant == options.tenant &&
        flow.job_class == sched::JobClass::kMigration) {
      migration_flow_seen = true;
      EXPECT_EQ(flow.queue_depth, 0u);
    }
  }
  EXPECT_TRUE(migration_flow_seen);

  // The query result is bit-identical on the rebalanced cluster.
  auto after_job = lab.DeptJoinJob();
  ASSERT_TRUE(after_job.ok());
  auto after = lab.engine->ExecuteCollect(*after_job, ExecutionMode::kSmpe);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(ElasticLab::Canonical(after->tuples),
            ElasticLab::Canonical(baseline->tuples));
}

TEST(Rebalance, ChaosJoinSurvivesFaultsAndAMidMigrationOutage) {
  // The acceptance scenario: disk faults injected at a nonzero rate, one
  // node outaged in the middle of the migration — a node that is both a
  // migration SOURCE (old replica of moving partitions) and the failover
  // TARGET of foreground reads — with foreground jobs overlapping the
  // whole rebalance. Results must stay bit-identical to the static
  // baseline, every overlapped job's profile must reconcile, and no
  // in-flight work may leak.
  EngineOptions engine_options;
  engine_options.smpe.trace_sample_n = 1;  // profile every job
  engine_options.smpe.retry.max_retries = 6;
  engine_options.smpe.retry.backoff_initial_us = 50;
  engine_options.smpe.retry.backoff_max_us = 2000;
  ElasticLab lab(2, engine_options);

  sched::SchedulerOptions sched_options;
  sched_options.execution_slots = 4;
  sched::JobScheduler scheduler(&lab.engine->executor(ExecutionMode::kSmpe),
                                sched_options);

  // Static baseline, before any fault or membership change.
  auto join_job = lab.DeptJoinJob();
  ASSERT_TRUE(join_job.ok());
  Collector baseline_sink;
  sched::JobSpec baseline_spec;
  baseline_spec.tenant = "analytics";
  baseline_spec.job_class = sched::JobClass::kAnalyticalScan;
  baseline_spec.sink = baseline_sink.Sink();
  auto baseline = scheduler.Run(*join_job, std::move(baseline_spec));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::multiset<std::string> expected =
      ElasticLab::Canonical(baseline_sink.tuples);
  ASSERT_EQ(expected.size(), static_cast<size_t>(ElasticLab::kEmployees));

  // Inject transient faults everywhere (nonzero rate, both error kinds).
  sim::FaultOptions faults;
  faults.fault_rate = 0.02;
  faults.unavailable_fraction = 0.5;
  faults.seed = 77;
  lab.cluster.ConfigureDiskFaults(faults);

  io::RebalanceOptions options;
  options.copy_chunk_bytes = 128;
  options.max_concurrent_migrations = 2;
  // Slow the copies down so foreground jobs and the outage genuinely
  // overlap the migration window.
  options.throttle_bytes_per_sec = 96 * 1024;
  io::Rebalancer rebalancer(&lab.cluster, &scheduler, options);
  lab.RegisterAll(&rebalancer);

  std::atomic<bool> rebalance_done{false};
  StatusOr<sim::NodeId> join_result = Status::Internal("not run");
  std::thread rebalance_thread([&] {
    join_result = rebalancer.AddNodeAndRebalance();
    rebalance_done.store(true);
  });

  // Wait for the first chunk to land, then strike node 1: an old replica
  // of every partition with p % 4 in {0, 1} — a live migration source —
  // and simultaneously the replica foreground reads fail over to.
  while (rebalancer.progress().chunks_copied.load() == 0 &&
         !rebalance_done.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  lab.cluster.SetNodeOutage(1, true);

  // Foreground traffic while the node is down and copies are in flight.
  struct Foreground {
    std::unique_ptr<Job> job;
    std::unique_ptr<Collector> sink;
    sched::JobHandlePtr handle;
    bool is_lookup = false;
    int employee = 0;
  };
  std::vector<Foreground> foreground;
  auto submit_join = [&]() {
    Foreground fg;
    auto job = lab.DeptJoinJob();
    ASSERT_TRUE(job.ok());
    fg.job = std::make_unique<Job>(std::move(*job));
    fg.sink = std::make_unique<Collector>();
    sched::JobSpec spec;
    spec.tenant = "analytics";
    spec.job_class = sched::JobClass::kAnalyticalScan;
    spec.sink = fg.sink->Sink();
    auto handle = scheduler.Submit(*fg.job, std::move(spec));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    fg.handle = std::move(*handle);
    foreground.push_back(std::move(fg));
  };
  auto submit_lookup = [&](int employee) {
    Foreground fg;
    auto job = lab.LookupJob(employee);
    ASSERT_TRUE(job.ok());
    fg.job = std::make_unique<Job>(std::move(*job));
    fg.sink = std::make_unique<Collector>();
    fg.is_lookup = true;
    fg.employee = employee;
    sched::JobSpec spec;
    spec.tenant = "serving";
    spec.job_class = sched::JobClass::kPointLookup;
    spec.sink = fg.sink->Sink();
    auto handle = scheduler.Submit(*fg.job, std::move(spec));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    fg.handle = std::move(*handle);
    foreground.push_back(std::move(fg));
  };

  submit_join();
  submit_lookup(17);
  submit_lookup(42);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lab.cluster.SetNodeOutage(1, false);
  submit_join();
  submit_lookup(101);

  rebalance_thread.join();
  ASSERT_TRUE(join_result.ok()) << join_result.status().ToString();
  EXPECT_EQ(*join_result, 4u);

  // Every overlapped foreground job: correct, bit-identical, reconciled.
  for (Foreground& fg : foreground) {
    auto result = fg.handle->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (fg.is_lookup) {
      ASSERT_EQ(fg.sink->tuples.size(), 1u);
      ASSERT_EQ(fg.sink->tuples[0].records.size(), 1u);
      EXPECT_EQ(fg.sink->tuples[0].records[0].bytes(),
                StrFormat("%d|emp%d|%d", fg.employee, fg.employee,
                          fg.employee % ElasticLab::kDepts));
    } else {
      EXPECT_EQ(ElasticLab::Canonical(fg.sink->tuples), expected);
    }
    obs::JobProfile profile = ProfileOf(*result);
    EXPECT_TRUE(profile.Reconciles())
        << (profile.warnings().empty() ? "" : profile.warnings().front());
  }

  // The rebalance finished every move despite faults and the outage.
  EXPECT_EQ(rebalancer.progress().partitions_done.load(),
            rebalancer.progress().partitions_total.load());
  EXPECT_FALSE(lab.emp->placement_manager().rebalancing());
  EXPECT_FALSE(lab.dept->placement_manager().rebalancing());
  EXPECT_FALSE(lab.idx->placement_manager().rebalancing());
  EXPECT_TRUE(SchedulerDrained(scheduler));

  // Reads during the transition window were attributed to an epoch.
  const uint64_t epoch_reads = lab.emp->access_stats().old_epoch_reads.load() +
                               lab.emp->access_stats().new_epoch_reads.load() +
                               lab.idx->access_stats().old_epoch_reads.load() +
                               lab.idx->access_stats().new_epoch_reads.load();
  EXPECT_GT(epoch_reads, 0u);

  // And the lifted, faulty, 5-node cluster still answers identically.
  lab.cluster.ConfigureDiskFaults(sim::FaultOptions{});
  Collector after_sink;
  sched::JobSpec after_spec;
  after_spec.tenant = "analytics";
  after_spec.job_class = sched::JobClass::kAnalyticalScan;
  after_spec.sink = after_sink.Sink();
  auto after = scheduler.Run(*join_job, std::move(after_spec));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(ElasticLab::Canonical(after_sink.tuples), expected);
}

TEST(Rebalance, JoinThenDrainFirstRemovalRoundTrips) {
  ElasticLab lab(2);
  auto job = lab.DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto baseline = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(baseline.ok());

  sched::JobScheduler scheduler(&lab.engine->executor(ExecutionMode::kSmpe),
                                sched::SchedulerOptions{});
  io::RebalanceOptions options;
  options.copy_chunk_bytes = 64;
  io::Rebalancer rebalancer(&lab.cluster, &scheduler, options);
  lab.RegisterAll(&rebalancer);

  auto joined = rebalancer.AddNodeAndRebalance();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ASSERT_EQ(*joined, 4u);
  EXPECT_EQ(lab.emp->placement().num_nodes(), 5u);

  // Drain-first decommission of the node we just joined: its partitions
  // move away (it serves as a copy source throughout), THEN it leaves.
  Status removed = rebalancer.RemoveNodeAndRebalance(4);
  ASSERT_TRUE(removed.ok()) << removed.ToString();
  EXPECT_TRUE(lab.cluster.NodeIsRemoved(4));
  EXPECT_EQ(lab.cluster.ActiveNodeIds(),
            (std::vector<sim::NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(lab.emp->placement().num_nodes(), 4u);
  for (uint32_t p = 0; p < lab.emp->num_partitions(); ++p) {
    EXPECT_NE(lab.emp->NodeOfPartition(p), 4u) << p;
  }

  // Queries on the round-tripped cluster match the static baseline.
  auto after = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(ElasticLab::Canonical(after->tuples),
            ElasticLab::Canonical(baseline->tuples));

  // Invalid drains are rejected up front.
  EXPECT_TRUE(
      rebalancer.RemoveNodeAndRebalance(4).IsInvalidArgument());  // removed
  EXPECT_TRUE(
      rebalancer.RemoveNodeAndRebalance(9).IsInvalidArgument());  // unknown
}

TEST(Rebalance, RefusesToDrainTheLastActiveNode) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(1));
  SmpeOptions smpe;
  smpe.threads_per_node = 2;
  SmpeExecutor executor(&cluster, smpe);
  sched::JobScheduler scheduler(&executor, sched::SchedulerOptions{});
  io::Rebalancer rebalancer(&cluster, &scheduler, io::RebalanceOptions{});
  Status refused = rebalancer.RemoveNodeAndRebalance(0);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.IsInvalidArgument()) << refused.ToString();
}

TEST(Rebalance, OutageOfBothMigrationSourcesFailsOverThenResumes) {
  // Down the only live source mid-copy: chunks retry kUnavailable until
  // the outage lifts, and the partition resumes from its recorded offset
  // instead of re-copying — bytes_copied stays exact.
  ElasticLab lab(1);  // rf=1: each moving partition has ONE source
  sched::JobScheduler scheduler(&lab.engine->executor(ExecutionMode::kSmpe),
                                sched::SchedulerOptions{});
  io::RebalanceOptions options;
  options.copy_chunk_bytes = 32;           // many chunks per partition
  options.throttle_bytes_per_sec = 48 * 1024;  // keep the window open
  options.retry.max_retries = 100;         // outlive the outage window
  options.retry.backoff_initial_us = 500;
  options.retry.backoff_max_us = 5000;
  io::Rebalancer rebalancer(&lab.cluster, &scheduler, options);
  lab.RegisterAll(&rebalancer);

  const uint64_t expected_bytes =
      lab.ExpectedCopyBytes({0, 1, 2, 3, 4});
  std::atomic<bool> rebalance_done{false};
  StatusOr<sim::NodeId> join_result = Status::Internal("not run");
  std::thread rebalance_thread([&] {
    join_result = rebalancer.AddNodeAndRebalance();
    rebalance_done.store(true);
  });
  while (rebalancer.progress().chunks_copied.load() == 0 &&
         !rebalance_done.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  lab.cluster.SetNodeOutage(0, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  lab.cluster.SetNodeOutage(0, false);
  rebalance_thread.join();

  ASSERT_TRUE(join_result.ok()) << join_result.status().ToString();
  EXPECT_EQ(rebalancer.progress().bytes_copied.load(), expected_bytes);
  EXPECT_EQ(rebalancer.progress().partitions_done.load(),
            rebalancer.progress().partitions_total.load());
  EXPECT_TRUE(SchedulerDrained(scheduler));
}

}  // namespace
}  // namespace lakeharbor::rede
