#include <gtest/gtest.h>

#include "rede/adaptive.h"

namespace lakeharbor::rede {
namespace {

struct AdaptiveFixture : ::testing::Test {
  AdaptiveFixture() {
    sim::ClusterOptions options;
    options.num_nodes = 4;
    options.disk.io_slots = 10;
    options.disk.random_read_latency_us = 1000;                // 1 ms
    options.disk.scan_bandwidth_bytes_per_sec = 1000 * 1000;   // 1 MB/s
    cluster = std::make_unique<sim::Cluster>(options);
  }

  /// Candidate: 4 MB base, 100k records -> build = 4 MB scan + 4 MB
  /// postings over 4 nodes at 1 MB/s = 1000 + 1000 = 2000 ms.
  StructureCostInputs Inputs() {
    StructureCostInputs inputs;
    inputs.base_bytes = 4 * 1000 * 1000;
    inputs.base_records = 100000;
    inputs.posting_bytes = 40;
    return inputs;
  }

  /// Selective query: 100 matches * 2 ios * 1 ms / 40 = 5 ms structure vs
  /// 4 MB scan / 4 MB-per-s = 1000 ms -> saving 995 ms.
  AccessObservation SelectiveQuery() {
    AccessObservation obs;
    obs.base_file = "orders";
    obs.attribute = "date";
    obs.matches = 100;
    obs.ios_per_match = 2;
    obs.scan_bytes = 4 * 1000 * 1000;
    return obs;
  }

  /// Unselective query: structure plan loses, so it contributes nothing.
  AccessObservation FullScanQuery() {
    AccessObservation obs = SelectiveQuery();
    obs.matches = 1000000;
    return obs;
  }

  StructureRecommendation Only(const AdaptiveStructureManager& manager) {
    auto recs = manager.Recommend();
    LH_CHECK(recs.size() == 1);
    return recs[0];
  }

  std::unique_ptr<sim::Cluster> cluster;
};

TEST_F(AdaptiveFixture, NoObservationsMeansKeepUnbuilt) {
  AdaptiveStructureManager manager(cluster.get());
  manager.DeclareCandidate("orders", "date", Inputs(), false);
  auto rec = Only(manager);
  EXPECT_EQ(rec.action, StructureRecommendation::Action::kKeep);
  EXPECT_EQ(rec.observations, 0u);
  EXPECT_DOUBLE_EQ(rec.window_saving_ms, 0.0);
  EXPECT_NEAR(rec.build_cost_ms, 2000.0, 1.0);
}

TEST_F(AdaptiveFixture, SelectiveWorkloadTriggersBuild) {
  AdaptiveStructureManager manager(cluster.get());
  manager.DeclareCandidate("orders", "date", Inputs(), false);
  // Two selective queries save ~1990 ms < 2000 ms build: not yet.
  manager.Observe(SelectiveQuery());
  manager.Observe(SelectiveQuery());
  EXPECT_EQ(Only(manager).action, StructureRecommendation::Action::kKeep);
  // A third tips the balance.
  manager.Observe(SelectiveQuery());
  auto rec = Only(manager);
  EXPECT_EQ(rec.action, StructureRecommendation::Action::kBuild);
  EXPECT_GT(rec.window_saving_ms, rec.build_cost_ms);
}

TEST_F(AdaptiveFixture, UnselectiveWorkloadNeverBuilds) {
  AdaptiveStructureManager manager(cluster.get());
  manager.DeclareCandidate("orders", "date", Inputs(), false);
  for (int i = 0; i < 50; ++i) manager.Observe(FullScanQuery());
  auto rec = Only(manager);
  EXPECT_EQ(rec.action, StructureRecommendation::Action::kKeep);
  EXPECT_DOUBLE_EQ(rec.window_saving_ms, 0.0);
}

TEST_F(AdaptiveFixture, WorkloadShiftRecommendsDrop) {
  AdaptiveOptions options;
  options.window = 10;
  AdaptiveStructureManager manager(cluster.get(), options);
  manager.DeclareCandidate("orders", "date", Inputs(), true);
  // Phase 1: selective workload — keep the structure.
  for (int i = 0; i < 10; ++i) manager.Observe(SelectiveQuery());
  EXPECT_EQ(Only(manager).action, StructureRecommendation::Action::kKeep);
  // Phase 2: the workload shifts to unselective queries; once the window
  // slides past the old phase, the structure stops paying for itself.
  for (int i = 0; i < 10; ++i) manager.Observe(FullScanQuery());
  EXPECT_EQ(Only(manager).action, StructureRecommendation::Action::kDrop);
}

TEST_F(AdaptiveFixture, SlidingWindowBoundsMemoryAndInfluence) {
  AdaptiveOptions options;
  options.window = 4;
  AdaptiveStructureManager manager(cluster.get(), options);
  manager.DeclareCandidate("orders", "date", Inputs(), false);
  for (int i = 0; i < 100; ++i) manager.Observe(SelectiveQuery());
  auto rec = Only(manager);
  EXPECT_EQ(rec.observations, 4u);  // only the window counts
  // 4 * 995 ms saving ~ 3980 > 2000 -> still a build.
  EXPECT_EQ(rec.action, StructureRecommendation::Action::kBuild);
}

TEST_F(AdaptiveFixture, UndeclaredAttributesAreIgnored) {
  AdaptiveStructureManager manager(cluster.get());
  manager.DeclareCandidate("orders", "date", Inputs(), false);
  AccessObservation other = SelectiveQuery();
  other.attribute = "priority";
  for (int i = 0; i < 20; ++i) manager.Observe(other);
  auto rec = Only(manager);
  EXPECT_EQ(rec.observations, 0u);
  EXPECT_TRUE(manager.SetBuilt("orders", "priority", true).IsNotFound());
}

TEST_F(AdaptiveFixture, SetBuiltFlipsTheDecisionSide) {
  AdaptiveStructureManager manager(cluster.get());
  manager.DeclareCandidate("orders", "date", Inputs(), false);
  for (int i = 0; i < 10; ++i) manager.Observe(SelectiveQuery());
  EXPECT_EQ(Only(manager).action, StructureRecommendation::Action::kBuild);
  ASSERT_TRUE(manager.SetBuilt("orders", "date", true).ok());
  EXPECT_EQ(Only(manager).action, StructureRecommendation::Action::kKeep);
}

}  // namespace
}  // namespace lakeharbor::rede
