// End-to-end integration tests: randomized datasets driven through every
// execution path, cross-checked against in-memory oracles. These are the
// repository's strongest correctness evidence — if the engines, structures,
// partitioners, codecs, or executors disagree anywhere, one of these
// parameterized instances fails.

#include <gtest/gtest.h>

#include "baseline/scan_engine.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/part_join.h"
#include "tpch/q5.h"

namespace lakeharbor {
namespace {

struct Scenario {
  uint64_t seed;
  uint32_t nodes;
  uint32_t partitions_per_node;
  size_t btree_fanout;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.nodes) + "_p" +
         std::to_string(info.param.partitions_per_node) + "_f" +
         std::to_string(info.param.btree_fanout);
}

class TpchIntegration : public ::testing::TestWithParam<Scenario> {};

TEST_P(TpchIntegration, FullQ5PipelineAgreesEverywhere) {
  const Scenario& s = GetParam();
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(s.nodes));
  rede::Engine engine(&cluster);

  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  config.seed = s.seed;
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.partitions = s.nodes * s.partitions_per_node;
  load.btree_fanout = s.btree_fanout;
  load.build_part_join_indexes = true;
  ASSERT_TRUE(tpch::LoadIntoLake(engine, data, load).ok());

  for (double selectivity : {0.01, 0.3}) {
    tpch::Q5Params params = tpch::MakeQ5Params(selectivity);
    auto oracle = tpch::Q5Oracle(data, params);
    ASSERT_TRUE(oracle.ok());

    auto job = tpch::BuildQ5RedeJob(engine, params);
    ASSERT_TRUE(job.ok());
    for (auto mode :
         {rede::ExecutionMode::kSmpe, rede::ExecutionMode::kPartitioned}) {
      auto result = engine.ExecuteCollect(*job, mode);
      ASSERT_TRUE(result.ok());
      auto summary = tpch::SummarizeRedeOutput(result->tuples);
      ASSERT_TRUE(summary.ok());
      EXPECT_EQ(*summary, *oracle)
          << "sel=" << selectivity << " mode="
          << rede::ExecutionModeToString(mode);
    }

    baseline::ScanEngine scan_engine(&cluster);
    auto rows = tpch::RunQ5Baseline(scan_engine, engine.catalog(), params);
    ASSERT_TRUE(rows.ok());
    auto summary = tpch::SummarizeBaselineOutput(*rows);
    ASSERT_TRUE(summary.ok());
    EXPECT_EQ(*summary, *oracle) << "baseline sel=" << selectivity;
  }

  // The Fig 3/4 join on the same lake.
  tpch::PartJoinParams part_params;
  part_params.price_hi = 902.0;
  auto oracle = tpch::PartJoinOracle(data, part_params);
  for (bool broadcast : {false, true}) {
    part_params.broadcast = broadcast;
    auto job = tpch::BuildPartLineitemJoinJob(engine, part_params);
    ASSERT_TRUE(job.ok());
    auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
    ASSERT_TRUE(result.ok());
    auto summary = tpch::SummarizePartJoinOutput(result->tuples);
    ASSERT_TRUE(summary.ok());
    EXPECT_EQ(*summary, oracle) << "broadcast=" << broadcast;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TpchIntegration,
    ::testing::Values(Scenario{1, 2, 1, 8}, Scenario{2, 3, 2, 64},
                      Scenario{3, 8, 2, 16}, Scenario{4, 1, 4, 64},
                      Scenario{5, 5, 3, 4}),
    ScenarioName);

class ClaimsIntegration : public ::testing::TestWithParam<Scenario> {};

TEST_P(ClaimsIntegration, BothDeploymentsAgreeOnRandomCohorts) {
  const Scenario& s = GetParam();
  claims::ClaimsConfig config;
  config.num_claims = 1500;
  config.seed = s.seed * 7919;
  claims::ClaimsData data = claims::GenerateClaims(config);

  sim::Cluster lake_cluster(sim::ClusterOptions::ForNodes(s.nodes));
  rede::Engine lake(&lake_cluster);
  claims::ClaimsLoadOptions load;
  load.partitions = s.nodes * s.partitions_per_node;
  load.btree_fanout = s.btree_fanout;
  ASSERT_TRUE(claims::LoadRawClaims(lake, data, load).ok());

  sim::Cluster wh_cluster(sim::ClusterOptions::ForNodes(s.nodes));
  rede::Engine warehouse(&wh_cluster);
  ASSERT_TRUE(claims::LoadWarehouseClaims(warehouse, data, load).ok());

  for (const claims::ClaimsQuery& query : claims::AllQueries()) {
    claims::ClaimsAnswer oracle = claims::ClaimsOracle(data, query);

    auto raw_job = claims::BuildRawClaimsJob(lake, query);
    ASSERT_TRUE(raw_job.ok());
    auto raw = lake.ExecuteCollect(*raw_job, rede::ExecutionMode::kSmpe);
    ASSERT_TRUE(raw.ok());
    auto raw_answer = claims::SummarizeRawOutput(raw->tuples);
    ASSERT_TRUE(raw_answer.ok());
    EXPECT_EQ(*raw_answer, oracle) << query.name;

    auto wh_job = claims::BuildWarehouseClaimsJob(warehouse, query);
    ASSERT_TRUE(wh_job.ok());
    auto wh = warehouse.ExecuteCollect(*wh_job, rede::ExecutionMode::kSmpe);
    ASSERT_TRUE(wh.ok());
    auto wh_answer = claims::SummarizeWarehouseOutput(wh->tuples);
    ASSERT_TRUE(wh_answer.ok());
    EXPECT_EQ(*wh_answer, oracle) << query.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ClaimsIntegration,
                         ::testing::Values(Scenario{11, 2, 1, 8},
                                           Scenario{12, 4, 2, 64},
                                           Scenario{13, 6, 1, 16}),
                         ScenarioName);

TEST(ConcurrentExecution, ParallelJobsOnOneEngineAreIsolated) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  rede::Engine engine(&cluster);
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  tpch::TpchData data = tpch::Generate(config);
  ASSERT_TRUE(tpch::LoadIntoLake(engine, data).ok());

  tpch::Q5Params params = tpch::MakeQ5Params(0.2);
  auto oracle = tpch::Q5Oracle(data, params);
  ASSERT_TRUE(oracle.ok());
  auto job = tpch::BuildQ5RedeJob(engine, params);
  ASSERT_TRUE(job.ok());

  constexpr int kConcurrent = 4;
  std::vector<std::thread> threads;
  std::vector<Status> statuses(kConcurrent);
  std::vector<tpch::Q5Summary> summaries(kConcurrent);
  for (int i = 0; i < kConcurrent; ++i) {
    threads.emplace_back([&, i] {
      auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
      if (!result.ok()) {
        statuses[i] = result.status();
        return;
      }
      auto summary = tpch::SummarizeRedeOutput(result->tuples);
      if (!summary.ok()) {
        statuses[i] = summary.status();
        return;
      }
      summaries[i] = *summary;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kConcurrent; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    EXPECT_EQ(summaries[i], *oracle) << "concurrent job " << i;
  }
}

}  // namespace
}  // namespace lakeharbor
