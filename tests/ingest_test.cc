#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "claims/format.h"
#include "claims/generator.h"
#include "common/string_util.h"
#include "io/ingest.h"
#include "io/key_codec.h"

namespace lakeharbor::io {
namespace {

struct IngestFixture : ::testing::Test {
  IngestFixture() : cluster(sim::ClusterOptions::ForNodes(2)) {
    dir = std::filesystem::temp_directory_path() /
          ("lh_ingest_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir);
  }
  ~IngestFixture() override {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::shared_ptr<PartitionedFile> MakeFile(const char* name) {
    return std::make_shared<PartitionedFile>(
        name, std::make_shared<HashPartitioner>(4), &cluster);
  }

  static KeyExtractor FirstFieldKey() {
    return [](const std::string& row) -> StatusOr<IngestKeys> {
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      std::string key = EncodeInt64Key(id);
      return IngestKeys{key, key};
    };
  }

  sim::Cluster cluster;
  std::filesystem::path dir;
};

TEST_F(IngestFixture, DelimitedRoundTrip) {
  std::vector<std::string> rows;
  for (int i = 0; i < 50; ++i) rows.push_back(StrFormat("%d|value-%d", i, i));
  std::string path = (dir / "table.tbl").string();
  ASSERT_TRUE(WriteLines(path, rows).ok());

  auto file = MakeFile("t");
  auto count = IngestDelimitedFile(path, file.get(), FirstFieldKey());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 50u);
  file->Seal();
  std::vector<Record> out;
  ASSERT_TRUE(file->Get(0, Pointer::Keyed(EncodeInt64Key(17)), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bytes(), "17|value-17");
}

TEST_F(IngestFixture, DelimitedSkipsEmptyLines) {
  std::string path = (dir / "gaps.tbl").string();
  ASSERT_TRUE(WriteLines(path, {"1|a", "", "2|b", ""}).ok());
  auto file = MakeFile("t");
  auto count = IngestDelimitedFile(path, file.get(), FirstFieldKey());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
}

TEST_F(IngestFixture, MissingFileIsIOError) {
  auto file = MakeFile("t");
  auto count = IngestDelimitedFile((dir / "nope.tbl").string(), file.get(),
                                   FirstFieldKey());
  EXPECT_TRUE(count.status().IsIOError());
}

TEST_F(IngestFixture, BadRecordSurfacesExtractorError) {
  std::string path = (dir / "bad.tbl").string();
  ASSERT_TRUE(WriteLines(path, {"1|ok", "oops|bad"}).ok());
  auto file = MakeFile("t");
  auto count = IngestDelimitedFile(path, file.get(), FirstFieldKey());
  EXPECT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsInvalidArgument());
}

TEST_F(IngestFixture, BlockedClaimsRoundTrip) {
  // Real multi-line claims written as a blocked file and ingested back.
  claims::ClaimsConfig config;
  config.num_claims = 40;
  claims::ClaimsData data = claims::GenerateClaims(config);
  std::string path = (dir / "claims.txt").string();
  ASSERT_TRUE(WriteBlocks(path, data.raw).ok());

  auto file = MakeFile("claims");
  auto claim_key = [](const std::string& block) -> StatusOr<IngestKeys> {
    LH_ASSIGN_OR_RETURN(int64_t id,
                        claims::ExtractClaimId(Record(std::string(block))));
    std::string key = EncodeInt64Key(id);
    return IngestKeys{key, key};
  };
  auto count = IngestBlockedFile(path, file.get(), claim_key);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 40u);
  file->Seal();

  // Every ingested claim parses and matches the generated struct.
  for (const claims::Claim& original : data.parsed) {
    std::vector<Record> out;
    std::string key = EncodeInt64Key(original.ir.claim_id);
    ASSERT_TRUE(file->Get(0, Pointer::Keyed(key), &out).ok());
    ASSERT_EQ(out.size(), 1u);
    auto parsed = claims::ParseClaim(out[0]);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->total_expense, original.total_expense);
    EXPECT_EQ(parsed->diseases.size(), original.diseases.size());
    EXPECT_EQ(parsed->medicines.size(), original.medicines.size());
  }
}

TEST_F(IngestFixture, BlockedFileWithoutTrailingBlankLine) {
  std::string path = (dir / "tail.txt").string();
  {
    std::ofstream out(path);
    out << "IR,1,2,PW\nRE,5,OUT,30,M\nHO,100\n\nIR,2,3,DPC\nRE,6,IN,40,F\nHO,200\n";
  }
  auto file = MakeFile("claims");
  auto claim_key = [](const std::string& block) -> StatusOr<IngestKeys> {
    LH_ASSIGN_OR_RETURN(int64_t id,
                        claims::ExtractClaimId(Record(std::string(block))));
    std::string key = EncodeInt64Key(id);
    return IngestKeys{key, key};
  };
  auto count = IngestBlockedFile(path, file.get(), claim_key);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
}

}  // namespace
}  // namespace lakeharbor::io
