#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/string_util.h"

namespace lakeharbor {
namespace {

TEST(Slice, BasicViews) {
  std::string owner = "hello world";
  Slice s(owner);
  EXPECT_EQ(s.size(), 11u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[4], 'o');
  EXPECT_EQ(s.ToString(), owner);
  EXPECT_TRUE(Slice().empty());
}

TEST(Slice, PrefixAndCompare) {
  Slice s("abcdef");
  EXPECT_TRUE(s.StartsWith("abc"));
  EXPECT_FALSE(s.StartsWith("abd"));
  EXPECT_TRUE(s.StartsWith(""));
  s.RemovePrefix(3);
  EXPECT_EQ(s.ToString(), "def");
  EXPECT_EQ(Slice("a").Compare("b") < 0, true);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(StatusCodeNames, AllStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(Logging, LevelGate) {
  LogLevel before = Logger::GetLevel();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kError);
  // These compile to no-ops below the gate; just exercise the macros.
  LH_LOG_DEBUG << "invisible " << 42;
  LH_LOG_INFO << "invisible too";
  Logger::SetLevel(before);
}

TEST(Clock, StopWatchAdvances) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.ElapsedMicros(), 4000);
  EXPECT_GE(watch.ElapsedMillis(), 4.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), 5.0);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(Status, WithContextPrefixesMessage) {
  Status s = Status::IOError("disk on fire").WithContext("reading part");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "reading part: disk on fire");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(Status, CopyIsCheap) {
  Status a = Status::Corruption("bad bytes");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_TRUE(b.IsCorruption());
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string got = std::move(v).value();
  EXPECT_EQ(got, "payload");
}

TEST(Hash, Deterministic) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(HashInt64(1), HashInt64(2));
}

TEST(Random, DeterministicStream) {
  Random a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  // Different seeds should diverge quickly.
  bool diverged = false;
  Random a2(7);
  for (int i = 0; i < 10; ++i) diverged |= (a2.Next() != c.Next());
  EXPECT_TRUE(diverged);
}

TEST(Random, UniformRangeInclusive) {
  Random rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, BernoulliRoughlyCalibrated) {
  Random rng(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Random, NextStringLengthAndCharset) {
  Random rng(4);
  std::string s = rng.NextString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) << c;
  }
  EXPECT_TRUE(rng.NextString(0).empty());
}

TEST(Random, SkewedFavorsLowRanks) {
  Random rng(11);
  constexpr uint64_t kDomain = 1000;
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Skewed(kDomain);
    ASSERT_LT(v, kDomain);
    if (v < kDomain / 10) ++low;
    if (v >= kDomain - kDomain / 10) ++high;
  }
  // The first decile must be hit far more often than the last.
  EXPECT_GT(low, high * 5);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, FieldAt) {
  EXPECT_EQ(FieldAt("a|bb|ccc", '|', 0), "a");
  EXPECT_EQ(FieldAt("a|bb|ccc", '|', 1), "bb");
  EXPECT_EQ(FieldAt("a|bb|ccc", '|', 2), "ccc");
  EXPECT_EQ(FieldAt("a|bb|ccc", '|', 3), "");
  EXPECT_EQ(FieldCount("a|bb|ccc", '|'), 3u);
  EXPECT_EQ(FieldCount("", '|'), 1u);
}

TEST(StringUtil, ParseInt64) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-9"), -9);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_FALSE(ParseDouble("1.5.3").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%05d", 42), "00042");
}

}  // namespace
}  // namespace lakeharbor
