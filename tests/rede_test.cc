#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/string_util.h"
#include "index/index_entry.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "rede/functions.h"

namespace lakeharbor::rede {
namespace {

// --------------------------------------------------------------- functions

TEST(Functions, DelimitedFieldInterpreter) {
  auto interp = DelimitedFieldInterpreter(1);
  io::Record record(std::string("a|bb|c"));
  auto got = interp(record);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "bb");
  EXPECT_FALSE(DelimitedFieldInterpreter(9)(record).ok());
}

TEST(Functions, EncodedInt64FieldInterpreter) {
  auto interp = EncodedInt64FieldInterpreter(0);
  auto got = interp(io::Record(std::string("42|x")));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, io::EncodeInt64Key(42));
  EXPECT_FALSE(interp(io::Record(std::string("nope|x"))).ok());
}

TEST(Functions, BundleEqualityFilter) {
  Tuple tuple;
  tuple.records.emplace_back(std::string("1|7"));
  tuple.records.emplace_back(std::string("2|7"));
  auto same = BundleEqualityFilter(0, DelimitedFieldInterpreter(1), 1,
                                   DelimitedFieldInterpreter(1));
  EXPECT_TRUE(*same(tuple));
  auto diff = BundleEqualityFilter(0, DelimitedFieldInterpreter(0), 1,
                                   DelimitedFieldInterpreter(0));
  EXPECT_FALSE(*diff(tuple));
  auto oob = BundleEqualityFilter(0, DelimitedFieldInterpreter(0), 5,
                                  DelimitedFieldInterpreter(0));
  EXPECT_FALSE(oob(tuple).ok());
}

TEST(Functions, RangeAndEqualsFilters) {
  Tuple tuple;
  tuple.records.emplace_back(std::string("m|x"));
  EXPECT_TRUE(
      *LastRecordRangeFilter(DelimitedFieldInterpreter(0), "a", "z")(tuple));
  EXPECT_FALSE(
      *LastRecordRangeFilter(DelimitedFieldInterpreter(0), "n", "z")(tuple));
  EXPECT_TRUE(
      *LastRecordEqualsFilter(DelimitedFieldInterpreter(0), "m")(tuple));
  EXPECT_FALSE(
      *LastRecordEqualsFilter(DelimitedFieldInterpreter(0), "q")(tuple));
}

TEST(Tuple, Factories) {
  Tuple point = Tuple::Point(io::Pointer::Keyed("k"));
  EXPECT_FALSE(point.is_range);
  EXPECT_FALSE(point.resolve_local);
  EXPECT_TRUE(point.records.empty());
  Tuple range = Tuple::Range(io::Pointer::Broadcast("a"),
                             io::Pointer::Broadcast("z"));
  EXPECT_TRUE(range.is_range);
  EXPECT_EQ(range.pointer.key, "a");
  EXPECT_EQ(range.pointer_hi.key, "z");
  range.records.emplace_back(std::string("r1"));
  range.records.emplace_back(std::string("r2"));
  EXPECT_EQ(range.last_record().bytes(), "r2");
}

TEST(Functions, AcceptAllFilter) {
  Tuple tuple;
  EXPECT_TRUE(*AcceptAllFilter()(tuple));
}

// ------------------------------------------------------------- referencers

Tuple OneRecordTuple(const std::string& bytes) {
  Tuple t;
  t.records.emplace_back(std::string(bytes));
  return t;
}

TEST(Referencers, KeyReferencerEmitsKeyedPointer) {
  auto ref = MakeKeyReferencer("r", EncodedInt64FieldInterpreter(1));
  std::vector<Tuple> out;
  ExecContext ctx;
  ASSERT_TRUE(ref->Execute(ctx, OneRecordTuple("9|77"), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].pointer.has_partition);
  EXPECT_EQ(out[0].pointer.key, io::EncodeInt64Key(77));
  EXPECT_EQ(out[0].pointer.partition_key, io::EncodeInt64Key(77));
  EXPECT_EQ(out[0].records.size(), 1u);  // bundle carried along
  EXPECT_FALSE(ref->IsDereferencer());
}

TEST(Referencers, KeyReferencerReadsChosenBundleIndex) {
  auto ref = MakeKeyReferencer("r", EncodedInt64FieldInterpreter(0), 0);
  Tuple tuple = OneRecordTuple("5|x");
  tuple.records.emplace_back(std::string("6|y"));
  std::vector<Tuple> out;
  ExecContext ctx;
  ASSERT_TRUE(ref->Execute(ctx, tuple, &out).ok());
  EXPECT_EQ(out[0].pointer.key, io::EncodeInt64Key(5));
}

TEST(Referencers, EmptyBundleIsError) {
  auto ref = MakeKeyReferencer("r", EncodedInt64FieldInterpreter(0));
  std::vector<Tuple> out;
  ExecContext ctx;
  EXPECT_TRUE(ref->Execute(ctx, Tuple{}, &out).IsInvalidArgument());
}

TEST(Referencers, BroadcastReferencerLeavesPartitionNull) {
  auto ref = MakeBroadcastReferencer("r", EncodedInt64FieldInterpreter(0));
  std::vector<Tuple> out;
  ExecContext ctx;
  ASSERT_TRUE(ref->Execute(ctx, OneRecordTuple("5|x"), &out).ok());
  EXPECT_FALSE(out[0].pointer.has_partition);
  EXPECT_EQ(out[0].pointer.key, io::EncodeInt64Key(5));
}

TEST(Referencers, IndexEntryReferencerDropsCarrierRecord) {
  auto ref = MakeIndexEntryReferencer("r");
  Tuple tuple = OneRecordTuple("base|row");
  tuple.records.push_back(index::MakeIndexEntry("pk", "key"));
  std::vector<Tuple> out;
  ExecContext ctx;
  ASSERT_TRUE(ref->Execute(ctx, tuple, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].records.size(), 1u);  // entry removed
  EXPECT_EQ(out[0].pointer.partition_key, "pk");
  EXPECT_EQ(out[0].pointer.key, "key");
}

TEST(Referencers, RangeReferencerEmitsRange) {
  auto ref = MakeRangeReferencer("r", DelimitedFieldInterpreter(0),
                                 DelimitedFieldInterpreter(1));
  std::vector<Tuple> out;
  ExecContext ctx;
  ASSERT_TRUE(ref->Execute(ctx, OneRecordTuple("aa|zz"), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].is_range);
  EXPECT_EQ(out[0].pointer.key, "aa");
  EXPECT_EQ(out[0].pointer_hi.key, "zz");
  EXPECT_FALSE(out[0].pointer.has_partition);
}

// ------------------------------------------------- engine + executors

/// Fixture: employees (id|name|dept) and departments (id|dname), plus a
/// global structure over emp.dept built through the engine.
struct EngineFixture : ::testing::Test {
  static constexpr int kEmployees = 120;
  static constexpr int kDepts = 10;

  EngineFixture()
      : cluster(sim::ClusterOptions::ForNodes(4)), engine(&cluster) {
    auto emp = std::make_shared<io::PartitionedFile>(
        "emp", std::make_shared<io::HashPartitioner>(8), &cluster);
    for (int i = 0; i < kEmployees; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(emp->Append(key, key,
                           io::Record(StrFormat("%d|emp%d|%d", i, i,
                                                i % kDepts)))
                   .ok());
    }
    emp->Seal();
    LH_CHECK(engine.catalog().Register(emp).ok());

    auto dept = std::make_shared<io::PartitionedFile>(
        "dept", std::make_shared<io::HashPartitioner>(4), &cluster);
    for (int d = 0; d < kDepts; ++d) {
      std::string key = io::EncodeInt64Key(d);
      LH_CHECK(dept->Append(key, key,
                            io::Record(StrFormat("%d|dept%d", d, d)))
                   .ok());
    }
    dept->Seal();
    LH_CHECK(engine.catalog().Register(dept).ok());

    index::IndexSpec spec;
    spec.index_name = "emp.dept.idx";
    spec.base_file = "emp";
    spec.placement = index::IndexPlacement::kGlobal;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) -> Status {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(int64_t dept, ParseInt64(FieldAt(row, '|', 2)));
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      posting.index_key = io::EncodeInt64Key(dept);
      posting.target_partition_key = io::EncodeInt64Key(id);
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_CHECK(engine.BuildStructure(spec, "dept").ok());
  }

  /// dept range join: employees of depts [lo, hi] joined with dept rows.
  StatusOr<Job> DeptJoinJob(int lo, int hi, bool broadcast_dept = false) {
    LH_ASSIGN_OR_RETURN(auto emp, engine.catalog().Get("emp"));
    LH_ASSIGN_OR_RETURN(auto dept, engine.catalog().Get("dept"));
    LH_ASSIGN_OR_RETURN(auto idx_file, engine.catalog().Get("emp.dept.idx"));
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(idx_file);
    LH_CHECK(idx != nullptr);
    StageFunctionPtr dept_ref =
        broadcast_dept
            ? MakeBroadcastReferencer("ref-dept",
                                      EncodedInt64FieldInterpreter(2))
            : MakeKeyReferencer("ref-dept", EncodedInt64FieldInterpreter(2));
    return JobBuilder("dept-join")
        .Initial(Tuple::Range(io::Pointer::Broadcast(io::EncodeInt64Key(lo)),
                              io::Pointer::Broadcast(io::EncodeInt64Key(hi))))
        .Add(MakeRangeDereferencer("deref-idx", idx))
        .Add(MakeIndexEntryReferencer("ref-entry"))
        .Add(MakePointDereferencer("deref-emp", emp))
        .Add(dept_ref)
        .Add(MakePointDereferencer("deref-dept", dept))
        .Build();
  }

  static std::multiset<std::string> Canonical(
      const std::vector<Tuple>& tuples) {
    std::multiset<std::string> out;
    for (const auto& t : tuples) {
      std::string row;
      for (const auto& r : t.records) {
        row += r.bytes();
        row += '#';
      }
      out.insert(std::move(row));
    }
    return out;
  }

  sim::Cluster cluster;
  Engine engine;
};

TEST_F(EngineFixture, JobBuilderValidation) {
  EXPECT_TRUE(JobBuilder("empty").Build().status().IsInvalidArgument());
  EXPECT_TRUE(JobBuilder("null").Add(nullptr).Build().status()
                  .IsInvalidArgument());
  EXPECT_TRUE(JobBuilder("ref-first")
                  .Add(MakeKeyReferencer("r", DelimitedFieldInterpreter(0)))
                  .Build()
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EngineFixture, SmpeExecutesIndexJoin) {
  auto job = DeptJoinJob(3, 5);
  ASSERT_TRUE(job.ok());
  auto result = engine.ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  // depts 3..5 -> kEmployees/kDepts employees each.
  EXPECT_EQ(result->tuples.size(), 3u * kEmployees / kDepts);
  for (const auto& tuple : result->tuples) {
    ASSERT_EQ(tuple.records.size(), 2u);
    std::string emp_dept(FieldAt(tuple.records[0].slice().view(), '|', 2));
    std::string dept_id(FieldAt(tuple.records[1].slice().view(), '|', 0));
    EXPECT_EQ(emp_dept, dept_id);
  }
  EXPECT_EQ(result->metrics.output_tuples, result->tuples.size());
  EXPECT_GT(result->metrics.deref_invocations, 0u);
  EXPECT_GT(result->metrics.ref_invocations, 0u);
}

TEST_F(EngineFixture, PartitionedMatchesSmpe) {
  auto job = DeptJoinJob(0, 9);
  ASSERT_TRUE(job.ok());
  auto smpe = engine.ExecuteCollect(*job, ExecutionMode::kSmpe);
  auto part = engine.ExecuteCollect(*job, ExecutionMode::kPartitioned);
  ASSERT_TRUE(smpe.ok());
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(smpe->tuples.size(), static_cast<size_t>(kEmployees));
  EXPECT_EQ(Canonical(smpe->tuples), Canonical(part->tuples));
}

TEST_F(EngineFixture, BroadcastJoinMatchesKeyedJoin) {
  auto keyed = DeptJoinJob(2, 4, /*broadcast_dept=*/false);
  auto bcast = DeptJoinJob(2, 4, /*broadcast_dept=*/true);
  ASSERT_TRUE(keyed.ok());
  ASSERT_TRUE(bcast.ok());
  auto keyed_result = engine.ExecuteCollect(*keyed, ExecutionMode::kSmpe);
  auto bcast_result = engine.ExecuteCollect(*bcast, ExecutionMode::kSmpe);
  ASSERT_TRUE(keyed_result.ok());
  ASSERT_TRUE(bcast_result.ok());
  EXPECT_EQ(Canonical(keyed_result->tuples), Canonical(bcast_result->tuples));
  EXPECT_GT(bcast_result->metrics.broadcasts, 0u);
  EXPECT_EQ(keyed_result->metrics.broadcasts, 0u);
}

TEST_F(EngineFixture, BroadcastJoinMatchesInPartitionedModeToo) {
  auto bcast = DeptJoinJob(2, 4, /*broadcast_dept=*/true);
  ASSERT_TRUE(bcast.ok());
  auto smpe = engine.ExecuteCollect(*bcast, ExecutionMode::kSmpe);
  auto part = engine.ExecuteCollect(*bcast, ExecutionMode::kPartitioned);
  ASSERT_TRUE(smpe.ok());
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(Canonical(smpe->tuples), Canonical(part->tuples));
}

TEST_F(EngineFixture, KeyedInitialPointerRunsSingleLookup) {
  LH_CHECK(engine.catalog().Get("emp").ok());
  auto emp = *engine.catalog().Get("emp");
  auto job = JobBuilder("point-get")
                 .Initial(Tuple::Point(io::Pointer::Keyed(
                     io::EncodeInt64Key(17))))
                 .Add(MakePointDereferencer("deref", emp))
                 .Build();
  ASSERT_TRUE(job.ok());
  auto result = engine.ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tuples.size(), 1u);
  EXPECT_EQ(FieldAt(result->tuples[0].records[0].slice().view(), '|', 0),
            "17");
}

TEST_F(EngineFixture, EmptyRangeYieldsNoTuplesNoError) {
  auto job = DeptJoinJob(50, 60);  // no such depts
  ASSERT_TRUE(job.ok());
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    auto result = engine.ExecuteCollect(*job, mode);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->tuples.empty());
  }
}

TEST_F(EngineFixture, FilterDropsTuples) {
  auto emp = *engine.catalog().Get("emp");
  auto idx = std::dynamic_pointer_cast<io::BtreeFile>(
      *engine.catalog().Get("emp.dept.idx"));
  // Keep only even employee ids.
  Filter even = [](const Tuple& tuple) -> StatusOr<bool> {
    LH_ASSIGN_OR_RETURN(
        int64_t id,
        ParseInt64(FieldAt(tuple.last_record().slice().view(), '|', 0)));
    return id % 2 == 0;
  };
  auto job = JobBuilder("filtered")
                 .Initial(Tuple::Range(
                     io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                     io::Pointer::Broadcast(io::EncodeInt64Key(9))))
                 .Add(MakeRangeDereferencer("deref-idx", idx))
                 .Add(MakeIndexEntryReferencer("ref-entry"))
                 .Add(MakePointDereferencer("deref-emp", emp, even))
                 .Build();
  ASSERT_TRUE(job.ok());
  auto result = engine.ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), static_cast<size_t>(kEmployees) / 2);
}

TEST_F(EngineFixture, DiskFaultSurfacesAsIOError) {
  auto job = DeptJoinJob(0, 9);
  ASSERT_TRUE(job.ok());
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      cluster.node(n).disk().InjectFaultAfter(5);
    }
    auto result = engine.ExecuteCollect(*job, mode);
    EXPECT_FALSE(result.ok()) << ExecutionModeToString(mode);
    EXPECT_TRUE(result.status().IsIOError());
    for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      cluster.node(n).disk().ClearFault();
    }
    // Engine remains usable after a failed job.
    auto retry = engine.ExecuteCollect(*job, mode);
    ASSERT_TRUE(retry.ok());
    EXPECT_EQ(retry->tuples.size(), static_cast<size_t>(kEmployees));
  }
}

TEST_F(EngineFixture, ReferencerErrorSurfaces) {
  auto emp = *engine.catalog().Get("emp");
  auto idx = std::dynamic_pointer_cast<io::BtreeFile>(
      *engine.catalog().Get("emp.dept.idx"));
  // Interpreter that cannot parse the employee rows (wrong field).
  auto bad_ref = MakeKeyReferencer("bad", EncodedInt64FieldInterpreter(1));
  auto dept = *engine.catalog().Get("dept");
  auto job = JobBuilder("bad-ref")
                 .Initial(Tuple::Range(
                     io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                     io::Pointer::Broadcast(io::EncodeInt64Key(9))))
                 .Add(MakeRangeDereferencer("deref-idx", idx))
                 .Add(MakeIndexEntryReferencer("ref-entry"))
                 .Add(MakePointDereferencer("deref-emp", emp))
                 .Add(bad_ref)
                 .Add(MakePointDereferencer("deref-dept", dept))
                 .Build();
  ASSERT_TRUE(job.ok());
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    auto result = engine.ExecuteCollect(*job, mode);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument());
  }
}

TEST_F(EngineFixture, InlineReferencerAblationGivesSameResults) {
  auto job = DeptJoinJob(0, 9);
  ASSERT_TRUE(job.ok());
  SmpeOptions inline_off;
  inline_off.inline_referencers = false;
  inline_off.threads_per_node = 16;
  SmpeExecutor executor(&cluster, inline_off);
  TupleCollector collector;
  auto result = executor.Execute(*job, collector.AsSink());
  ASSERT_TRUE(result.ok());
  auto tuples = collector.TakeTuples();
  EXPECT_EQ(tuples.size(), static_cast<size_t>(kEmployees));
  // With inlining off, referencer invocations become queued tasks; counts
  // still match the inline run.
  EXPECT_GT(result->metrics.ref_invocations, 0u);
}

TEST_F(EngineFixture, RetryingDereferencerSurvivesTransientFaults) {
  // The same join job, but every Dereferencer is wrapped in a retry
  // decorator, and every disk fails every 16th operation. (The period must
  // exceed the ops one dereference performs, or every retry of the same
  // invocation deterministically re-hits a fault.)
  auto emp = *engine.catalog().Get("emp");
  auto dept = *engine.catalog().Get("dept");
  auto idx = std::dynamic_pointer_cast<io::BtreeFile>(
      *engine.catalog().Get("emp.dept.idx"));
  auto retry_job =
      JobBuilder("retry-join")
          .Initial(Tuple::Range(io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                                io::Pointer::Broadcast(io::EncodeInt64Key(9))))
          .Add(MakeRetryingDereferencer(
              MakeRangeDereferencer("deref-idx", idx)))
          .Add(MakeIndexEntryReferencer("ref-entry"))
          .Add(MakeRetryingDereferencer(
              MakePointDereferencer("deref-emp", emp)))
          .Add(MakeKeyReferencer("ref-dept", EncodedInt64FieldInterpreter(2)))
          .Add(MakeRetryingDereferencer(
              MakePointDereferencer("deref-dept", dept)))
          .Build();
  ASSERT_TRUE(retry_job.ok());

  // Baseline result on healthy disks.
  auto clean = engine.ExecuteCollect(*retry_job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->tuples.size(), static_cast<size_t>(kEmployees));

  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().InjectFaultEvery(16);
  }
  for (auto mode : {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    auto faulty = engine.ExecuteCollect(*retry_job, mode);
    ASSERT_TRUE(faulty.ok()) << ExecutionModeToString(mode) << ": "
                             << faulty.status().ToString();
    EXPECT_EQ(Canonical(faulty->tuples), Canonical(clean->tuples));
  }
  // The undekorated job fails on the same disks.
  auto plain_job = DeptJoinJob(0, 9);
  ASSERT_TRUE(plain_job.ok());
  auto plain = engine.ExecuteCollect(*plain_job, ExecutionMode::kSmpe);
  EXPECT_FALSE(plain.ok());
  EXPECT_TRUE(plain.status().IsIOError());
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).disk().ClearFault();
  }
}

TEST(RetryingDereferencer, FailsFastOnNonTransientErrors) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(1));
  auto file = std::make_shared<io::PartitionedFile>(
      "f", std::make_shared<io::HashPartitioner>(1), &cluster);
  // Unsealed: Get returns Aborted, which must NOT be retried.
  auto deref = MakeRetryingDereferencer(
      MakePointDereferencer("deref", file), 5);
  std::vector<Tuple> out;
  ExecContext ctx{0, &cluster, nullptr};
  Status s =
      deref->Execute(ctx, Tuple::Point(io::Pointer::Keyed("k")), &out);
  EXPECT_TRUE(s.IsAborted());
}

TEST(RetryingDereferencer, ExhaustsAttemptsOnPersistentIOError) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(1));
  auto file = std::make_shared<io::PartitionedFile>(
      "f", std::make_shared<io::HashPartitioner>(1), &cluster);
  std::string key = io::EncodeInt64Key(1);
  ASSERT_TRUE(file->Append(key, key, io::Record(std::string("r"))).ok());
  file->Seal();
  cluster.node(0).disk().InjectFaultAfter(0);  // permanent failure
  auto deref = MakeRetryingDereferencer(
      MakePointDereferencer("deref", file), 3);
  std::vector<Tuple> out;
  ExecContext ctx{0, &cluster, nullptr};
  Status s = deref->Execute(ctx, Tuple::Point(io::Pointer::Keyed(key)), &out);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_NE(s.message().find("after 3 attempts"), std::string::npos);
  EXPECT_TRUE(out.empty());
}

TEST_F(EngineFixture, PerStageMetricsBalance) {
  auto job = DeptJoinJob(0, 9);
  ASSERT_TRUE(job.ok());
  for (auto mode :
       {ExecutionMode::kSmpe, ExecutionMode::kPartitioned}) {
    auto result = engine.Execute(*job, mode);
    ASSERT_TRUE(result.ok());
    const auto& stages = result->metrics.per_stage;
    ASSERT_EQ(stages.size(), job->num_stages());
    // Stage 0 (index range deref) runs once per node under SMPE (broadcast
    // seeding) and emits every index entry.
    EXPECT_EQ(stages[0].emitted, static_cast<uint64_t>(kEmployees));
    // Each later stage consumes exactly what its predecessor emitted.
    for (size_t i = 1; i < stages.size(); ++i) {
      EXPECT_EQ(stages[i].invocations, stages[i - 1].emitted)
          << "stage " << i << " mode " << ExecutionModeToString(mode);
    }
    // Final stage's emissions are the job output.
    EXPECT_EQ(stages.back().emitted, result->metrics.output_tuples);
  }
}

TEST_F(EngineFixture, DescribeListsStagesAndAnnotatesMetrics) {
  auto job = DeptJoinJob(0, 9);
  ASSERT_TRUE(job.ok());
  std::string plain = job->Describe();
  EXPECT_NE(plain.find("job 'dept-join'"), std::string::npos);
  EXPECT_NE(plain.find("stage 0: Dereferencer  deref-idx"), std::string::npos);
  EXPECT_NE(plain.find("Referencer"), std::string::npos);
  EXPECT_NE(plain.find("broadcast, resolved locally"), std::string::npos);
  EXPECT_EQ(plain.find("invoked"), std::string::npos);

  auto result = engine.Execute(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  std::string annotated = job->Describe(&result->metrics);
  EXPECT_NE(annotated.find("invoked"), std::string::npos);
  EXPECT_NE(annotated.find("emitted"), std::string::npos);
}

TEST_F(EngineFixture, SmpeReportsFineGrainedParallelism) {
  sim::ClusterOptions timed;
  timed.num_nodes = 4;
  timed.EnableTiming(true);
  timed.disk.random_read_latency_us = 1000;
  timed.disk.io_slots = 64;
  sim::Cluster slow_cluster(timed);
  Engine slow_engine(&slow_cluster);
  // Rebuild the same dataset on the timed cluster.
  auto emp = std::make_shared<io::PartitionedFile>(
      "emp", std::make_shared<io::HashPartitioner>(8), &slow_cluster);
  for (int i = 0; i < kEmployees; ++i) {
    std::string key = io::EncodeInt64Key(i);
    ASSERT_TRUE(emp->Append(key, key,
                            io::Record(StrFormat("%d|emp%d|%d", i, i,
                                                 i % kDepts)))
                    .ok());
  }
  emp->Seal();
  ASSERT_TRUE(slow_engine.catalog().Register(emp).ok());
  auto idx = std::make_shared<io::BtreeFile>(
      "emp.id.idx", std::make_shared<io::HashPartitioner>(8), &slow_cluster);
  for (int i = 0; i < kEmployees; ++i) {
    std::string key = io::EncodeInt64Key(i);
    ASSERT_TRUE(idx->AppendToPartition(
                       static_cast<uint32_t>(i % 8), key,
                       index::MakeIndexEntry(key, key))
                    .ok());
  }
  idx->Seal();
  ASSERT_TRUE(slow_engine.catalog().Register(idx).ok());
  auto job = JobBuilder("parallel-fetch")
                 .Initial(Tuple::Range(
                     io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                     io::Pointer::Broadcast(io::EncodeInt64Key(kEmployees))))
                 .Add(MakeRangeDereferencer("deref-idx", idx))
                 .Add(MakeIndexEntryReferencer("ref-entry"))
                 .Add(MakePointDereferencer("deref-emp", emp))
                 .Build();
  ASSERT_TRUE(job.ok());
  auto result = slow_engine.Execute(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  // 120 fetches of 1 ms each; fine-grained decomposition must overlap many.
  EXPECT_GT(result->metrics.peak_parallel_derefs, 8);
}

}  // namespace
}  // namespace lakeharbor::rede
