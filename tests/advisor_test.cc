#include <gtest/gtest.h>

#include "io/key_codec.h"
#include "rede/advisor.h"

namespace lakeharbor::rede {
namespace {

struct AdvisorFixture : ::testing::Test {
  AdvisorFixture() {
    sim::ClusterOptions options;
    options.num_nodes = 4;
    options.disk.io_slots = 10;
    options.disk.random_read_latency_us = 1000;  // 1 ms
    options.disk.scan_bandwidth_bytes_per_sec = 1000 * 1000;  // 1 MB/s
    cluster = std::make_unique<sim::Cluster>(options);
    // 4-partition index with 100 entries per partition, keys 0..99 each,
    // so a range of width w samples ~w entries and extrapolates to 4w.
    index = std::make_shared<io::BtreeFile>(
        "idx", std::make_shared<io::HashPartitioner>(4), cluster.get());
    for (uint32_t p = 0; p < 4; ++p) {
      for (int i = 0; i < 100; ++i) {
        LH_CHECK(index
                     ->AppendToPartition(p, io::EncodeInt64Key(i),
                                         io::Record(std::string("e")))
                     .ok());
      }
    }
    index->Seal();
  }

  PlanQuery Query(int lo, int hi, double ios, uint64_t scan_bytes) {
    PlanQuery query;
    query.driving_index = index;
    query.range_lo = io::EncodeInt64Key(lo);
    query.range_hi = io::EncodeInt64Key(hi);
    query.ios_per_match = ios;
    query.scan_bytes = scan_bytes;
    return query;
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::shared_ptr<io::BtreeFile> index;
};

TEST_F(AdvisorFixture, ValidatesInputs) {
  StructureAdvisor advisor(cluster.get());
  PlanQuery query = Query(0, 10, 1.0, 1000);
  query.driving_index = nullptr;
  EXPECT_TRUE(advisor.Choose(query).status().IsInvalidArgument());
  query = Query(10, 0, 1.0, 1000);
  EXPECT_TRUE(advisor.Choose(query).status().IsInvalidArgument());
}

TEST_F(AdvisorFixture, ExtrapolatesFromOnePartition) {
  StructureAdvisor advisor(cluster.get());
  auto estimate = advisor.Choose(Query(0, 9, 1.0, 1));
  ASSERT_TRUE(estimate.ok());
  // 10 keys sampled in partition 0, 4 partitions -> 40 estimated matches.
  EXPECT_DOUBLE_EQ(estimate->estimated_matches, 40.0);
}

TEST_F(AdvisorFixture, CostModelMatchesDeviceParameters) {
  StructureAdvisor advisor(cluster.get());
  // 40 matches * 2 ios * 1 ms / (4 nodes * 10 slots) = 2 ms structure;
  // 200_000 bytes / (1000 bytes-per-ms * 4 nodes) = 50 ms scan.
  auto estimate = advisor.Choose(Query(0, 9, 2.0, 200000));
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(estimate->structure_ms, 2.0);
  EXPECT_DOUBLE_EQ(estimate->scan_ms, 50.0);
  EXPECT_EQ(estimate->choice, PlanKind::kStructure);
}

TEST_F(AdvisorFixture, ChoosesScanWhenMatchesDominate) {
  StructureAdvisor advisor(cluster.get());
  // Whole index (400 matches) * 10 ios * 1 ms / 40 = 100 ms structure vs
  // 40_000 bytes / 4000 bytes-per-ms = 10 ms scan.
  auto estimate = advisor.Choose(Query(0, 99, 10.0, 40000));
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->choice, PlanKind::kScan);
  EXPECT_GT(estimate->structure_ms, estimate->scan_ms);
}

TEST_F(AdvisorFixture, OverheadTermShiftsTheCrossover) {
  StructureAdvisor advisor(cluster.get());
  PlanQuery query = Query(0, 9, 2.0, 10000);  // scan: 2.5 ms
  // Without overhead: structure 2 ms -> structure wins.
  auto base = advisor.Choose(query);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->choice, PlanKind::kStructure);
  // With 1 ms/I/O overhead: structure 4 ms -> scan wins.
  query.per_io_overhead_us = 1000.0;
  auto padded = advisor.Choose(query);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->choice, PlanKind::kScan);
}

TEST_F(AdvisorFixture, EmptyRangeStronglyPrefersStructure) {
  StructureAdvisor advisor(cluster.get());
  auto estimate = advisor.Choose(Query(500, 600, 10.0, 1 << 20));
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(estimate->estimated_matches, 0.0);
  EXPECT_EQ(estimate->choice, PlanKind::kStructure);
}

TEST_F(AdvisorFixture, SamplingProbeIsCharged) {
  StructureAdvisor advisor(cluster.get());
  cluster->ResetStats();
  ASSERT_TRUE(advisor.Choose(Query(0, 9, 1.0, 1)).ok());
  EXPECT_GE(cluster->TotalStats().random_reads, 1u);
}

}  // namespace
}  // namespace lakeharbor::rede
