#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "concurrent/inflight_tracker.h"
#include "concurrent/mpmc_queue.h"
#include "concurrent/semaphore.h"
#include "concurrent/thread_pool.h"

namespace lakeharbor {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(MpmcQueue, PopDrainsAfterClose) {
  MpmcQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // rejected
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(MpmcQueue, BoundedBlocksProducerUntilSpace) {
  MpmcQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  EXPECT_FALSE(q.TryPush(2));
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(MpmcQueue, TryPopNonBlocking) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(9);
  EXPECT_EQ(*q.TryPop(), 9);
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  MpmcQueue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2000;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
}

TEST(Semaphore, PermitsBoundConcurrency) {
  Semaphore sem(2);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
  sem.Release();
  sem.Release();
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Semaphore, GuardReleases) {
  Semaphore sem(1);
  {
    SemaphoreGuard guard(sem);
    EXPECT_EQ(sem.available(), 0u);
  }
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, EnforcesMaxParallelismUnderLoad) {
  Semaphore sem(3);
  std::atomic<int> active{0}, peak{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&] {
      SemaphoreGuard guard(sem);
      int now = active.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      active.fetch_sub(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 3);
  EXPECT_GE(peak.load(), 2);  // with 16 threads we should saturate
}

TEST(Semaphore, BulkAcquireIsAllOrNothing) {
  Semaphore sem(3);
  EXPECT_FALSE(sem.TryAcquire(4));  // more than the pool ever holds
  EXPECT_TRUE(sem.TryAcquire(3));
  EXPECT_FALSE(sem.TryAcquire(1));
  sem.Release(2);
  EXPECT_EQ(sem.available(), 2u);
  EXPECT_FALSE(sem.TryAcquire(3));
  EXPECT_EQ(sem.available(), 2u);  // failed bulk try took nothing
  EXPECT_TRUE(sem.TryAcquire(2));
  sem.Release(3);
  EXPECT_EQ(sem.available(), 3u);
}

TEST(Semaphore, BulkReleaseWakesMultipleWaiters) {
  Semaphore sem(0);
  std::atomic<int> acquired{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      sem.Acquire();
      acquired.fetch_add(1);
    });
  }
  // One bulk Release(3) must satisfy all three blocked waiters (notify_all,
  // not a single notify per permit batch).
  sem.Release(3);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(acquired.load(), 3);
  EXPECT_EQ(sem.available(), 0u);
}

TEST(Semaphore, CancellableAcquireReturnsFalseOnCancel) {
  Semaphore sem(1);
  CancelToken token;
  // Not enough permits for a bulk acquire of 2: the wait must end when the
  // token flips, leaving the pool untouched.
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel(Status::Aborted("deadline"));
  });
  EXPECT_FALSE(sem.Acquire(2, &token));
  canceller.join();
  EXPECT_EQ(sem.available(), 1u);

  // A fresh (un-cancelled) token acquires normally.
  CancelToken fresh;
  EXPECT_TRUE(sem.Acquire(1, &fresh));
  EXPECT_EQ(sem.available(), 0u);
  sem.Release();

  // An already-cancelled token fails even when permits are available.
  EXPECT_FALSE(sem.Acquire(1, &token));
  EXPECT_EQ(sem.available(), 1u);
}

TEST(InflightTracker, AwaitZeroReturnsImmediatelyWhenIdle) {
  InflightTracker tracker;
  tracker.AwaitZero();
  EXPECT_EQ(tracker.count(), 0);
}

TEST(InflightTracker, TracksNestedSpawns) {
  InflightTracker tracker;
  tracker.Add();
  std::thread t([&] {
    tracker.Add(3);  // children registered before parent finishes
    tracker.Done();  // parent
    for (int i = 0; i < 3; ++i) tracker.Done();
  });
  tracker.AwaitZero();
  EXPECT_EQ(tracker.count(), 0);
  t.join();
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  InflightTracker inflight;
  inflight.Add(100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&] {
      counter.fetch_add(1);
      inflight.Done();
    }));
  }
  inflight.AwaitZero();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    pool.Shutdown();
    EXPECT_FALSE(pool.Submit([&] { counter.fetch_add(1000); }));
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(8);
  std::atomic<int> active{0}, peak{0};
  InflightTracker inflight;
  inflight.Add(8);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = active.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      active.fetch_sub(1);
      inflight.Done();
    });
  }
  inflight.AwaitZero();
  EXPECT_GE(peak.load(), 4);  // most of the 8 should overlap
}

}  // namespace
}  // namespace lakeharbor
