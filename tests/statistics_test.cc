#include <gtest/gtest.h>

#include "common/random.h"
#include "io/key_codec.h"
#include "rede/advisor.h"
#include "rede/statistics.h"

namespace lakeharbor::rede {
namespace {

struct HistogramFixture : ::testing::Test {
  HistogramFixture() : cluster(sim::ClusterOptions::ForNodes(2)) {}

  /// Index with keys 0..n-1 (encoded), one entry each, spread round-robin.
  std::shared_ptr<io::BtreeFile> UniformIndex(int n, uint32_t partitions = 4) {
    auto index = std::make_shared<io::BtreeFile>(
        "idx", std::make_shared<io::HashPartitioner>(partitions), &cluster);
    for (int i = 0; i < n; ++i) {
      LH_CHECK(index
                   ->AppendToPartition(static_cast<uint32_t>(i) % partitions,
                                       io::EncodeInt64Key(i),
                                       io::Record(std::string("e")))
                   .ok());
    }
    index->Seal();
    return index;
  }

  sim::Cluster cluster;
};

TEST_F(HistogramFixture, EmptyIndex) {
  auto index = UniformIndex(0);
  auto histogram = EquiDepthHistogram::Build(*index, 8);
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ(histogram->total_entries(), 0u);
  EXPECT_DOUBLE_EQ(
      histogram->EstimateMatches(io::EncodeInt64Key(0), io::EncodeInt64Key(9)),
      0.0);
}

TEST_F(HistogramFixture, ZeroBucketsRejected) {
  auto index = UniformIndex(10);
  EXPECT_TRUE(
      EquiDepthHistogram::Build(*index, 0).status().IsInvalidArgument());
}

TEST_F(HistogramFixture, FullRangeIsExact) {
  auto index = UniformIndex(1000);
  auto histogram = EquiDepthHistogram::Build(*index, 16);
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ(histogram->total_entries(), 1000u);
  EXPECT_DOUBLE_EQ(histogram->EstimateMatches(io::EncodeInt64Key(0),
                                              io::EncodeInt64Key(999)),
                   1000.0);
  EXPECT_DOUBLE_EQ(histogram->EstimateSelectivity(io::EncodeInt64Key(0),
                                                  io::EncodeInt64Key(999)),
                   1.0);
}

TEST_F(HistogramFixture, PartialRangesWithinBucketResolution) {
  auto index = UniformIndex(1000);
  auto histogram = EquiDepthHistogram::Build(*index, 20);  // depth 50
  ASSERT_TRUE(histogram.ok());
  // True count 301; tolerance is one bucket depth on each side.
  double estimate = histogram->EstimateMatches(io::EncodeInt64Key(100),
                                               io::EncodeInt64Key(400));
  EXPECT_NEAR(estimate, 301.0, 50.0);
  // Narrow range: at most one boundary bucket's half-depth plus slack.
  double narrow = histogram->EstimateMatches(io::EncodeInt64Key(500),
                                             io::EncodeInt64Key(505));
  EXPECT_GT(narrow, 0.0);
  EXPECT_LE(narrow, 100.0);
}

TEST_F(HistogramFixture, OutOfDomainRangesAreZero) {
  auto index = UniformIndex(100);
  auto histogram = EquiDepthHistogram::Build(*index, 8);
  ASSERT_TRUE(histogram.ok());
  EXPECT_DOUBLE_EQ(histogram->EstimateMatches(io::EncodeInt64Key(5000),
                                              io::EncodeInt64Key(6000)),
                   0.0);
  EXPECT_DOUBLE_EQ(histogram->EstimateMatches(io::EncodeInt64Key(-50),
                                              io::EncodeInt64Key(-1)),
                   0.0);
  // Inverted range.
  EXPECT_DOUBLE_EQ(histogram->EstimateMatches(io::EncodeInt64Key(50),
                                              io::EncodeInt64Key(10)),
                   0.0);
}

TEST_F(HistogramFixture, SkewedDuplicatesStayInOneBucket) {
  auto index = std::make_shared<io::BtreeFile>(
      "skew", std::make_shared<io::HashPartitioner>(2), &cluster);
  // 900 duplicates of one key + 100 distinct keys.
  for (int i = 0; i < 900; ++i) {
    LH_CHECK(index
                 ->AppendToPartition(0, io::EncodeInt64Key(42),
                                     io::Record(std::string("d")))
                 .ok());
  }
  for (int i = 100; i < 200; ++i) {
    LH_CHECK(index
                 ->AppendToPartition(1, io::EncodeInt64Key(i),
                                     io::Record(std::string("u")))
                 .ok());
  }
  index->Seal();
  auto histogram = EquiDepthHistogram::Build(*index, 10);
  ASSERT_TRUE(histogram.ok());
  // The hot key's run must be estimable: a point range on it returns a
  // large share of its 900 entries.
  double hot = histogram->EstimateMatches(io::EncodeInt64Key(42),
                                          io::EncodeInt64Key(42));
  EXPECT_GE(hot, 450.0);  // at least half depth of its (big) bucket
}

TEST_F(HistogramFixture, BuildChargesScans) {
  auto index = UniformIndex(500);
  cluster.ResetStats();
  ASSERT_TRUE(EquiDepthHistogram::Build(*index, 8).ok());
  EXPECT_GT(cluster.TotalStats().bytes_sequential, 0u);
  EXPECT_EQ(index->access_stats().partition_scans.load(),
            index->num_partitions());
}

TEST_F(HistogramFixture, AdvisorUsesHistogramWithoutProbing) {
  auto index = UniformIndex(1000);
  auto histogram = EquiDepthHistogram::Build(*index, 16);
  ASSERT_TRUE(histogram.ok());

  StructureAdvisor advisor(&cluster);
  PlanQuery query;
  query.driving_index = index;
  query.range_lo = io::EncodeInt64Key(0);
  query.range_hi = io::EncodeInt64Key(99);
  query.ios_per_match = 2.0;
  query.scan_bytes = 1 << 20;
  query.histogram = &*histogram;

  index->mutable_access_stats().Reset();
  auto estimate = advisor.Choose(query);
  ASSERT_TRUE(estimate.ok());
  // No probe happened.
  EXPECT_EQ(index->access_stats().range_lookups.load(), 0u);
  EXPECT_NEAR(estimate->estimated_matches, 100.0, 70.0);

  // Probe-based estimation touches the structure.
  query.histogram = nullptr;
  ASSERT_TRUE(advisor.Choose(query).ok());
  EXPECT_EQ(index->access_stats().range_lookups.load(), 1u);
}

}  // namespace
}  // namespace lakeharbor::rede
