#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "index/bloom.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"

namespace lakeharbor::index {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter(1000, 0.01);
  for (int i = 0; i < 1000; ++i) {
    filter.Add(io::EncodeInt64Key(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MightContain(io::EncodeInt64Key(i))) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateRoughlyAsConfigured) {
  BloomFilter filter(2000, 0.01);
  for (int i = 0; i < 2000; ++i) {
    filter.Add(io::EncodeInt64Key(i));
  }
  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MightContain(io::EncodeInt64Key(1000000 + i))) {
      ++false_positives;
    }
  }
  double rate = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(rate, 0.05);  // generous: 5x the configured 1%
}

TEST(BloomFilter, SizingScalesWithRate) {
  BloomFilter strict(1000, 0.001);
  BloomFilter loose(1000, 0.1);
  EXPECT_GT(strict.num_bits(), loose.num_bits());
  EXPECT_GT(strict.num_hashes(), loose.num_hashes());
}

struct PartitionBloomFixture : ::testing::Test {
  PartitionBloomFixture() : cluster(sim::ClusterOptions::ForNodes(4)) {
    file = std::make_shared<io::PartitionedFile>(
        "t", std::make_shared<io::HashPartitioner>(8), &cluster);
    for (int i = 0; i < 400; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(file->Append(key, key,
                            io::Record(StrFormat("%d|payload", i)))
                   .ok());
    }
    file->Seal();
  }

  sim::Cluster cluster;
  std::shared_ptr<io::PartitionedFile> file;
};

TEST_F(PartitionBloomFixture, BuildCoversEveryPartitionKey) {
  auto bloom = PartitionBloom::Build(*file);
  ASSERT_TRUE(bloom.ok());
  EXPECT_EQ(bloom->num_partitions(), file->num_partitions());
  EXPECT_GT(bloom->memory_bytes(), 0u);
  // No false negatives: every key's true partition says "maybe".
  for (int i = 0; i < 400; ++i) {
    std::string key = io::EncodeInt64Key(i);
    uint32_t p = file->partitioner().PartitionOf(key);
    EXPECT_TRUE(bloom->MightContain(p, key)) << i;
  }
  // Unknown partitions conservatively require a probe.
  EXPECT_TRUE(bloom->MightContain(999, "anything"));
}

TEST_F(PartitionBloomFixture, BuildChargesScan) {
  cluster.ResetStats();
  ASSERT_TRUE(PartitionBloom::Build(*file).ok());
  EXPECT_GT(cluster.TotalStats().bytes_sequential, 0u);
}

TEST_F(PartitionBloomFixture, BroadcastDerefWithBloomSkipsMostProbes) {
  auto bloom_result = PartitionBloom::Build(*file);
  ASSERT_TRUE(bloom_result.ok());
  auto bloom = std::make_shared<const PartitionBloom>(
      std::move(*bloom_result));

  rede::Engine engine(&cluster);
  // Broadcast point lookups for keys 0..99, with and without the filter.
  auto run = [&](std::shared_ptr<const PartitionBloom> filter) {
    auto deref =
        rede::MakePointDereferencer("deref", file, nullptr, filter);
    std::multiset<std::string> results;
    file->mutable_access_stats().Reset();
    for (int i = 0; i < 100; ++i) {
      rede::Tuple tuple =
          rede::Tuple::Point(io::Pointer::Broadcast(io::EncodeInt64Key(i)));
      // Unmarked broadcast: the deref consults all partitions itself.
      std::vector<rede::Tuple> out;
      rede::ExecContext ctx{0, &cluster, nullptr};
      LH_CHECK(deref->Execute(ctx, tuple, &out).ok());
      for (const auto& t : out) results.insert(t.last_record().bytes());
    }
    return std::make_tuple(results, file->access_stats().lookups.load(),
                           file->access_stats().bloom_skips.load());
  };

  auto [plain_results, plain_lookups, plain_skips] = run(nullptr);
  auto [bloom_results, bloom_lookups, bloom_skips] = run(bloom);

  EXPECT_EQ(plain_results, bloom_results);  // identical answers
  EXPECT_EQ(plain_results.size(), 100u);
  EXPECT_EQ(plain_lookups, 800u);  // 100 keys x 8 partitions
  EXPECT_EQ(plain_skips, 0u);
  // With the filter, most of the 7 wrong partitions per key are skipped.
  EXPECT_LT(bloom_lookups, 200u);
  EXPECT_GT(bloom_skips, 600u);
  EXPECT_EQ(bloom_lookups + bloom_skips, 800u);
}

TEST_F(PartitionBloomFixture, SmpeBroadcastJobEquivalentWithBloom) {
  auto bloom_result = PartitionBloom::Build(*file);
  ASSERT_TRUE(bloom_result.ok());
  auto bloom = std::make_shared<const PartitionBloom>(
      std::move(*bloom_result));
  rede::Engine engine(&cluster);

  // A driver file of 50 rows, each broadcasting a lookup into `file`.
  auto driver = std::make_shared<io::BtreeFile>(
      "driver", std::make_shared<io::HashPartitioner>(4), &cluster);
  for (int i = 0; i < 50; ++i) {
    std::string key = io::EncodeInt64Key(i);
    ASSERT_TRUE(driver->AppendToPartition(static_cast<uint32_t>(i % 4), key,
                                          io::Record(StrFormat("%d", i * 8)))
                    .ok());
  }
  driver->Seal();

  auto make_job = [&](std::shared_ptr<const PartitionBloom> filter) {
    return rede::JobBuilder("bloom-broadcast-join")
        .Initial(rede::Tuple::Range(
            io::Pointer::Broadcast(io::EncodeInt64Key(0)),
            io::Pointer::Broadcast(io::EncodeInt64Key(49))))
        .Add(rede::MakeRangeDereferencer("deref-driver", driver))
        .Add(rede::MakeBroadcastReferencer(
            "ref-target", rede::EncodedInt64FieldInterpreter(0)))
        .Add(rede::MakePointDereferencer("deref-target", file, nullptr,
                                         filter))
        .Build();
  };

  auto plain_job = make_job(nullptr);
  auto bloom_job = make_job(bloom);
  ASSERT_TRUE(plain_job.ok());
  ASSERT_TRUE(bloom_job.ok());
  auto plain = engine.ExecuteCollect(*plain_job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(plain.ok());
  file->mutable_access_stats().Reset();
  auto filtered =
      engine.ExecuteCollect(*bloom_job, rede::ExecutionMode::kSmpe);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(plain->tuples.size(), filtered->tuples.size());
  EXPECT_GT(file->access_stats().bloom_skips.load(), 0u);
}

}  // namespace
}  // namespace lakeharbor::index
