#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/string_util.h"
#include "io/key_codec.h"
#include "io/placement.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "rede/smpe_executor.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {
namespace {

// ------------------------------------------------------- replica placement

TEST(PlacementMap, PrimaryReproducesTheUnreplicatedLayout) {
  io::PlacementMap map(4, 3);
  EXPECT_EQ(map.num_nodes(), 4u);
  EXPECT_EQ(map.replication_factor(), 3u);
  for (uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(map.PrimaryNode(p), p % 4) << p;
    EXPECT_EQ(map.ReplicaNode(p, 0), map.PrimaryNode(p)) << p;
  }
}

TEST(PlacementMap, ReplicasOfOnePartitionLandOnDistinctNodes) {
  io::PlacementMap map(5, 4);
  for (uint32_t p = 0; p < 20; ++p) {
    std::vector<sim::NodeId> nodes = map.ReplicaNodes(p);
    ASSERT_EQ(nodes.size(), 4u);
    std::set<sim::NodeId> distinct(nodes.begin(), nodes.end());
    EXPECT_EQ(distinct.size(), nodes.size()) << "partition " << p;
    EXPECT_EQ(nodes.front(), map.PrimaryNode(p));
  }
}

TEST(PlacementMap, ReplicationFactorIsClampedToTheNodeCount) {
  EXPECT_EQ(io::PlacementMap(3, 0).replication_factor(), 1u);
  EXPECT_EQ(io::PlacementMap(3, 3).replication_factor(), 3u);
  EXPECT_EQ(io::PlacementMap(3, 17).replication_factor(), 3u);
  EXPECT_EQ(io::PlacementMap().replication_factor(), 1u);
}

TEST(PlacementMap, ReplicaOnNodeInvertsReplicaNode) {
  io::PlacementMap map(4, 2);
  for (uint32_t p = 0; p < 12; ++p) {
    for (uint32_t r = 0; r < 2; ++r) {
      auto back = map.ReplicaOnNode(p, map.ReplicaNode(p, r));
      ASSERT_TRUE(back.has_value()) << "p=" << p << " r=" << r;
      EXPECT_EQ(*back, r);
    }
    // The two nodes after the replicas hold no copy of p.
    EXPECT_FALSE(map.ReplicaOnNode(p, (p + 2) % 4).has_value());
    EXPECT_FALSE(map.ReplicaOnNode(p, (p + 3) % 4).has_value());
  }
}

TEST(PlacementMap, FirstLiveReplicaSkipsDownNodes) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  io::PlacementMap map(4, 2);
  // Partition 1: replicas on nodes 1 and 2.
  EXPECT_EQ(map.FirstLiveReplica(cluster, 1).value(), 0u);
  cluster.SetNodeOutage(1, true);
  EXPECT_EQ(map.FirstLiveReplica(cluster, 1).value(), 1u);
  cluster.SetNodeOutage(2, true);
  EXPECT_FALSE(map.FirstLiveReplica(cluster, 1).has_value());
  cluster.SetNodeOutage(1, false);
  EXPECT_EQ(map.FirstLiveReplica(cluster, 1).value(), 0u);
  cluster.SetNodeOutage(2, false);
}

TEST(ReplicatedFile, ReplicaBoundsAreCheckedAndWritesChargeEveryReplica) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  auto file = std::make_shared<io::PartitionedFile>(
      "rf", std::make_shared<io::HashPartitioner>(8), &cluster);
  file->SetReplicationFactor(2);
  EXPECT_EQ(file->replication_factor(), 2u);
  std::string key = io::EncodeInt64Key(7);
  LH_CHECK(file->Append(key, key, io::Record(std::string("x"))).ok());
  file->Seal();

  std::vector<io::Record> out;
  uint32_t partition = file->partitioner().PartitionOf(key);
  EXPECT_TRUE(file->GetInPartitionOnReplica(0, partition, 0, key, &out).ok());
  EXPECT_TRUE(file->GetInPartitionOnReplica(0, partition, 1, key, &out).ok());
  Status bad = file->GetInPartitionOnReplica(0, partition, 2, key, &out);
  EXPECT_TRUE(bad.IsOutOfRange()) << bad.ToString();
  EXPECT_NE(bad.message().find("replica"), std::string::npos);

  // Replicated flushes (what IndexBuilder issues when materializing a
  // structure) charge the write to every replica holder of the partition.
  sim::NodeId primary = file->NodeOfPartition(partition);
  sim::NodeId secondary = file->NodeOfReplica(partition, 1);
  EXPECT_NE(primary, secondary);
  ASSERT_TRUE(cluster
                  .ChargeReplicatedWrite(primary,
                                         file->placement().ReplicaNodes(
                                             partition),
                                         64)
                  .ok());
  EXPECT_GT(cluster.node(primary).disk().stats().bytes_written.load(), 0u);
  EXPECT_GT(cluster.node(secondary).disk().stats().bytes_written.load(), 0u);
}

// --------------------------------------------------------- engine fixtures

/// The fault_test employee/department dataset with a configurable
/// replication factor: 120 employees over 8 partitions, 10 departments over
/// 4, and a global B-tree over emp's dept field (which inherits emp's
/// replication).
struct ReplicatedLab {
  static constexpr int kEmployees = 120;
  static constexpr int kDepts = 10;

  explicit ReplicatedLab(
      uint32_t rf, EngineOptions options = {},
      sim::ClusterOptions cluster_options = sim::ClusterOptions::ForNodes(4))
      : cluster(cluster_options) {
    engine = std::make_unique<Engine>(&cluster, options);
    auto emp = std::make_shared<io::PartitionedFile>(
        "emp", std::make_shared<io::HashPartitioner>(8), &cluster);
    emp->SetReplicationFactor(rf);
    for (int i = 0; i < kEmployees; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(emp->Append(key, key,
                           io::Record(StrFormat("%d|emp%d|%d", i, i,
                                                i % kDepts)))
                   .ok());
    }
    emp->Seal();
    LH_CHECK(engine->catalog().Register(emp).ok());

    auto dept = std::make_shared<io::PartitionedFile>(
        "dept", std::make_shared<io::HashPartitioner>(4), &cluster);
    dept->SetReplicationFactor(rf);
    for (int d = 0; d < kDepts; ++d) {
      std::string key = io::EncodeInt64Key(d);
      LH_CHECK(dept->Append(key, key,
                            io::Record(StrFormat("%d|dept%d", d, d)))
                   .ok());
    }
    dept->Seal();
    LH_CHECK(engine->catalog().Register(dept).ok());

    index::IndexSpec spec;
    spec.index_name = "emp.dept.idx";
    spec.base_file = "emp";
    spec.placement = index::IndexPlacement::kGlobal;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) -> Status {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(int64_t dept, ParseInt64(FieldAt(row, '|', 2)));
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      posting.index_key = io::EncodeInt64Key(dept);
      posting.target_partition_key = io::EncodeInt64Key(id);
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_CHECK(engine->BuildStructure(spec, "dept").ok());
  }

  /// The dept join with an optional mid-pipeline stage inserted between the
  /// index-entry referencer and the emp dereference.
  StatusOr<Job> DeptJoinJob(StageFunctionPtr mid = nullptr) {
    LH_ASSIGN_OR_RETURN(auto emp, engine->catalog().Get("emp"));
    LH_ASSIGN_OR_RETURN(auto dept, engine->catalog().Get("dept"));
    LH_ASSIGN_OR_RETURN(auto idx_file, engine->catalog().Get("emp.dept.idx"));
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(idx_file);
    LH_CHECK(idx != nullptr);
    JobBuilder builder("dept-join");
    builder
        .Initial(Tuple::Range(io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                              io::Pointer::Broadcast(
                                  io::EncodeInt64Key(kDepts - 1))))
        .Add(MakeRangeDereferencer("deref-idx", idx))
        .Add(MakeIndexEntryReferencer("ref-entry"));
    if (mid != nullptr) builder.Add(std::move(mid));
    builder.Add(MakePointDereferencer("deref-emp", emp))
        .Add(MakeKeyReferencer("ref-dept", EncodedInt64FieldInterpreter(2)))
        .Add(MakePointDereferencer("deref-dept", dept));
    return builder.Build();
  }

  std::shared_ptr<io::BtreeFile> Index() {
    auto idx_file = engine->catalog().Get("emp.dept.idx");
    LH_CHECK(idx_file.ok());
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(*idx_file);
    LH_CHECK(idx != nullptr);
    return idx;
  }

  static std::multiset<std::string> Canonical(
      const std::vector<Tuple>& tuples) {
    std::multiset<std::string> out;
    for (const auto& t : tuples) {
      std::string row;
      for (const auto& r : t.records) {
        row += r.bytes();
        row += '#';
      }
      out.insert(std::move(row));
    }
    return out;
  }

  sim::Cluster cluster;
  std::unique_ptr<Engine> engine;
};

/// Pass-through Referencer that takes one node down the first time any
/// invocation runs — an outage striking at a deterministic point mid-query
/// (between the index scan and the base-file dereferences). With a null
/// `fired` flag it is inert, so the clean run executes the exact same plan.
class OutageTrigger final : public Referencer {
 public:
  OutageTrigger(std::string name, sim::Cluster* cluster, sim::NodeId target,
                std::shared_ptr<std::atomic<bool>> fired)
      : Referencer(std::move(name)),
        cluster_(cluster),
        target_(target),
        fired_(std::move(fired)) {}

  Status Execute(const ExecContext&, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    if (fired_ != nullptr && !fired_->exchange(true)) {
      cluster_->SetNodeOutage(target_, true);
    }
    out->push_back(input);
    return Status::OK();
  }

 private:
  sim::Cluster* cluster_;
  sim::NodeId target_;
  std::shared_ptr<std::atomic<bool>> fired_;
};

// ------------------------------------------------- replication-off parity

TEST(Failover, RfOneKeepsSeedBehaviorBitForBitUnderDeterministicSeed) {
  EngineOptions options;
  options.smpe.deterministic_seed = 42;
  ReplicatedLab lab(1, options);
  auto job = lab.DeptJoinJob();
  ASSERT_TRUE(job.ok());

  auto first = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->tuples.size(), static_cast<size_t>(ReplicatedLab::kEmployees));
  // Unreplicated runs never touch any of the new machinery.
  EXPECT_EQ(first->metrics.failovers, 0u);
  EXPECT_EQ(first->metrics.replica_reads, 0u);
  EXPECT_EQ(first->metrics.hedged_reads, 0u);
  EXPECT_EQ(first->metrics.broadcast_redirects, 0u);

  // Same seed, same engine: the replay is identical down to tuple ORDER,
  // not merely as a multiset — replication_factor=1 is the seed layout.
  auto replay = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->tuples.size(), first->tuples.size());
  for (size_t i = 0; i < first->tuples.size(); ++i) {
    ASSERT_EQ(first->tuples[i].records.size(), replay->tuples[i].records.size());
    for (size_t r = 0; r < first->tuples[i].records.size(); ++r) {
      EXPECT_EQ(first->tuples[i].records[r].bytes(),
                replay->tuples[i].records[r].bytes());
    }
  }
}

TEST(Failover, RfOneOutageStillFailsTheJobCleanly) {
  ReplicatedLab lab(1);
  auto job = lab.DeptJoinJob();
  ASSERT_TRUE(job.ok());
  lab.cluster.SetNodeOutage(2, true);
  auto result = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  lab.cluster.SetNodeOutage(2, false);
  auto recovered = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(recovered.ok());
}

// ----------------------------------------------------- surviving outages

TEST(Failover, RfTwoCompletesWithWholeNodeDownBeforeTheQuery) {
  ReplicatedLab clean_lab(2);
  auto clean_job = clean_lab.DeptJoinJob();
  ASSERT_TRUE(clean_job.ok());
  auto clean = clean_lab.engine->ExecuteCollect(*clean_job,
                                                ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->tuples.size(),
            static_cast<size_t>(ReplicatedLab::kEmployees));
  EXPECT_EQ(clean->metrics.failovers, 0u);

  ReplicatedLab lab(2);
  auto job = lab.DeptJoinJob();
  ASSERT_TRUE(job.ok());
  lab.cluster.SetNodeOutage(2, true);
  auto result = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ReplicatedLab::Canonical(result->tuples),
            ReplicatedLab::Canonical(clean->tuples));
  EXPECT_GT(result->metrics.failovers, 0u);
  EXPECT_GT(result->metrics.replica_reads, 0u);
  lab.cluster.SetNodeOutage(2, false);
}

TEST(Failover, RfTwoSurvivesAnOutageStrikingMidQueryDeterministically) {
  EngineOptions options;
  options.smpe.deterministic_seed = 7;
  ReplicatedLab lab(2, options);

  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto clean_job = lab.DeptJoinJob(std::make_shared<OutageTrigger>(
      "trigger", &lab.cluster, 2, nullptr));
  auto outage_job = lab.DeptJoinJob(std::make_shared<OutageTrigger>(
      "trigger", &lab.cluster, 2, fired));
  ASSERT_TRUE(clean_job.ok());
  ASSERT_TRUE(outage_job.ok());

  auto clean = lab.engine->ExecuteCollect(*clean_job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->tuples.size(),
            static_cast<size_t>(ReplicatedLab::kEmployees));

  auto survived = lab.engine->ExecuteCollect(*outage_job,
                                             ExecutionMode::kSmpe);
  ASSERT_TRUE(fired->load());
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ(ReplicatedLab::Canonical(survived->tuples),
            ReplicatedLab::Canonical(clean->tuples));
  EXPECT_GT(survived->metrics.failovers, 0u);
  EXPECT_GT(survived->metrics.replica_reads, 0u);
  // No retries were configured: failover alone carried the job — replicas
  // are consulted before any backoff, not after burning the retry budget.
  EXPECT_EQ(survived->metrics.retries, 0u);
  lab.cluster.SetNodeOutage(2, false);

  // The lifted cluster runs the clean job again, bit-for-bit with the
  // deterministic replay of the first clean run.
  auto after = lab.engine->ExecuteCollect(*clean_job, ExecutionMode::kSmpe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ReplicatedLab::Canonical(after->tuples),
            ReplicatedLab::Canonical(clean->tuples));
}

TEST(Failover, RfTwoSurvivesMidQueryOutageInThreadedMode) {
  ReplicatedLab lab(2);
  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto clean_job = lab.DeptJoinJob(std::make_shared<OutageTrigger>(
      "trigger", &lab.cluster, 1, nullptr));
  auto outage_job = lab.DeptJoinJob(std::make_shared<OutageTrigger>(
      "trigger", &lab.cluster, 1, fired));
  ASSERT_TRUE(clean_job.ok());
  ASSERT_TRUE(outage_job.ok());

  auto clean = lab.engine->ExecuteCollect(*clean_job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());
  auto survived = lab.engine->ExecuteCollect(*outage_job,
                                             ExecutionMode::kSmpe);
  ASSERT_TRUE(fired->load());
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ(ReplicatedLab::Canonical(survived->tuples),
            ReplicatedLab::Canonical(clean->tuples));
  EXPECT_GT(survived->metrics.failovers, 0u);
  lab.cluster.SetNodeOutage(1, false);
}

TEST(Failover, OutageDuringBroadcastRedirectsCoverageWhenReplicated) {
  // The broadcast happens mid-job here: stage 0 dereferences one dept
  // record; the trigger referencer then downs node 2 and emits a broadcast
  // range over the index, so the fan-out itself runs against a dead
  // destination. With replicas the copy is redirected (kept local, resolved
  // on the dead node's behalf); coverage stays exact.
  class OutageThenBroadcast final : public Referencer {
   public:
    OutageThenBroadcast(std::string name, sim::Cluster* cluster,
                        std::shared_ptr<std::atomic<bool>> fired)
        : Referencer(std::move(name)), cluster_(cluster),
          fired_(std::move(fired)) {}
    Status Execute(const ExecContext&, const Tuple& input,
                   std::vector<Tuple>* out) const override {
      if (fired_ != nullptr && !fired_->exchange(true)) {
        cluster_->SetNodeOutage(2, true);
      }
      Tuple range = Tuple::Range(
          io::Pointer::Broadcast(io::EncodeInt64Key(0)),
          io::Pointer::Broadcast(io::EncodeInt64Key(
              ReplicatedLab::kDepts - 1)));
      range.records = input.records;
      out->push_back(std::move(range));
      return Status::OK();
    }
   private:
    sim::Cluster* cluster_;
    std::shared_ptr<std::atomic<bool>> fired_;
  };

  EngineOptions options;
  options.smpe.deterministic_seed = 11;
  ReplicatedLab lab(2, options);
  auto dept = lab.engine->catalog().Get("dept");
  auto emp = lab.engine->catalog().Get("emp");
  ASSERT_TRUE(dept.ok());
  ASSERT_TRUE(emp.ok());

  auto build = [&](std::shared_ptr<std::atomic<bool>> fired) {
    return JobBuilder("broadcast-under-outage")
        .Initial(Tuple::Point(io::Pointer::Keyed(io::EncodeInt64Key(0))))
        .Add(MakePointDereferencer("deref-seed", *dept))
        .Add(std::make_shared<OutageThenBroadcast>("trigger", &lab.cluster,
                                                   fired))
        .Add(MakeRangeDereferencer("deref-idx", lab.Index()))
        .Add(MakeIndexEntryReferencer("ref-entry"))
        .Add(MakePointDereferencer("deref-emp", *emp))
        .Build();
  };
  auto clean_job = build(nullptr);
  auto outage_job = build(std::make_shared<std::atomic<bool>>(false));
  ASSERT_TRUE(clean_job.ok());
  ASSERT_TRUE(outage_job.ok());

  auto clean = lab.engine->ExecuteCollect(*clean_job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->tuples.size(),
            static_cast<size_t>(ReplicatedLab::kEmployees));

  auto survived = lab.engine->ExecuteCollect(*outage_job,
                                             ExecutionMode::kSmpe);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ(ReplicatedLab::Canonical(survived->tuples),
            ReplicatedLab::Canonical(clean->tuples));
  EXPECT_GT(survived->metrics.broadcast_redirects, 0u);
  EXPECT_GT(survived->metrics.failovers, 0u);
  lab.cluster.SetNodeOutage(2, false);
}

TEST(Failover, OutageMidBatchFailsWholeBatchesOverToReplicas) {
  EngineOptions options;
  options.smpe.deterministic_seed = 13;
  options.smpe.batch.enabled = true;
  options.smpe.batch.max_batch_size = 16;
  ReplicatedLab lab(2, options);

  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto clean_job = lab.DeptJoinJob(std::make_shared<OutageTrigger>(
      "trigger", &lab.cluster, 3, nullptr));
  auto outage_job = lab.DeptJoinJob(std::make_shared<OutageTrigger>(
      "trigger", &lab.cluster, 3, fired));
  ASSERT_TRUE(clean_job.ok());
  ASSERT_TRUE(outage_job.ok());

  auto clean = lab.engine->ExecuteCollect(*clean_job, ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->metrics.deref_batches, 0u);

  auto survived = lab.engine->ExecuteCollect(*outage_job,
                                             ExecutionMode::kSmpe);
  ASSERT_TRUE(fired->load());
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ(ReplicatedLab::Canonical(survived->tuples),
            ReplicatedLab::Canonical(clean->tuples));
  EXPECT_GT(survived->metrics.deref_batches, 0u);
  EXPECT_GT(survived->metrics.failovers, 0u);
  lab.cluster.SetNodeOutage(3, false);
}

TEST(Failover, AllReplicasDownSurfacesTheOutageError) {
  ReplicatedLab lab(2);
  auto job = lab.DeptJoinJob();
  ASSERT_TRUE(job.ok());
  // Partition p lives on nodes {p%4, (p+1)%4}; downing two adjacent nodes
  // kills both replicas of at least one partition.
  lab.cluster.SetNodeOutage(1, true);
  lab.cluster.SetNodeOutage(2, true);
  auto result = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  lab.cluster.SetNodeOutage(1, false);
  lab.cluster.SetNodeOutage(2, false);
  auto recovered = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(recovered.ok());
}

// ------------------------------------------------------------ hedged reads

TEST(HedgedReads, SecondReplicaRacesTheSlowPrimaryWithoutChangingResults) {
  sim::ClusterOptions cluster_options = sim::ClusterOptions::ForNodes(4);
  // Timed disks make the primary genuinely slow, so an immediate hedge
  // deadline always fires; a small time scale keeps the test fast.
  cluster_options.EnableTiming(true, 0.05);

  EngineOptions plain;
  ReplicatedLab clean_lab(2, plain);
  auto clean_job = clean_lab.DeptJoinJob();
  ASSERT_TRUE(clean_job.ok());
  auto clean = clean_lab.engine->ExecuteCollect(*clean_job,
                                                ExecutionMode::kSmpe);
  ASSERT_TRUE(clean.ok());

  EngineOptions hedged;
  hedged.smpe.hedge.enabled = true;
  hedged.smpe.hedge.deadline_us = 0;  // hedge every point read
  ReplicatedLab lab(2, hedged, cluster_options);
  auto job = lab.DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto result = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ReplicatedLab::Canonical(result->tuples),
            ReplicatedLab::Canonical(clean->tuples));
  EXPECT_GT(result->metrics.hedged_reads, 0u);
  // Winners on either side are fine; what is not fine is double emission —
  // the canonical equality above rules that out.
  EXPECT_LE(result->metrics.hedge_wins, result->metrics.hedged_reads);
}

TEST(HedgedReads, DisabledUnderDeterministicSchedules) {
  EngineOptions options;
  options.smpe.hedge.enabled = true;
  options.smpe.hedge.deadline_us = 0;
  options.smpe.deterministic_seed = 5;
  ReplicatedLab lab(2, options);
  auto job = lab.DeptJoinJob();
  ASSERT_TRUE(job.ok());
  auto result = lab.engine->ExecuteCollect(*job, ExecutionMode::kSmpe);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.hedged_reads, 0u);
  EXPECT_EQ(result->metrics.hedge_wins, 0u);
}

// ------------------------------------------- deadlines and cancellation

/// Dereferencer that sleeps per tuple (cooperatively checking the run's
/// CancelToken first) — a stand-in for a pathologically slow device.
class SleepyDeref final : public Dereferencer {
 public:
  SleepyDeref(std::string name, uint64_t sleep_us,
              std::shared_ptr<std::atomic<uint64_t>> executed)
      : Dereferencer(std::move(name)),
        sleep_us_(sleep_us),
        executed_(std::move(executed)) {}

  Status Execute(const ExecContext& ctx, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      return ctx.cancel->cause();
    }
    executed_->fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    out->push_back(input);
    return Status::OK();
  }

 private:
  uint64_t sleep_us_;
  std::shared_ptr<std::atomic<uint64_t>> executed_;
};

/// Fans one input out into `n` keyed tuples.
class FanOut final : public Referencer {
 public:
  FanOut(std::string name, int n) : Referencer(std::move(name)), n_(n) {}
  Status Execute(const ExecContext&, const Tuple&,
                 std::vector<Tuple>* out) const override {
    for (int i = 0; i < n_; ++i) {
      out->push_back(Tuple::Point(io::Pointer::Keyed(io::EncodeInt64Key(i))));
    }
    return Status::OK();
  }
 private:
  int n_;
};

StatusOr<Job> SleepyJob(uint64_t sleep_us, int fan_out,
                        std::shared_ptr<std::atomic<uint64_t>> executed) {
  return JobBuilder("sleepy")
      .Initial(Tuple::Range(io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                            io::Pointer::Broadcast(io::EncodeInt64Key(1))))
      .Add(std::make_shared<SleepyDeref>("gate", 0, executed))
      .Add(std::make_shared<FanOut>("fan", fan_out))
      .Add(std::make_shared<SleepyDeref>("sleepy", sleep_us, executed))
      .Build();
}

TEST(Deadline, ExpiryReturnsDeadlineExceededAndDropsQueuedWork) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  SmpeOptions options;
  options.threads_per_node = 1;  // serialize: most tasks still queued at expiry
  options.deadline_ms = 10;
  SmpeExecutor executor(&cluster, options);

  auto executed = std::make_shared<std::atomic<uint64_t>>(0);
  auto job = SleepyJob(/*sleep_us=*/20000, /*fan_out=*/32, executed);
  ASSERT_TRUE(job.ok());

  StopWatch watch;
  TupleCollector sink;
  auto result = executor.Execute(*job, sink.AsSink());
  const double elapsed_ms = watch.ElapsedMillis();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("sleepy"), std::string::npos)
      << result.status().ToString();
  // Without cancellation the 4x32 sleepy tasks at 20ms each on one thread
  // per node would take ~640ms; expiry must cut that short: in-flight tasks
  // finish their attempt, queued ones drain unexecuted.
  EXPECT_LT(elapsed_ms, 500.0);
  EXPECT_LT(executed->load(), 4u + 4u * 32u);

  // Zero leaked tasks: the same executor immediately runs a fast job to
  // completion within the same deadline.
  auto quick = JobBuilder("quick")
                   .Initial(Tuple::Range(
                       io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                       io::Pointer::Broadcast(io::EncodeInt64Key(1))))
                   .Add(std::make_shared<SleepyDeref>("noop", 0, executed))
                   .Build();
  ASSERT_TRUE(quick.ok());
  TupleCollector quick_sink;
  auto ok = executor.Execute(*quick, quick_sink.AsSink());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(Deadline, FiresInDeterministicModeToo) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  SmpeOptions options;
  options.deterministic_seed = 3;
  options.deadline_ms = 10;
  SmpeExecutor executor(&cluster, options);

  auto executed = std::make_shared<std::atomic<uint64_t>>(0);
  auto job = SleepyJob(/*sleep_us=*/20000, /*fan_out=*/32, executed);
  ASSERT_TRUE(job.ok());
  StopWatch watch;
  auto result = executor.Execute(*job, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_LT(watch.ElapsedMillis(), 500.0);
  EXPECT_LT(executed->load(), 4u + 4u * 32u);
}

TEST(Deadline, GenerousDeadlineNeverFires) {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  SmpeOptions options;
  options.deadline_ms = 60000;
  SmpeExecutor executor(&cluster, options);
  auto executed = std::make_shared<std::atomic<uint64_t>>(0);
  auto job = SleepyJob(/*sleep_us=*/10, /*fan_out=*/8, executed);
  ASSERT_TRUE(job.ok());
  TupleCollector sink;
  auto result = executor.Execute(*job, sink.AsSink());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.output_tuples, 4u * 8u);
  EXPECT_EQ(result->metrics.tasks_dropped_on_failure, 0u);
}

TEST(Deadline, FirstPermanentErrorWinsOverLaterExpiry) {
  // A permanent error cancels the run before the (generous) deadline; the
  // cause reported must be the error, not kDeadlineExceeded.
  class FailingDeref final : public Dereferencer {
   public:
    explicit FailingDeref(std::string name) : Dereferencer(std::move(name)) {}
    Status Execute(const ExecContext&, const Tuple&,
                   std::vector<Tuple>*) const override {
      return Status::Aborted("poisoned stage");
    }
  };
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(2));
  SmpeOptions options;
  options.deadline_ms = 60000;
  SmpeExecutor executor(&cluster, options);
  auto job = JobBuilder("poisoned")
                 .Initial(Tuple::Range(
                     io::Pointer::Broadcast(io::EncodeInt64Key(0)),
                     io::Pointer::Broadcast(io::EncodeInt64Key(1))))
                 .Add(std::make_shared<FailingDeref>("poison"))
                 .Build();
  ASSERT_TRUE(job.ok());
  auto result = executor.Execute(*job, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("poisoned stage"),
            std::string::npos);
}

// ----------------------------------------------------------- cancel token

TEST(CancelToken, FirstCauseWinsAndResetRearms) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Cancel(Status::Aborted("first")));
  EXPECT_FALSE(token.Cancel(Status::IOError("second")));
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cause().IsAborted());
  EXPECT_NE(token.cause().message().find("first"), std::string::npos);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Cancel(Status::DeadlineExceeded("late")));
  EXPECT_TRUE(token.cause().IsDeadlineExceeded());
}

TEST(CancelToken, ConcurrentCancelsAgreeOnOneCause) {
  CancelToken token;
  constexpr int kThreads = 8;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (token.Cancel(Status::Aborted("cause " + std::to_string(t)))) {
        wins.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cause().IsAborted());
}

}  // namespace
}  // namespace lakeharbor::rede
