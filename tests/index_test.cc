#include <gtest/gtest.h>

#include <memory>

#include "common/string_util.h"
#include "index/index_builder.h"
#include "index/index_catalog.h"
#include "index/index_entry.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"
#include "sim/cluster.h"

namespace lakeharbor::index {
namespace {

TEST(IndexEntry, RoundTrip) {
  io::Record entry = MakeIndexEntry("pk", "in-key");
  auto ptr = ParseIndexEntry(entry);
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(ptr->partition_key, "pk");
  EXPECT_EQ(ptr->key, "in-key");
  EXPECT_TRUE(ptr->has_partition);
}

TEST(IndexEntry, RejectsMalformed) {
  EXPECT_TRUE(ParseIndexEntry(io::Record(std::string("no-separator")))
                  .status()
                  .IsCorruption());
}

/// Fixture: a base file of rows "id|category|payload", id 0..N-1, category
/// id % 10, hash-partitioned by id.
struct BuilderFixture : ::testing::Test {
  static constexpr int kRows = 200;

  BuilderFixture()
      : cluster(sim::ClusterOptions::ForNodes(4)), builder(&catalog) {
    base = std::make_shared<io::PartitionedFile>(
        "base", std::make_shared<io::HashPartitioner>(8), &cluster);
    for (int i = 0; i < kRows; ++i) {
      std::string key = io::EncodeInt64Key(i);
      LH_CHECK(base->Append(key, key,
                            io::Record(StrFormat("%d|%d|payload", i, i % 10)))
                   .ok());
    }
    base->Seal();
    LH_CHECK(catalog.Register(base).ok());
  }

  IndexSpec CategorySpec(IndexPlacement placement) {
    IndexSpec spec;
    spec.index_name = "base.category.idx";
    spec.base_file = "base";
    spec.placement = placement;
    spec.extract = [](const io::Record& record,
                      std::vector<Posting>* out) -> Status {
      std::string_view row = record.slice().view();
      Posting posting;
      posting.index_key = std::string(FieldAt(row, '|', 1));
      LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
      posting.target_partition_key = io::EncodeInt64Key(id);
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    return spec;
  }

  sim::Cluster cluster;
  io::Catalog catalog;
  IndexBuilder builder;
  std::shared_ptr<io::PartitionedFile> base;
};

TEST_F(BuilderFixture, GlobalBuildIndexesEveryRecord) {
  auto index = builder.Build(CategorySpec(IndexPlacement::kGlobal));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_records(), static_cast<uint64_t>(kRows));
  EXPECT_TRUE(catalog.Contains("base.category.idx"));

  // All 20 entries for category "3" resolve to records with id % 10 == 3.
  // Global placement: all duplicates of one key live in ONE partition.
  std::vector<io::Record> entries;
  uint32_t p = (*index)->partitioner().PartitionOf("3");
  ASSERT_TRUE(
      (*index)->GetInPartition((*index)->NodeOfPartition(p), p, "3", &entries)
          .ok());
  EXPECT_EQ(entries.size(), 20u);
  for (const auto& entry : entries) {
    auto ptr = ParseIndexEntry(entry);
    ASSERT_TRUE(ptr.ok());
    std::vector<io::Record> records;
    ASSERT_TRUE(base->Get(0, *ptr, &records).ok());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(FieldAt(records[0].slice().view(), '|', 1), "3");
  }
}

TEST_F(BuilderFixture, LocalBuildMirrorsBasePartitions) {
  auto index = builder.Build(CategorySpec(IndexPlacement::kLocal));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_partitions(), base->num_partitions());
  // Local placement: entries for category 3 are spread over partitions,
  // each pointing at a *local* base record.
  uint64_t total = 0;
  for (uint32_t p = 0; p < (*index)->num_partitions(); ++p) {
    std::vector<io::Record> entries;
    ASSERT_TRUE((*index)
                    ->GetInPartition((*index)->NodeOfPartition(p), p, "3",
                                     &entries)
                    .ok());
    for (const auto& entry : entries) {
      auto ptr = ParseIndexEntry(entry);
      ASSERT_TRUE(ptr.ok());
      EXPECT_EQ(base->partitioner().PartitionOf(ptr->partition_key), p)
          << "local index entry points at a non-local record";
    }
    total += entries.size();
  }
  EXPECT_EQ(total, 20u);
}

TEST_F(BuilderFixture, BuildChargesScanAndWrites) {
  cluster.ResetStats();
  ASSERT_TRUE(builder.Build(CategorySpec(IndexPlacement::kGlobal)).ok());
  auto totals = cluster.TotalStats();
  EXPECT_GT(totals.bytes_sequential, 0u);  // base scanned
  // Entry writes are page-batched, but every entry byte must be charged.
  EXPECT_GE(totals.writes, 1u);
  uint64_t expected_bytes = 0;
  for (int i = 0; i < kRows; ++i) {
    // entry = target partition key (16) + sep (1) + target key (16),
    // plus the index key ("0".."9", 1 byte) charged alongside it.
    expected_bytes += 16 + 1 + 16 + 1;
  }
  EXPECT_EQ(totals.bytes_written, expected_bytes);
}

TEST_F(BuilderFixture, TinyWriteBatchChargesPerPosting) {
  cluster.ResetStats();
  IndexSpec spec = CategorySpec(IndexPlacement::kGlobal);
  spec.write_batch_bytes = 1;  // force a flush per posting
  ASSERT_TRUE(builder.Build(spec).ok());
  EXPECT_EQ(cluster.TotalStats().writes, static_cast<uint64_t>(kRows));
}

TEST_F(BuilderFixture, MissingBaseFileFails) {
  IndexSpec spec = CategorySpec(IndexPlacement::kGlobal);
  spec.base_file = "nope";
  EXPECT_TRUE(builder.Build(spec).status().IsNotFound());
}

TEST_F(BuilderFixture, MissingExtractorFails) {
  IndexSpec spec = CategorySpec(IndexPlacement::kGlobal);
  spec.extract = nullptr;
  EXPECT_TRUE(builder.Build(spec).status().IsInvalidArgument());
}

TEST_F(BuilderFixture, ExtractorErrorAborts) {
  IndexSpec spec = CategorySpec(IndexPlacement::kGlobal);
  spec.extract = [](const io::Record&, std::vector<Posting>*) {
    return Status::Corruption("cannot parse");
  };
  EXPECT_TRUE(builder.Build(spec).status().IsCorruption());
}

TEST_F(BuilderFixture, BackgroundBuildCompletes) {
  auto handle = builder.BuildInBackground(CategorySpec(IndexPlacement::kGlobal));
  ASSERT_TRUE(handle->Join().ok());
  EXPECT_TRUE(catalog.Contains("base.category.idx"));
}

TEST_F(BuilderFixture, BackgroundBuildReportsFailure) {
  IndexSpec spec = CategorySpec(IndexPlacement::kGlobal);
  spec.base_file = "nope";
  auto handle = builder.BuildInBackground(spec);
  EXPECT_TRUE(handle->Join().IsNotFound());
  EXPECT_FALSE(catalog.Contains("base.category.idx"));
}

TEST(IndexCatalog, AddFindStates) {
  IndexCatalog catalog;
  IndexMeta meta;
  meta.index_name = "idx";
  meta.base_file = "base";
  meta.attribute = "cat";
  meta.placement = IndexPlacement::kLocal;
  ASSERT_TRUE(catalog.Add(meta).ok());
  EXPECT_TRUE(catalog.Add(meta).IsAlreadyExists());

  // Still building: not discoverable as ready.
  EXPECT_FALSE(catalog.FindReady("base", "cat").has_value());
  ASSERT_TRUE(catalog.SetState("idx", IndexMeta::State::kReady).ok());
  auto found = catalog.FindReady("base", "cat");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->index_name, "idx");
  EXPECT_FALSE(catalog.FindReady("base", "other").has_value());
  EXPECT_TRUE(catalog.SetState("nope", IndexMeta::State::kReady).IsNotFound());
  EXPECT_EQ(catalog.ListForBase("base").size(), 1u);
  EXPECT_EQ(catalog.ListAll().size(), 1u);
}

TEST(IndexPlacementNames, Strings) {
  EXPECT_STREQ(IndexPlacementToString(IndexPlacement::kLocal), "local");
  EXPECT_STREQ(IndexPlacementToString(IndexPlacement::kGlobal), "global");
}

}  // namespace
}  // namespace lakeharbor::index
