#!/usr/bin/env bash
# Build the chaos-labeled test suites (fault injection, deterministic
# scheduling, replica failover / deadlines, multi-tenant job scheduling)
# under ThreadSanitizer and run them. The chaos tests exercise every
# cross-thread handoff in the executor stack — outage flips mid-run, hedge
# races, cancellation, queue drains, overlapped runs sharing one record
# cache (sched_test) — so a TSan-clean pass is the "zero leaked inflight
# tasks, no torn state" acceptance gate. The obs-labeled suite (trace recorder, histograms,
# profiler) rides along: its lock-free thread-local span buffers are exactly
# the kind of code TSan exists for.
#
# Usage: scripts/run_chaos_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DLH_SANITIZE=thread \
  -DLAKEHARBOR_BUILD_BENCHMARKS=OFF \
  -DLAKEHARBOR_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'chaos|obs'
