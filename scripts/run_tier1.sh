#!/usr/bin/env bash
# Tier-1 gate: configure + build the full tree (tests, benches, examples)
# with warnings-as-errors and run the complete ctest suite — including the
# scheduler suites (sched_test, schedule_test) and the bench_smoke runs
# (traffic_mix among them). This is the one-command check a PR must keep
# green.
#
# Usage: scripts/run_tier1.sh [build-dir]   (default: build)
#
# A pre-existing build dir is reused (the -DLH_WERROR=ON cache update
# triggers the necessary reconfigure); pass a fresh dir for a from-scratch
# run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DLH_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
