#pragma once

#include <cstdint>

#include "common/status.h"
#include "sim/fault.h"
#include "sim/resource_stats.h"

namespace lakeharbor::sim {

/// Configuration of the simulated interconnect (the paper: 10 Gbps switch).
struct NetworkOptions {
  /// One-way message latency.
  uint64_t message_latency_us = 50;
  /// Link bandwidth, bytes per second (default 10 Gbps).
  uint64_t bandwidth_bytes_per_sec = 1250ull * 1024 * 1024;
  bool timing_enabled = false;
  double time_scale = 1.0;
  /// Deterministic, seeded fault injection (probabilistic kUnavailable /
  /// kIoError dropped transfers plus latency spikes). Off by default.
  FaultOptions faults;
};

/// A simple full-bisection network model: every cross-node record transfer
/// pays per-message latency plus size/bandwidth. Latency dominates for the
/// small record-sized messages ReDe sends, which matches the fine-grained
/// access pattern the paper targets.
class Network {
 public:
  explicit Network(NetworkOptions options)
      : options_(options), injector_(options.faults) {}

  /// Model moving `bytes` between two distinct nodes. Fault injection may
  /// fail the transfer (a dropped/timed-out message).
  Status Transfer(size_t bytes);

  /// Install new probabilistic fault knobs at runtime and rewind the
  /// deterministic fault stream.
  void ConfigureFaults(const FaultOptions& faults) {
    injector_.Configure(faults);
  }

  /// Interconnect-wide outage: every transfer fails with kUnavailable.
  void SetOutage(bool down) { injector_.SetOutage(down); }
  bool in_outage() const { return injector_.outage(); }

  const ResourceStats& stats() const { return stats_; }
  ResourceStats& mutable_stats() { return stats_; }
  const NetworkOptions& options() const { return options_; }

  /// Toggle timing simulation at runtime (counters always run).
  void SetTimingEnabled(bool enabled) { options_.timing_enabled = enabled; }

 private:
  NetworkOptions options_;
  ResourceStats stats_;
  FaultInjector injector_;
};

}  // namespace lakeharbor::sim
