#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "concurrent/semaphore.h"
#include "sim/fault.h"
#include "sim/resource_stats.h"

namespace lakeharbor::sim {

/// Configuration of a simulated storage device.
///
/// The defaults model one node of the paper's testbed: a RAID-6 array of 24
/// 10K-RPM SAS HDDs with a deep device queue (the paper sets
/// queue_depth=1008 at the OS level; the *device* can overlap roughly one
/// I/O per spindle, which is what `io_slots` bounds).
struct DiskOptions {
  /// Maximum concurrently-serviced I/Os (spindle-level parallelism).
  size_t io_slots = 24;
  /// Service time of one random read once admitted.
  uint64_t random_read_latency_us = 2000;
  /// Incremental service time of each follow-up key in a batched random
  /// read: after the initial seek, subsequent same-partition probes ride
  /// the head position / readahead window instead of paying a full seek.
  uint64_t batch_followup_latency_us = 250;
  /// Streaming bandwidth for sequential scans, bytes per second.
  uint64_t scan_bandwidth_bytes_per_sec = 50ull * 1024 * 1024;
  /// Granularity at which sequential scans reserve the device.
  size_t scan_chunk_bytes = 1 * 1024 * 1024;
  /// When false, no real time elapses; only counters move. Tests use this.
  bool timing_enabled = false;
  /// Scale all simulated delays (0.1 = 10x faster than modeled).
  double time_scale = 1.0;
  /// Deterministic, seeded fault injection (probabilistic kIoError /
  /// kUnavailable plus latency spikes). Off by default.
  FaultOptions faults;
};

/// A simulated disk: bounded-concurrency random reads with fixed service
/// latency, plus bandwidth-modeled sequential scans. Real threads block in
/// RandomRead/SequentialRead exactly as they would block on a synchronous
/// pread, so executor-level concurrency behaviour is genuine.
class Disk {
 public:
  explicit Disk(DiskOptions options);

  /// One random record read of `bytes`. Blocks the calling thread for the
  /// modeled service time (timing mode). Fault injection may fail it.
  Status RandomRead(size_t bytes);

  /// One *fused* random read resolving `ops` same-partition keys totalling
  /// `bytes`. The batch is a single device operation: one fault-stream
  /// assessment, one I/O slot admission, and latency
  /// `random_read_latency_us + (ops - 1) * batch_followup_latency_us`.
  /// Counts as ONE random_read (plus batched_reads/batched_ops), which is
  /// what makes dereference batching measurable. ops == 0 is a no-op.
  Status BatchRandomRead(size_t ops, size_t bytes);

  /// Stream `bytes` sequentially, reserving the device in chunks so that
  /// concurrent scanners on the same disk share bandwidth fairly.
  Status SequentialRead(size_t bytes);

  /// Model an index/file write (structure maintenance cost accounting).
  Status Write(size_t bytes);

  /// After `n` more successful operations, every operation fails with
  /// IOError until ClearFault(). n == 0 makes the next operation fail.
  void InjectFaultAfter(uint64_t n);

  /// Transient-fault mode: deterministically fail every `n`-th operation
  /// (n >= 2) while the rest succeed — the retryable-error pattern real
  /// devices and object stores exhibit. Cleared by ClearFault().
  void InjectFaultEvery(uint64_t n);

  void ClearFault();

  /// Install new probabilistic fault knobs at runtime and rewind the
  /// deterministic fault stream (benches sweep the rate between phases;
  /// tests replay a fixed seed). Independent of InjectFault{After,Every}.
  void ConfigureFaults(const FaultOptions& faults) {
    injector_.Configure(faults);
  }

  /// Outage window: while down, every operation fails with kUnavailable.
  /// Toggled per node via Cluster::SetNodeOutage.
  void SetOutage(bool down) { injector_.SetOutage(down); }
  bool in_outage() const { return injector_.outage(); }

  /// Toggle timing simulation at runtime (counters always run). Benches
  /// load data untimed and enable timing only for the measured phase.
  void SetTimingEnabled(bool enabled) { options_.timing_enabled = enabled; }

  const ResourceStats& stats() const { return stats_; }
  ResourceStats& mutable_stats() { return stats_; }
  const DiskOptions& options() const { return options_; }

 private:
  /// Draws the next operation's fate. On success, `*latency_scale` (when
  /// non-null) is multiplied by any injected latency spike.
  Status MaybeFault(double* latency_scale = nullptr);
  void SleepUs(double us) const;

  DiskOptions options_;
  Semaphore slots_;
  std::mutex scan_mutex_;  // scans are serialized per device (HDD-like)
  ResourceStats stats_;
  FaultInjector injector_;

  std::atomic<bool> fault_armed_{false};
  std::atomic<int64_t> ops_until_fault_{0};
  std::atomic<uint64_t> fault_every_{0};  // 0 = off
  std::atomic<uint64_t> op_counter_{0};
};

}  // namespace lakeharbor::sim
