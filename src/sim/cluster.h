#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/resource_stats.h"

namespace lakeharbor::sim {

using NodeId = uint32_t;

/// One compute/storage node of the simulated cluster: an id plus its disk.
/// Compute is real (the executors run real threads "on" nodes); only the
/// I/O devices are simulated.
class Node {
 public:
  Node(NodeId id, DiskOptions disk_options)
      : id_(id), disk_(std::make_unique<Disk>(disk_options)) {}
  LH_DISALLOW_COPY_AND_ASSIGN(Node);

  NodeId id() const { return id_; }
  Disk& disk() { return *disk_; }
  const Disk& disk() const { return *disk_; }

 private:
  NodeId id_;
  std::unique_ptr<Disk> disk_;
};

/// Cluster-wide simulation parameters.
struct ClusterOptions {
  uint32_t num_nodes = 8;
  DiskOptions disk;
  NetworkOptions network;

  /// Default options with a given node count (counting mode — no timing).
  static ClusterOptions ForNodes(uint32_t n) {
    ClusterOptions options;
    options.num_nodes = n;
    return options;
  }

  /// Convenience: flip timing simulation on/off for every device at once.
  ClusterOptions& EnableTiming(bool enabled, double time_scale = 1.0) {
    disk.timing_enabled = enabled;
    disk.time_scale = time_scale;
    network.timing_enabled = enabled;
    network.time_scale = time_scale;
    return *this;
  }
};

/// The simulated cluster substituting for the paper's 128-node testbed.
/// Storage-layer code asks the cluster to charge device costs: a read of a
/// record in partition P placed on node N, issued from node M, costs one
/// random read on N's disk plus a network hop when M != N.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  LH_DISALLOW_COPY_AND_ASSIGN(Cluster);

  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  Node& node(NodeId id) {
    LH_CHECK(id < nodes_.size());
    return *nodes_[id];
  }
  Network& network() { return *network_; }
  const ClusterOptions& options() const { return options_; }

  /// Charge one random record read of `bytes` stored on `storage_node`,
  /// issued by code running on `compute_node`.
  Status ChargeRandomRead(NodeId compute_node, NodeId storage_node,
                          size_t bytes);

  /// Charge one fused batch read resolving `ops` same-partition keys
  /// totalling `bytes` on `storage_node` (one seek + cheap follow-ups; see
  /// Disk::BatchRandomRead). Remote access pays one transfer for the whole
  /// batch — coalescing saves messages as well as seeks.
  Status ChargeBatchRead(NodeId compute_node, NodeId storage_node, size_t ops,
                         size_t bytes);

  /// Charge a sequential scan of `bytes` on `storage_node` (plus transfer
  /// when remote).
  Status ChargeSequentialRead(NodeId compute_node, NodeId storage_node,
                              size_t bytes);

  /// Charge a write of `bytes` on `storage_node` (structure maintenance).
  Status ChargeWrite(NodeId compute_node, NodeId storage_node, size_t bytes);

  /// Charge a replicated write: the payload is written to EVERY replica
  /// node (disk write each, plus a transfer per remote replica). This is
  /// the ingest-side cost of replication_factor > 1 — durability is paid
  /// for up front, not discovered at failover time.
  Status ChargeReplicatedWrite(NodeId compute_node,
                               const std::vector<NodeId>& replicas,
                               size_t bytes);

  /// Charge a pure control message between two nodes (task shipping,
  /// broadcast fan-out).
  Status ChargeMessage(NodeId from, NodeId to, size_t bytes);

  /// Sum of all device counters (disks + network).
  ResourceTotals TotalStats() const;

  /// Reset every device counter.
  void ResetStats();

  /// Toggle timing simulation on every device at runtime. Loading and
  /// structure builds typically run untimed; only measured query phases
  /// pay simulated latencies.
  void SetTimingEnabled(bool enabled);

  /// Install the same probabilistic fault knobs on every node's disk and
  /// rewind each deterministic fault stream (benches sweep the rate
  /// between measured phases). Per-node disk seeds are derived from
  /// `faults.seed` + node id so that nodes fault independently.
  void ConfigureDiskFaults(const FaultOptions& faults);

  /// Install fault knobs on the interconnect.
  void ConfigureNetworkFaults(const FaultOptions& faults);

  /// Toggle an outage window on one node: while down, its disk and every
  /// message to or from it fail with kUnavailable — the whole-node failure
  /// mode a production lake must survive.
  void SetNodeOutage(NodeId id, bool down);
  bool NodeIsDown(NodeId id) const {
    LH_CHECK(id < node_down_.size());
    return node_down_[id].load(std::memory_order_relaxed);
  }

 private:
  ClusterOptions options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Network> network_;
  std::vector<std::atomic<bool>> node_down_;
};

}  // namespace lakeharbor::sim
