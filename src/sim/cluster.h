#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/status_or.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/resource_stats.h"

namespace lakeharbor::sim {

using NodeId = uint32_t;

/// One compute/storage node of the simulated cluster: an id plus its disk.
/// Compute is real (the executors run real threads "on" nodes); only the
/// I/O devices are simulated.
class Node {
 public:
  Node(NodeId id, DiskOptions disk_options)
      : id_(id), disk_(std::make_unique<Disk>(disk_options)) {}
  LH_DISALLOW_COPY_AND_ASSIGN(Node);

  NodeId id() const { return id_; }
  Disk& disk() { return *disk_; }
  const Disk& disk() const { return *disk_; }

 private:
  NodeId id_;
  std::unique_ptr<Disk> disk_;
};

/// Cluster-wide simulation parameters.
struct ClusterOptions {
  uint32_t num_nodes = 8;
  DiskOptions disk;
  NetworkOptions network;

  /// Upper bound on nodes this cluster can ever hold (initial + joins).
  /// 0 means "auto": max(num_nodes * 2, 64). The bound exists because node
  /// slots are pre-allocated so that concurrent readers never race a vector
  /// reallocation when a node joins mid-run.
  uint32_t max_nodes = 0;

  /// Default options with a given node count (counting mode — no timing).
  static ClusterOptions ForNodes(uint32_t n) {
    ClusterOptions options;
    options.num_nodes = n;
    return options;
  }

  /// Convenience: flip timing simulation on/off for every device at once.
  ClusterOptions& EnableTiming(bool enabled, double time_scale = 1.0) {
    disk.timing_enabled = enabled;
    disk.time_scale = time_scale;
    network.timing_enabled = enabled;
    network.time_scale = time_scale;
    return *this;
  }
};

/// The simulated cluster substituting for the paper's 128-node testbed.
/// Storage-layer code asks the cluster to charge device costs: a read of a
/// record in partition P placed on node N, issued from node M, costs one
/// random read on N's disk plus a network hop when M != N.
///
/// Membership is elastic: `AddNode` registers a node online (ids are dense
/// and never reused) and `RemoveNode` decommissions one. Node slots are
/// pre-sized to `max_nodes` at construction and published with a
/// release-store on `num_nodes_`, so readers holding an id < num_nodes()
/// can use it lock-free while a join runs concurrently. Removal is
/// drain-first: callers (the rebalancer) migrate data away while the node
/// still serves, and only then call RemoveNode — after which the node
/// reads/writes/messages fail kUnavailable exactly like an outage, but
/// permanently.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  LH_DISALLOW_COPY_AND_ASSIGN(Cluster);

  /// Registered nodes (including decommissioned ones — ids stay dense).
  uint32_t num_nodes() const {
    return num_nodes_.load(std::memory_order_acquire);
  }
  uint32_t max_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  Node& node(NodeId id) {
    LH_CHECK(id < num_nodes());
    return *nodes_[id];
  }
  Network& network() { return *network_; }
  const ClusterOptions& options() const { return options_; }

  /// Register one new node online. Its disk inherits the cluster's disk
  /// options, the currently configured fault knobs (with a per-node derived
  /// seed) and timing mode. Returns the new dense id, or kResourceExhausted
  /// when the pre-sized capacity (`ClusterOptions::max_nodes`) is full.
  StatusOr<NodeId> AddNode();

  /// Decommission a node: it permanently leaves the serving set. All
  /// charges against it fail kUnavailable from this call on, NodeIsDown()
  /// reports it down (so replica failover skips it), and ActiveNodeIds()
  /// excludes it. The id is never reused. Callers drain data off the node
  /// FIRST (see io::Rebalancer) — removing an undrained rf=1 node loses
  /// the only copy.
  Status RemoveNode(NodeId id);

  /// True when `id` was decommissioned via RemoveNode.
  bool NodeIsRemoved(NodeId id) const {
    LH_CHECK(id < node_removed_.size());
    return node_removed_[id].load(std::memory_order_acquire);
  }

  /// Ids of registered, non-removed nodes, ascending. This is the member
  /// list new PlacementMaps are built from.
  std::vector<NodeId> ActiveNodeIds() const;
  uint32_t num_active_nodes() const;

  /// Monotonic placement-epoch counter, bumped once per committed
  /// rebalance (io::Rebalancer). Executors stamp it on broadcast tuples at
  /// fan-out so every node of one job resolves broadcast ownership against
  /// the SAME placement snapshot even when a commit races the run.
  uint64_t placement_epoch() const {
    return placement_epoch_.load(std::memory_order_acquire);
  }
  uint64_t AdvancePlacementEpoch() {
    return placement_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Charge one random record read of `bytes` stored on `storage_node`,
  /// issued by code running on `compute_node`.
  Status ChargeRandomRead(NodeId compute_node, NodeId storage_node,
                          size_t bytes);

  /// Charge one fused batch read resolving `ops` same-partition keys
  /// totalling `bytes` on `storage_node` (one seek + cheap follow-ups; see
  /// Disk::BatchRandomRead). Remote access pays one transfer for the whole
  /// batch — coalescing saves messages as well as seeks.
  Status ChargeBatchRead(NodeId compute_node, NodeId storage_node, size_t ops,
                         size_t bytes);

  /// Charge a sequential scan of `bytes` on `storage_node` (plus transfer
  /// when remote).
  Status ChargeSequentialRead(NodeId compute_node, NodeId storage_node,
                              size_t bytes);

  /// Charge a write of `bytes` on `storage_node` (structure maintenance).
  Status ChargeWrite(NodeId compute_node, NodeId storage_node, size_t bytes);

  /// Charge a replicated write: the payload is written to EVERY replica
  /// node (disk write each, plus a transfer per remote replica). This is
  /// the ingest-side cost of replication_factor > 1 — durability is paid
  /// for up front, not discovered at failover time. Replicas are charged
  /// in list order and the first failure aborts the remainder; the error
  /// names the failing node so callers can tell a removed/downed replica
  /// from a transient fault.
  Status ChargeReplicatedWrite(NodeId compute_node,
                               const std::vector<NodeId>& replicas,
                               size_t bytes);

  /// Charge a pure control message between two nodes (task shipping,
  /// broadcast fan-out).
  Status ChargeMessage(NodeId from, NodeId to, size_t bytes);

  /// Sum of all device counters (disks + network).
  ResourceTotals TotalStats() const;

  /// Reset every device counter.
  void ResetStats();

  /// Toggle timing simulation on every device at runtime. Loading and
  /// structure builds typically run untimed; only measured query phases
  /// pay simulated latencies. Nodes joining later inherit the last value.
  void SetTimingEnabled(bool enabled);

  /// Install the same probabilistic fault knobs on every node's disk and
  /// rewind each deterministic fault stream (benches sweep the rate
  /// between measured phases). Per-node disk seeds are derived from
  /// `faults.seed` + node id so that nodes fault independently. Nodes
  /// joining later inherit the last configured knobs.
  void ConfigureDiskFaults(const FaultOptions& faults);

  /// Install fault knobs on the interconnect.
  void ConfigureNetworkFaults(const FaultOptions& faults);

  /// Toggle an outage window on one node: while down, its disk and every
  /// message to or from it fail with kUnavailable — the whole-node failure
  /// mode a production lake must survive.
  void SetNodeOutage(NodeId id, bool down);

  /// Down = in an outage window OR decommissioned. Failover paths treat
  /// both the same way: skip the node, serve from another replica.
  bool NodeIsDown(NodeId id) const {
    LH_CHECK(id < node_down_.size());
    return node_down_[id].load(std::memory_order_relaxed) ||
           node_removed_[id].load(std::memory_order_relaxed);
  }

 private:
  /// Build and install the node for slot `id` (membership lock held).
  void InitNodeSlot(NodeId id);

  ClusterOptions options_;
  /// Pre-sized to max_nodes; slots [0, num_nodes_) are populated. The
  /// vector itself never reallocates, which is what makes concurrent
  /// lock-free reads of registered slots safe during AddNode.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Network> network_;
  std::vector<std::atomic<bool>> node_down_;
  std::vector<std::atomic<bool>> node_removed_;
  std::atomic<uint32_t> num_nodes_{0};
  std::atomic<uint64_t> placement_epoch_{0};

  /// Guards membership changes and the "current knobs" below, which late
  /// joiners inherit.
  mutable std::mutex membership_mutex_;
  FaultOptions current_disk_faults_;
  bool fault_knobs_set_ = false;
  bool timing_enabled_;
};

}  // namespace lakeharbor::sim
