#pragma once

#include <atomic>
#include <cstdint>

#include "obs/histogram.h"

namespace lakeharbor::sim {

/// Device-level operation counters, maintained regardless of whether timing
/// simulation is enabled, so tests and the Fig-9 harness can make exact,
/// deterministic assertions about I/O behaviour.
struct ResourceStats {
  std::atomic<uint64_t> random_reads{0};
  /// Fused multi-key probes (each also counts as ONE random_read — the
  /// batch is one seek-dominated device operation) and the pointer
  /// resolutions they carried. `batched_ops - batched_reads` is the number
  /// of random reads batching saved.
  std::atomic<uint64_t> batched_reads{0};
  std::atomic<uint64_t> batched_ops{0};
  std::atomic<uint64_t> sequential_chunks{0};
  std::atomic<uint64_t> bytes_random{0};
  std::atomic<uint64_t> bytes_sequential{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> network_messages{0};
  std::atomic<uint64_t> network_bytes{0};
  std::atomic<uint64_t> injected_faults{0};
  std::atomic<uint64_t> injected_latency_spikes{0};
  /// MODELED service time per device operation in microseconds (what the
  /// cost model charges, including fault-injected latency scaling) — NOT
  /// host wall time, so the distribution is identical whether timing
  /// simulation sleeps or not. This is the device-time attribution the
  /// profiler cross-checks executor-side I/O spans against.
  obs::LatencyHistogram service_us;

  void Reset() {
    random_reads = 0;
    batched_reads = 0;
    batched_ops = 0;
    sequential_chunks = 0;
    bytes_random = 0;
    bytes_sequential = 0;
    writes = 0;
    bytes_written = 0;
    network_messages = 0;
    network_bytes = 0;
    injected_faults = 0;
    injected_latency_spikes = 0;
    service_us.Reset();
  }

  /// Charge one operation's modeled service time (microseconds, rounded).
  void RecordService(double us) {
    service_us.Record(us > 0.0 ? static_cast<uint64_t>(us) : 0);
  }
};

/// Plain copyable aggregate of ResourceStats (what Cluster::TotalStats
/// returns).
struct ResourceTotals {
  uint64_t random_reads = 0;
  uint64_t batched_reads = 0;
  uint64_t batched_ops = 0;
  uint64_t sequential_chunks = 0;
  uint64_t bytes_random = 0;
  uint64_t bytes_sequential = 0;
  uint64_t writes = 0;
  uint64_t bytes_written = 0;
  uint64_t network_messages = 0;
  uint64_t network_bytes = 0;
  uint64_t injected_faults = 0;
  uint64_t injected_latency_spikes = 0;
  obs::HistogramSnapshot service_us;

  void Merge(const ResourceStats& other) {
    random_reads += other.random_reads.load();
    batched_reads += other.batched_reads.load();
    batched_ops += other.batched_ops.load();
    sequential_chunks += other.sequential_chunks.load();
    bytes_random += other.bytes_random.load();
    bytes_sequential += other.bytes_sequential.load();
    writes += other.writes.load();
    bytes_written += other.bytes_written.load();
    network_messages += other.network_messages.load();
    network_bytes += other.network_bytes.load();
    injected_faults += other.injected_faults.load();
    injected_latency_spikes += other.injected_latency_spikes.load();
    service_us.Merge(other.service_us.Snapshot());
  }
};

}  // namespace lakeharbor::sim
