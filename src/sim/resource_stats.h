#pragma once

#include <atomic>
#include <cstdint>

namespace lakeharbor::sim {

/// Device-level operation counters, maintained regardless of whether timing
/// simulation is enabled, so tests and the Fig-9 harness can make exact,
/// deterministic assertions about I/O behaviour.
struct ResourceStats {
  std::atomic<uint64_t> random_reads{0};
  /// Fused multi-key probes (each also counts as ONE random_read — the
  /// batch is one seek-dominated device operation) and the pointer
  /// resolutions they carried. `batched_ops - batched_reads` is the number
  /// of random reads batching saved.
  std::atomic<uint64_t> batched_reads{0};
  std::atomic<uint64_t> batched_ops{0};
  std::atomic<uint64_t> sequential_chunks{0};
  std::atomic<uint64_t> bytes_random{0};
  std::atomic<uint64_t> bytes_sequential{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> network_messages{0};
  std::atomic<uint64_t> network_bytes{0};
  std::atomic<uint64_t> injected_faults{0};
  std::atomic<uint64_t> injected_latency_spikes{0};

  void Reset() {
    random_reads = 0;
    batched_reads = 0;
    batched_ops = 0;
    sequential_chunks = 0;
    bytes_random = 0;
    bytes_sequential = 0;
    writes = 0;
    bytes_written = 0;
    network_messages = 0;
    network_bytes = 0;
    injected_faults = 0;
    injected_latency_spikes = 0;
  }

};

/// Plain copyable aggregate of ResourceStats (what Cluster::TotalStats
/// returns).
struct ResourceTotals {
  uint64_t random_reads = 0;
  uint64_t batched_reads = 0;
  uint64_t batched_ops = 0;
  uint64_t sequential_chunks = 0;
  uint64_t bytes_random = 0;
  uint64_t bytes_sequential = 0;
  uint64_t writes = 0;
  uint64_t bytes_written = 0;
  uint64_t network_messages = 0;
  uint64_t network_bytes = 0;
  uint64_t injected_faults = 0;
  uint64_t injected_latency_spikes = 0;

  void Merge(const ResourceStats& other) {
    random_reads += other.random_reads.load();
    batched_reads += other.batched_reads.load();
    batched_ops += other.batched_ops.load();
    sequential_chunks += other.sequential_chunks.load();
    bytes_random += other.bytes_random.load();
    bytes_sequential += other.bytes_sequential.load();
    writes += other.writes.load();
    bytes_written += other.bytes_written.load();
    network_messages += other.network_messages.load();
    network_bytes += other.network_bytes.load();
    injected_faults += other.injected_faults.load();
    injected_latency_spikes += other.injected_latency_spikes.load();
  }
};

}  // namespace lakeharbor::sim
