#include "sim/disk.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace lakeharbor::sim {

Disk::Disk(DiskOptions options)
    : options_(options),
      slots_(options.io_slots == 0 ? 1 : options.io_slots),
      injector_(options.faults) {}

Status Disk::MaybeFault(double* latency_scale) {
  FaultInjector::Decision decision = injector_.Assess("disk");
  if (decision.faulted()) {
    stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
    return decision.status;
  }
  if (decision.spiked()) {
    stats_.injected_latency_spikes.fetch_add(1, std::memory_order_relaxed);
    if (latency_scale != nullptr) *latency_scale *= decision.latency_scale;
  }
  uint64_t every = fault_every_.load(std::memory_order_relaxed);
  if (every != 0) {
    uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (op % every == 0) {
      stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("injected transient disk fault");
    }
    return Status::OK();
  }
  if (!fault_armed_.load(std::memory_order_relaxed)) return Status::OK();
  if (ops_until_fault_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected disk fault");
  }
  return Status::OK();
}

void Disk::SleepUs(double us) const {
  if (!options_.timing_enabled) return;
  double scaled = us * options_.time_scale;
  if (scaled < 1.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(scaled)));
}

Status Disk::RandomRead(size_t bytes) {
  double latency_scale = 1.0;
  LH_RETURN_NOT_OK(MaybeFault(&latency_scale));
  const double service_us =
      static_cast<double>(options_.random_read_latency_us) * latency_scale;
  if (options_.timing_enabled) {
    SemaphoreGuard guard(slots_);
    SleepUs(service_us);
  }
  stats_.random_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_random.fetch_add(bytes, std::memory_order_relaxed);
  stats_.RecordService(service_us);
  return Status::OK();
}

Status Disk::BatchRandomRead(size_t ops, size_t bytes) {
  if (ops == 0) return Status::OK();
  double latency_scale = 1.0;
  LH_RETURN_NOT_OK(MaybeFault(&latency_scale));
  const double service_us =
      (static_cast<double>(options_.random_read_latency_us) +
       static_cast<double>(ops - 1) *
           static_cast<double>(options_.batch_followup_latency_us)) *
      latency_scale;
  if (options_.timing_enabled) {
    SemaphoreGuard guard(slots_);
    SleepUs(service_us);
  }
  stats_.random_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_ops.fetch_add(ops, std::memory_order_relaxed);
  stats_.bytes_random.fetch_add(bytes, std::memory_order_relaxed);
  stats_.RecordService(service_us);
  return Status::OK();
}

Status Disk::SequentialRead(size_t bytes) {
  double latency_scale = 1.0;
  LH_RETURN_NOT_OK(MaybeFault(&latency_scale));
  size_t remaining = bytes;
  const double us_per_byte =
      latency_scale *
      1e6 / static_cast<double>(options_.scan_bandwidth_bytes_per_sec);
  while (remaining > 0) {
    size_t chunk = std::min(remaining, options_.scan_chunk_bytes);
    if (options_.timing_enabled) {
      // Hold the scan lock for the duration of the chunk so that concurrent
      // scans on one device interleave at chunk granularity.
      std::lock_guard<std::mutex> lock(scan_mutex_);
      SleepUs(static_cast<double>(chunk) * us_per_byte);
    }
    stats_.sequential_chunks.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_sequential.fetch_add(chunk, std::memory_order_relaxed);
    stats_.RecordService(static_cast<double>(chunk) * us_per_byte);
    remaining -= chunk;
  }
  return Status::OK();
}

Status Disk::Write(size_t bytes) {
  double latency_scale = 1.0;
  LH_RETURN_NOT_OK(MaybeFault(&latency_scale));
  const double service_us =
      static_cast<double>(options_.random_read_latency_us) * latency_scale;
  if (options_.timing_enabled) {
    SemaphoreGuard guard(slots_);
    SleepUs(service_us);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  stats_.RecordService(service_us);
  return Status::OK();
}

void Disk::InjectFaultAfter(uint64_t n) {
  ops_until_fault_.store(static_cast<int64_t>(n), std::memory_order_relaxed);
  fault_armed_.store(true, std::memory_order_relaxed);
}

void Disk::InjectFaultEvery(uint64_t n) {
  LH_CHECK_MSG(n >= 2, "InjectFaultEvery needs n >= 2");
  op_counter_.store(0, std::memory_order_relaxed);
  fault_every_.store(n, std::memory_order_relaxed);
}

void Disk::ClearFault() {
  fault_armed_.store(false, std::memory_order_relaxed);
  fault_every_.store(0, std::memory_order_relaxed);
}

}  // namespace lakeharbor::sim
