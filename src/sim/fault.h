#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

/// \file fault.h
/// Deterministic, seeded fault injection for the simulated devices. Every
/// device operation draws its fate from a counter-based hash stream
/// (splitmix64 over the operation index), NOT from shared mutable RNG
/// state: operation i of a device fails iff hash(seed, i) says so, so a
/// fixed seed replays the exact same fault pattern — the property the
/// failure-semantics tests rely on for deterministic replay.

namespace lakeharbor::sim {

/// Fault knobs of one device. All-zero (the default) injects nothing.
struct FaultOptions {
  /// Probability that an operation fails with an injected transient error.
  double fault_rate = 0.0;
  /// Share of injected faults surfacing as kUnavailable; the rest surface
  /// as kIoError. Both are retryable (Status::IsRetryable).
  double unavailable_fraction = 0.0;
  /// Seed of the deterministic fault stream.
  uint64_t seed = 0;
  /// Probability that a (successful) operation suffers a latency spike.
  double latency_spike_rate = 0.0;
  /// Service-time multiplier of a spiked operation (timing mode only).
  double latency_spike_multiplier = 10.0;

  bool enabled() const {
    return fault_rate > 0.0 || latency_spike_rate > 0.0;
  }
};

/// The per-device injector. Thread-safe: concurrent operations draw
/// distinct operation indexes from an atomic counter and hash them
/// independently. Reconfiguring resets the operation stream (replay);
/// an outage overrides everything with kUnavailable until lifted.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultOptions& options) { Configure(options); }

  /// Install new knobs and rewind the operation stream to index 0, so a
  /// fixed seed deterministically replays its fault pattern.
  ///
  /// The knobs are published as ONE snapshot behind a tiny mutex (the
  /// critical section is a 40-byte struct copy): an Assess racing a
  /// Configure sees either the old knob set or the new one in full, never
  /// a torn half-old/half-new mix (e.g. the new fault_rate with the old
  /// unavailable_fraction). The operation counter is reset independently —
  /// a concurrent Assess may draw an old stream index against the new
  /// knobs, which only shifts WHICH deterministic fate it draws, never
  /// mixes knob values.
  void Configure(const FaultOptions& options) {
    {
      std::lock_guard<std::mutex> lock(knobs_mutex_);
      knobs_ = options;
    }
    ops_.store(0, std::memory_order_relaxed);
  }

  /// Hard outage window: while down, every operation fails kUnavailable.
  void SetOutage(bool down) {
    outage_.store(down, std::memory_order_relaxed);
  }
  bool outage() const { return outage_.load(std::memory_order_relaxed); }

  /// What the injector decided for one device operation.
  struct Decision {
    Status status;                 ///< OK, or the injected failure
    double latency_scale = 1.0;    ///< >1 when a latency spike was injected

    bool faulted() const { return !status.ok(); }
    bool spiked() const { return latency_scale > 1.0; }
  };

  /// Draw the fate of the next operation on `device` ("disk"/"network").
  /// Loads the knob snapshot exactly once, so every field consulted for
  /// this decision comes from the same Configure call.
  Decision Assess(const char* device) {
    Decision decision;
    if (outage_.load(std::memory_order_relaxed)) {
      decision.status = Status::Unavailable(std::string(device) +
                                            " outage: node is down");
      return decision;
    }
    FaultOptions knobs;
    {
      std::lock_guard<std::mutex> lock(knobs_mutex_);
      knobs = knobs_;
    }
    if (!knobs.enabled()) return decision;

    const uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t seed = knobs.seed;
    if (knobs.fault_rate > 0.0 &&
        U01(Mix(seed, op, kFaultSalt)) < knobs.fault_rate) {
      const bool unavailable =
          U01(Mix(seed, op, kKindSalt)) < knobs.unavailable_fraction;
      std::string msg = std::string("injected transient ") + device +
                        " fault (op " + std::to_string(op) + ")";
      decision.status = unavailable ? Status::Unavailable(std::move(msg))
                                    : Status::IOError(std::move(msg));
      return decision;
    }
    if (knobs.latency_spike_rate > 0.0 &&
        U01(Mix(seed, op, kSpikeSalt)) < knobs.latency_spike_rate) {
      decision.latency_scale = knobs.latency_spike_multiplier;
    }
    return decision;
  }

 private:
  static constexpr uint64_t kFaultSalt = 0x9e3779b97f4a7c15ULL;
  static constexpr uint64_t kKindSalt = 0xbf58476d1ce4e5b9ULL;
  static constexpr uint64_t kSpikeSalt = 0x94d049bb133111ebULL;

  /// splitmix64 finalizer over (seed, op, salt).
  static uint64_t Mix(uint64_t seed, uint64_t op, uint64_t salt) {
    uint64_t x = seed ^ (op * 0xd1342543de82ef95ULL) ^ salt;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Uniform double in [0, 1) from the top 53 bits of a hash.
  static double U01(uint64_t h) {
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Knob snapshot; all-zero default (= never configured) injects
  /// nothing. Swapped wholesale by Configure, copied once per Assess.
  std::mutex knobs_mutex_;
  FaultOptions knobs_;
  std::atomic<bool> outage_{false};
  std::atomic<uint64_t> ops_{0};
};

}  // namespace lakeharbor::sim
