#include "sim/network.h"

#include <chrono>
#include <thread>

namespace lakeharbor::sim {

Status Network::Transfer(size_t bytes) {
  FaultInjector::Decision decision = injector_.Assess("network");
  if (decision.faulted()) {
    stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
    return decision.status;
  }
  if (decision.spiked()) {
    stats_.injected_latency_spikes.fetch_add(1, std::memory_order_relaxed);
  }
  // Modeled (unscaled-by-time_scale) message service time; time_scale only
  // compresses host sleeps, not the cost model.
  const double service_us =
      (static_cast<double>(options_.message_latency_us) +
       static_cast<double>(bytes) * 1e6 /
           static_cast<double>(options_.bandwidth_bytes_per_sec)) *
      decision.latency_scale;
  if (options_.timing_enabled) {
    double us = service_us * options_.time_scale;
    if (us >= 1.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(us)));
    }
  }
  stats_.network_messages.fetch_add(1, std::memory_order_relaxed);
  stats_.network_bytes.fetch_add(bytes, std::memory_order_relaxed);
  stats_.RecordService(service_us);
  return Status::OK();
}

}  // namespace lakeharbor::sim
