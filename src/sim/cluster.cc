#include "sim/cluster.h"

namespace lakeharbor::sim {

Cluster::Cluster(ClusterOptions options)
    : options_(options), node_down_(options.num_nodes) {
  LH_CHECK_MSG(options.num_nodes > 0, "cluster needs at least one node");
  nodes_.reserve(options.num_nodes);
  for (NodeId id = 0; id < options.num_nodes; ++id) {
    DiskOptions disk = options.disk;
    // Independent per-node fault streams from one cluster-level seed.
    disk.faults.seed = options.disk.faults.seed + id;
    nodes_.push_back(std::make_unique<Node>(id, disk));
  }
  network_ = std::make_unique<Network>(options.network);
}

Status Cluster::ChargeRandomRead(NodeId compute_node, NodeId storage_node,
                                 size_t bytes) {
  LH_CHECK(storage_node < nodes_.size());
  LH_RETURN_NOT_OK(nodes_[storage_node]->disk().RandomRead(bytes));
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return Status::OK();
}

Status Cluster::ChargeBatchRead(NodeId compute_node, NodeId storage_node,
                                size_t ops, size_t bytes) {
  LH_CHECK(storage_node < nodes_.size());
  if (ops == 0) return Status::OK();
  LH_RETURN_NOT_OK(nodes_[storage_node]->disk().BatchRandomRead(ops, bytes));
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return Status::OK();
}

Status Cluster::ChargeSequentialRead(NodeId compute_node, NodeId storage_node,
                                     size_t bytes) {
  LH_CHECK(storage_node < nodes_.size());
  LH_RETURN_NOT_OK(nodes_[storage_node]->disk().SequentialRead(bytes));
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return Status::OK();
}

Status Cluster::ChargeWrite(NodeId compute_node, NodeId storage_node,
                            size_t bytes) {
  LH_CHECK(storage_node < nodes_.size());
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return nodes_[storage_node]->disk().Write(bytes);
}

Status Cluster::ChargeReplicatedWrite(NodeId compute_node,
                                      const std::vector<NodeId>& replicas,
                                      size_t bytes) {
  for (NodeId storage_node : replicas) {
    LH_RETURN_NOT_OK(ChargeWrite(compute_node, storage_node, bytes));
  }
  return Status::OK();
}

Status Cluster::ChargeMessage(NodeId from, NodeId to, size_t bytes) {
  if (from == to) return Status::OK();
  if (NodeIsDown(from) || NodeIsDown(to)) {
    return Status::Unavailable("message to/from node in outage window");
  }
  return network_->Transfer(bytes);
}

ResourceTotals Cluster::TotalStats() const {
  ResourceTotals total;
  for (const auto& node : nodes_) {
    total.Merge(node->disk().stats());
  }
  total.Merge(network_->stats());
  return total;
}

void Cluster::SetTimingEnabled(bool enabled) {
  for (auto& node : nodes_) {
    node->disk().SetTimingEnabled(enabled);
  }
  network_->SetTimingEnabled(enabled);
}

void Cluster::ConfigureDiskFaults(const FaultOptions& faults) {
  for (auto& node : nodes_) {
    FaultOptions per_node = faults;
    per_node.seed = faults.seed + node->id();
    node->disk().ConfigureFaults(per_node);
  }
}

void Cluster::ConfigureNetworkFaults(const FaultOptions& faults) {
  network_->ConfigureFaults(faults);
}

void Cluster::SetNodeOutage(NodeId id, bool down) {
  LH_CHECK(id < nodes_.size());
  node_down_[id].store(down, std::memory_order_relaxed);
  nodes_[id]->disk().SetOutage(down);
}

void Cluster::ResetStats() {
  for (auto& node : nodes_) {
    node->disk().mutable_stats().Reset();
  }
  network_->mutable_stats().Reset();
}

}  // namespace lakeharbor::sim
