#include "sim/cluster.h"

namespace lakeharbor::sim {

namespace {

uint32_t ResolveMaxNodes(const ClusterOptions& options) {
  if (options.max_nodes != 0) {
    LH_CHECK_MSG(options.max_nodes >= options.num_nodes,
                 "max_nodes below initial num_nodes");
    return options.max_nodes;
  }
  const uint32_t doubled = options.num_nodes * 2;
  return doubled > 64 ? doubled : 64;
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      nodes_(ResolveMaxNodes(options)),
      node_down_(ResolveMaxNodes(options)),
      node_removed_(ResolveMaxNodes(options)),
      timing_enabled_(options.disk.timing_enabled) {
  LH_CHECK_MSG(options.num_nodes > 0, "cluster needs at least one node");
  for (NodeId id = 0; id < options.num_nodes; ++id) {
    InitNodeSlot(id);
  }
  network_ = std::make_unique<Network>(options.network);
  num_nodes_.store(options.num_nodes, std::memory_order_release);
}

void Cluster::InitNodeSlot(NodeId id) {
  DiskOptions disk = options_.disk;
  // Independent per-node fault streams from one cluster-level seed.
  disk.faults.seed = options_.disk.faults.seed + id;
  disk.timing_enabled = timing_enabled_;
  nodes_[id] = std::make_unique<Node>(id, disk);
  if (fault_knobs_set_) {
    FaultOptions per_node = current_disk_faults_;
    per_node.seed = current_disk_faults_.seed + id;
    nodes_[id]->disk().ConfigureFaults(per_node);
  }
}

StatusOr<NodeId> Cluster::AddNode() {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  const uint32_t id = num_nodes_.load(std::memory_order_relaxed);
  if (id >= nodes_.size()) {
    return Status::ResourceExhausted(
        "cluster at max_nodes capacity (" + std::to_string(nodes_.size()) +
        "); raise ClusterOptions::max_nodes");
  }
  InitNodeSlot(id);
  // Release-publish AFTER the slot is fully constructed: a reader that
  // observes num_nodes() > id is guaranteed to see the node.
  num_nodes_.store(id + 1, std::memory_order_release);
  return static_cast<NodeId>(id);
}

Status Cluster::RemoveNode(NodeId id) {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  if (id >= num_nodes_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("RemoveNode: unknown node " +
                                   std::to_string(id));
  }
  if (node_removed_[id].load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("RemoveNode: node " + std::to_string(id) +
                                   " already removed");
  }
  if (num_active_nodes() <= 1) {
    return Status::InvalidArgument(
        "RemoveNode: refusing to remove the last active node");
  }
  // Order matters for readers that consult NodeIsDown before charging: the
  // disk rejects first, then the membership flag flips. Either way the
  // node can no longer serve.
  nodes_[id]->disk().SetOutage(true);
  node_removed_[id].store(true, std::memory_order_release);
  return Status::OK();
}

std::vector<NodeId> Cluster::ActiveNodeIds() const {
  const uint32_t n = num_nodes();
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    if (!node_removed_[id].load(std::memory_order_acquire)) ids.push_back(id);
  }
  return ids;
}

uint32_t Cluster::num_active_nodes() const {
  const uint32_t n = num_nodes();
  uint32_t active = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (!node_removed_[id].load(std::memory_order_acquire)) ++active;
  }
  return active;
}

Status Cluster::ChargeRandomRead(NodeId compute_node, NodeId storage_node,
                                 size_t bytes) {
  LH_CHECK(storage_node < num_nodes());
  LH_RETURN_NOT_OK(nodes_[storage_node]->disk().RandomRead(bytes));
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return Status::OK();
}

Status Cluster::ChargeBatchRead(NodeId compute_node, NodeId storage_node,
                                size_t ops, size_t bytes) {
  LH_CHECK(storage_node < num_nodes());
  if (ops == 0) return Status::OK();
  LH_RETURN_NOT_OK(nodes_[storage_node]->disk().BatchRandomRead(ops, bytes));
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return Status::OK();
}

Status Cluster::ChargeSequentialRead(NodeId compute_node, NodeId storage_node,
                                     size_t bytes) {
  LH_CHECK(storage_node < num_nodes());
  LH_RETURN_NOT_OK(nodes_[storage_node]->disk().SequentialRead(bytes));
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return Status::OK();
}

Status Cluster::ChargeWrite(NodeId compute_node, NodeId storage_node,
                            size_t bytes) {
  LH_CHECK(storage_node < num_nodes());
  if (compute_node != storage_node) {
    LH_RETURN_NOT_OK(network_->Transfer(bytes));
  }
  return nodes_[storage_node]->disk().Write(bytes);
}

Status Cluster::ChargeReplicatedWrite(NodeId compute_node,
                                      const std::vector<NodeId>& replicas,
                                      size_t bytes) {
  for (NodeId storage_node : replicas) {
    // A removed node cannot accept writes — surface it as kUnavailable
    // with the node named, instead of silently charging a ghost disk.
    if (storage_node < num_nodes() && NodeIsRemoved(storage_node)) {
      return Status::Unavailable("replica write to removed node " +
                                 std::to_string(storage_node));
    }
    LH_RETURN_NOT_OK(
        ChargeWrite(compute_node, storage_node, bytes)
            .WithContext("replica write to node " +
                         std::to_string(storage_node)));
  }
  return Status::OK();
}

Status Cluster::ChargeMessage(NodeId from, NodeId to, size_t bytes) {
  if (from == to) return Status::OK();
  if (NodeIsDown(from) || NodeIsDown(to)) {
    return Status::Unavailable("message to/from node in outage window");
  }
  return network_->Transfer(bytes);
}

ResourceTotals Cluster::TotalStats() const {
  ResourceTotals total;
  const uint32_t n = num_nodes();
  for (uint32_t id = 0; id < n; ++id) {
    total.Merge(nodes_[id]->disk().stats());
  }
  total.Merge(network_->stats());
  return total;
}

void Cluster::SetTimingEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  timing_enabled_ = enabled;
  const uint32_t n = num_nodes();
  for (uint32_t id = 0; id < n; ++id) {
    nodes_[id]->disk().SetTimingEnabled(enabled);
  }
  network_->SetTimingEnabled(enabled);
}

void Cluster::ConfigureDiskFaults(const FaultOptions& faults) {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  current_disk_faults_ = faults;
  fault_knobs_set_ = true;
  const uint32_t n = num_nodes();
  for (uint32_t id = 0; id < n; ++id) {
    FaultOptions per_node = faults;
    per_node.seed = faults.seed + id;
    nodes_[id]->disk().ConfigureFaults(per_node);
  }
}

void Cluster::ConfigureNetworkFaults(const FaultOptions& faults) {
  network_->ConfigureFaults(faults);
}

void Cluster::SetNodeOutage(NodeId id, bool down) {
  LH_CHECK(id < num_nodes());
  node_down_[id].store(down, std::memory_order_relaxed);
  nodes_[id]->disk().SetOutage(down);
}

void Cluster::ResetStats() {
  const uint32_t n = num_nodes();
  for (uint32_t id = 0; id < n; ++id) {
    nodes_[id]->disk().mutable_stats().Reset();
  }
  network_->mutable_stats().Reset();
}

}  // namespace lakeharbor::sim
