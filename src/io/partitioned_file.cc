#include "io/partitioned_file.h"

#include <algorithm>

namespace lakeharbor::io {

namespace {
/// Minimum bytes charged for a device probe, even when the lookup misses:
/// reading *nothing* still costs a page-sized I/O.
constexpr size_t kMinProbeBytes = 64;
}  // namespace

PartitionedFile::PartitionedFile(std::string name,
                                 std::shared_ptr<Partitioner> partitioner,
                                 sim::Cluster* cluster, size_t btree_fanout)
    : File(std::move(name), std::move(partitioner), cluster) {
  partitions_.resize(num_partitions());
  for (auto& p : partitions_) {
    p.tree = std::make_unique<index::Btree<Record>>(btree_fanout);
  }
}

Status PartitionedFile::Append(const std::string& partition_key,
                               std::string key, Record record) {
  uint32_t partition = partitioner_->PartitionOf(partition_key);
  return AppendToPartition(partition, std::move(key), std::move(record));
}

Status PartitionedFile::AppendToPartition(uint32_t partition, std::string key,
                                          Record record) {
  if (sealed_) {
    return Status::Aborted("append to sealed file '" + name_ + "'");
  }
  if (partition >= partitions_.size()) {
    return Status::OutOfRange("partition out of range in file '" + name_ +
                              "'");
  }
  Partition& p = partitions_[partition];
  p.bytes += record.size();
  total_bytes_ += record.size();
  ++num_records_;
  access_stats_.appends.fetch_add(1, std::memory_order_relaxed);
  p.tree->Insert(std::move(key), std::move(record));
  return Status::OK();
}

Status PartitionedFile::CheckSealed() const {
  if (!sealed_) {
    return Status::Aborted("file '" + name_ + "' queried before Seal()");
  }
  return Status::OK();
}

Status PartitionedFile::CheckPartitionAndReplica(uint32_t partition,
                                                 uint32_t replica) const {
  if (partition >= partitions_.size()) {
    return Status::OutOfRange("partition out of range in file '" + name_ +
                              "'");
  }
  // Per-partition count: during a rebalance a flipped partition exposes
  // old+new replica slots, and the count may legally SHRINK between the
  // caller's check and the charge (flip/abort race) — ChargeLookup folds
  // the index, so a stale-but-once-valid replica never crashes.
  const uint32_t count = ReplicaCountFor(partition);
  if (replica >= count) {
    return Status::OutOfRange("replica " + std::to_string(replica) +
                              " out of range in file '" + name_ +
                              "' (slots=" + std::to_string(count) + ")");
  }
  return Status::OK();
}

void PartitionedFile::CountEpochRead(uint32_t partition, uint32_t replica) {
  switch (placement_.AttributeRead(partition, replica)) {
    case ReadEpoch::kSteady:
      break;
    case ReadEpoch::kOldEpoch:
      access_stats_.old_epoch_reads.fetch_add(1, std::memory_order_relaxed);
      break;
    case ReadEpoch::kNewEpoch:
      access_stats_.new_epoch_reads.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

Status PartitionedFile::ChargeLookup(sim::NodeId compute_node,
                                     uint32_t partition, uint32_t replica,
                                     size_t result_bytes,
                                     size_t result_records) {
  sim::NodeId storage_node = NodeOfReplica(partition, replica);
  LH_RETURN_NOT_OK(cluster_->ChargeRandomRead(
      compute_node, storage_node, std::max(result_bytes, kMinProbeBytes)));
  CountEpochRead(partition, replica);
  access_stats_.records_read.fetch_add(result_records,
                                       std::memory_order_relaxed);
  return Status::OK();
}

Status PartitionedFile::Get(sim::NodeId compute_node, const Pointer& ptr,
                            std::vector<Record>* out) {
  LH_RETURN_NOT_OK(CheckSealed());
  if (!ptr.has_partition) {
    return Status::InvalidArgument(
        "Get on file '" + name_ +
        "' requires partition information (broadcast pointers are resolved "
        "by the executor)");
  }
  uint32_t partition = partitioner_->PartitionOf(ptr.partition_key);
  return GetInPartition(compute_node, partition, ptr.key, out);
}

Status PartitionedFile::GetInPartition(sim::NodeId compute_node,
                                       uint32_t partition,
                                       const std::string& key,
                                       std::vector<Record>* out) {
  return GetInPartitionOnReplica(compute_node, partition, /*replica=*/0, key,
                                 out);
}

Status PartitionedFile::GetInPartitionOnReplica(sim::NodeId compute_node,
                                                uint32_t partition,
                                                uint32_t replica,
                                                const std::string& key,
                                                std::vector<Record>* out) {
  LH_RETURN_NOT_OK(CheckSealed());
  LH_RETURN_NOT_OK(CheckPartitionAndReplica(partition, replica));
  access_stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  size_t before = out->size();
  partitions_[partition].tree->Get(key, out);
  size_t found = out->size() - before;
  size_t bytes = 0;
  for (size_t i = before; i < out->size(); ++i) bytes += (*out)[i].size();
  return ChargeLookup(compute_node, partition, replica, bytes, found);
}

Status File::GetBatchInPartition(sim::NodeId compute_node, uint32_t partition,
                                 const std::vector<std::string>& keys,
                                 std::vector<std::vector<Record>>* out) {
  out->clear();
  out->resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    LH_RETURN_NOT_OK(
        GetInPartition(compute_node, partition, keys[i], &(*out)[i]));
  }
  return Status::OK();
}

Status PartitionedFile::GetBatchInPartition(
    sim::NodeId compute_node, uint32_t partition,
    const std::vector<std::string>& keys,
    std::vector<std::vector<Record>>* out) {
  return GetBatchInPartitionOnReplica(compute_node, partition, /*replica=*/0,
                                      keys, out);
}

Status PartitionedFile::GetBatchInPartitionOnReplica(
    sim::NodeId compute_node, uint32_t partition, uint32_t replica,
    const std::vector<std::string>& keys,
    std::vector<std::vector<Record>>* out) {
  LH_RETURN_NOT_OK(CheckSealed());
  LH_RETURN_NOT_OK(CheckPartitionAndReplica(partition, replica));
  out->clear();
  out->resize(keys.size());
  if (keys.empty()) return Status::OK();
  const Partition& p = partitions_[partition];
  size_t bytes = 0;
  size_t found = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    p.tree->Get(keys[i], &(*out)[i]);
    found += (*out)[i].size();
    for (const Record& r : (*out)[i]) bytes += r.size();
  }
  // Charge BEFORE exposing results as read: if the fused device operation
  // faults, the caller sees an error and must discard `out` wholesale.
  sim::NodeId storage_node = NodeOfReplica(partition, replica);
  LH_RETURN_NOT_OK(cluster_->ChargeBatchRead(compute_node, storage_node,
                                             keys.size(),
                                             std::max(bytes, kMinProbeBytes)));
  CountEpochRead(partition, replica);
  access_stats_.batched_gets.fetch_add(1, std::memory_order_relaxed);
  access_stats_.batched_keys.fetch_add(keys.size(), std::memory_order_relaxed);
  access_stats_.records_read.fetch_add(found, std::memory_order_relaxed);
  return Status::OK();
}

Status PartitionedFile::ScanPartition(sim::NodeId compute_node,
                                      uint32_t partition,
                                      const RecordVisitor& visit) {
  return ScanPartitionKeyed(
      compute_node, partition,
      [&](const std::string&, const Record& record) { return visit(record); });
}

Status PartitionedFile::ScanPartitionKeyed(sim::NodeId compute_node,
                                           uint32_t partition,
                                           const KeyedRecordVisitor& visit) {
  LH_RETURN_NOT_OK(CheckSealed());
  if (partition >= partitions_.size()) {
    return Status::OutOfRange("partition out of range in file '" + name_ +
                              "'");
  }
  const Partition& p = partitions_[partition];
  // Scans fail over at the io layer (no executor involvement): a down
  // primary is skipped in favor of the next live replica, and a replica
  // whose charge comes back kUnavailable hands the scan to the next one.
  // The charge happens BEFORE any record is visited, so switching replicas
  // never double-delivers records.
  const uint32_t rf = ReplicaCountFor(partition);
  Status charge;
  for (uint32_t r = 0; r < rf; ++r) {
    sim::NodeId storage_node = NodeOfReplica(partition, r);
    if (r + 1 < rf && cluster_->NodeIsDown(storage_node)) {
      access_stats_.failovers.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    charge = cluster_->ChargeSequentialRead(
        compute_node, storage_node,
        std::max<uint64_t>(p.bytes, kMinProbeBytes));
    if (charge.ok()) CountEpochRead(partition, r);
    if (charge.ok() || !charge.IsUnavailable() || r + 1 >= rf) break;
    access_stats_.failovers.fetch_add(1, std::memory_order_relaxed);
  }
  LH_RETURN_NOT_OK(charge);
  access_stats_.partition_scans.fetch_add(1, std::memory_order_relaxed);
  uint64_t visited = 0;
  p.tree->Scan([&](const std::string& key, const Record& record) {
    ++visited;
    return visit(key, record);
  });
  access_stats_.records_scanned.fetch_add(visited, std::memory_order_relaxed);
  return Status::OK();
}

Status File::GetRangeInPartition(sim::NodeId, uint32_t, const std::string&,
                                 const std::string&, const RecordVisitor&) {
  return Status::NotImplemented("file '" + name_ +
                                "' does not support range lookups; use a "
                                "BtreeFile");
}

Status BtreeFile::GetRangeInPartition(sim::NodeId compute_node,
                                      uint32_t partition, const std::string& lo,
                                      const std::string& hi,
                                      const RecordVisitor& visit) {
  return GetRangeInPartitionOnReplica(compute_node, partition, /*replica=*/0,
                                      lo, hi, visit);
}

Status BtreeFile::GetRangeInPartitionOnReplica(sim::NodeId compute_node,
                                               uint32_t partition,
                                               uint32_t replica,
                                               const std::string& lo,
                                               const std::string& hi,
                                               const RecordVisitor& visit) {
  LH_RETURN_NOT_OK(CheckSealed());
  LH_RETURN_NOT_OK(CheckPartitionAndReplica(partition, replica));
  access_stats_.range_lookups.fetch_add(1, std::memory_order_relaxed);
  sim::NodeId storage_node = NodeOfReplica(partition, replica);
  // One random read for the index descent...
  LH_RETURN_NOT_OK(
      cluster_->ChargeRandomRead(compute_node, storage_node, kMinProbeBytes));
  CountEpochRead(partition, replica);
  uint64_t visited = 0;
  uint64_t bytes = 0;
  partitions_[partition].tree->GetRange(
      lo, hi, [&](const std::string&, const Record& record) {
        ++visited;
        bytes += record.size();
        return visit(record);
      });
  access_stats_.records_read.fetch_add(visited, std::memory_order_relaxed);
  // ...plus a sequential stream over the matching leaf chain.
  if (bytes > 0) {
    LH_RETURN_NOT_OK(
        cluster_->ChargeSequentialRead(compute_node, storage_node, bytes));
  }
  return Status::OK();
}

Status BtreeFile::GetRangeAllPartitions(sim::NodeId compute_node,
                                        const std::string& lo,
                                        const std::string& hi,
                                        const RecordVisitor& visit) {
  for (uint32_t p = 0; p < num_partitions(); ++p) {
    LH_RETURN_NOT_OK(GetRangeInPartition(compute_node, p, lo, hi, visit));
  }
  return Status::OK();
}

}  // namespace lakeharbor::io
