#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/access_stats.h"
#include "io/partitioner.h"
#include "io/placement.h"
#include "io/pointer.h"
#include "io/record.h"
#include "sim/cluster.h"

namespace lakeharbor::io {

/// Visitor over records; return false to stop early.
using RecordVisitor = std::function<bool(const Record&)>;

/// A File is a set of Records distributed into partitions (§III-B). It can
/// locate Records given a Pointer: the partition key is routed through the
/// pre-configured Partitioner, and the in-partition key finds the records
/// within the partition. Every access is charged to the simulated cluster
/// devices and counted in AccessStats.
///
/// Partition p is placed on cluster node (p mod num_nodes); partitioning is
/// therefore also the unit of data placement, as in the paper's "simple
/// distributed file system".
class File {
 public:
  File(std::string name, std::shared_ptr<Partitioner> partitioner,
       sim::Cluster* cluster)
      : name_(std::move(name)),
        partitioner_(std::move(partitioner)),
        cluster_(cluster),
        placement_(PlacementMap(cluster->ActiveNodeIds(), 1)) {
    LH_CHECK(partitioner_ != nullptr);
    LH_CHECK(cluster_ != nullptr);
  }
  virtual ~File() = default;
  LH_DISALLOW_COPY_AND_ASSIGN(File);

  const std::string& name() const { return name_; }
  const Partitioner& partitioner() const { return *partitioner_; }
  uint32_t num_partitions() const { return partitioner_->num_partitions(); }
  sim::Cluster* cluster() const { return cluster_; }

  /// Node holding the SERVING primary replica of `partition` — identical
  /// to the unreplicated `p mod num_nodes` placement on a static cluster,
  /// whatever the replication factor (replicas only ADD copies; they never
  /// move the primary). During a rebalance this is the old primary until
  /// the partition's epoch flip, then the new one.
  sim::NodeId NodeOfPartition(uint32_t partition) const {
    return placement_.PrimaryNode(partition);
  }

  sim::NodeId NodeOfReplica(uint32_t partition, uint32_t replica) const {
    return placement_.ReplicaNode(partition, replica);
  }

  /// Replica slots a reader may currently try for `partition` — equals
  /// replication_factor() in steady state, old+new set sizes during the
  /// post-flip window of a rebalance. Failover loops iterate this, NOT
  /// replication_factor(), so queries keep serving across epoch flips.
  uint32_t ReplicaCountFor(uint32_t partition) const {
    return placement_.ReplicaCountFor(partition);
  }

  /// Broadcast owner of `partition` for a tuple stamped at `fanout_epoch`
  /// (io::kEpochCurrent = live placement). See PlacementManager.
  sim::NodeId BroadcastOwner(uint32_t partition, uint64_t fanout_epoch) const {
    return placement_.BroadcastOwner(partition, fanout_epoch);
  }

  /// Replicate this file's partitions `rf`-way (clamped LOUDLY to the
  /// active node count — see PlacementMap::clamped()). Placement-only in
  /// this simulation: replica reads hit the replica node's devices, and
  /// ingest charges writes to every replica. Call before or after
  /// loading — charging is the same either way since record payloads are
  /// held once in memory. Must not be called during a rebalance.
  void SetReplicationFactor(uint32_t rf) {
    placement_.Reset(PlacementMap(cluster_->ActiveNodeIds(), rf));
  }
  uint32_t replication_factor() const {
    return placement_.replication_factor();
  }

  /// Copy of the current TARGET placement snapshot (steady state: the
  /// serving map). Ingest-side callers use its ReplicaNodes() to charge
  /// replicated writes.
  PlacementMap placement() const { return placement_.Snapshot(); }

  /// The epoch-versioned placement — the rebalancer drives transitions
  /// through this.
  PlacementManager& placement_manager() { return placement_; }
  const PlacementManager& placement_manager() const { return placement_; }

  /// Resolve a pointer (must carry partition information) to the records
  /// with the matching in-partition key. An empty result is not an error.
  virtual Status Get(sim::NodeId compute_node, const Pointer& ptr,
                     std::vector<Record>* out) = 0;

  /// Resolve a key within one specific partition — used by the executor to
  /// serve broadcast pointers locally. Reads the primary replica.
  virtual Status GetInPartition(sim::NodeId compute_node, uint32_t partition,
                                const std::string& key,
                                std::vector<Record>* out) = 0;

  /// Like GetInPartition but reads the given replica's copy (device charges
  /// go to NodeOfReplica(partition, replica)). Replica 0 is the primary.
  /// The base implementation ignores the replica index and reads the
  /// primary — correct for files that never call SetReplicationFactor.
  virtual Status GetInPartitionOnReplica(sim::NodeId compute_node,
                                         uint32_t partition, uint32_t replica,
                                         const std::string& key,
                                         std::vector<Record>* out) {
    (void)replica;
    return GetInPartition(compute_node, partition, key, out);
  }

  /// Resolve many in-partition keys of ONE partition in a single fused
  /// device operation. `out` is resized to `keys.size()`; slot i receives
  /// the records matching keys[i] (possibly empty — not an error). The base
  /// implementation degrades to a per-key GetInPartition loop; files that
  /// can fuse the descent (PartitionedFile / BtreeFile) override it to
  /// charge one batch read instead of keys.size() random reads. On error,
  /// `out` contents are unspecified — callers must treat the whole batch as
  /// unread (this is what lets executor retries re-issue it safely).
  virtual Status GetBatchInPartition(sim::NodeId compute_node,
                                     uint32_t partition,
                                     const std::vector<std::string>& keys,
                                     std::vector<std::vector<Record>>* out);

  /// Replica-addressed batch read; base implementation reads the primary.
  virtual Status GetBatchInPartitionOnReplica(
      sim::NodeId compute_node, uint32_t partition, uint32_t replica,
      const std::vector<std::string>& keys,
      std::vector<std::vector<Record>>* out) {
    (void)replica;
    return GetBatchInPartition(compute_node, partition, keys, out);
  }

  /// Range lookups are only supported by BtreeFile.
  virtual Status GetRangeInPartition(sim::NodeId compute_node,
                                     uint32_t partition, const std::string& lo,
                                     const std::string& hi,
                                     const RecordVisitor& visit);

  /// Replica-addressed range read; base implementation reads the primary.
  virtual Status GetRangeInPartitionOnReplica(sim::NodeId compute_node,
                                              uint32_t partition,
                                              uint32_t replica,
                                              const std::string& lo,
                                              const std::string& hi,
                                              const RecordVisitor& visit) {
    (void)replica;
    return GetRangeInPartition(compute_node, partition, lo, hi, visit);
  }

  /// Visit every record of a partition in key order (sequential scan).
  virtual Status ScanPartition(sim::NodeId compute_node, uint32_t partition,
                               const RecordVisitor& visit) = 0;

  virtual uint64_t num_records() const = 0;
  virtual uint64_t total_bytes() const = 0;

  /// Bytes held by one partition — the unit of rebalance copy work. The
  /// base implementation assumes even spread; PartitionedFile reports the
  /// exact per-partition payload.
  virtual uint64_t PartitionBytes(uint32_t partition) const {
    (void)partition;
    const uint32_t parts = num_partitions();
    return parts == 0 ? 0 : total_bytes() / parts;
  }

  const AccessStats& access_stats() const { return access_stats_; }
  AccessStats& mutable_access_stats() { return access_stats_; }

 protected:
  std::string name_;
  std::shared_ptr<Partitioner> partitioner_;
  sim::Cluster* cluster_;
  PlacementManager placement_;
  AccessStats access_stats_;
};

}  // namespace lakeharbor::io
