#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/macros.h"
#include "common/retry.h"
#include "common/status_or.h"
#include "io/file.h"
#include "io/placement.h"
#include "obs/histogram.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"

/// \file rebalancer.h
/// Online partition rebalancing for elastic cluster membership (ISSUE 7
/// tentpole). A node join or drain-first decommission produces, per
/// registered File, an old→new PlacementMap pair (PlacementManager::
/// BeginTransition) plus a per-partition migration plan; the Rebalancer
/// then drives one background copy job per moved partition through the
/// multi-tenant sched::JobScheduler as the low-priority kMigration class,
/// so foreground point lookups and scans keep their fair share of the
/// execution slots and disk tokens while data moves.
///
/// Each copy is throttled by a shared byte-rate leaky bucket — a job out
/// of budget YIELDS (returns, releasing its execution slot and disk
/// tokens) and is resubmitted once the deficit elapses, so a tightly
/// throttled rebalance parks no scheduler resources while it waits — and
/// is chunked and fault-tolerant: chunks retry transient device faults
/// under RetryPolicy,
/// fail over to the next live old replica when the source node goes down
/// mid-move, and record per-(partition, target) byte offsets so a
/// resubmitted job RESUMES instead of re-charging writes already applied
/// (exactly-once with respect to ChargeReplicatedWrite). A partition whose
/// copies all landed flips its epoch atomically — queries immediately
/// serve it from the new replicas with the old set as failover tail — and
/// when every partition has flipped the transition commits and the old
/// copies are released.

namespace lakeharbor::io {

/// Leaky-bucket byte throttle shared by all concurrent migration copies.
/// Acquire blocks until the requested bytes fit under the configured rate;
/// the wait is cancellable so an aborted rebalance stops within one
/// quantum. Thread-safe.
class RateLimiter {
 public:
  /// bytes_per_sec == 0 disables throttling (Acquire returns immediately).
  explicit RateLimiter(uint64_t bytes_per_sec)
      : bytes_per_sec_(bytes_per_sec) {}
  LH_DISALLOW_COPY_AND_ASSIGN(RateLimiter);

  /// Returns false when `cancel` flipped while waiting.
  bool Acquire(uint64_t bytes, CancelToken* cancel);

  /// Non-blocking variant: charges `bytes` and returns 0 when the budget
  /// admits them now, otherwise returns the microseconds until the bucket
  /// frees WITHOUT charging. Lets a copy job yield its scheduler slot and
  /// disk tokens for the wait instead of sleeping while holding them.
  int64_t TryAcquire(uint64_t bytes);

 private:
  const uint64_t bytes_per_sec_;
  std::mutex mutex_;
  int64_t next_free_us_ = 0;
};

struct RebalanceOptions {
  /// Outstanding migration jobs in the scheduler at once. Together with
  /// the scheduler's migration_io_tokens this bounds how many disk slots
  /// background copies can ever hold.
  size_t max_concurrent_migrations = 4;

  /// Shared copy-rate budget across all concurrent moves (0 = unthrottled).
  uint64_t throttle_bytes_per_sec = 0;

  /// Bytes per copy chunk — the resume granularity: offsets advance (and
  /// are never re-charged) in units of this.
  uint64_t copy_chunk_bytes = 1 << 20;

  /// Per-chunk retry of transient device faults (kIoError / kUnavailable).
  RetryPolicy retry;

  /// Submissions of one partition's copy job before the rebalance gives up
  /// and aborts (progress is kept across resubmissions).
  size_t max_partition_attempts = 3;

  /// Tenant the migration jobs are accounted to.
  std::string tenant = "system-rebalance";

  RebalanceOptions() {
    retry.max_retries = 4;
    retry.backoff_initial_us = 50;
    retry.backoff_max_us = 2000;
    retry.jitter = 0.5;
  }
};

/// Live counters of the rebalance in flight (readable from other threads).
struct RebalanceProgress {
  std::atomic<uint64_t> partitions_total{0};
  std::atomic<uint64_t> partitions_done{0};
  std::atomic<uint64_t> bytes_copied{0};
  std::atomic<uint64_t> chunks_copied{0};
  std::atomic<uint64_t> chunk_retries{0};
  std::atomic<uint64_t> source_failovers{0};
  std::atomic<uint64_t> job_resubmissions{0};
  /// Copy jobs that returned early because the rate budget ran dry and
  /// were resubmitted after the deficit elapsed (holding no scheduler
  /// resources in between). Not failures and not counted as attempts.
  std::atomic<uint64_t> throttle_yields{0};

  void Reset() {
    partitions_total.store(0);
    partitions_done.store(0);
    bytes_copied.store(0);
    chunks_copied.store(0);
    chunk_retries.store(0);
    source_failovers.store(0);
    job_resubmissions.store(0);
    throttle_yields.store(0);
  }
};

/// Summary of one completed rebalance.
struct RebalanceReport {
  uint64_t partitions_moved = 0;
  uint64_t partitions_unchanged = 0;
  uint64_t bytes_copied = 0;
  uint64_t chunks_copied = 0;
  uint64_t chunk_retries = 0;
  uint64_t source_failovers = 0;
  uint64_t job_resubmissions = 0;
  uint64_t throttle_yields = 0;
  /// Cluster placement epoch after the last file committed.
  uint64_t committed_epoch = 0;
  uint64_t elapsed_ms = 0;
  /// Submit-to-flip latency of each moved partition's copy job.
  obs::HistogramSnapshot partition_copy_us;
};

/// Drives membership changes end to end. Not thread-safe for concurrent
/// membership operations (one rebalance at a time); Cancel() and
/// progress() may be called from any thread while one runs.
class Rebalancer {
 public:
  Rebalancer(sim::Cluster* cluster, sched::JobScheduler* scheduler,
             RebalanceOptions options);
  LH_DISALLOW_COPY_AND_ASSIGN(Rebalancer);

  /// Files whose placements this rebalancer manages. Register every
  /// replicated file BEFORE the first membership change; files must
  /// outlive the rebalancer.
  void RegisterFile(File* file);

  /// Bring one new node online and spread existing partitions onto it:
  /// AddNode, then rebalance every registered file onto the new active
  /// member set. Returns the new node's id. On rebalance failure the
  /// transitions are aborted (placements roll back; the node stays
  /// registered but empty) and the error is returned.
  StatusOr<sim::NodeId> AddNodeAndRebalance();

  /// Drain-first decommission: rebalance every registered file onto the
  /// active member set WITHOUT `id` (the node keeps serving reads as a
  /// copy source throughout), then RemoveNode(id). On failure the node is
  /// NOT removed.
  Status RemoveNodeAndRebalance(sim::NodeId id);

  /// Re-spread every registered file across the current active member set
  /// (e.g. after AddNode was called directly on the cluster). Files whose
  /// placement already matches are skipped.
  StatusOr<RebalanceReport> RebalanceToActiveMembers();

  /// Abort the rebalance in flight from any thread: copy loops stop within
  /// one chunk/backoff quantum and the driver rolls the transitions back.
  void Cancel(Status cause) { cancel_.Cancel(std::move(cause)); }

  const RebalanceProgress& progress() const { return progress_; }
  const RebalanceOptions& options() const { return options_; }

  /// Report of the most recently completed rebalance (empty before one).
  const RebalanceReport& last_report() const { return last_report_; }

 private:
  StatusOr<RebalanceReport> RebalanceToMembers(
      const std::vector<sim::NodeId>& members);
  Status RebalanceFile(File* file, const std::vector<sim::NodeId>& members,
                       RebalanceReport* report,
                       obs::LatencyHistogram* copy_hist);
  Status RunMoves(File* file, const MigrationPlan& plan,
                  RebalanceReport* report, obs::LatencyHistogram* copy_hist);

  sim::Cluster* cluster_;
  sched::JobScheduler* scheduler_;
  RebalanceOptions options_;
  RateLimiter limiter_;
  CancelToken cancel_;
  RebalanceProgress progress_;
  RebalanceReport last_report_;
  std::vector<File*> files_;
};

}  // namespace lakeharbor::io
