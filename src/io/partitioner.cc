#include "io/partitioner.h"

#include <algorithm>

#include "common/hash.h"

namespace lakeharbor::io {

HashPartitioner::HashPartitioner(uint32_t num_partitions)
    : num_partitions_(num_partitions) {
  LH_CHECK_MSG(num_partitions > 0, "need at least one partition");
}

uint32_t HashPartitioner::PartitionOf(Slice partition_key) const {
  return static_cast<uint32_t>(Fnv1a64(partition_key) % num_partitions_);
}

RangePartitioner::RangePartitioner(std::vector<std::string> upper_boundaries)
    : boundaries_(std::move(upper_boundaries)) {
  LH_CHECK_MSG(std::is_sorted(boundaries_.begin(), boundaries_.end()),
               "range boundaries must be sorted");
  LH_CHECK_MSG(std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
                   boundaries_.end(),
               "range boundaries must be distinct");
}

uint32_t RangePartitioner::PartitionOf(Slice partition_key) const {
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                             partition_key.ToString());
  return static_cast<uint32_t>(it - boundaries_.begin());
}

std::shared_ptr<RangePartitioner> BuildRangePartitionerFromSample(
    std::vector<std::string> sample_keys, uint32_t num_partitions) {
  LH_CHECK_MSG(num_partitions > 0, "need at least one partition");
  std::sort(sample_keys.begin(), sample_keys.end());
  std::vector<std::string> boundaries;
  if (!sample_keys.empty()) {
    boundaries.reserve(num_partitions - 1);
    for (uint32_t i = 1; i < num_partitions; ++i) {
      size_t idx = sample_keys.size() * i / num_partitions;
      const std::string& candidate = sample_keys[idx];
      if (boundaries.empty() || boundaries.back() < candidate) {
        boundaries.push_back(candidate);
      }
    }
  }
  return std::make_shared<RangePartitioner>(std::move(boundaries));
}

}  // namespace lakeharbor::io
