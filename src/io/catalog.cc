#include "io/catalog.h"

namespace lakeharbor::io {

Status Catalog::Register(std::shared_ptr<File> file) {
  LH_CHECK(file != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = files_.emplace(file->name(), std::move(file));
  if (!inserted) {
    return Status::AlreadyExists("file '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

void Catalog::RegisterOrReplace(std::shared_ptr<File> file) {
  LH_CHECK(file != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  files_[file->name()] = std::move(file);
}

StatusOr<std::shared_ptr<File>> Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no file named '" + name + "' in catalog");
  }
  return it->second;
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(name) > 0;
}

Status Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(name) == 0) {
    return Status::NotFound("no file named '" + name + "' in catalog");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

uint64_t Catalog::TotalRecordAccesses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, file] : files_) {
    total += file->access_stats().record_accesses();
  }
  return total;
}

void Catalog::ResetAccessStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, file] : files_) {
    file->mutable_access_stats().Reset();
  }
}

}  // namespace lakeharbor::io
