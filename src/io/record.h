#pragma once

#include <memory>
#include <string>
#include <utility>

#include "common/slice.h"

namespace lakeharbor::io {

/// A Record is the unit of data ReDe reads and writes (§III-B): an opaque,
/// immutable byte buffer. Schemas are *not* part of a record — schema-on-
/// read Interpreters parse fields on access, which is what lets LakeHarbor
/// handle dynamically-typed formats (e.g., the insurance-claims sub-record
/// format) that columnar file formats cannot express.
///
/// Records are shared, cheaply copyable handles; the bytes are immutable
/// once constructed, so sharing across executor threads is safe.
class Record {
 public:
  Record() : data_(EmptyPayload()) {}
  explicit Record(std::string bytes)
      : data_(std::make_shared<const std::string>(std::move(bytes))) {}

  Slice slice() const { return Slice(*data_); }
  const std::string& bytes() const { return *data_; }
  size_t size() const { return data_->size(); }
  bool empty() const { return data_->empty(); }

  bool operator==(const Record& other) const {
    return *data_ == *other.data_;
  }

 private:
  static std::shared_ptr<const std::string> EmptyPayload() {
    static const std::shared_ptr<const std::string> kEmpty =
        std::make_shared<const std::string>();
    return kEmpty;
  }

  std::shared_ptr<const std::string> data_;
};

}  // namespace lakeharbor::io
