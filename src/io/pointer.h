#pragma once

#include <string>
#include <utility>

namespace lakeharbor::io {

/// A Pointer locates Records (§III-B). It carries
///   - a partition key, routed through the target File's Partitioner to find
///     the partition/node holding the record, and
///   - an in-partition key (logical: primary key / index key; the prototype
///     uses logical keys throughout, as the paper's examples do).
///
/// A pointer *without* partition information (has_partition == false) is the
/// paper's broadcast mechanism: the executor replicates it to every
/// partition, where it is resolved locally (Algorithm 1, lines 28-33).
struct Pointer {
  std::string partition_key;
  std::string key;
  bool has_partition = true;

  Pointer() = default;
  Pointer(std::string partition_key_in, std::string key_in)
      : partition_key(std::move(partition_key_in)), key(std::move(key_in)) {}

  /// Pointer routed by partition key; most files are partitioned by the
  /// same key they are looked up with, so this is the common constructor.
  static Pointer Keyed(std::string key) {
    Pointer p;
    p.partition_key = key;
    p.key = std::move(key);
    return p;
  }

  /// Broadcast pointer ("null partition information" in the paper): the
  /// executor replicates it to all partitions for local resolution.
  static Pointer Broadcast(std::string key) {
    Pointer p;
    p.key = std::move(key);
    p.has_partition = false;
    return p;
  }

  bool operator==(const Pointer& other) const {
    return partition_key == other.partition_key && key == other.key &&
           has_partition == other.has_partition;
  }
};

}  // namespace lakeharbor::io
