#pragma once

#include <string>
#include <vector>

#include "common/status_or.h"
#include "io/partitioned_file.h"

/// \file ingest.h
/// The lake's file boundary. "Data lake systems typically hold raw
/// datasets" (§I) — these helpers move raw text files between the local
/// filesystem and PartitionedFiles without interpreting anything beyond
/// record framing:
///   - delimited files: one record per line (TPC-H tables, warehouse rows);
///   - blocked files: multi-line records separated by blank lines (the
///     insurance-claims format, whose records contain newlines).
/// Keys are extracted by a caller-supplied function — the first and only
/// schema-on-read step that happens at ingest, because partition placement
/// needs a partition key.

namespace lakeharbor::io {

/// Extracts (partition_key, in_partition_key) from one raw record.
struct IngestKeys {
  std::string partition_key;
  std::string key;
};
using KeyExtractor = std::function<StatusOr<IngestKeys>(const std::string&)>;

/// Append every line of `path` to `file`. Returns the record count.
/// Empty lines are skipped. The file is not sealed.
StatusOr<uint64_t> IngestDelimitedFile(const std::string& path,
                                       PartitionedFile* file,
                                       const KeyExtractor& keys);

/// Append every blank-line-separated block of `path` to `file` as one
/// record (trailing newline preserved per line, as the claims format
/// expects). Returns the record count. The file is not sealed.
StatusOr<uint64_t> IngestBlockedFile(const std::string& path,
                                     PartitionedFile* file,
                                     const KeyExtractor& keys);

/// Write rows to `path`, one per line (creates/truncates).
Status WriteLines(const std::string& path,
                  const std::vector<std::string>& rows);

/// Write multi-line records to `path` separated by blank lines.
Status WriteBlocks(const std::string& path,
                   const std::vector<std::string>& blocks);

}  // namespace lakeharbor::io
