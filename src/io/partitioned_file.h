#pragma once

#include <memory>
#include <string>
#include <vector>

#include "index/btree.h"
#include "io/file.h"

namespace lakeharbor::io {

/// The concrete distributed file of the prototype's "simple distributed
/// file system": records are hash- or range-partitioned, and each partition
/// stores its records in primary-key order in a B-tree, so point lookups by
/// in-partition key cost one simulated random read.
///
/// Loading protocol: Append() records, then Seal(); queries on an unsealed
/// file are rejected. This mirrors the lake's immutable-raw-data model —
/// structure maintenance creates *new* files rather than mutating loaded
/// ones.
class PartitionedFile : public File {
 public:
  PartitionedFile(std::string name, std::shared_ptr<Partitioner> partitioner,
                  sim::Cluster* cluster, size_t btree_fanout = 64);

  /// Add a record during loading. The partition key is routed through the
  /// partitioner; `key` is the in-partition (primary) key.
  Status Append(const std::string& partition_key, std::string key,
                Record record);

  /// Add a record to an explicit partition, bypassing the partitioner.
  /// Used for *local* secondary indexes, whose partitions mirror the base
  /// file's partitions 1:1 rather than being derived from the index key.
  Status AppendToPartition(uint32_t partition, std::string key, Record record);

  /// Finish loading. Idempotent.
  void Seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }

  Status Get(sim::NodeId compute_node, const Pointer& ptr,
             std::vector<Record>* out) override;
  Status GetInPartition(sim::NodeId compute_node, uint32_t partition,
                        const std::string& key,
                        std::vector<Record>* out) override;
  /// Replica-addressed point lookup: identical result from any replica, but
  /// device charges land on NodeOfReplica(partition, replica)'s disk.
  Status GetInPartitionOnReplica(sim::NodeId compute_node, uint32_t partition,
                                 uint32_t replica, const std::string& key,
                                 std::vector<Record>* out) override;

  /// Fused multi-key probe: one B-tree descent amortized over every key of
  /// the batch, charged as a single batch read (one seek plus cheap
  /// follow-ups) instead of keys.size() random reads.
  Status GetBatchInPartition(sim::NodeId compute_node, uint32_t partition,
                             const std::vector<std::string>& keys,
                             std::vector<std::vector<Record>>* out) override;
  Status GetBatchInPartitionOnReplica(
      sim::NodeId compute_node, uint32_t partition, uint32_t replica,
      const std::vector<std::string>& keys,
      std::vector<std::vector<Record>>* out) override;
  Status ScanPartition(sim::NodeId compute_node, uint32_t partition,
                       const RecordVisitor& visit) override;

  /// Scan one partition exposing the in-partition keys alongside the
  /// records (statistics builders need the key domain). Charged like
  /// ScanPartition.
  using KeyedRecordVisitor =
      std::function<bool(const std::string& key, const Record& record)>;
  Status ScanPartitionKeyed(sim::NodeId compute_node, uint32_t partition,
                            const KeyedRecordVisitor& visit);

  uint64_t num_records() const override { return num_records_; }
  uint64_t total_bytes() const override { return total_bytes_; }
  uint64_t PartitionBytes(uint32_t partition) const override {
    return partitions_[partition].bytes;
  }
  uint64_t partition_bytes(uint32_t partition) const {
    return partitions_[partition].bytes;
  }
  uint64_t partition_records(uint32_t partition) const {
    return partitions_[partition].tree->size();
  }

 protected:
  struct Partition {
    std::unique_ptr<index::Btree<Record>> tree;
    uint64_t bytes = 0;
  };

  Status CheckSealed() const;
  Status CheckPartitionAndReplica(uint32_t partition, uint32_t replica) const;
  Status ChargeLookup(sim::NodeId compute_node, uint32_t partition,
                      uint32_t replica, size_t result_bytes,
                      size_t result_records);
  /// Per-epoch read attribution (obs): counts a successful read of
  /// `replica` into old_epoch_reads/new_epoch_reads during a rebalance.
  void CountEpochRead(uint32_t partition, uint32_t replica);

  std::vector<Partition> partitions_;
  uint64_t num_records_ = 0;
  uint64_t total_bytes_ = 0;
  bool sealed_ = false;
};

/// A BtreeFile additionally locates the set of records between two pointers
/// (§III-B). Secondary and global indexes — and base files queried by key
/// prefix ranges — are BtreeFiles.
class BtreeFile final : public PartitionedFile {
 public:
  using PartitionedFile::PartitionedFile;

  /// Range lookup within one partition: visit records with lo <= key <= hi.
  /// Charged as one index descent (random read) plus a sequential leaf
  /// stream proportional to the result size.
  Status GetRangeInPartition(sim::NodeId compute_node, uint32_t partition,
                             const std::string& lo, const std::string& hi,
                             const RecordVisitor& visit) override;
  Status GetRangeInPartitionOnReplica(sim::NodeId compute_node,
                                      uint32_t partition, uint32_t replica,
                                      const std::string& lo,
                                      const std::string& hi,
                                      const RecordVisitor& visit) override;

  /// Range lookup across every partition, in partition order. Used when the
  /// indexed key is not the partitioning key (local secondary indexes).
  Status GetRangeAllPartitions(sim::NodeId compute_node, const std::string& lo,
                               const std::string& hi,
                               const RecordVisitor& visit);
};

}  // namespace lakeharbor::io
