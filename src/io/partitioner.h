#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/slice.h"

namespace lakeharbor::io {

/// Maps a partition key to a partition id (§III-B: "a File takes a
/// partition key from a given Pointer, applies it to a pre-configured
/// Partitioner ... to locate a partition").
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual uint32_t num_partitions() const = 0;
  virtual uint32_t PartitionOf(Slice partition_key) const = 0;
  virtual std::string name() const = 0;
};

/// Deterministic hash partitioning (FNV-1a over the key bytes).
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(uint32_t num_partitions);
  uint32_t num_partitions() const override { return num_partitions_; }
  uint32_t PartitionOf(Slice partition_key) const override;
  std::string name() const override { return "hash"; }

 private:
  uint32_t num_partitions_;
};

/// Range partitioning over sorted upper boundaries: partition i holds keys
/// < boundaries[i]; the last partition holds the rest. Boundaries must be
/// strictly increasing; num_partitions == boundaries.size() + 1.
class RangePartitioner final : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<std::string> upper_boundaries);
  uint32_t num_partitions() const override {
    return static_cast<uint32_t>(boundaries_.size()) + 1;
  }
  uint32_t PartitionOf(Slice partition_key) const override;
  std::string name() const override { return "range"; }
  const std::vector<std::string>& boundaries() const { return boundaries_; }

 private:
  std::vector<std::string> boundaries_;
};

/// Build a RangePartitioner whose boundaries are the (num_partitions - 1)
/// quantiles of `sample_keys` — the usual way a range-partitioned structure
/// is laid out from a data sample. Duplicate quantiles are skipped, so the
/// result may have fewer partitions than requested on skewed samples.
std::shared_ptr<RangePartitioner> BuildRangePartitionerFromSample(
    std::vector<std::string> sample_keys, uint32_t num_partitions);

}  // namespace lakeharbor::io
