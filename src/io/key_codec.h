#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status_or.h"

/// \file key_codec.h
/// Order-preserving byte encodings for index keys. B-trees and range
/// partitioners compare keys as raw byte strings, so every typed key is
/// encoded such that memcmp order equals value order:
///   int64  -> sign-biased big-endian hex (16 chars)
///   double -> IEEE-754 bit trick, big-endian hex (16 chars)
///   string -> identity (dates like "1995-03-15" are already ordered)

namespace lakeharbor::io {

/// Encode a signed 64-bit integer.
std::string EncodeInt64Key(int64_t value);

/// Decode a key produced by EncodeInt64Key.
StatusOr<int64_t> DecodeInt64Key(std::string_view key);

/// Encode a double (total order: -inf < ... < -0 == +0 < ... < +inf; NaN is
/// rejected by callers before encoding — behaviour on NaN is unspecified).
std::string EncodeDoubleKey(double value);

/// Decode a key produced by EncodeDoubleKey.
StatusOr<double> DecodeDoubleKey(std::string_view key);

/// Compose a two-part key (e.g., (l_orderkey, l_linenumber)) such that
/// composite order equals lexicographic order of the parts. Parts must be
/// fixed width or self-terminating; the shipped encoders are fixed width.
std::string ComposeKey(std::string_view first, std::string_view second);

}  // namespace lakeharbor::io
