#pragma once

#include <atomic>
#include <cstdint>

namespace lakeharbor::io {

/// Per-File access counters. `records_read + records_scanned` is the
/// "number of record accesses" metric of the paper's Fig 9; it is exact and
/// independent of timing simulation.
struct AccessStats {
  std::atomic<uint64_t> lookups{0};         ///< point Get invocations
  std::atomic<uint64_t> range_lookups{0};   ///< range Get invocations
  std::atomic<uint64_t> records_read{0};    ///< records returned by lookups
  std::atomic<uint64_t> partition_scans{0}; ///< full-partition scans
  std::atomic<uint64_t> records_scanned{0}; ///< records visited by scans
  std::atomic<uint64_t> appends{0};         ///< records loaded/written
  std::atomic<uint64_t> bloom_skips{0};     ///< partition probes avoided
  std::atomic<uint64_t> batched_gets{0};    ///< GetBatchInPartition calls
  std::atomic<uint64_t> batched_keys{0};    ///< keys resolved by batch gets
  std::atomic<uint64_t> failovers{0};       ///< io-level replica failovers
                                            ///< (scans moving past a dead
                                            ///< replica)
  std::atomic<uint64_t> old_epoch_reads{0}; ///< reads served from the OLD
                                            ///< placement during a rebalance
  std::atomic<uint64_t> new_epoch_reads{0}; ///< reads served from the NEW
                                            ///< placement during a rebalance

  uint64_t record_accesses() const {
    return records_read.load() + records_scanned.load();
  }

  void Reset() {
    lookups = 0;
    range_lookups = 0;
    records_read = 0;
    partition_scans = 0;
    records_scanned = 0;
    appends = 0;
    bloom_skips = 0;
    batched_gets = 0;
    batched_keys = 0;
    failovers = 0;
    old_epoch_reads = 0;
    new_epoch_reads = 0;
  }
};

}  // namespace lakeharbor::io
