#include "io/ingest.h"

#include <fstream>

namespace lakeharbor::io {

namespace {

Status AppendOne(PartitionedFile* file, const KeyExtractor& keys,
                 std::string record_bytes) {
  LH_ASSIGN_OR_RETURN(IngestKeys extracted, keys(record_bytes));
  return file->Append(extracted.partition_key, std::move(extracted.key),
                      Record(std::move(record_bytes)));
}

}  // namespace

StatusOr<uint64_t> IngestDelimitedFile(const std::string& path,
                                       PartitionedFile* file,
                                       const KeyExtractor& keys) {
  LH_CHECK(file != nullptr);
  LH_CHECK(keys != nullptr);
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for ingest");
  }
  uint64_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    LH_RETURN_NOT_OK(AppendOne(file, keys, std::move(line))
                         .WithContext("ingesting " + path));
    line.clear();
    ++count;
  }
  if (in.bad()) {
    return Status::IOError("read error while ingesting '" + path + "'");
  }
  return count;
}

StatusOr<uint64_t> IngestBlockedFile(const std::string& path,
                                     PartitionedFile* file,
                                     const KeyExtractor& keys) {
  LH_CHECK(file != nullptr);
  LH_CHECK(keys != nullptr);
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for ingest");
  }
  uint64_t count = 0;
  std::string line;
  std::string block;
  auto flush = [&]() -> Status {
    if (block.empty()) return Status::OK();
    LH_RETURN_NOT_OK(AppendOne(file, keys, std::move(block))
                         .WithContext("ingesting " + path));
    block.clear();
    ++count;
    return Status::OK();
  };
  while (std::getline(in, line)) {
    if (line.empty()) {
      LH_RETURN_NOT_OK(flush());
      continue;
    }
    block += line;
    block.push_back('\n');
  }
  LH_RETURN_NOT_OK(flush());
  if (in.bad()) {
    return Status::IOError("read error while ingesting '" + path + "'");
  }
  return count;
}

Status WriteLines(const std::string& path,
                  const std::vector<std::string>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  for (const std::string& row : rows) {
    out << row << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IOError("write error on '" + path + "'");
  }
  return Status::OK();
}

Status WriteBlocks(const std::string& path,
                   const std::vector<std::string>& blocks) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  for (const std::string& block : blocks) {
    out << block;
    if (block.empty() || block.back() != '\n') out << '\n';
    out << '\n';  // blank separator
  }
  out.flush();
  if (!out.good()) {
    return Status::IOError("write error on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace lakeharbor::io
