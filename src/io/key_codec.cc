#include "io/key_codec.h"

#include <cstring>

namespace lakeharbor::io {

namespace {

const char kHexDigits[] = "0123456789abcdef";

std::string ToHex16(uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHexDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

StatusOr<uint64_t> FromHex16(std::string_view s) {
  if (s.size() != 16) {
    return Status::InvalidArgument("encoded key must be 16 hex chars, got " +
                                   std::string(s));
  }
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::InvalidArgument("bad hex char in key");
    }
  }
  return v;
}

}  // namespace

std::string EncodeInt64Key(int64_t value) {
  // Bias by 2^63 so that signed order becomes unsigned order.
  uint64_t biased = static_cast<uint64_t>(value) ^ (1ULL << 63);
  return ToHex16(biased);
}

StatusOr<int64_t> DecodeInt64Key(std::string_view key) {
  LH_ASSIGN_OR_RETURN(uint64_t biased, FromHex16(key));
  return static_cast<int64_t>(biased ^ (1ULL << 63));
}

std::string EncodeDoubleKey(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  // Standard trick: flip all bits of negatives, flip only the sign bit of
  // non-negatives, giving a total order under unsigned comparison.
  if (bits & (1ULL << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ULL << 63);
  }
  return ToHex16(bits);
}

StatusOr<double> DecodeDoubleKey(std::string_view key) {
  LH_ASSIGN_OR_RETURN(uint64_t bits, FromHex16(key));
  if (bits & (1ULL << 63)) {
    bits &= ~(1ULL << 63);
  } else {
    bits = ~bits;
  }
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string ComposeKey(std::string_view first, std::string_view second) {
  std::string out;
  out.reserve(first.size() + second.size());
  out.append(first);
  out.append(second);
  return out;
}

}  // namespace lakeharbor::io
