#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "sim/cluster.h"

/// \file placement.h
/// Replica placement of file partitions onto cluster nodes, in two layers:
///
///   - PlacementMap: an IMMUTABLE placement snapshot over an explicit
///     member list. The seed rule "partition p lives on node p mod N"
///     becomes "replica r of partition p lives on members[(p + r) mod M]":
///     replica 0 (the PRIMARY) is exactly the old placement for the dense
///     member list [0..N), so replication_factor = 1 on a fresh cluster
///     reproduces the seed layout bit-for-bit, and successive replicas land
///     on distinct nodes by construction (chained declustering).
///
///   - PlacementManager: the versioned-epoch holder making membership
///     changes safe under live traffic. It keeps an old→new PlacementMap
///     pair during a rebalance plus a per-partition "migrated" flip bit;
///     readers resolve replicas lock-free against ONE consistent snapshot
///     (a single atomic pointer load), serving old-or-new with failover.
///
/// Replication is capped at the member count — more copies than members
/// cannot be placed on distinct nodes. The clamp is LOUD (satellite of
/// ISSUE 7): a warning is logged and `clamped()` reports it, so rf=3 on a
/// 2-node cluster fails visibly in tests instead of quietly running rf=2.

namespace lakeharbor::io {

/// Tuples carrying this epoch value resolve against the live placement;
/// any smaller value pins resolution to the snapshot that was current when
/// the tuple was fanned out (see PlacementManager::BroadcastOwner).
inline constexpr uint64_t kEpochCurrent = UINT64_MAX;

class PlacementMap {
 public:
  PlacementMap() : PlacementMap(1, 1) {}

  /// Dense member list [0..num_nodes) — the seed-compatible constructor.
  PlacementMap(uint32_t num_nodes, uint32_t replication_factor);

  /// Explicit member list (elastic clusters: active node ids). Members
  /// must be non-empty; order defines the placement.
  PlacementMap(std::vector<sim::NodeId> members, uint32_t replication_factor);

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(members_.size());
  }
  const std::vector<sim::NodeId>& members() const { return members_; }
  uint32_t replication_factor() const { return replication_; }

  /// The rf the caller ASKED for, before clamping to the member count.
  uint32_t requested_replication_factor() const { return requested_; }

  /// True when the requested rf exceeded the member count and was clamped.
  bool clamped() const { return requested_ > replication_; }

  /// Node holding replica `replica` of `partition`. Replica 0 is the
  /// primary — identical to the unreplicated placement.
  sim::NodeId ReplicaNode(uint32_t partition, uint32_t replica) const {
    LH_CHECK(replica < replication_);
    return members_[(partition + replica) % members_.size()];
  }

  sim::NodeId PrimaryNode(uint32_t partition) const {
    return ReplicaNode(partition, 0);
  }

  /// All nodes holding a copy of `partition`, primary first.
  std::vector<sim::NodeId> ReplicaNodes(uint32_t partition) const {
    std::vector<sim::NodeId> nodes;
    nodes.reserve(replication_);
    for (uint32_t r = 0; r < replication_; ++r) {
      nodes.push_back(ReplicaNode(partition, r));
    }
    return nodes;
  }

  /// Lowest replica index whose node is currently up, or nullopt when every
  /// holder of `partition` is down.
  std::optional<uint32_t> FirstLiveReplica(const sim::Cluster& cluster,
                                           uint32_t partition) const {
    for (uint32_t r = 0; r < replication_; ++r) {
      if (!cluster.NodeIsDown(ReplicaNode(partition, r))) return r;
    }
    return std::nullopt;
  }

  /// Replica index of `partition` held by `node`, or nullopt when the node
  /// holds no copy.
  std::optional<uint32_t> ReplicaOnNode(uint32_t partition,
                                        sim::NodeId node) const {
    const uint32_t m = static_cast<uint32_t>(members_.size());
    for (uint32_t i = 0; i < m; ++i) {
      if (members_[i] != node) continue;
      const uint32_t r = (i + m - partition % m) % m;
      if (r < replication_) return r;
      return std::nullopt;
    }
    return std::nullopt;
  }

  bool SameMembersAndRf(const PlacementMap& other) const {
    return members_ == other.members_ && replication_ == other.replication_;
  }

 private:
  std::vector<sim::NodeId> members_;
  uint32_t requested_;
  uint32_t replication_;
};

/// One partition's copy work in a rebalance: pull a copy from any live
/// `source` (old replica set, primary first) onto every `target` (new
/// replica nodes that do not already hold a copy).
struct PartitionMove {
  uint32_t partition = 0;
  std::vector<sim::NodeId> sources;
  std::vector<sim::NodeId> targets;
};

/// The old→new delta BeginTransition hands to the rebalancer. Partitions
/// whose new replica set needs no new copies are flipped immediately and
/// counted in `partitions_unchanged`.
struct MigrationPlan {
  std::vector<PartitionMove> moves;
  uint32_t partitions_total = 0;
  uint32_t partitions_unchanged = 0;
};

/// Which placement epoch served a replica read — for obs attribution.
enum class ReadEpoch { kSteady, kOldEpoch, kNewEpoch };

/// Versioned placement epochs for one File. Steady state serves from a
/// single immutable PlacementMap. During a rebalance the manager holds the
/// pair (previous = serving, current = target) plus one atomic flip bit per
/// partition:
///
///   - unflipped partition  → previous replicas only (the new copy is
///     still incomplete);
///   - flipped, pre-commit  → current replicas first, previous replicas
///     appended as a failover tail (the old copy is retained until commit,
///     so a brand-new replica's outage never loses availability);
///   - committed            → current replicas only (old copies released).
///
/// Readers take ONE atomic pointer load per resolution and see a fully
/// consistent snapshot; transitions swap in a fresh immutable state.
/// Retired states are kept alive for the manager's lifetime (transitions
/// are rare), which is what makes the raw pointer loads safe without
/// hazard tracking.
///
/// Broadcast ownership is special: a broadcast tuple fanned out to every
/// node must be resolved by EXACTLY one owner per partition even when a
/// commit races the job. Executors stamp `Cluster::placement_epoch()` on
/// tuples at fan-out; BroadcastOwner() resolves stamps older than the last
/// commit against the retired map, so all nodes of one job agree on
/// ownership regardless of where the commit landed relative to each node's
/// work. (One retired generation is kept; back-to-back rebalances faster
/// than a job's lifetime are out of scope.)
class PlacementManager {
 public:
  explicit PlacementManager(PlacementMap initial);
  ~PlacementManager() = default;
  LH_DISALLOW_COPY_AND_ASSIGN(PlacementManager);

  /// --- lock-free read path -------------------------------------------

  /// Number of replica slots a reader may try for `partition` right now
  /// (old + new sets during the post-flip window).
  uint32_t ReplicaCountFor(uint32_t partition) const;

  /// Node serving replica slot `replica` of `partition` (see class comment
  /// for the old-or-new order). `replica` is folded into the currently
  /// valid range, so a racing flip/abort never turns into an out-of-range
  /// crash — callers iterate [0, ReplicaCountFor(p)).
  sim::NodeId ReplicaNode(uint32_t partition, uint32_t replica) const;

  /// Serving primary: replica slot 0.
  sim::NodeId PrimaryNode(uint32_t partition) const {
    return ReplicaNode(partition, 0);
  }

  /// Epoch attribution of a read against replica slot `replica`.
  ReadEpoch AttributeRead(uint32_t partition, uint32_t replica) const;

  /// Lowest live replica slot, or nullopt when every holder is down.
  std::optional<uint32_t> FirstLiveReplica(const sim::Cluster& cluster,
                                           uint32_t partition) const;

  /// The node owning broadcast resolution of `partition` for a tuple
  /// stamped with `fanout_epoch` (kEpochCurrent = live). During a
  /// rebalance the OLD primary owns every partition until commit.
  sim::NodeId BroadcastOwner(uint32_t partition, uint64_t fanout_epoch) const;

  /// Copy of the current TARGET map (steady state: the serving map).
  PlacementMap Snapshot() const;

  uint32_t replication_factor() const;
  bool rebalancing() const;

  /// --- transitions (serialized internally) ---------------------------

  /// Replace the placement outright — only valid while NOT rebalancing
  /// (load-time SetReplicationFactor).
  void Reset(PlacementMap map);

  /// Start a rebalance toward `next`. Computes the per-partition plan over
  /// `num_partitions`, immediately flips partitions needing no copies, and
  /// switches the read path to old-or-new resolution. Fails when a
  /// transition is already in flight.
  StatusOr<MigrationPlan> BeginTransition(PlacementMap next,
                                          uint32_t num_partitions);

  /// Flip one drained partition to the new epoch (its copies are in
  /// place). Idempotent.
  void MarkPartitionMigrated(uint32_t partition);

  bool PartitionMigrated(uint32_t partition) const;

  /// Finish the rebalance: every partition must be flipped. Old copies are
  /// released; tuples stamped with an epoch < `serving_epoch` keep
  /// resolving broadcasts against the retired map.
  Status CommitTransition(uint64_t serving_epoch);

  /// Roll back to the previous map (failed rebalance). Old copies were
  /// retained throughout, so this is always safe; flipped partitions
  /// simply resume serving from the old set.
  void AbortTransition();

 private:
  struct State {
    std::shared_ptr<const PlacementMap> current;   // target (serving when
                                                   // not rebalancing)
    std::shared_ptr<const PlacementMap> previous;  // serving set during a
                                                   // rebalance; null otherwise
    std::shared_ptr<const PlacementMap> retired;   // last pre-commit map, for
                                                   // stamped broadcasts
    std::unique_ptr<std::atomic<uint32_t>[]> migrated;
    uint32_t num_partitions = 0;
    /// Tuples stamped with fanout_epoch < commit_epoch resolve broadcasts
    /// against `retired`.
    uint64_t commit_epoch = 0;
  };

  const State& state() const {
    return *state_.load(std::memory_order_acquire);
  }
  void Publish(std::unique_ptr<State> next);

  std::atomic<const State*> state_{nullptr};
  mutable std::mutex mutex_;  // transitions + graveyard
  std::vector<std::unique_ptr<State>> graveyard_;
};

}  // namespace lakeharbor::io
