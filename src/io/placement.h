#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "sim/cluster.h"

/// \file placement.h
/// Replica placement of file partitions onto cluster nodes. The seed rule
/// "partition p lives on node p mod N" becomes "replica r of partition p
/// lives on node (p + r) mod N": replica 0 (the PRIMARY) is exactly the old
/// placement, so replication_factor = 1 reproduces today's layout
/// bit-for-bit, and successive replicas land on distinct nodes by
/// construction (chained declustering). Replication is capped at the node
/// count — more copies than nodes cannot be placed on distinct nodes.

namespace lakeharbor::io {

class PlacementMap {
 public:
  PlacementMap() : PlacementMap(1, 1) {}
  PlacementMap(uint32_t num_nodes, uint32_t replication_factor)
      : num_nodes_(num_nodes == 0 ? 1 : num_nodes),
        replication_(Clamp(replication_factor, num_nodes_)) {}

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t replication_factor() const { return replication_; }

  /// Node holding replica `replica` of `partition`. Replica 0 is the
  /// primary — identical to the unreplicated placement.
  sim::NodeId ReplicaNode(uint32_t partition, uint32_t replica) const {
    LH_CHECK(replica < replication_);
    return static_cast<sim::NodeId>((partition + replica) % num_nodes_);
  }

  sim::NodeId PrimaryNode(uint32_t partition) const {
    return ReplicaNode(partition, 0);
  }

  /// All nodes holding a copy of `partition`, primary first.
  std::vector<sim::NodeId> ReplicaNodes(uint32_t partition) const {
    std::vector<sim::NodeId> nodes;
    nodes.reserve(replication_);
    for (uint32_t r = 0; r < replication_; ++r) {
      nodes.push_back(ReplicaNode(partition, r));
    }
    return nodes;
  }

  /// Lowest replica index whose node is currently up, or nullopt when every
  /// holder of `partition` is down.
  std::optional<uint32_t> FirstLiveReplica(const sim::Cluster& cluster,
                                           uint32_t partition) const {
    for (uint32_t r = 0; r < replication_; ++r) {
      if (!cluster.NodeIsDown(ReplicaNode(partition, r))) return r;
    }
    return std::nullopt;
  }

  /// Replica index of `partition` held by `node`, or nullopt when the node
  /// holds no copy.
  std::optional<uint32_t> ReplicaOnNode(uint32_t partition,
                                        sim::NodeId node) const {
    const uint32_t r =
        (node + num_nodes_ - (partition % num_nodes_)) % num_nodes_;
    if (r < replication_) return r;
    return std::nullopt;
  }

 private:
  static uint32_t Clamp(uint32_t rf, uint32_t num_nodes) {
    if (rf < 1) return 1;
    return rf > num_nodes ? num_nodes : rf;
  }

  uint32_t num_nodes_;
  uint32_t replication_;
};

}  // namespace lakeharbor::io
