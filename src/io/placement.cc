#include "io/placement.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace lakeharbor::io {

namespace {

std::vector<sim::NodeId> DenseMembers(uint32_t num_nodes) {
  std::vector<sim::NodeId> members(num_nodes == 0 ? 1 : num_nodes);
  for (uint32_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<sim::NodeId>(i);
  }
  return members;
}

}  // namespace

PlacementMap::PlacementMap(uint32_t num_nodes, uint32_t replication_factor)
    : PlacementMap(DenseMembers(num_nodes), replication_factor) {}

PlacementMap::PlacementMap(std::vector<sim::NodeId> members,
                           uint32_t replication_factor)
    : members_(std::move(members)),
      requested_(replication_factor < 1 ? 1 : replication_factor) {
  LH_CHECK_MSG(!members_.empty(), "placement needs at least one member");
  const uint32_t m = static_cast<uint32_t>(members_.size());
  replication_ = requested_ > m ? m : requested_;
  if (clamped()) {
    // Loud, once per constructed map (ISSUE 7 satellite): a silently
    // downgraded rf used to make rf=3-on-2-nodes configs pass as rf=2.
    LH_LOG_WARN << "PlacementMap: requested replication_factor " << requested_
                << " exceeds member count " << m << "; clamped to "
                << replication_ << " — the extra copies CANNOT be placed on "
                << "distinct nodes (check loader replication knobs)";
  }
}

PlacementManager::PlacementManager(PlacementMap initial) {
  auto state = std::make_unique<State>();
  state->current = std::make_shared<const PlacementMap>(std::move(initial));
  Publish(std::move(state));
}

void PlacementManager::Publish(std::unique_ptr<State> next) {
  state_.store(next.get(), std::memory_order_release);
  graveyard_.push_back(std::move(next));
}

uint32_t PlacementManager::ReplicaCountFor(uint32_t partition) const {
  const State& s = state();
  if (s.previous != nullptr) {
    const bool flipped =
        partition < s.num_partitions &&
        s.migrated[partition].load(std::memory_order_acquire) != 0;
    if (flipped) {
      return s.current->replication_factor() +
             s.previous->replication_factor();
    }
    return s.previous->replication_factor();
  }
  return s.current->replication_factor();
}

sim::NodeId PlacementManager::ReplicaNode(uint32_t partition,
                                          uint32_t replica) const {
  const State& s = state();
  if (s.previous != nullptr) {
    const bool flipped =
        partition < s.num_partitions &&
        s.migrated[partition].load(std::memory_order_acquire) != 0;
    if (flipped) {
      // New replicas first, old ones appended as the failover tail. The
      // fold keeps a replica index obtained from a pre-flip count valid.
      const uint32_t new_rf = s.current->replication_factor();
      const uint32_t count = new_rf + s.previous->replication_factor();
      const uint32_t r = replica % count;
      return r < new_rf ? s.current->ReplicaNode(partition, r)
                        : s.previous->ReplicaNode(partition, r - new_rf);
    }
    return s.previous->ReplicaNode(
        partition, replica % s.previous->replication_factor());
  }
  return s.current->ReplicaNode(partition,
                                replica % s.current->replication_factor());
}

ReadEpoch PlacementManager::AttributeRead(uint32_t partition,
                                          uint32_t replica) const {
  const State& s = state();
  if (s.previous == nullptr) return ReadEpoch::kSteady;
  const bool flipped =
      partition < s.num_partitions &&
      s.migrated[partition].load(std::memory_order_acquire) != 0;
  if (!flipped) return ReadEpoch::kOldEpoch;
  const uint32_t new_rf = s.current->replication_factor();
  const uint32_t count = new_rf + s.previous->replication_factor();
  return (replica % count) < new_rf ? ReadEpoch::kNewEpoch
                                    : ReadEpoch::kOldEpoch;
}

std::optional<uint32_t> PlacementManager::FirstLiveReplica(
    const sim::Cluster& cluster, uint32_t partition) const {
  const uint32_t count = ReplicaCountFor(partition);
  for (uint32_t r = 0; r < count; ++r) {
    if (!cluster.NodeIsDown(ReplicaNode(partition, r))) return r;
  }
  return std::nullopt;
}

sim::NodeId PlacementManager::BroadcastOwner(uint32_t partition,
                                             uint64_t fanout_epoch) const {
  const State& s = state();
  if (fanout_epoch != kEpochCurrent && fanout_epoch < s.commit_epoch &&
      s.retired != nullptr) {
    // The tuple was fanned out before the last commit: every node of that
    // job resolves against the retired map, commit race or not.
    return s.retired->PrimaryNode(partition);
  }
  if (s.previous != nullptr) {
    // Mid-rebalance the OLD primary owns broadcasts for every partition —
    // flips change replica READ preference, not broadcast ownership, so
    // one job never sees a partition owned by two nodes.
    return s.previous->PrimaryNode(partition);
  }
  return s.current->PrimaryNode(partition);
}

PlacementMap PlacementManager::Snapshot() const { return *state().current; }

uint32_t PlacementManager::replication_factor() const {
  return state().current->replication_factor();
}

bool PlacementManager::rebalancing() const {
  return state().previous != nullptr;
}

void PlacementManager::Reset(PlacementMap map) {
  std::lock_guard<std::mutex> lock(mutex_);
  const State* cur = state_.load(std::memory_order_relaxed);
  LH_CHECK_MSG(cur->previous == nullptr,
               "PlacementManager::Reset during a rebalance");
  auto next = std::make_unique<State>();
  next->current = std::make_shared<const PlacementMap>(std::move(map));
  next->retired = cur->retired;
  next->commit_epoch = cur->commit_epoch;
  Publish(std::move(next));
}

StatusOr<MigrationPlan> PlacementManager::BeginTransition(
    PlacementMap next_map, uint32_t num_partitions) {
  std::lock_guard<std::mutex> lock(mutex_);
  const State* cur = state_.load(std::memory_order_relaxed);
  if (cur->previous != nullptr) {
    return Status::InvalidArgument(
        "placement transition already in flight");
  }
  auto next = std::make_unique<State>();
  next->previous = cur->current;
  next->current = std::make_shared<const PlacementMap>(std::move(next_map));
  next->retired = cur->retired;
  next->commit_epoch = cur->commit_epoch;
  next->num_partitions = num_partitions;
  next->migrated = std::make_unique<std::atomic<uint32_t>[]>(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    next->migrated[p].store(0, std::memory_order_relaxed);
  }

  MigrationPlan plan;
  plan.partitions_total = num_partitions;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    std::vector<sim::NodeId> old_nodes = next->previous->ReplicaNodes(p);
    std::vector<sim::NodeId> new_nodes = next->current->ReplicaNodes(p);
    PartitionMove move;
    move.partition = p;
    move.sources = old_nodes;
    for (sim::NodeId n : new_nodes) {
      if (std::find(old_nodes.begin(), old_nodes.end(), n) ==
          old_nodes.end()) {
        move.targets.push_back(n);
      }
    }
    if (move.targets.empty()) {
      // Every new replica already holds a copy — flip immediately.
      next->migrated[p].store(1, std::memory_order_relaxed);
      ++plan.partitions_unchanged;
    } else {
      plan.moves.push_back(std::move(move));
    }
  }
  Publish(std::move(next));
  return plan;
}

void PlacementManager::MarkPartitionMigrated(uint32_t partition) {
  const State& s = state();
  LH_CHECK_MSG(s.previous != nullptr,
               "MarkPartitionMigrated outside a transition");
  LH_CHECK(partition < s.num_partitions);
  s.migrated[partition].store(1, std::memory_order_release);
}

bool PlacementManager::PartitionMigrated(uint32_t partition) const {
  const State& s = state();
  if (s.previous == nullptr) return true;
  LH_CHECK(partition < s.num_partitions);
  return s.migrated[partition].load(std::memory_order_acquire) != 0;
}

Status PlacementManager::CommitTransition(uint64_t serving_epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  const State* cur = state_.load(std::memory_order_relaxed);
  if (cur->previous == nullptr) {
    return Status::InvalidArgument("CommitTransition without a transition");
  }
  for (uint32_t p = 0; p < cur->num_partitions; ++p) {
    if (cur->migrated[p].load(std::memory_order_acquire) == 0) {
      return Status::InvalidArgument(
          "CommitTransition: partition " + std::to_string(p) +
          " not yet drained");
    }
  }
  auto next = std::make_unique<State>();
  next->current = cur->current;
  next->retired = cur->previous;  // stamped in-flight broadcasts
  next->commit_epoch = serving_epoch;
  Publish(std::move(next));
  return Status::OK();
}

void PlacementManager::AbortTransition() {
  std::lock_guard<std::mutex> lock(mutex_);
  const State* cur = state_.load(std::memory_order_relaxed);
  if (cur->previous == nullptr) return;
  auto next = std::make_unique<State>();
  next->current = cur->previous;  // revert; old copies were never released
  next->retired = cur->retired;
  next->commit_epoch = cur->commit_epoch;
  Publish(std::move(next));
}

}  // namespace lakeharbor::io
