#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "io/file.h"

namespace lakeharbor::io {

/// Name -> File registry of a lake. The catalog is intentionally thin —
/// LakeHarbor keeps no schemas, only files and the structures derived from
/// them (which are themselves just more files).
class Catalog {
 public:
  Catalog() = default;
  LH_DISALLOW_COPY_AND_ASSIGN(Catalog);

  Status Register(std::shared_ptr<File> file);

  /// Replaces any existing file with the same name (used when a structure
  /// is rebuilt).
  void RegisterOrReplace(std::shared_ptr<File> file);

  StatusOr<std::shared_ptr<File>> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  Status Drop(const std::string& name);

  std::vector<std::string> ListNames() const;

  /// Sum of record accesses over every registered file — the Fig 9 metric.
  uint64_t TotalRecordAccesses() const;

  /// Reset access stats on every registered file.
  void ResetAccessStats();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<File>> files_;
};

}  // namespace lakeharbor::io
