#include "io/rebalancer.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "rede/job.h"
#include "rede/stage_function.h"

namespace lakeharbor::io {

bool RateLimiter::Acquire(uint64_t bytes, CancelToken* cancel) {
  if (bytes_per_sec_ == 0 || bytes == 0) return true;
  int64_t wait_us = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t now_us = NowMicros();
    if (next_free_us_ < now_us) next_free_us_ = now_us;
    wait_us = next_free_us_ - now_us;
    next_free_us_ += static_cast<int64_t>(bytes * 1000000 / bytes_per_sec_);
  }
  if (wait_us <= 0) return true;
  if (cancel != nullptr) {
    return !cancel->WaitFor(static_cast<uint64_t>(wait_us));
  }
  std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
  return true;
}

int64_t RateLimiter::TryAcquire(uint64_t bytes) {
  if (bytes_per_sec_ == 0 || bytes == 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t now_us = NowMicros();
  if (next_free_us_ < now_us) next_free_us_ = now_us;
  const int64_t wait_us = next_free_us_ - now_us;
  if (wait_us > 0) return wait_us;  // denied: nothing charged
  next_free_us_ += static_cast<int64_t>(bytes * 1000000 / bytes_per_sec_);
  return 0;
}

namespace {

constexpr sim::NodeId kNoSource = UINT32_MAX;

/// Shared state of one partition's copy work, OUTSIDE the job so a
/// resubmitted job resumes from the recorded per-target offsets instead of
/// re-charging writes a previous attempt already applied.
struct PartitionCopyTask {
  sim::Cluster* cluster = nullptr;
  PartitionMove move;
  uint64_t partition_bytes = 0;
  uint64_t chunk_bytes = 0;
  RetryPolicy retry;
  RateLimiter* limiter = nullptr;
  /// The rebalance-wide token: throttle waits and retry backoffs block on
  /// it so Rebalancer::Cancel stops copies within one quantum.
  CancelToken* rebalance_cancel = nullptr;
  RebalanceProgress* progress = nullptr;
  /// Bytes durably copied per target (index-aligned with move.targets).
  std::unique_ptr<std::atomic<uint64_t>[]> offsets;
  /// Set when the last run returned early because the rate budget ran dry;
  /// `yield_wait_us` is how long until the bucket frees. The driver waits
  /// that out off-scheduler and resubmits, and the resumed run continues
  /// from the recorded offsets.
  std::atomic<bool> yielded{false};
  std::atomic<int64_t> yield_wait_us{0};

  /// Pull-model chunked copy: for each chunk the target charges one
  /// sequential read at a live old-replica source (disk + transfer) and one
  /// replicated write to itself. Chunks retry transient faults and fail
  /// over to the next live source; the offset only advances after BOTH
  /// charges succeeded, so a failed chunk is redone wholesale and a
  /// finished one is never duplicated.
  Status Run(const rede::ExecContext& ctx) {
    for (size_t t = 0; t < move.targets.size(); ++t) {
      const sim::NodeId target = move.targets[t];
      uint64_t offset = offsets[t].load(std::memory_order_acquire);
      sim::NodeId last_source = kNoSource;
      while (offset < partition_bytes) {
        if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
          return ctx.cancel->cause();
        }
        if (rebalance_cancel->cancelled()) return rebalance_cancel->cause();
        const uint64_t chunk =
            std::min(chunk_bytes, partition_bytes - offset);
        if (limiter != nullptr) {
          // Out of budget: yield instead of sleeping here — a sleeping job
          // would park its execution slot and migration io tokens for the
          // whole wait, starving foreground work of exactly the resources
          // the throttle is meant to protect.
          const int64_t wait_us = limiter->TryAcquire(chunk);
          if (wait_us > 0) {
            yielded.store(true, std::memory_order_relaxed);
            yield_wait_us.store(wait_us, std::memory_order_relaxed);
            progress->throttle_yields.fetch_add(1, std::memory_order_relaxed);
            return Status::OK();
          }
        }
        Status status = RunWithRetry(
            retry,
            [&]() -> Status {
              sim::NodeId source = kNoSource;
              for (sim::NodeId candidate : move.sources) {
                if (!cluster->NodeIsDown(candidate)) {
                  source = candidate;
                  break;
                }
              }
              if (source == kNoSource) {
                return Status::Unavailable(
                    "no live source replica for partition " +
                    std::to_string(move.partition));
              }
              if (last_source != kNoSource && source != last_source) {
                progress->source_failovers.fetch_add(
                    1, std::memory_order_relaxed);
              }
              last_source = source;
              LH_RETURN_NOT_OK(
                  cluster->ChargeSequentialRead(target, source, chunk));
              return cluster->ChargeReplicatedWrite(
                  target, {target}, static_cast<size_t>(chunk));
            },
            [&](size_t, uint64_t) {
              progress->chunk_retries.fetch_add(1, std::memory_order_relaxed);
            },
            rebalance_cancel,
            (static_cast<uint64_t>(move.partition) << 32) ^
                static_cast<uint64_t>(target) ^ offset);
        if (!status.ok()) {
          return status.WithContext(
              "copy of partition " + std::to_string(move.partition) +
              " to node " + std::to_string(target) + " stalled at byte " +
              std::to_string(offset) + "/" +
              std::to_string(partition_bytes));
        }
        offset += chunk;
        offsets[t].store(offset, std::memory_order_release);
        progress->bytes_copied.fetch_add(chunk, std::memory_order_relaxed);
        progress->chunks_copied.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return Status::OK();
  }
};

/// The migration work as a ReDe stage: a partition-pruning Dereferencer
/// (WantsBroadcast = false, keyed initial pointer) that runs as exactly one
/// task, so a migration job flows through the scheduler and executor like
/// any other job — same slots, tokens, cancellation, and metrics.
class PartitionMigrationStage final : public rede::Dereferencer {
 public:
  PartitionMigrationStage(std::string name,
                          std::shared_ptr<PartitionCopyTask> task)
      : rede::Dereferencer(std::move(name)), task_(std::move(task)) {}

  bool WantsBroadcast() const override { return false; }

  Status Execute(const rede::ExecContext& ctx, const rede::Tuple& /*input*/,
                 std::vector<rede::Tuple>* /*out*/) const override {
    return task_->Run(ctx);
  }

 private:
  std::shared_ptr<PartitionCopyTask> task_;
};

/// One moved partition in flight through the scheduler. `job` is heap-held
/// because the scheduler keeps a raw pointer to it until completion.
struct PendingMove {
  uint32_t partition = 0;
  std::shared_ptr<PartitionCopyTask> task;
  std::unique_ptr<rede::Job> job;
  sched::JobHandlePtr handle;
  size_t attempts = 0;
  int64_t first_submit_us = 0;
};

}  // namespace

Rebalancer::Rebalancer(sim::Cluster* cluster, sched::JobScheduler* scheduler,
                       RebalanceOptions options)
    : cluster_(cluster),
      scheduler_(scheduler),
      options_(std::move(options)),
      limiter_(options_.throttle_bytes_per_sec) {
  LH_CHECK(cluster_ != nullptr);
  LH_CHECK(scheduler_ != nullptr);
  LH_CHECK_MSG(options_.copy_chunk_bytes > 0,
               "rebalancer needs a nonzero copy chunk");
  LH_CHECK_MSG(options_.max_concurrent_migrations > 0,
               "rebalancer needs at least one concurrent migration");
  LH_CHECK_MSG(options_.max_partition_attempts > 0,
               "rebalancer needs at least one attempt per partition");
}

void Rebalancer::RegisterFile(File* file) {
  LH_CHECK(file != nullptr);
  files_.push_back(file);
}

StatusOr<sim::NodeId> Rebalancer::AddNodeAndRebalance() {
  LH_ASSIGN_OR_RETURN(sim::NodeId id, cluster_->AddNode());
  StatusOr<RebalanceReport> report =
      RebalanceToMembers(cluster_->ActiveNodeIds());
  if (!report.ok()) {
    return report.status().WithContext(
        "node " + std::to_string(id) +
        " joined but the rebalance onto it failed (placements rolled back)");
  }
  last_report_ = std::move(report).value();
  return id;
}

Status Rebalancer::RemoveNodeAndRebalance(sim::NodeId id) {
  if (id >= cluster_->num_nodes() || cluster_->NodeIsRemoved(id)) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is not an active cluster member");
  }
  std::vector<sim::NodeId> members;
  for (sim::NodeId node : cluster_->ActiveNodeIds()) {
    if (node != id) members.push_back(node);
  }
  if (members.empty()) {
    return Status::InvalidArgument(
        "refusing to drain the last active node " + std::to_string(id));
  }
  // Drain first: the node keeps serving (and acts as a copy source) while
  // its partitions move away; only a fully committed rebalance removes it.
  LH_ASSIGN_OR_RETURN(RebalanceReport report, RebalanceToMembers(members));
  last_report_ = std::move(report);
  return cluster_->RemoveNode(id);
}

StatusOr<RebalanceReport> Rebalancer::RebalanceToActiveMembers() {
  LH_ASSIGN_OR_RETURN(RebalanceReport report,
                      RebalanceToMembers(cluster_->ActiveNodeIds()));
  last_report_ = report;
  return report;
}

StatusOr<RebalanceReport> Rebalancer::RebalanceToMembers(
    const std::vector<sim::NodeId>& members) {
  cancel_.Reset();
  progress_.Reset();
  StopWatch watch;
  RebalanceReport report;
  obs::LatencyHistogram copy_hist;
  for (File* file : files_) {
    LH_RETURN_NOT_OK(RebalanceFile(file, members, &report, &copy_hist));
  }
  report.bytes_copied = progress_.bytes_copied.load(std::memory_order_relaxed);
  report.chunks_copied =
      progress_.chunks_copied.load(std::memory_order_relaxed);
  report.chunk_retries =
      progress_.chunk_retries.load(std::memory_order_relaxed);
  report.source_failovers =
      progress_.source_failovers.load(std::memory_order_relaxed);
  report.job_resubmissions =
      progress_.job_resubmissions.load(std::memory_order_relaxed);
  report.throttle_yields =
      progress_.throttle_yields.load(std::memory_order_relaxed);
  report.elapsed_ms = static_cast<uint64_t>(watch.ElapsedMillis());
  report.partition_copy_us = copy_hist.Snapshot();
  return report;
}

Status Rebalancer::RebalanceFile(File* file,
                                 const std::vector<sim::NodeId>& members,
                                 RebalanceReport* report,
                                 obs::LatencyHistogram* copy_hist) {
  PlacementManager& manager = file->placement_manager();
  const PlacementMap current = manager.Snapshot();
  // Rebalance toward the REQUESTED rf: a file whose rf was clamped on a
  // small cluster regains its full replication once enough members exist.
  PlacementMap next(members, current.requested_replication_factor());
  if (next.SameMembersAndRf(current)) return Status::OK();
  LH_ASSIGN_OR_RETURN(
      MigrationPlan plan,
      manager.BeginTransition(std::move(next), file->num_partitions()));
  report->partitions_unchanged += plan.partitions_unchanged;
  progress_.partitions_total.fetch_add(plan.moves.size(),
                                       std::memory_order_relaxed);
  Status run = RunMoves(file, plan, report, copy_hist);
  if (!run.ok()) {
    manager.AbortTransition();
    return run.WithContext("rebalance of file '" + file->name() +
                           "' aborted; placement rolled back");
  }
  // Commit BEFORE advancing the cluster epoch: tuples stamped with the
  // pre-advance epoch must compare < commit_epoch and resolve broadcasts
  // against the retired map (see PlacementManager::BroadcastOwner).
  const uint64_t serving_epoch = cluster_->placement_epoch() + 1;
  LH_RETURN_NOT_OK(manager.CommitTransition(serving_epoch));
  cluster_->AdvancePlacementEpoch();
  report->committed_epoch = serving_epoch;
  report->partitions_moved += plan.moves.size();
  LH_LOG_INFO << "rebalance: file '" << file->name() << "' committed epoch "
              << serving_epoch << " (" << plan.moves.size() << " moved, "
              << plan.partitions_unchanged << " unchanged)";
  return Status::OK();
}

Status Rebalancer::RunMoves(File* file, const MigrationPlan& plan,
                            RebalanceReport* /*report*/,
                            obs::LatencyHistogram* copy_hist) {
  PlacementManager& manager = file->placement_manager();
  std::deque<PendingMove> waiting;
  for (const PartitionMove& move : plan.moves) {
    auto task = std::make_shared<PartitionCopyTask>();
    task->cluster = cluster_;
    task->move = move;
    task->partition_bytes = file->PartitionBytes(move.partition);
    task->chunk_bytes = options_.copy_chunk_bytes;
    task->retry = options_.retry;
    task->limiter = &limiter_;
    task->rebalance_cancel = &cancel_;
    task->progress = &progress_;
    task->offsets =
        std::make_unique<std::atomic<uint64_t>[]>(move.targets.size());
    for (size_t t = 0; t < move.targets.size(); ++t) {
      task->offsets[t].store(0, std::memory_order_relaxed);
    }
    const std::string label =
        file->name() + "/p" + std::to_string(move.partition);
    rede::JobBuilder builder("migrate/" + label);
    builder.Initial(
        rede::Tuple::Point(Pointer::Keyed("migrate-" + label)));
    builder.Add(std::make_shared<PartitionMigrationStage>("copy/" + label,
                                                          task));
    LH_ASSIGN_OR_RETURN(rede::Job job, builder.Build());
    PendingMove pending;
    pending.partition = move.partition;
    pending.task = std::move(task);
    pending.job = std::make_unique<rede::Job>(std::move(job));
    waiting.push_back(std::move(pending));
  }

  // Bounded-outstanding driver: keep at most max_concurrent_migrations
  // jobs in the scheduler, completing them oldest-first. Failed partition
  // jobs are resubmitted (their copy tasks resume from recorded offsets)
  // up to max_partition_attempts submissions.
  std::deque<PendingMove> outstanding;
  auto drain_outstanding = [&](const Status& cause) {
    for (PendingMove& pending : outstanding) {
      pending.handle->Cancel(cause);
      StatusOr<rede::JobResult> joined = pending.handle->Wait();
      (void)joined;  // outcome no longer matters, only the join
    }
    outstanding.clear();
  };
  while (!waiting.empty() || !outstanding.empty()) {
    if (cancel_.cancelled()) {
      drain_outstanding(cancel_.cause());
      return cancel_.cause();
    }
    while (!waiting.empty() &&
           outstanding.size() < options_.max_concurrent_migrations) {
      PendingMove pending = std::move(waiting.front());
      waiting.pop_front();
      sched::JobSpec spec;
      spec.tenant = options_.tenant;
      spec.job_class = sched::JobClass::kMigration;
      StatusOr<sched::JobHandlePtr> submitted =
          scheduler_->Submit(*pending.job, std::move(spec));
      if (!submitted.ok()) {
        if (submitted.status().IsResourceExhausted()) {
          // Admission control pushed back. Let an outstanding job finish
          // (or idle briefly when none is) and try again.
          waiting.push_front(std::move(pending));
          if (outstanding.empty() && cancel_.WaitFor(1000)) {
            return cancel_.cause();
          }
          break;
        }
        drain_outstanding(submitted.status());
        return submitted.status().WithContext(
            "submitting migration of partition " +
            std::to_string(pending.partition));
      }
      pending.handle = std::move(submitted).value();
      ++pending.attempts;
      if (pending.first_submit_us == 0) pending.first_submit_us = NowMicros();
      outstanding.push_back(std::move(pending));
    }
    if (outstanding.empty()) continue;
    PendingMove pending = std::move(outstanding.front());
    outstanding.pop_front();
    StatusOr<rede::JobResult> result = pending.handle->Wait();
    if (result.ok() && pending.task->yielded.exchange(false)) {
      // The copy ran out of rate budget and released its scheduler
      // resources. Wait the deficit out here (holding nothing), then
      // resubmit to resume from the recorded offsets. Yields are normal
      // throttle operation, not failed attempts.
      --pending.attempts;
      const int64_t wait_us =
          pending.task->yield_wait_us.load(std::memory_order_relaxed);
      if (wait_us > 0 && cancel_.WaitFor(static_cast<uint64_t>(wait_us))) {
        drain_outstanding(cancel_.cause());
        return cancel_.cause();
      }
      pending.handle.reset();
      waiting.push_back(std::move(pending));
      continue;
    }
    if (result.ok()) {
      // All copies of this partition landed: flip its epoch — queries now
      // serve it from the new replicas with the old set as failover tail.
      manager.MarkPartitionMigrated(pending.partition);
      progress_.partitions_done.fetch_add(1, std::memory_order_relaxed);
      const int64_t now_us = NowMicros();
      if (now_us > pending.first_submit_us) {
        copy_hist->Record(
            static_cast<uint64_t>(now_us - pending.first_submit_us));
      }
      continue;
    }
    if (pending.attempts >= options_.max_partition_attempts) {
      drain_outstanding(result.status());
      return result.status().WithContext(
          "migration of partition " + std::to_string(pending.partition) +
          " failed after " + std::to_string(pending.attempts) +
          " submissions");
    }
    LH_LOG_WARN << "rebalance: migration of partition " << pending.partition
                << " failed (attempt " << pending.attempts << "): "
                << result.status().ToString() << "; resubmitting";
    progress_.job_resubmissions.fetch_add(1, std::memory_order_relaxed);
    pending.handle.reset();
    waiting.push_back(std::move(pending));
  }
  return Status::OK();
}

}  // namespace lakeharbor::io
