#include "claims/generator.h"

#include "common/random.h"
#include "common/string_util.h"

namespace lakeharbor::claims {

namespace {

std::string CodeInRange(Random& rng, const char* lo, const char* hi) {
  int64_t a = std::stoll(lo);
  int64_t b = std::stoll(hi);
  return StrFormat("%04lld",
                   static_cast<long long>(rng.UniformRange(a, b)));
}

}  // namespace

uint64_t ClaimsData::total_sub_records() const {
  uint64_t n = 0;
  for (const Claim& c : parsed) {
    n += 3 + c.treatments.size() + c.medicines.size() + c.diseases.size();
  }
  return n;
}

ClaimsData GenerateClaims(const ClaimsConfig& config) {
  ClaimsData data;
  data.config = config;
  data.raw.reserve(config.num_claims);
  data.parsed.reserve(config.num_claims);
  Random rng(config.seed);

  for (uint64_t id = 1; id <= config.num_claims; ++id) {
    Claim claim;
    claim.ir.claim_id = static_cast<int64_t>(id);
    claim.ir.hospital_id = rng.UniformRange(1, 500);
    claim.ir.type = rng.Bernoulli(0.25) ? "DPC" : "PW";
    claim.re.patient_id = rng.UniformRange(1, 8000);
    claim.re.category = rng.Bernoulli(0.3) ? "IN" : "OUT";
    claim.re.age = rng.UniformRange(0, 99);
    claim.re.sex = rng.Bernoulli(0.5) ? "M" : "F";
    claim.total_expense = rng.UniformRange(1000, 50000);

    // Background content present in every claim.
    uint64_t n_sy = 1 + rng.Uniform(3);
    for (uint64_t i = 0; i < n_sy; ++i) {
      claim.diseases.push_back(
          {CodeInRange(rng, codes::kBackgroundDiseaseLo,
                       codes::kBackgroundDiseaseHi),
           i == 0});
    }
    uint64_t n_iy = 1 + rng.Uniform(4);
    for (uint64_t i = 0; i < n_iy; ++i) {
      claim.medicines.push_back(
          {CodeInRange(rng, codes::kBackgroundMedicineLo,
                       codes::kBackgroundMedicineHi),
           rng.UniformRange(1, 30), rng.UniformRange(1, 500)});
    }
    uint64_t n_si = 1 + rng.Uniform(3);
    for (uint64_t i = 0; i < n_si; ++i) {
      claim.treatments.push_back({StrFormat("%04lld",
                                            static_cast<long long>(
                                                rng.UniformRange(8000, 8999))),
                                  rng.UniformRange(1, 5),
                                  rng.UniformRange(10, 2000)});
    }

    // Cohorts with correlated prescriptions; chronic conditions raise the
    // claimed expense.
    if (rng.Bernoulli(config.hypertension_rate)) {
      claim.diseases.push_back(
          {CodeInRange(rng, codes::kHypertensionLo, codes::kHypertensionHi),
           false});
      claim.total_expense += rng.UniformRange(2000, 20000);
      if (rng.Bernoulli(config.hypertension_treated)) {
        claim.medicines.push_back(
            {CodeInRange(rng, codes::kAntihypertensiveLo,
                         codes::kAntihypertensiveHi),
             rng.UniformRange(28, 90), rng.UniformRange(100, 1000)});
      }
    }
    if (rng.Bernoulli(config.acne_rate)) {
      claim.diseases.push_back(
          {CodeInRange(rng, codes::kAcneLo, codes::kAcneHi), false});
      if (rng.Bernoulli(config.acne_treated)) {
        claim.medicines.push_back(
            {CodeInRange(rng, codes::kAntimicrobialLo,
                         codes::kAntimicrobialHi),
             rng.UniformRange(7, 28), rng.UniformRange(50, 600)});
      }
    }
    if (rng.Bernoulli(config.diabetes_rate)) {
      claim.diseases.push_back(
          {CodeInRange(rng, codes::kDiabetesLo, codes::kDiabetesHi), false});
      claim.total_expense += rng.UniformRange(3000, 30000);
      if (rng.Bernoulli(config.diabetes_treated)) {
        claim.medicines.push_back(
            {CodeInRange(rng, codes::kGlp1Lo, codes::kGlp1Hi),
             rng.UniformRange(28, 90), rng.UniformRange(500, 5000)});
      }
    }

    data.raw.push_back(FormatClaim(claim));
    data.parsed.push_back(std::move(claim));
  }
  return data;
}

}  // namespace lakeharbor::claims
