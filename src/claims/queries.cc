#include "claims/queries.h"

#include <set>

#include "claims/loader.h"
#include "common/string_util.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"

namespace lakeharbor::claims {

ClaimsQuery Q1() {
  return {"Q1-hypertension-antihypertensive", codes::kHypertensionLo,
          codes::kHypertensionHi, codes::kAntihypertensiveLo,
          codes::kAntihypertensiveHi};
}

ClaimsQuery Q2() {
  return {"Q2-acne-antimicrobial", codes::kAcneLo, codes::kAcneHi,
          codes::kAntimicrobialLo, codes::kAntimicrobialHi};
}

ClaimsQuery Q3() {
  return {"Q3-diabetes-glp1", codes::kDiabetesLo, codes::kDiabetesHi,
          codes::kGlp1Lo, codes::kGlp1Hi};
}

std::vector<ClaimsQuery> AllQueries() { return {Q1(), Q2(), Q3()}; }

StatusOr<rede::Job> BuildRawClaimsJob(rede::Engine& engine,
                                      const ClaimsQuery& query) {
  io::Catalog& catalog = engine.catalog();
  LH_ASSIGN_OR_RETURN(auto raw, catalog.Get(names::kRawClaims));
  LH_ASSIGN_OR_RETURN(auto idx_file, catalog.Get(names::kRawDiseaseIndex));
  auto idx = std::dynamic_pointer_cast<io::BtreeFile>(idx_file);
  if (idx == nullptr) {
    return Status::InvalidArgument("disease index is not a BtreeFile");
  }

  using namespace rede;  // NOLINT
  // Medicine-class predicate evaluated with schema-on-read over the *same*
  // fetched claim record — this is the join the warehouse cannot avoid.
  Filter medicine_filter = [lo = query.medicine_lo, hi = query.medicine_hi](
                               const Tuple& tuple) -> StatusOr<bool> {
    return HasMedicineInRange(tuple.last_record(), lo, hi);
  };
  return JobBuilder("claims-raw-" + query.name)
      .Initial(Tuple::Range(io::Pointer::Broadcast(query.disease_lo),
                            io::Pointer::Broadcast(query.disease_hi)))
      .Add(MakeRangeDereferencer("deref0-disease-idx", idx))
      .Add(MakeIndexEntryReferencer("ref1-claim-ptr"))
      .Add(MakePointDereferencer("deref1-claim", raw, medicine_filter))
      .Build();
}

StatusOr<rede::Job> BuildWarehouseClaimsJob(rede::Engine& engine,
                                            const ClaimsQuery& query) {
  io::Catalog& catalog = engine.catalog();
  LH_ASSIGN_OR_RETURN(auto claims_tbl, catalog.Get(names::kWhClaims));
  LH_ASSIGN_OR_RETURN(auto diagnosis, catalog.Get(names::kWhDiagnosis));
  LH_ASSIGN_OR_RETURN(auto prescription, catalog.Get(names::kWhPrescription));
  LH_ASSIGN_OR_RETURN(auto disease_idx_file,
                      catalog.Get(names::kWhDiseaseIndex));
  LH_ASSIGN_OR_RETURN(auto rx_idx, catalog.Get(names::kWhPrescriptionClaimIndex));
  auto disease_idx =
      std::dynamic_pointer_cast<io::BtreeFile>(disease_idx_file);
  if (disease_idx == nullptr) {
    return Status::InvalidArgument("wh disease index is not a BtreeFile");
  }

  using namespace rede;  // NOLINT
  Filter medicine_filter = LastRecordRangeFilter(
      DelimitedFieldInterpreter(wh::prescription_tbl::kMedicineCode),
      query.medicine_lo, query.medicine_hi);
  return JobBuilder("claims-wh-" + query.name)
      // disease index range -> diagnosis rows
      .Initial(Tuple::Range(io::Pointer::Broadcast(query.disease_lo),
                            io::Pointer::Broadcast(query.disease_hi)))
      .Add(MakeRangeDereferencer("deref0-disease-idx", disease_idx))
      .Add(MakeIndexEntryReferencer("ref1-diagnosis-ptr"))
      .Add(MakePointDereferencer("deref1-diagnosis", diagnosis))
      // diagnosis.claim_id -> prescription index -> prescription rows
      // (filter on the medicine class)
      .Add(MakeKeyReferencer(
          "ref2-claimid",
          EncodedInt64FieldInterpreter(wh::diagnosis_tbl::kClaimId)))
      .Add(MakePointDereferencer("deref2-rx-idx", rx_idx))
      .Add(MakeIndexEntryReferencer("ref3-rx-ptr"))
      .Add(MakePointDereferencer("deref3-prescription", prescription,
                                 medicine_filter))
      // prescription.claim_id -> claims row (the expense)
      .Add(MakeKeyReferencer(
          "ref4-claimid",
          EncodedInt64FieldInterpreter(wh::prescription_tbl::kClaimId)))
      .Add(MakePointDereferencer("deref4-claims", claims_tbl))
      .Build();
}

namespace {

StatusOr<ClaimsAnswer> Dedupe(
    const std::vector<std::pair<int64_t, int64_t>>& id_expense) {
  std::set<int64_t> seen;
  ClaimsAnswer answer;
  for (const auto& [id, expense] : id_expense) {
    if (seen.insert(id).second) {
      ++answer.distinct_claims;
      answer.total_expense += expense;
    }
  }
  return answer;
}

}  // namespace

StatusOr<ClaimsAnswer> SummarizeRawOutput(
    const std::vector<rede::Tuple>& tuples) {
  std::vector<std::pair<int64_t, int64_t>> id_expense;
  id_expense.reserve(tuples.size());
  for (const rede::Tuple& tuple : tuples) {
    if (tuple.records.empty()) return Status::Internal("empty claims bundle");
    const io::Record& claim = tuple.last_record();
    LH_ASSIGN_OR_RETURN(int64_t id, ExtractClaimId(claim));
    LH_ASSIGN_OR_RETURN(int64_t expense, ExtractTotalExpense(claim));
    id_expense.emplace_back(id, expense);
  }
  return Dedupe(id_expense);
}

StatusOr<ClaimsAnswer> SummarizeWarehouseOutput(
    const std::vector<rede::Tuple>& tuples) {
  std::vector<std::pair<int64_t, int64_t>> id_expense;
  id_expense.reserve(tuples.size());
  for (const rede::Tuple& tuple : tuples) {
    if (tuple.records.empty()) return Status::Internal("empty wh bundle");
    std::string_view row = tuple.last_record().slice().view();
    LH_ASSIGN_OR_RETURN(
        int64_t id, ParseInt64(FieldAt(row, '|', wh::claims_tbl::kClaimId)));
    LH_ASSIGN_OR_RETURN(
        int64_t expense,
        ParseInt64(FieldAt(row, '|', wh::claims_tbl::kExpense)));
    id_expense.emplace_back(id, expense);
  }
  return Dedupe(id_expense);
}

StatusOr<ClaimsAnswer> RunClaimsScanBaseline(baseline::ScanEngine& engine,
                                             io::Catalog& catalog,
                                             const ClaimsQuery& query) {
  LH_ASSIGN_OR_RETURN(auto raw, catalog.Get(names::kRawClaims));
  baseline::RecordPredicate predicate =
      [&query](const io::Record& record) -> StatusOr<bool> {
    LH_ASSIGN_OR_RETURN(
        bool disease,
        HasDiseaseInRange(record, query.disease_lo, query.disease_hi));
    if (!disease) return false;
    return HasMedicineInRange(record, query.medicine_lo, query.medicine_hi);
  };
  LH_ASSIGN_OR_RETURN(std::vector<baseline::Row> rows,
                      engine.Scan(*raw, predicate));
  ClaimsAnswer answer;
  for (const baseline::Row& row : rows) {
    if (row.empty()) return Status::Internal("empty scan row");
    LH_ASSIGN_OR_RETURN(int64_t expense, ExtractTotalExpense(row[0]));
    ++answer.distinct_claims;  // each claim is one record: no dedup needed
    answer.total_expense += expense;
  }
  return answer;
}

ClaimsAnswer ClaimsOracle(const ClaimsData& data, const ClaimsQuery& query) {
  ClaimsAnswer answer;
  for (const Claim& claim : data.parsed) {
    bool disease = false;
    for (const auto& sy : claim.diseases) {
      if (query.disease_lo <= sy.disease_code &&
          sy.disease_code <= query.disease_hi) {
        disease = true;
        break;
      }
    }
    if (!disease) continue;
    bool medicine = false;
    for (const auto& iy : claim.medicines) {
      if (query.medicine_lo <= iy.medicine_code &&
          iy.medicine_code <= query.medicine_hi) {
        medicine = true;
        break;
      }
    }
    if (!medicine) continue;
    ++answer.distinct_claims;
    answer.total_expense += claim.total_expense;
  }
  return answer;
}

}  // namespace lakeharbor::claims
