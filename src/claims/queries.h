#pragma once

#include <string>
#include <vector>

#include "baseline/scan_engine.h"
#include "claims/generator.h"
#include "rede/engine.h"

/// \file queries.h
/// The three case-study queries of §IV / Fig 9 — "calculate medical
/// expenses charged to medical care prescribing <medicine class> for
/// <disease class>" — expressed against both deployments:
///
///   warehouse (normalized): disease index -> diagnosis rows -> claim's
///   prescription index -> prescription rows (filter medicine class) ->
///   claims row. Joins back what normalization took apart.
///
///   LakeHarbor (raw): disease index -> the ONE raw claim record; the
///   medicine-class predicate and the expense are read from that same
///   record with schema-on-read. No joins.
///
/// Both are Reference-Dereference jobs executed with SMPE — the Fig 9
/// point is that the *number of record accesses* differs, not the engine.

namespace lakeharbor::claims {

struct ClaimsQuery {
  std::string name;
  std::string disease_lo, disease_hi;    // inclusive code range
  std::string medicine_lo, medicine_hi;  // inclusive code range
};

/// Q1 hypertension/antihypertensives, Q2 acne/antimicrobials,
/// Q3 diabetes/GLP-1.
ClaimsQuery Q1();
ClaimsQuery Q2();
ClaimsQuery Q3();
std::vector<ClaimsQuery> AllQueries();

/// Build the LakeHarbor-deployment job (engine loaded via LoadRawClaims).
/// Output tuples end with the matching raw claim record.
StatusOr<rede::Job> BuildRawClaimsJob(rede::Engine& engine,
                                      const ClaimsQuery& query);

/// Build the warehouse-deployment job (engine loaded via
/// LoadWarehouseClaims). Output tuples are [diagnosis, prescription,
/// claims] rows.
StatusOr<rede::Job> BuildWarehouseClaimsJob(rede::Engine& engine,
                                            const ClaimsQuery& query);

/// Query answer: distinct qualifying claims and the summed HO expense
/// (deduplicated by claim id — a claim with several matching diagnoses or
/// prescriptions is charged once).
struct ClaimsAnswer {
  uint64_t distinct_claims = 0;
  int64_t total_expense = 0;

  bool operator==(const ClaimsAnswer& other) const {
    return distinct_claims == other.distinct_claims &&
           total_expense == other.total_expense;
  }
};

StatusOr<ClaimsAnswer> SummarizeRawOutput(
    const std::vector<rede::Tuple>& tuples);
StatusOr<ClaimsAnswer> SummarizeWarehouseOutput(
    const std::vector<rede::Tuple>& tuples);

/// Ground-truth answer from the generated structs.
ClaimsAnswer ClaimsOracle(const ClaimsData& data, const ClaimsQuery& query);

/// The plain data-lake approach of §IV ("storing it in a raw form in a
/// data lake system ... slow performance due to a full data scan with the
/// statically defined parallelism"): scan every raw claim, evaluate both
/// class predicates schema-on-read, no structures. The paper's Fig 9
/// footnote omits this system because it was "a lot slower"; our harness
/// includes it as an extra series so the omission is quantified.
StatusOr<ClaimsAnswer> RunClaimsScanBaseline(baseline::ScanEngine& engine,
                                             io::Catalog& catalog,
                                             const ClaimsQuery& query);

}  // namespace lakeharbor::claims
