#pragma once

#include "claims/generator.h"
#include "common/status.h"
#include "rede/engine.h"

/// \file loader.h
/// Two deployments of the same claims data, matching the §IV comparison:
///
/// LakeHarbor deployment — raw claims stored as-is, one Record per claim,
/// plus a post-hoc global B-tree structure over the SY disease codes built
/// from a registered schema-on-read access method.
///
/// Warehouse deployment — the data *normalized* into relational tables
/// (claims, diagnosis, prescription, treatment) with the indexes a
/// fine-grained-massively-parallel warehouse would use; queries must join
/// the normalized tables back together, which is what inflates its record
/// accesses in Fig 9.

namespace lakeharbor::claims {

namespace names {
// lake deployment
inline constexpr const char* kRawClaims = "claims.raw";
inline constexpr const char* kRawDiseaseIndex = "claims.raw.disease.idx";
// warehouse deployment
inline constexpr const char* kWhClaims = "wh.claims";
inline constexpr const char* kWhDiagnosis = "wh.diagnosis";
inline constexpr const char* kWhPrescription = "wh.prescription";
inline constexpr const char* kWhTreatment = "wh.treatment";
inline constexpr const char* kWhDiseaseIndex = "wh.diagnosis.disease.idx";
inline constexpr const char* kWhPrescriptionClaimIndex =
    "wh.prescription.claim.idx";
}  // namespace names

/// Field positions of the normalized '|'-delimited warehouse rows.
namespace wh {
namespace claims_tbl {
inline constexpr size_t kClaimId = 0;
inline constexpr size_t kHospital = 1;
inline constexpr size_t kType = 2;
inline constexpr size_t kPatient = 3;
inline constexpr size_t kCategory = 4;
inline constexpr size_t kAge = 5;
inline constexpr size_t kSex = 6;
inline constexpr size_t kExpense = 7;
}  // namespace claims_tbl
namespace diagnosis_tbl {
inline constexpr size_t kClaimId = 0;
inline constexpr size_t kSeq = 1;
inline constexpr size_t kDiseaseCode = 2;
inline constexpr size_t kPrimary = 3;
}  // namespace diagnosis_tbl
namespace prescription_tbl {
inline constexpr size_t kClaimId = 0;
inline constexpr size_t kSeq = 1;
inline constexpr size_t kMedicineCode = 2;
inline constexpr size_t kQuantity = 3;
inline constexpr size_t kPoints = 4;
}  // namespace prescription_tbl
namespace treatment_tbl {
inline constexpr size_t kClaimId = 0;
inline constexpr size_t kSeq = 1;
inline constexpr size_t kTreatmentCode = 2;
inline constexpr size_t kCount = 3;
inline constexpr size_t kPoints = 4;
}  // namespace treatment_tbl
}  // namespace wh

struct ClaimsLoadOptions {
  uint32_t partitions = 0;  ///< 0 = one per node
  size_t btree_fanout = 64;
  /// Replicas of every partition (tables and the indexes built over them,
  /// which inherit it). 1 = the unreplicated seed layout.
  uint32_t replication_factor = 1;
};

/// Load the raw claims + disease structure into a LakeHarbor engine.
Status LoadRawClaims(rede::Engine& engine, const ClaimsData& data,
                     ClaimsLoadOptions options = {});

/// Normalize and load into a warehouse engine (tables + indexes).
Status LoadWarehouseClaims(rede::Engine& engine, const ClaimsData& data,
                           ClaimsLoadOptions options = {});

}  // namespace lakeharbor::claims
