#include "claims/format.h"

#include "common/string_util.h"

namespace lakeharbor::claims {

namespace {

StatusOr<int64_t> IntField(std::string_view line, size_t field) {
  return ParseInt64(FieldAt(line, kFieldDelim, field));
}

/// Visit each sub-record line of a raw claim.
template <typename Fn>
Status ForEachLine(const io::Record& record, Fn&& fn) {
  std::string_view text = record.slice().view();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(kSubRecordDelim, start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty()) {
      LH_RETURN_NOT_OK(fn(line));
    }
    start = end + 1;
  }
  return Status::OK();
}

std::string_view Kind(std::string_view line) { return line.substr(0, 2); }

}  // namespace

std::string FormatClaim(const Claim& claim) {
  std::string out;
  out += StrFormat("IR,%lld,%lld,%s\n",
                   static_cast<long long>(claim.ir.claim_id),
                   static_cast<long long>(claim.ir.hospital_id),
                   claim.ir.type.c_str());
  out += StrFormat("RE,%lld,%s,%lld,%s\n",
                   static_cast<long long>(claim.re.patient_id),
                   claim.re.category.c_str(),
                   static_cast<long long>(claim.re.age),
                   claim.re.sex.c_str());
  out += StrFormat("HO,%lld\n", static_cast<long long>(claim.total_expense));
  for (const auto& si : claim.treatments) {
    out += StrFormat("SI,%s,%lld,%lld\n", si.treatment_code.c_str(),
                     static_cast<long long>(si.count),
                     static_cast<long long>(si.points));
  }
  for (const auto& iy : claim.medicines) {
    out += StrFormat("IY,%s,%lld,%lld\n", iy.medicine_code.c_str(),
                     static_cast<long long>(iy.quantity),
                     static_cast<long long>(iy.points));
  }
  for (const auto& sy : claim.diseases) {
    out += StrFormat("SY,%s,%d\n", sy.disease_code.c_str(),
                     sy.primary ? 1 : 0);
  }
  return out;
}

StatusOr<Claim> ParseClaim(const io::Record& record) {
  Claim claim;
  bool has_ir = false, has_re = false, has_ho = false;
  Status status = ForEachLine(record, [&](std::string_view line) -> Status {
    std::string_view kind = Kind(line);
    if (kind == "IR") {
      LH_ASSIGN_OR_RETURN(claim.ir.claim_id, IntField(line, 1));
      LH_ASSIGN_OR_RETURN(claim.ir.hospital_id, IntField(line, 2));
      claim.ir.type = std::string(FieldAt(line, kFieldDelim, 3));
      has_ir = true;
    } else if (kind == "RE") {
      LH_ASSIGN_OR_RETURN(claim.re.patient_id, IntField(line, 1));
      claim.re.category = std::string(FieldAt(line, kFieldDelim, 2));
      LH_ASSIGN_OR_RETURN(claim.re.age, IntField(line, 3));
      claim.re.sex = std::string(FieldAt(line, kFieldDelim, 4));
      has_re = true;
    } else if (kind == "HO") {
      LH_ASSIGN_OR_RETURN(claim.total_expense, IntField(line, 1));
      has_ho = true;
    } else if (kind == "SI") {
      SiSubRecord si;
      si.treatment_code = std::string(FieldAt(line, kFieldDelim, 1));
      LH_ASSIGN_OR_RETURN(si.count, IntField(line, 2));
      LH_ASSIGN_OR_RETURN(si.points, IntField(line, 3));
      claim.treatments.push_back(std::move(si));
    } else if (kind == "IY") {
      IySubRecord iy;
      iy.medicine_code = std::string(FieldAt(line, kFieldDelim, 1));
      LH_ASSIGN_OR_RETURN(iy.quantity, IntField(line, 2));
      LH_ASSIGN_OR_RETURN(iy.points, IntField(line, 3));
      claim.medicines.push_back(std::move(iy));
    } else if (kind == "SY") {
      SySubRecord sy;
      sy.disease_code = std::string(FieldAt(line, kFieldDelim, 1));
      LH_ASSIGN_OR_RETURN(int64_t primary, IntField(line, 2));
      sy.primary = primary != 0;
      claim.diseases.push_back(std::move(sy));
    } else {
      return Status::Corruption("unknown claim sub-record kind '" +
                                std::string(kind) + "'");
    }
    return Status::OK();
  });
  LH_RETURN_NOT_OK(status);
  if (!has_ir || !has_re || !has_ho) {
    return Status::Corruption("claim missing IR/RE/HO sub-record");
  }
  return claim;
}

StatusOr<int64_t> ExtractClaimId(const io::Record& record) {
  int64_t id = -1;
  Status status = ForEachLine(record, [&](std::string_view line) -> Status {
    if (Kind(line) == "IR") {
      LH_ASSIGN_OR_RETURN(id, IntField(line, 1));
    }
    return Status::OK();
  });
  LH_RETURN_NOT_OK(status);
  if (id < 0) return Status::Corruption("claim has no IR sub-record");
  return id;
}

StatusOr<int64_t> ExtractTotalExpense(const io::Record& record) {
  int64_t expense = -1;
  Status status = ForEachLine(record, [&](std::string_view line) -> Status {
    if (Kind(line) == "HO") {
      LH_ASSIGN_OR_RETURN(expense, IntField(line, 1));
    }
    return Status::OK();
  });
  LH_RETURN_NOT_OK(status);
  if (expense < 0) return Status::Corruption("claim has no HO sub-record");
  return expense;
}

Status ExtractDiseaseCodes(const io::Record& record,
                           std::vector<std::string>* out) {
  return ForEachLine(record, [&](std::string_view line) -> Status {
    if (Kind(line) == "SY") {
      out->push_back(std::string(FieldAt(line, kFieldDelim, 1)));
    }
    return Status::OK();
  });
}

Status ExtractMedicineCodes(const io::Record& record,
                            std::vector<std::string>* out) {
  return ForEachLine(record, [&](std::string_view line) -> Status {
    if (Kind(line) == "IY") {
      out->push_back(std::string(FieldAt(line, kFieldDelim, 1)));
    }
    return Status::OK();
  });
}

StatusOr<bool> HasMedicineInRange(const io::Record& record,
                                  const std::string& lo,
                                  const std::string& hi) {
  bool found = false;
  Status status = ForEachLine(record, [&](std::string_view line) -> Status {
    if (!found && Kind(line) == "IY") {
      std::string_view code = FieldAt(line, kFieldDelim, 1);
      if (std::string_view(lo) <= code && code <= std::string_view(hi)) {
        found = true;
      }
    }
    return Status::OK();
  });
  LH_RETURN_NOT_OK(status);
  return found;
}

StatusOr<bool> HasDiseaseInRange(const io::Record& record,
                                 const std::string& lo,
                                 const std::string& hi) {
  bool found = false;
  Status status = ForEachLine(record, [&](std::string_view line) -> Status {
    if (!found && Kind(line) == "SY") {
      std::string_view code = FieldAt(line, kFieldDelim, 1);
      if (std::string_view(lo) <= code && code <= std::string_view(hi)) {
        found = true;
      }
    }
    return Status::OK();
  });
  LH_RETURN_NOT_OK(status);
  return found;
}

}  // namespace lakeharbor::claims
