#pragma once

#include <string>
#include <vector>

#include "common/status_or.h"
#include "io/record.h"

/// \file format.h
/// The Japanese health-insurance claim format of Fig 8: a claim is a
/// dynamically-typed record composed of sub-records whose kind is given by
/// the two leading characters of each line:
///   IR  hospital claiming the expenses; its `type` attribute (piecework
///       "PW" vs "DPC") changes the record's effective schema — the
///       property that breaks nested-columnar formats like Parquet
///   RE  service category (IN/OUT-patient) and patient information
///   HO  total medical expenses
///   SI  a medical treatment provided (repeats)
///   IY  a medicine prescribed (repeats)
///   SY  a disease diagnosed (repeats)
/// One claim is stored as ONE raw Record (sub-records newline-separated,
/// fields comma-separated); all field access is schema-on-read.

namespace lakeharbor::claims {

inline constexpr char kSubRecordDelim = '\n';
inline constexpr char kFieldDelim = ',';

struct IrSubRecord {
  int64_t claim_id = 0;
  int64_t hospital_id = 0;
  std::string type;  // "PW" (piecework) or "DPC"
};

struct ReSubRecord {
  int64_t patient_id = 0;
  std::string category;  // "IN" or "OUT"
  int64_t age = 0;
  std::string sex;  // "M"/"F"
};

struct SiSubRecord {
  std::string treatment_code;
  int64_t count = 0;
  int64_t points = 0;
};

struct IySubRecord {
  std::string medicine_code;
  int64_t quantity = 0;
  int64_t points = 0;
};

struct SySubRecord {
  std::string disease_code;
  bool primary = false;
};

/// Fully parsed claim (tests and result summarization; queries themselves
/// use the narrow extractors below, which avoid materializing everything).
struct Claim {
  IrSubRecord ir;
  ReSubRecord re;
  int64_t total_expense = 0;  // HO
  std::vector<SiSubRecord> treatments;
  std::vector<IySubRecord> medicines;
  std::vector<SySubRecord> diseases;
};

/// Serialize a claim into its raw text form.
std::string FormatClaim(const Claim& claim);

/// Parse a raw claim record. Unknown sub-record kinds are a Corruption
/// error; missing IR/RE/HO likewise.
StatusOr<Claim> ParseClaim(const io::Record& record);

/// Narrow schema-on-read extractors (no full parse):
/// The claim id from the IR sub-record.
StatusOr<int64_t> ExtractClaimId(const io::Record& record);
/// The HO total expense.
StatusOr<int64_t> ExtractTotalExpense(const io::Record& record);
/// All SY disease codes.
Status ExtractDiseaseCodes(const io::Record& record,
                           std::vector<std::string>* out);
/// All IY medicine codes.
Status ExtractMedicineCodes(const io::Record& record,
                            std::vector<std::string>* out);
/// True when any IY medicine code falls in [lo, hi].
StatusOr<bool> HasMedicineInRange(const io::Record& record,
                                  const std::string& lo,
                                  const std::string& hi);
/// True when any SY disease code falls in [lo, hi].
StatusOr<bool> HasDiseaseInRange(const io::Record& record,
                                 const std::string& lo,
                                 const std::string& hi);

}  // namespace lakeharbor::claims
