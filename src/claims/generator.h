#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "claims/format.h"

/// \file generator.h
/// Synthetic substitute for the (confidential) national insurance-claims
/// database of §IV. Disease/medicine code ranges define the three query
/// cohorts (hypertension/antihypertensives, acne/antimicrobials,
/// diabetes/GLP-1); every claim also carries background diseases, medicines
/// and treatments so that cohort selectivities are realistic.

namespace lakeharbor::claims {

/// Code ranges (codes are fixed-width digit strings; ranges are inclusive).
namespace codes {
// disease classes (SY)
inline constexpr const char* kHypertensionLo = "1000";
inline constexpr const char* kHypertensionHi = "1019";
inline constexpr const char* kAcneLo = "1100";
inline constexpr const char* kAcneHi = "1104";
inline constexpr const char* kDiabetesLo = "1200";
inline constexpr const char* kDiabetesHi = "1214";
inline constexpr const char* kBackgroundDiseaseLo = "3000";
inline constexpr const char* kBackgroundDiseaseHi = "3999";
// medicine classes (IY)
inline constexpr const char* kAntihypertensiveLo = "5000";
inline constexpr const char* kAntihypertensiveHi = "5019";
inline constexpr const char* kAntimicrobialLo = "5100";
inline constexpr const char* kAntimicrobialHi = "5119";
inline constexpr const char* kGlp1Lo = "5200";
inline constexpr const char* kGlp1Hi = "5204";
inline constexpr const char* kBackgroundMedicineLo = "7000";
inline constexpr const char* kBackgroundMedicineHi = "7999";
}  // namespace codes

struct ClaimsConfig {
  uint64_t num_claims = 20000;
  uint64_t seed = 20240612;
  /// Cohort rates: probability a claim carries the condition; given the
  /// condition, the treatment probability below decides whether the
  /// matching medicine class is prescribed.
  double hypertension_rate = 0.08;
  double hypertension_treated = 0.7;
  double acne_rate = 0.02;
  double acne_treated = 0.5;
  double diabetes_rate = 0.04;
  double diabetes_treated = 0.3;
};

/// Generated raw dataset: one text blob per claim plus the parsed structs
/// (the structs double as ground truth for the test oracles).
struct ClaimsData {
  ClaimsConfig config;
  std::vector<std::string> raw;     ///< FormatClaim output per claim
  std::vector<Claim> parsed;        ///< same order as `raw`

  uint64_t total_sub_records() const;
};

ClaimsData GenerateClaims(const ClaimsConfig& config);

}  // namespace lakeharbor::claims
