#pragma once

#include <string>
#include <vector>

#include "claims/format.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "common/json.h"
#include "rede/engine.h"

/// \file fhir.h
/// The FHIR direction of §IV: "The international medical community has
/// recently promoted FHIR ... FHIR has a similar design to the Japanese
/// insurance claims format, employing the nested record organization. We
/// expect ReDe would also manage and process the FHIR data flexibly and
/// efficiently."
///
/// This module demonstrates exactly that: the SAME underlying claims are
/// re-encoded as FHIR-style JSON Bundles (one Bundle Record per claim,
/// holding Patient / Encounter / Condition / MedicationRequest / Claim
/// resources), loaded raw into a lake, indexed through a registered
/// JSON-walking access method, and queried with the same Q1-Q3 — returning
/// byte-identical answers to the fixed-text deployment. The engine never
/// changes; only the Interpreters do. That is the LakeHarbor claim about
/// format flexibility, made executable.

namespace lakeharbor::claims {

namespace names {
inline constexpr const char* kFhirBundles = "fhir.bundles";
inline constexpr const char* kFhirConditionIndex =
    "fhir.bundles.condition.idx";
}  // namespace names

/// Encode one parsed claim as a FHIR-style Bundle document (JSON).
Json ClaimToFhirBundle(const Claim& claim);

/// Serialize straight to the raw Record text stored in the lake.
std::string ClaimToFhirJson(const Claim& claim);

/// Narrow schema-on-read extractors over a raw Bundle record (these are the
/// FHIR analogues of the IR/SY/IY extractors in format.h).
StatusOr<int64_t> FhirExtractClaimId(const io::Record& record);
StatusOr<int64_t> FhirExtractTotalExpense(const io::Record& record);
Status FhirExtractConditionCodes(const io::Record& record,
                                 std::vector<std::string>* out);
StatusOr<bool> FhirHasMedicationInRange(const io::Record& record,
                                        const std::string& lo,
                                        const std::string& hi);

/// Load the dataset as raw FHIR Bundles plus a post-hoc structure over the
/// Condition codes.
Status LoadFhirBundles(rede::Engine& engine, const ClaimsData& data,
                       ClaimsLoadOptions options = {});

/// Q1-Q3 over the FHIR deployment (same query structs as queries.h).
StatusOr<rede::Job> BuildFhirClaimsJob(rede::Engine& engine,
                                       const ClaimsQuery& query);

/// Summarize FHIR-job output into the common ClaimsAnswer form.
StatusOr<ClaimsAnswer> SummarizeFhirOutput(
    const std::vector<rede::Tuple>& tuples);

}  // namespace lakeharbor::claims
