#include "claims/loader.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "io/key_codec.h"

namespace lakeharbor::claims {

namespace {

/// Surface a clamped replication factor with the FILE name attached — the
/// PlacementMap warning alone cannot say which table lost copies.
void WarnIfClamped(const io::File& file) {
  const io::PlacementMap placement = file.placement();
  if (!placement.clamped()) return;
  LH_LOG_WARN << "claims loader: file '" << file.name() << "' requested rf "
              << placement.requested_replication_factor()
              << " but runs with effective rf "
              << placement.replication_factor() << " ("
              << placement.num_nodes() << " active nodes)";
}

uint32_t ResolvePartitions(rede::Engine& engine,
                           const ClaimsLoadOptions& options) {
  return options.partitions == 0 ? engine.cluster().num_nodes()
                                 : options.partitions;
}

/// Load '|'-delimited rows keyed by (encoded claim_id, encoded seq).
Status LoadDetailTable(rede::Engine& engine, const char* name,
                       const std::vector<std::string>& rows,
                       uint32_t partitions, size_t fanout,
                       uint32_t replication_factor) {
  auto file = std::make_shared<io::PartitionedFile>(
      name, std::make_shared<io::HashPartitioner>(partitions),
      &engine.cluster(), fanout);
  file->SetReplicationFactor(replication_factor);
  WarnIfClamped(*file);
  for (const std::string& row : rows) {
    LH_ASSIGN_OR_RETURN(int64_t claim_id, ParseInt64(FieldAt(row, '|', 0)));
    LH_ASSIGN_OR_RETURN(int64_t seq, ParseInt64(FieldAt(row, '|', 1)));
    std::string pkey = io::EncodeInt64Key(claim_id);
    std::string key = io::ComposeKey(pkey, io::EncodeInt64Key(seq));
    LH_RETURN_NOT_OK(
        file->Append(pkey, std::move(key), io::Record(std::string(row))));
  }
  file->Seal();
  return engine.catalog().Register(file);
}

}  // namespace

Status LoadRawClaims(rede::Engine& engine, const ClaimsData& data,
                     ClaimsLoadOptions options) {
  uint32_t partitions = ResolvePartitions(engine, options);
  auto file = std::make_shared<io::PartitionedFile>(
      names::kRawClaims, std::make_shared<io::HashPartitioner>(partitions),
      &engine.cluster(), options.btree_fanout);
  file->SetReplicationFactor(options.replication_factor);
  WarnIfClamped(*file);
  for (const std::string& raw : data.raw) {
    io::Record record{std::string(raw)};
    LH_ASSIGN_OR_RETURN(int64_t id, ExtractClaimId(record));
    std::string key = io::EncodeInt64Key(id);
    LH_RETURN_NOT_OK(file->Append(key, key, std::move(record)));
  }
  file->Seal();
  LH_RETURN_NOT_OK(engine.catalog().Register(file));

  // Post-hoc access-method registration: the structure over SY disease
  // codes is built entirely through schema-on-read extraction from the raw
  // claims — no normalization, no schema in the lake.
  index::IndexSpec spec;
  spec.index_name = names::kRawDiseaseIndex;
  spec.base_file = names::kRawClaims;
  spec.placement = index::IndexPlacement::kGlobal;
  spec.btree_fanout = options.btree_fanout;
  spec.extract = [](const io::Record& record,
                    std::vector<index::Posting>* out) {
    LH_ASSIGN_OR_RETURN(int64_t id, ExtractClaimId(record));
    std::string target = io::EncodeInt64Key(id);
    std::vector<std::string> diseases;
    LH_RETURN_NOT_OK(ExtractDiseaseCodes(record, &diseases));
    for (auto& code : diseases) {
      out->push_back(index::Posting{std::move(code), target, target});
    }
    return Status::OK();
  };
  return engine.BuildStructure(spec, "sy.disease_code").status();
}

Status LoadWarehouseClaims(rede::Engine& engine, const ClaimsData& data,
                           ClaimsLoadOptions options) {
  uint32_t partitions = ResolvePartitions(engine, options);
  const size_t fanout = options.btree_fanout;

  // Normalize.
  std::vector<std::string> claim_rows, diagnosis_rows, prescription_rows,
      treatment_rows;
  claim_rows.reserve(data.parsed.size());
  for (const Claim& c : data.parsed) {
    claim_rows.push_back(StrFormat(
        "%lld|%lld|%s|%lld|%s|%lld|%s|%lld",
        static_cast<long long>(c.ir.claim_id),
        static_cast<long long>(c.ir.hospital_id), c.ir.type.c_str(),
        static_cast<long long>(c.re.patient_id), c.re.category.c_str(),
        static_cast<long long>(c.re.age), c.re.sex.c_str(),
        static_cast<long long>(c.total_expense)));
    for (size_t i = 0; i < c.diseases.size(); ++i) {
      diagnosis_rows.push_back(StrFormat(
          "%lld|%zu|%s|%d", static_cast<long long>(c.ir.claim_id), i,
          c.diseases[i].disease_code.c_str(), c.diseases[i].primary ? 1 : 0));
    }
    for (size_t i = 0; i < c.medicines.size(); ++i) {
      prescription_rows.push_back(StrFormat(
          "%lld|%zu|%s|%lld|%lld", static_cast<long long>(c.ir.claim_id), i,
          c.medicines[i].medicine_code.c_str(),
          static_cast<long long>(c.medicines[i].quantity),
          static_cast<long long>(c.medicines[i].points)));
    }
    for (size_t i = 0; i < c.treatments.size(); ++i) {
      treatment_rows.push_back(StrFormat(
          "%lld|%zu|%s|%lld|%lld", static_cast<long long>(c.ir.claim_id), i,
          c.treatments[i].treatment_code.c_str(),
          static_cast<long long>(c.treatments[i].count),
          static_cast<long long>(c.treatments[i].points)));
    }
  }

  // wh.claims keyed by claim_id.
  auto claims_file = std::make_shared<io::PartitionedFile>(
      names::kWhClaims, std::make_shared<io::HashPartitioner>(partitions),
      &engine.cluster(), fanout);
  claims_file->SetReplicationFactor(options.replication_factor);
  WarnIfClamped(*claims_file);
  for (const std::string& row : claim_rows) {
    LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
    std::string key = io::EncodeInt64Key(id);
    LH_RETURN_NOT_OK(
        claims_file->Append(key, key, io::Record(std::string(row))));
  }
  claims_file->Seal();
  LH_RETURN_NOT_OK(engine.catalog().Register(claims_file));

  LH_RETURN_NOT_OK(LoadDetailTable(engine, names::kWhDiagnosis,
                                   diagnosis_rows, partitions, fanout,
                                   options.replication_factor));
  LH_RETURN_NOT_OK(LoadDetailTable(engine, names::kWhPrescription,
                                   prescription_rows, partitions, fanout,
                                   options.replication_factor));
  LH_RETURN_NOT_OK(LoadDetailTable(engine, names::kWhTreatment,
                                   treatment_rows, partitions, fanout,
                                   options.replication_factor));

  // Global index over diagnosis disease codes.
  {
    index::IndexSpec spec;
    spec.index_name = names::kWhDiseaseIndex;
    spec.base_file = names::kWhDiagnosis;
    spec.placement = index::IndexPlacement::kGlobal;
    spec.btree_fanout = fanout;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) {
      std::string_view row = record.slice().view();
      index::Posting posting;
      posting.index_key =
          std::string(FieldAt(row, '|', wh::diagnosis_tbl::kDiseaseCode));
      LH_ASSIGN_OR_RETURN(
          int64_t claim_id,
          ParseInt64(FieldAt(row, '|', wh::diagnosis_tbl::kClaimId)));
      LH_ASSIGN_OR_RETURN(
          int64_t seq, ParseInt64(FieldAt(row, '|', wh::diagnosis_tbl::kSeq)));
      posting.target_partition_key = io::EncodeInt64Key(claim_id);
      posting.target_key = io::ComposeKey(posting.target_partition_key,
                                          io::EncodeInt64Key(seq));
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_RETURN_NOT_OK(engine.BuildStructure(spec, "disease_code").status());
  }
  // Global index over prescription claim ids (join support).
  {
    index::IndexSpec spec;
    spec.index_name = names::kWhPrescriptionClaimIndex;
    spec.base_file = names::kWhPrescription;
    spec.placement = index::IndexPlacement::kGlobal;
    spec.btree_fanout = fanout;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(
          int64_t claim_id,
          ParseInt64(FieldAt(row, '|', wh::prescription_tbl::kClaimId)));
      LH_ASSIGN_OR_RETURN(
          int64_t seq,
          ParseInt64(FieldAt(row, '|', wh::prescription_tbl::kSeq)));
      posting.index_key = io::EncodeInt64Key(claim_id);
      posting.target_partition_key = posting.index_key;
      posting.target_key = io::ComposeKey(posting.target_partition_key,
                                          io::EncodeInt64Key(seq));
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_RETURN_NOT_OK(engine.BuildStructure(spec, "claim_id").status());
  }
  return Status::OK();
}

}  // namespace lakeharbor::claims
