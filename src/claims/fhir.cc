#include "claims/fhir.h"

#include <functional>
#include <set>

#include "common/string_util.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"

namespace lakeharbor::claims {

namespace {

Json Coding(const std::string& code) {
  Json coding = Json::MakeObject();
  coding.Set("code", Json::MakeString(code));
  Json array = Json::MakeArray();
  array.Append(std::move(coding));
  Json wrapper = Json::MakeObject();
  wrapper.Set("coding", std::move(array));
  return wrapper;
}

Json Entry(Json resource) {
  Json entry = Json::MakeObject();
  entry.Set("resource", std::move(resource));
  return entry;
}

/// Parse a raw record as a Bundle and visit each entry's resource of the
/// given resourceType.
Status ForEachResource(
    const io::Record& record, const std::string& resource_type,
    const std::function<Status(const Json& resource)>& visit) {
  LH_ASSIGN_OR_RETURN(Json bundle, Json::Parse(record.slice().view()));
  const Json* type = bundle.Find("resourceType");
  if (type == nullptr || !type->is_string() ||
      type->AsString() != "Bundle") {
    return Status::Corruption("record is not a FHIR Bundle");
  }
  const Json* entries = bundle.Find("entry");
  if (entries == nullptr || !entries->is_array()) {
    return Status::Corruption("Bundle has no entry array");
  }
  for (const Json& entry : entries->AsArray()) {
    const Json* resource = entry.Find("resource");
    if (resource == nullptr) continue;
    const Json* rt = resource->Find("resourceType");
    if (rt == nullptr || !rt->is_string()) continue;
    if (rt->AsString() == resource_type) {
      LH_RETURN_NOT_OK(visit(*resource));
    }
  }
  return Status::OK();
}

StatusOr<std::string> CodeOf(const Json& resource, const char* field) {
  const Json* coding = resource.FindPath(std::string(field) + ".coding");
  if (coding == nullptr || !coding->is_array() || coding->AsArray().empty()) {
    return Status::Corruption("resource has no coding");
  }
  const Json* code = coding->AsArray()[0].Find("code");
  if (code == nullptr || !code->is_string()) {
    return Status::Corruption("coding has no code");
  }
  return code->AsString();
}

}  // namespace

Json ClaimToFhirBundle(const Claim& claim) {
  Json bundle = Json::MakeObject();
  bundle.Set("resourceType", Json::MakeString("Bundle"));
  bundle.Set("type", Json::MakeString("collection"));
  Json entries = Json::MakeArray();

  Json claim_resource = Json::MakeObject();
  claim_resource.Set("resourceType", Json::MakeString("Claim"));
  claim_resource.Set("id",
                     Json::MakeString(std::to_string(claim.ir.claim_id)));
  claim_resource.Set("use", Json::MakeString(claim.ir.type));
  Json provider = Json::MakeObject();
  provider.Set("identifier",
               Json::MakeString(std::to_string(claim.ir.hospital_id)));
  claim_resource.Set("provider", std::move(provider));
  Json total = Json::MakeObject();
  total.Set("value",
            Json::MakeNumber(static_cast<double>(claim.total_expense)));
  total.Set("currency", Json::MakeString("JPY"));
  claim_resource.Set("total", std::move(total));
  entries.Append(Entry(std::move(claim_resource)));

  Json patient = Json::MakeObject();
  patient.Set("resourceType", Json::MakeString("Patient"));
  patient.Set("id", Json::MakeString(std::to_string(claim.re.patient_id)));
  patient.Set("gender",
              Json::MakeString(claim.re.sex == "F" ? "female" : "male"));
  patient.Set("age", Json::MakeNumber(static_cast<double>(claim.re.age)));
  entries.Append(Entry(std::move(patient)));

  Json encounter = Json::MakeObject();
  encounter.Set("resourceType", Json::MakeString("Encounter"));
  encounter.Set("class", Json::MakeString(claim.re.category));
  entries.Append(Entry(std::move(encounter)));

  for (const SySubRecord& sy : claim.diseases) {
    Json condition = Json::MakeObject();
    condition.Set("resourceType", Json::MakeString("Condition"));
    condition.Set("code", Coding(sy.disease_code));
    condition.Set("primary", Json::MakeBool(sy.primary));
    entries.Append(Entry(std::move(condition)));
  }
  for (const IySubRecord& iy : claim.medicines) {
    Json medication = Json::MakeObject();
    medication.Set("resourceType", Json::MakeString("MedicationRequest"));
    medication.Set("medication", Coding(iy.medicine_code));
    medication.Set("quantity",
                   Json::MakeNumber(static_cast<double>(iy.quantity)));
    medication.Set("points",
                   Json::MakeNumber(static_cast<double>(iy.points)));
    entries.Append(Entry(std::move(medication)));
  }
  for (const SiSubRecord& si : claim.treatments) {
    Json procedure = Json::MakeObject();
    procedure.Set("resourceType", Json::MakeString("Procedure"));
    procedure.Set("code", Coding(si.treatment_code));
    procedure.Set("count", Json::MakeNumber(static_cast<double>(si.count)));
    procedure.Set("points",
                  Json::MakeNumber(static_cast<double>(si.points)));
    entries.Append(Entry(std::move(procedure)));
  }
  bundle.Set("entry", std::move(entries));
  return bundle;
}

std::string ClaimToFhirJson(const Claim& claim) {
  return ClaimToFhirBundle(claim).Dump();
}

StatusOr<int64_t> FhirExtractClaimId(const io::Record& record) {
  int64_t id = -1;
  LH_RETURN_NOT_OK(
      ForEachResource(record, "Claim", [&](const Json& resource) -> Status {
        const Json* jid = resource.Find("id");
        if (jid == nullptr || !jid->is_string()) {
          return Status::Corruption("Claim resource has no id");
        }
        LH_ASSIGN_OR_RETURN(id, ParseInt64(jid->AsString()));
        return Status::OK();
      }));
  if (id < 0) return Status::Corruption("Bundle has no Claim resource");
  return id;
}

StatusOr<int64_t> FhirExtractTotalExpense(const io::Record& record) {
  int64_t expense = -1;
  LH_RETURN_NOT_OK(
      ForEachResource(record, "Claim", [&](const Json& resource) -> Status {
        const Json* value = resource.FindPath("total.value");
        if (value == nullptr || !value->is_number()) {
          return Status::Corruption("Claim resource has no total.value");
        }
        expense = static_cast<int64_t>(value->AsNumber());
        return Status::OK();
      }));
  if (expense < 0) return Status::Corruption("Bundle has no Claim total");
  return expense;
}

Status FhirExtractConditionCodes(const io::Record& record,
                                 std::vector<std::string>* out) {
  return ForEachResource(
      record, "Condition", [&](const Json& resource) -> Status {
        LH_ASSIGN_OR_RETURN(std::string code, CodeOf(resource, "code"));
        out->push_back(std::move(code));
        return Status::OK();
      });
}

StatusOr<bool> FhirHasMedicationInRange(const io::Record& record,
                                        const std::string& lo,
                                        const std::string& hi) {
  bool found = false;
  LH_RETURN_NOT_OK(ForEachResource(
      record, "MedicationRequest", [&](const Json& resource) -> Status {
        if (found) return Status::OK();
        LH_ASSIGN_OR_RETURN(std::string code, CodeOf(resource, "medication"));
        if (lo <= code && code <= hi) found = true;
        return Status::OK();
      }));
  return found;
}

Status LoadFhirBundles(rede::Engine& engine, const ClaimsData& data,
                       ClaimsLoadOptions options) {
  uint32_t partitions = options.partitions == 0
                            ? engine.cluster().num_nodes()
                            : options.partitions;
  auto file = std::make_shared<io::PartitionedFile>(
      names::kFhirBundles, std::make_shared<io::HashPartitioner>(partitions),
      &engine.cluster(), options.btree_fanout);
  for (const Claim& claim : data.parsed) {
    std::string key = io::EncodeInt64Key(claim.ir.claim_id);
    LH_RETURN_NOT_OK(
        file->Append(key, key, io::Record(ClaimToFhirJson(claim))));
  }
  file->Seal();
  LH_RETURN_NOT_OK(engine.catalog().Register(file));

  // Post-hoc access method over the JSON bundles: the extractor walks the
  // nested document with schema-on-read, exactly like the fixed-text
  // deployment's extractor walks the SY sub-records.
  index::IndexSpec spec;
  spec.index_name = names::kFhirConditionIndex;
  spec.base_file = names::kFhirBundles;
  spec.placement = index::IndexPlacement::kGlobal;
  spec.btree_fanout = options.btree_fanout;
  spec.extract = [](const io::Record& record,
                    std::vector<index::Posting>* out) {
    LH_ASSIGN_OR_RETURN(int64_t id, FhirExtractClaimId(record));
    std::string target = io::EncodeInt64Key(id);
    std::vector<std::string> codes;
    LH_RETURN_NOT_OK(FhirExtractConditionCodes(record, &codes));
    for (auto& code : codes) {
      out->push_back(index::Posting{std::move(code), target, target});
    }
    return Status::OK();
  };
  return engine.BuildStructure(spec, "Condition.code").status();
}

StatusOr<rede::Job> BuildFhirClaimsJob(rede::Engine& engine,
                                       const ClaimsQuery& query) {
  io::Catalog& catalog = engine.catalog();
  LH_ASSIGN_OR_RETURN(auto bundles, catalog.Get(names::kFhirBundles));
  LH_ASSIGN_OR_RETURN(auto idx_file, catalog.Get(names::kFhirConditionIndex));
  auto idx = std::dynamic_pointer_cast<io::BtreeFile>(idx_file);
  if (idx == nullptr) {
    return Status::InvalidArgument("condition index is not a BtreeFile");
  }
  using namespace rede;  // NOLINT
  Filter medication_filter =
      [lo = query.medicine_lo,
       hi = query.medicine_hi](const Tuple& tuple) -> StatusOr<bool> {
    return FhirHasMedicationInRange(tuple.last_record(), lo, hi);
  };
  return JobBuilder("claims-fhir-" + query.name)
      .Initial(Tuple::Range(io::Pointer::Broadcast(query.disease_lo),
                            io::Pointer::Broadcast(query.disease_hi)))
      .Add(MakeRangeDereferencer("deref0-condition-idx", idx))
      .Add(MakeIndexEntryReferencer("ref1-bundle-ptr"))
      .Add(MakePointDereferencer("deref1-bundle", bundles, medication_filter))
      .Build();
}

StatusOr<ClaimsAnswer> SummarizeFhirOutput(
    const std::vector<rede::Tuple>& tuples) {
  std::vector<std::pair<int64_t, int64_t>> id_expense;
  id_expense.reserve(tuples.size());
  for (const rede::Tuple& tuple : tuples) {
    if (tuple.records.empty()) return Status::Internal("empty fhir bundle");
    LH_ASSIGN_OR_RETURN(int64_t id, FhirExtractClaimId(tuple.last_record()));
    LH_ASSIGN_OR_RETURN(int64_t expense,
                        FhirExtractTotalExpense(tuple.last_record()));
    id_expense.emplace_back(id, expense);
  }
  // Same dedup semantics as the other deployments.
  std::set<int64_t> seen;
  ClaimsAnswer answer;
  for (const auto& [id, expense] : id_expense) {
    if (seen.insert(id).second) {
      ++answer.distinct_claims;
      answer.total_expense += expense;
    }
  }
  return answer;
}

}  // namespace lakeharbor::claims
