#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <string_view>

namespace lakeharbor::obs {

namespace {

std::atomic<uint64_t> g_spans_recorded{0};
std::atomic<uint64_t> g_chunks_allocated{0};
std::atomic<uint64_t> g_next_job_id{1};
std::atomic<uint64_t> g_next_epoch{1};

/// Thread-local recorder binding. The epoch (not the recorder address,
/// which malloc can recycle) decides whether the cached chunk belongs to
/// the recorder at hand; a stale epoch forces re-registration, so a pool
/// thread reused across runs never touches a dead recorder's memory.
struct TlsSlot {
  uint64_t epoch = 0;
  TraceRecorder::Chunk* chunk = nullptr;
  uint32_t thread_index = 0;
};
thread_local TlsSlot tls_slot;

}  // namespace

uint64_t TraceCounters::SpansRecorded() {
  return g_spans_recorded.load(std::memory_order_relaxed);
}

uint64_t TraceCounters::ChunksAllocated() {
  return g_chunks_allocated.load(std::memory_order_relaxed);
}

uint64_t NextJobId() {
  return g_next_job_id.fetch_add(1, std::memory_order_relaxed);
}

/// A fixed-capacity span buffer owned by one recording thread. Appends are
/// written only by that thread; readers (Collect) are ordered after every
/// writer by the executor's quiescence protocol. Capacity is reserved, not
/// constructed — with ~1000 pool threads each recording a handful of
/// spans, eagerly constructing full chunks of Spans (std::string name and
/// all) was itself a measurable per-run tracing cost. A thread's first
/// chunk is small for the same reason; only threads that outgrow it pay
/// for a full-size one.
struct TraceRecorder::Chunk {
  static constexpr size_t kFirstChunkSpans = 16;
  static constexpr size_t kChunkSpans = 256;

  Chunk(uint32_t thread_index, size_t capacity) : thread(thread_index) {
    spans.reserve(capacity);
  }

  const uint32_t thread;
  std::vector<Span> spans;
};

TraceRecorder::TraceRecorder(uint64_t job_id)
    : epoch_(g_next_epoch.fetch_add(1, std::memory_order_relaxed)),
      job_id_(job_id) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Chunk* TraceRecorder::RegisterChunk(uint32_t thread_index,
                                                   bool new_thread) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (new_thread) thread_index = next_thread_++;
  chunks_.push_back(std::make_unique<Chunk>(
      thread_index,
      new_thread ? Chunk::kFirstChunkSpans : Chunk::kChunkSpans));
  g_chunks_allocated.fetch_add(1, std::memory_order_relaxed);
  return chunks_.back().get();
}

void TraceRecorder::Record(Span span) {
  TlsSlot& slot = tls_slot;
  if (slot.epoch != epoch_) {
    slot.chunk = RegisterChunk(0, /*new_thread=*/true);
    slot.thread_index = slot.chunk->thread;
    slot.epoch = epoch_;
  } else if (slot.chunk->spans.size() == slot.chunk->spans.capacity()) {
    slot.chunk = RegisterChunk(slot.thread_index, /*new_thread=*/false);
  }
  span.thread = slot.thread_index;
  slot.chunk->spans.push_back(std::move(span));
  g_spans_recorded.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Span> TraceRecorder::Collect() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> all;
  size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk->spans.size();
  all.reserve(total);
  for (const auto& chunk : chunks_) {
    all.insert(all.end(), chunk->spans.begin(), chunk->spans.end());
  }
  std::stable_sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    return a.t_start_us < b.t_start_us;
  });
  return all;
}

uint64_t TraceRecorder::spans_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk->spans.size();
  return total;
}

int64_t Span::AttrOr(const char* key, int64_t fallback) const {
  for (uint8_t i = 0; i < num_attrs; ++i) {
    if (std::string_view(attrs[i].key) == key) return attrs[i].value;
  }
  return fallback;
}

}  // namespace lakeharbor::obs
