#include "obs/profile.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace lakeharbor::obs {

namespace {

bool IsWorkSpan(const Span& span) {
  return span.kind == SpanKind::kReferencer ||
         span.kind == SpanKind::kDereference ||
         span.kind == SpanKind::kDerefBatch;
}

std::string Ms(int64_t us) { return StrFormat("%.2f", us / 1000.0); }

}  // namespace

JobProfile JobProfile::Build(const TraceLog& trace,
                             const ProfileInputs& inputs) {
  JobProfile p;
  p.job_id_ = trace.job_id;
  p.job_name_ = trace.job_name;
  p.executor_ = trace.executor;
  p.wall_ms_ = inputs.wall_ms;
  p.total_spans_ = trace.spans.size();

  std::map<uint32_t, StageBreakdown> stages;
  std::map<uint32_t, NodeBreakdown> nodes;
  // Per-stage latency histograms are built non-atomically here; Build runs
  // on one thread over an immutable trace.
  std::map<uint32_t, LatencyHistogram> latencies;

  for (const Span& span : trace.spans) {
    StageBreakdown& stage = stages[span.stage];
    stage.stage = span.stage;
    NodeBreakdown& node = nodes[span.node];
    node.node = span.node;
    const int64_t dur = span.duration_us();
    switch (span.kind) {
      case SpanKind::kReferencer:
      case SpanKind::kDereference:
      case SpanKind::kDerefBatch:
        if (stage.name.empty()) stage.name = span.name;
        if (span.AttrOr("failed", 0) != 0) {
          ++stage.failed_spans;
          break;
        }
        ++stage.work_spans;
        stage.exec_us += dur;
        stage.emitted += static_cast<uint64_t>(span.AttrOr("emitted", 0));
        if (span.kind == SpanKind::kReferencer) {
          stage.cpu_us += dur;
        } else {
          stage.io_us += dur;
        }
        latencies[span.stage].Record(static_cast<uint64_t>(
            dur < 0 ? 0 : dur));
        ++node.work_spans;
        node.exec_us += dur;
        break;
      case SpanKind::kQueueWait:
        stage.queue_us += dur;
        node.queue_us += dur;
        break;
      case SpanKind::kRetryBackoff:
        stage.backoff_us += dur;
        // Backoff sleeps nest inside the stage's work span; carve them out
        // of the I/O attribution (only Dereferencers retry).
        stage.io_us -= dur;
        break;
      case SpanKind::kFailover:
        stage.failover_us += dur;
        ++stage.failover_hops;
        break;
      case SpanKind::kHedge:
        stage.hedge_us += dur;
        ++stage.hedges;
        break;
    }
  }

  for (auto& [index, stage] : stages) {
    stage.latency = latencies[index].Snapshot();
    p.stages_.push_back(std::move(stage));
  }
  for (auto& [index, node] : nodes) {
    (void)index;
    p.nodes_.push_back(std::move(node));
  }

  // Straggler top-K: the longest successful work spans.
  std::vector<Span> work;
  for (const Span& span : trace.spans) {
    if (IsWorkSpan(span) && span.AttrOr("failed", 0) == 0) {
      work.push_back(span);
    }
  }
  const size_t k = std::min(inputs.straggler_top_k, work.size());
  std::partial_sort(work.begin(), work.begin() + k, work.end(),
                    [](const Span& a, const Span& b) {
                      return a.duration_us() > b.duration_us();
                    });
  work.resize(k);
  p.stragglers_ = std::move(work);

  // Reconciliation: the trace must account for exactly the invocations the
  // executor counted (work spans are emitted once per counted invocation).
  if (!inputs.stage_invocations.empty()) {
    for (size_t i = 0; i < inputs.stage_invocations.size(); ++i) {
      uint64_t spans = 0;
      for (const StageBreakdown& stage : p.stages_) {
        if (stage.stage == i) spans = stage.work_spans;
      }
      if (spans != inputs.stage_invocations[i]) {
        p.warnings_.push_back(StrFormat(
            "stage %zu: %llu work spans but %llu counted invocations", i,
            static_cast<unsigned long long>(spans),
            static_cast<unsigned long long>(inputs.stage_invocations[i])));
      }
    }
  }
  // Overlapping runs need no special flag: every counter the profile
  // reconciles against — including cache_* — is charged per job at its call
  // site, so reconciliation is exact whatever else the executor was doing.
  return p;
}

std::string JobProfile::ToText() const {
  std::string out;
  out += StrFormat(
      "== JobProfile: %s (job %llu, %s, wall %.2f ms, %llu spans) ==\n",
      job_name_.c_str(), static_cast<unsigned long long>(job_id_),
      executor_.c_str(), wall_ms_, static_cast<unsigned long long>(
          total_spans_));
  out += StrFormat(
      "%-5s %-24s %10s %9s %9s %9s %9s %9s %8s %8s %8s %8s\n", "stage",
      "name", "invocs", "exec-ms", "io-ms", "cpu-ms", "queue-ms", "bkoff-ms",
      "p50-us", "p95-us", "p99-us", "max-us");
  for (const StageBreakdown& stage : stages_) {
    out += StrFormat(
        "%-5u %-24s %10llu %9s %9s %9s %9s %9s %8llu %8llu %8llu %8llu\n",
        stage.stage, stage.name.c_str(),
        static_cast<unsigned long long>(stage.work_spans),
        Ms(stage.exec_us).c_str(), Ms(stage.io_us).c_str(),
        Ms(stage.cpu_us).c_str(), Ms(stage.queue_us).c_str(),
        Ms(stage.backoff_us).c_str(),
        static_cast<unsigned long long>(stage.latency.P50()),
        static_cast<unsigned long long>(stage.latency.P95()),
        static_cast<unsigned long long>(stage.latency.P99()),
        static_cast<unsigned long long>(stage.latency.max));
    if (stage.failed_spans > 0 || stage.failover_hops > 0 ||
        stage.hedges > 0) {
      out += StrFormat(
          "      ^ failed=%llu failover-hops=%llu (%s ms) hedges=%llu (%s "
          "ms)\n",
          static_cast<unsigned long long>(stage.failed_spans),
          static_cast<unsigned long long>(stage.failover_hops),
          Ms(stage.failover_us).c_str(),
          static_cast<unsigned long long>(stage.hedges),
          Ms(stage.hedge_us).c_str());
    }
  }
  out += "per-node:";
  for (const NodeBreakdown& node : nodes_) {
    out += StrFormat("  n%u: %llu spans, exec %s ms, queue %s ms;", node.node,
                     static_cast<unsigned long long>(node.work_spans),
                     Ms(node.exec_us).c_str(), Ms(node.queue_us).c_str());
  }
  out += "\n";
  if (!stragglers_.empty()) {
    out += "stragglers (longest work spans):\n";
    for (const Span& span : stragglers_) {
      out += StrFormat("  stage %u %-24s node %u thread %u: %lld us\n",
                       span.stage, span.name.c_str(), span.node, span.thread,
                       static_cast<long long>(span.duration_us()));
    }
  }
  if (warnings_.empty()) {
    out += "reconciliation: OK (span totals match invocation counters)\n";
  } else {
    for (const std::string& warning : warnings_) {
      out += "WARNING: " + warning + "\n";
    }
  }
  return out;
}

}  // namespace lakeharbor::obs
