#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"

/// \file profile.h
/// The query profiler: folds a TraceLog into a per-stage / per-node
/// breakdown — where did the job's time go (I/O vs queue dwell vs CPU vs
/// retry backoff), which stage is the bottleneck, who are the stragglers —
/// and reconciles span counts against the executor's invocation counters so
/// a trace that silently dropped work is flagged instead of trusted.

namespace lakeharbor::obs {

/// External context the profiler checks the trace against. All optional;
/// without it the profile is built from spans alone.
struct ProfileInputs {
  /// Expected per-stage invocation counts (ExecMetricsCounters::per_stage).
  /// When non-empty, a stage whose successful work-span count differs gets
  /// a reconciliation warning.
  std::vector<uint64_t> stage_invocations;
  /// Expected per-stage emission counts, for the report.
  std::vector<uint64_t> stage_emitted;
  double wall_ms = 0.0;
  size_t straggler_top_k = 5;
};

/// Aggregates of one job stage.
struct StageBreakdown {
  uint32_t stage = 0;
  std::string name;              ///< name of the stage's work spans
  uint64_t work_spans = 0;       ///< successful ref/deref/batch invocations
  uint64_t failed_spans = 0;     ///< work spans that ended in error
  uint64_t emitted = 0;          ///< tuples emitted (work-span attrs)
  int64_t exec_us = 0;           ///< wall total of work spans
  int64_t io_us = 0;             ///< deref exec minus nested backoff
  int64_t cpu_us = 0;            ///< referencer exec
  int64_t queue_us = 0;          ///< queue-wait dwell
  int64_t backoff_us = 0;        ///< retry backoff sleeps
  int64_t failover_us = 0;
  uint64_t failover_hops = 0;
  int64_t hedge_us = 0;
  uint64_t hedges = 0;
  HistogramSnapshot latency;     ///< work-span durations, microseconds
};

struct NodeBreakdown {
  uint32_t node = 0;
  uint64_t work_spans = 0;
  int64_t exec_us = 0;
  int64_t queue_us = 0;
};

class JobProfile {
 public:
  /// Fold `trace` into the per-stage/per-node aggregate. Deterministic.
  static JobProfile Build(const TraceLog& trace,
                          const ProfileInputs& inputs = {});

  /// Plain-text report: header, per-stage table, per-node table, straggler
  /// top-K, reconciliation verdict.
  std::string ToText() const;

  /// True when every stage's span count matched its invocation counter (or
  /// no counters were supplied) and no other integrity warning fired.
  bool Reconciles() const { return warnings_.empty(); }
  const std::vector<std::string>& warnings() const { return warnings_; }

  const std::vector<StageBreakdown>& stages() const { return stages_; }
  const std::vector<NodeBreakdown>& nodes() const { return nodes_; }
  /// Longest successful work spans, most expensive first.
  const std::vector<Span>& stragglers() const { return stragglers_; }

  uint64_t job_id() const { return job_id_; }
  const std::string& job_name() const { return job_name_; }
  double wall_ms() const { return wall_ms_; }
  uint64_t total_spans() const { return total_spans_; }

 private:
  uint64_t job_id_ = 0;
  std::string job_name_;
  std::string executor_;
  double wall_ms_ = 0.0;
  uint64_t total_spans_ = 0;
  std::vector<StageBreakdown> stages_;
  std::vector<NodeBreakdown> nodes_;
  std::vector<Span> stragglers_;
  std::vector<std::string> warnings_;
};

}  // namespace lakeharbor::obs
