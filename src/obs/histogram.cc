#include "obs/histogram.h"

#include "common/string_util.h"

namespace lakeharbor::obs {

std::string HistogramSnapshot::Summary() const {
  if (count == 0) return "n=0";
  return StrFormat("n=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                   static_cast<unsigned long long>(count), Mean(),
                   static_cast<unsigned long long>(P50()),
                   static_cast<unsigned long long>(P95()),
                   static_cast<unsigned long long>(P99()),
                   static_cast<unsigned long long>(max));
}

}  // namespace lakeharbor::obs
