#pragma once

#include <string>

#include "common/status.h"
#include "obs/trace.h"

/// \file chrome_trace.h
/// Export a TraceLog as Chrome trace_event JSON (the "JSON Array Format"
/// wrapped in a {"traceEvents": [...]} object), loadable in chrome://tracing
/// and Perfetto. Each span becomes one complete ("ph":"X") event: pid is the
/// simulated node, tid the recorder's dense thread index, ts/dur are
/// microseconds relative to the trace's earliest span. Metadata events name
/// each node so the Perfetto track list reads "node 0", "node 1", ...

namespace lakeharbor::obs {

/// Serialize the trace. Deterministic: same spans, same bytes.
std::string ToChromeTraceJson(const TraceLog& trace);

/// Write ToChromeTraceJson(trace) to `path`.
Status WriteChromeTraceFile(const TraceLog& trace, const std::string& path);

}  // namespace lakeharbor::obs
