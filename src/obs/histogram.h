#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

/// \file histogram.h
/// Fixed-bucket log-scale latency/value histogram — the metrics substrate of
/// the observability subsystem (DESIGN.md §11). Buckets are powers of two
/// (bucket 0 holds the value 0, bucket i>=1 holds [2^(i-1), 2^i - 1]), so
/// Record() is a clz plus one relaxed atomic increment: cheap enough to stay
/// on always, even on the executor hot path, and allocation-free (the bucket
/// array is inline). Quantiles are estimated by linear interpolation inside
/// the covering bucket, tightened by the tracked min/max.

namespace lakeharbor::obs {

inline constexpr size_t kHistogramBuckets = 65;

/// Bucket index of `value`: 0 for 0, otherwise floor(log2(value)) + 1.
inline size_t HistogramBucketOf(uint64_t value) {
  return value == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(value));
}

/// Inclusive lower bound of bucket `i`.
inline uint64_t HistogramBucketLower(size_t i) {
  return i == 0 ? 0 : uint64_t{1} << (i - 1);
}

/// Inclusive upper bound of bucket `i`.
inline uint64_t HistogramBucketUpper(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

/// Plain copyable snapshot of a LatencyHistogram, with the quantile math.
struct HistogramSnapshot {
  uint64_t counts[kHistogramBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< meaningful only when count > 0
  uint64_t max = 0;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimated q-quantile (q in [0, 1]): find the bucket covering the rank
  /// and interpolate linearly within it, clamped to the observed min/max.
  uint64_t Quantile(double q) const {
    if (count == 0) return 0;
    if (q <= 0.0) return min;
    if (q >= 1.0) return max;
    const double rank = q * static_cast<double>(count - 1);
    uint64_t cum = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      const uint64_t c = counts[i];
      if (c == 0) continue;
      if (rank < static_cast<double>(cum + c)) {
        uint64_t lo = HistogramBucketLower(i);
        uint64_t hi = HistogramBucketUpper(i);
        if (lo < min) lo = min;
        if (hi > max) hi = max;
        if (hi <= lo) return lo;
        const double frac = (rank - static_cast<double>(cum)) /
                            static_cast<double>(c);
        return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
      }
      cum += c;
    }
    return max;
  }

  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }

  void Merge(const HistogramSnapshot& other) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) counts[i] += other.counts[i];
    if (other.count > 0) {
      min = count == 0 ? other.min : (other.min < min ? other.min : min);
      max = other.max > max ? other.max : max;
    }
    count += other.count;
    sum += other.sum;
  }

  /// One-line summary, e.g. "n=142 mean=512.3 p50=490 p95=1980 p99=3830
  /// max=4102". Values are raw (microseconds for latency histograms).
  std::string Summary() const;
};

/// Thread-safe log-scale histogram: relaxed atomic bucket counters, no
/// allocation, no locks. Record() is wait-free apart from the min/max CAS
/// loops (bounded: they only retry while another thread is improving the
/// bound). Intended for device service times, dereference latencies, queue
/// dwell, batch sizes — anything whose tail matters.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value) {
    buckets_[HistogramBucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.counts[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    if (s.count > 0) {
      const uint64_t min = min_.load(std::memory_order_relaxed);
      s.min = min == UINT64_MAX ? 0 : min;
      s.max = max_.load(std::memory_order_relaxed);
    }
    return s;
  }

  void Reset() {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace lakeharbor::obs
