#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "obs/span.h"

/// \file trace.h
/// Per-job trace recording. One TraceRecorder exists per *traced* run (see
/// SmpeOptions::trace_sample_n); when tracing is off no recorder exists and
/// the executors' fast path is a null-pointer check — zero spans, zero
/// allocations (TraceCounters lets tests assert exactly that).
///
/// Recording is lock-free on the hot path: each recording thread owns a
/// chunked span buffer registered with the recorder on first use (one
/// mutex acquisition per thread per chunk, amortized over kChunkSpans
/// appends). Appends are plain stores — the owning thread is the only
/// writer, and Collect() runs only after the executor has quiesced the run
/// (in-flight tracker at zero, dispatchers and stragglers joined), which
/// establishes the happens-before edge for every chunk write.

namespace lakeharbor::obs {

/// Process-wide observability counters, for overhead assertions: a run with
/// tracing disabled must not move either of them.
struct TraceCounters {
  static uint64_t SpansRecorded();
  static uint64_t ChunksAllocated();
};

/// Process-wide monotonically increasing job id, shared by every executor
/// so concurrent runs (even across executors) are distinguishable in
/// metrics and traces.
uint64_t NextJobId();

/// The collected trace of one job run, attached to JobResult.
struct TraceLog {
  uint64_t job_id = 0;
  std::string job_name;
  std::string executor;
  std::vector<Span> spans;  ///< sorted by t_start_us
};

class TraceRecorder {
 public:
  explicit TraceRecorder(uint64_t job_id);
  ~TraceRecorder();
  LH_DISALLOW_COPY_AND_ASSIGN(TraceRecorder);

  uint64_t job_id() const { return job_id_; }

  /// Append one span to the calling thread's buffer. `span.thread` is
  /// overwritten with the recorder's dense thread index.
  void Record(Span span);

  /// Gather every recorded span, sorted by start time. Only call after the
  /// run has quiesced (no thread can still be recording).
  std::vector<Span> Collect();

  uint64_t spans_recorded() const;

  struct Chunk;

 private:
  Chunk* RegisterChunk(uint32_t thread_index, bool new_thread);

  const uint64_t epoch_;   ///< process-unique; keys thread-local caching
  const uint64_t job_id_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  uint32_t next_thread_ = 0;
};

}  // namespace lakeharbor::obs
