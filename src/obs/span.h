#pragma once

#include <cstdint>
#include <string>

/// \file span.h
/// The trace unit of the observability subsystem: one timed interval inside
/// one job, attributed to a stage, a simulated node, and the recording
/// thread. Spans are plain values sized for bulk storage in the recorder's
/// chunked thread-local buffers — attrs are a fixed inline array (no heap),
/// and names are the short stage-function names (SSO in practice).

namespace lakeharbor::obs {

/// Span taxonomy (DESIGN.md §11). The kind is what the profiler aggregates
/// by: Dereference/DerefBatch time is I/O-dominated (the task is blocked on
/// the simulated device), Referencer time is pure CPU, QueueWait is dwell
/// between enqueue and dispatch, RetryBackoff is deliberate sleep, Failover
/// and Hedge are the replica-path detours nested inside dereference spans.
enum class SpanKind : uint8_t {
  kReferencer = 0,   ///< one Referencer invocation (CPU)
  kDereference = 1,  ///< one Dereferencer invocation (I/O)
  kDerefBatch = 2,   ///< one fused ExecuteBatch invocation (I/O)
  kQueueWait = 3,    ///< task dwell: enqueue -> dequeue
  kRetryBackoff = 4, ///< backoff sleep before a retry attempt
  kFailover = 5,     ///< replica failover hop (skip or re-issued read)
  kHedge = 6,        ///< hedge arm racing a second replica
};

inline const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kReferencer:
      return "referencer";
    case SpanKind::kDereference:
      return "dereference";
    case SpanKind::kDerefBatch:
      return "deref-batch";
    case SpanKind::kQueueWait:
      return "queue-wait";
    case SpanKind::kRetryBackoff:
      return "retry-backoff";
    case SpanKind::kFailover:
      return "failover";
    case SpanKind::kHedge:
      return "hedge";
  }
  return "?";
}

/// One key/value annotation. Keys are string literals (never owned).
struct SpanAttr {
  const char* key = nullptr;
  int64_t value = 0;
};

struct Span {
  static constexpr size_t kMaxAttrs = 4;

  std::string name;       ///< stage-function name, or the kind's fixed name
  SpanKind kind = SpanKind::kReferencer;
  uint32_t stage = 0;     ///< job stage index the span belongs to
  uint32_t node = 0;      ///< simulated node the work ran "on"
  uint32_t thread = 0;    ///< recorder-assigned dense thread index
  int64_t t_start_us = 0; ///< NowMicros() at span start
  int64_t t_end_us = 0;   ///< NowMicros() at span end
  SpanAttr attrs[kMaxAttrs];
  uint8_t num_attrs = 0;

  int64_t duration_us() const { return t_end_us - t_start_us; }

  /// Attach an annotation; silently dropped past kMaxAttrs.
  void AddAttr(const char* key, int64_t value) {
    if (num_attrs < kMaxAttrs) attrs[num_attrs++] = SpanAttr{key, value};
  }

  /// Value of `key`, or `fallback` when absent.
  int64_t AttrOr(const char* key, int64_t fallback) const;
};

}  // namespace lakeharbor::obs
