#include "obs/chrome_trace.h"

#include <cstdio>
#include <limits>
#include <set>

#include "common/json.h"

namespace lakeharbor::obs {

std::string ToChromeTraceJson(const TraceLog& trace) {
  // Normalize timestamps so the viewer opens at t=0 instead of hours into
  // the steady clock's epoch.
  int64_t t0 = std::numeric_limits<int64_t>::max();
  for (const Span& span : trace.spans) {
    if (span.t_start_us < t0) t0 = span.t_start_us;
  }
  if (trace.spans.empty()) t0 = 0;

  Json events = Json::MakeArray();
  std::set<uint32_t> nodes;
  for (const Span& span : trace.spans) nodes.insert(span.node);
  for (uint32_t node : nodes) {
    Json meta = Json::MakeObject();
    meta.Set("name", Json::MakeString("process_name"));
    meta.Set("ph", Json::MakeString("M"));
    meta.Set("pid", Json::MakeNumber(node));
    meta.Set("tid", Json::MakeNumber(0));
    Json args = Json::MakeObject();
    args.Set("name", Json::MakeString("node " + std::to_string(node)));
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }

  for (const Span& span : trace.spans) {
    Json event = Json::MakeObject();
    event.Set("name", Json::MakeString(span.name));
    event.Set("cat", Json::MakeString(SpanKindName(span.kind)));
    event.Set("ph", Json::MakeString("X"));
    event.Set("ts", Json::MakeNumber(
                        static_cast<double>(span.t_start_us - t0)));
    event.Set("dur", Json::MakeNumber(static_cast<double>(span.duration_us())));
    event.Set("pid", Json::MakeNumber(span.node));
    event.Set("tid", Json::MakeNumber(span.thread));
    Json args = Json::MakeObject();
    args.Set("job_id", Json::MakeNumber(static_cast<double>(trace.job_id)));
    args.Set("stage", Json::MakeNumber(span.stage));
    for (uint8_t i = 0; i < span.num_attrs; ++i) {
      args.Set(span.attrs[i].key,
               Json::MakeNumber(static_cast<double>(span.attrs[i].value)));
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }

  Json root = Json::MakeObject();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", Json::MakeString("ms"));
  root.Set("otherData", [&] {
    Json other = Json::MakeObject();
    other.Set("job", Json::MakeString(trace.job_name));
    other.Set("executor", Json::MakeString(trace.executor));
    other.Set("job_id", Json::MakeNumber(static_cast<double>(trace.job_id)));
    return other;
  }());
  return root.Dump();
}

Status WriteChromeTraceFile(const TraceLog& trace, const std::string& path) {
  const std::string json = ToChromeTraceJson(trace);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace lakeharbor::obs
