#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "common/string_util.h"
#include "io/record.h"

namespace lakeharbor::baseline {

/// A row in the scan engine: the records joined so far, build-side records
/// appended after probe-side ones (same bundle idea as rede::Tuple, so the
/// two engines' outputs can be compared field-by-field in tests).
using Row = std::vector<io::Record>;

/// Predicate pushed down into a scan, evaluated per raw record.
using RecordPredicate = std::function<StatusOr<bool>(const io::Record&)>;

/// Join-key extraction from a row.
using RowKeyExtractor = std::function<StatusOr<std::string>(const Row&)>;

/// Key extractor reading delimited field `field_index` of row element
/// `row_index` ('|'-delimited text, the TPC-H encoding).
inline RowKeyExtractor FieldKeyOfRow(size_t row_index, size_t field_index,
                                     char delim = '|') {
  return [row_index, field_index, delim](const Row& row)
             -> StatusOr<std::string> {
    if (row_index >= row.size()) {
      return Status::InvalidArgument("row index out of range in key extractor");
    }
    return std::string(
        FieldAt(row[row_index].slice().view(), delim, field_index));
  };
}

/// Record predicate testing delimited field `field_index` against an
/// inclusive range.
inline RecordPredicate FieldRangePredicate(size_t field_index, std::string lo,
                                           std::string hi, char delim = '|') {
  return [field_index, lo = std::move(lo), hi = std::move(hi),
          delim](const io::Record& record) -> StatusOr<bool> {
    std::string_view field =
        FieldAt(record.slice().view(), delim, field_index);
    return lo <= field && field <= hi;
  };
}

/// Record predicate testing delimited field `field_index` for equality.
inline RecordPredicate FieldEqualsPredicate(size_t field_index,
                                            std::string value,
                                            char delim = '|') {
  return [field_index, value = std::move(value),
          delim](const io::Record& record) -> StatusOr<bool> {
    return FieldAt(record.slice().view(), delim, field_index) == value;
  };
}

}  // namespace lakeharbor::baseline
