#pragma once

#include <memory>
#include <vector>

#include "baseline/scan_stats.h"
#include "baseline/row.h"
#include "concurrent/thread_pool.h"
#include "io/file.h"
#include "sim/cluster.h"

namespace lakeharbor::baseline {

struct ScanEngineOptions {
  /// Static per-node parallelism — "dozens of statically defined
  /// parallelism (usually matching the number of CPU cores)". The paper's
  /// testbed nodes had 16 cores.
  size_t workers_per_node = 16;

  /// Per-node memory available to a hash join before it goes *grace*
  /// (spilling both inputs to disk in hash buckets and joining bucket by
  /// bucket).
  size_t join_memory_budget_bytes = 8ull * 1024 * 1024;
};

/// The "fast data lake system" baseline of Fig 7 (Apache Impala's relevant
/// behaviour): full parallel partitioned scans with predicate pushdown, no
/// indexes, (grace) hash joins. Used both as the Fig 7 comparator and as a
/// correctness oracle for ReDe jobs in the integration tests.
class ScanEngine {
 public:
  ScanEngine(sim::Cluster* cluster, ScanEngineOptions options = {});
  LH_DISALLOW_COPY_AND_ASSIGN(ScanEngine);

  const ScanEngineOptions& options() const { return options_; }

  /// Parallel full scan of `file`. Records failing `predicate` (nullable)
  /// are dropped during the scan; survivors become single-record rows.
  StatusOr<std::vector<Row>> Scan(io::File& file,
                                  const RecordPredicate& predicate);

  /// Hash join: `probe` rows joined with `build` rows on equal keys; each
  /// output row is the probe row's records followed by the build row's.
  /// When both inputs fit in the per-node budget the join is in-memory;
  /// otherwise it runs as a grace hash join, charging the simulated disks
  /// for spilling and re-reading both inputs.
  StatusOr<std::vector<Row>> HashJoin(std::vector<Row> probe,
                                      const RowKeyExtractor& probe_key,
                                      std::vector<Row> build,
                                      const RowKeyExtractor& build_key);

  const ScanStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  StatusOr<std::vector<Row>> JoinBuckets(
      std::vector<std::vector<Row>> probe_buckets,
      const RowKeyExtractor& probe_key,
      std::vector<std::vector<Row>> build_buckets,
      const RowKeyExtractor& build_key);

  sim::Cluster* cluster_;
  ScanEngineOptions options_;
  ThreadPool pool_;
  ScanStats stats_;
};

}  // namespace lakeharbor::baseline
