#include "baseline/scan_engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "concurrent/inflight_tracker.h"

namespace lakeharbor::baseline {

namespace {

size_t RowBytes(const Row& row) {
  size_t bytes = 0;
  for (const auto& record : row) bytes += record.size();
  return bytes;
}

size_t RowsBytes(const std::vector<Row>& rows) {
  size_t bytes = 0;
  for (const auto& row : rows) bytes += RowBytes(row);
  return bytes;
}

/// Shared error slot for fan-out phases: keeps the first failure.
struct ErrorSlot {
  std::mutex mutex;
  Status status;
  void Record(const Status& s) {
    std::lock_guard<std::mutex> lock(mutex);
    if (status.ok()) status = s;
  }
  Status Take() {
    std::lock_guard<std::mutex> lock(mutex);
    return status;
  }
};

}  // namespace

ScanEngine::ScanEngine(sim::Cluster* cluster, ScanEngineOptions options)
    : cluster_(cluster),
      options_(options),
      pool_(std::max<size_t>(1, options.workers_per_node) *
            cluster->num_nodes()) {
  LH_CHECK(cluster_ != nullptr);
}

StatusOr<std::vector<Row>> ScanEngine::Scan(io::File& file,
                                            const RecordPredicate& predicate) {
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  const uint32_t num_partitions = file.num_partitions();
  std::vector<std::vector<Row>> per_partition(num_partitions);
  ErrorSlot error;
  InflightTracker inflight;
  inflight.Add(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    bool submitted = pool_.Submit([&, p] {
      // The scan task runs "on" the node owning the partition: local I/O.
      sim::NodeId node = file.NodeOfPartition(p);
      std::vector<Row>& out = per_partition[p];
      Status predicate_status = Status::OK();
      Status status = file.ScanPartition(node, p, [&](const io::Record& r) {
        stats_.records_scanned.fetch_add(1, std::memory_order_relaxed);
        if (predicate) {
          auto keep = predicate(r);
          if (!keep.ok()) {
            predicate_status = keep.status();
            return false;
          }
          if (!*keep) return true;
        }
        out.push_back(Row{r});
        return true;
      });
      if (!status.ok()) error.Record(status);
      if (!predicate_status.ok()) error.Record(predicate_status);
      inflight.Done();
    });
    LH_CHECK_MSG(submitted, "scan pool shut down");
  }
  inflight.AwaitZero();
  LH_RETURN_NOT_OK(error.Take().WithContext("scan of " + file.name()));

  std::vector<Row> rows;
  size_t total = 0;
  for (const auto& part : per_partition) total += part.size();
  rows.reserve(total);
  for (auto& part : per_partition) {
    for (auto& row : part) rows.push_back(std::move(row));
  }
  return rows;
}

StatusOr<std::vector<Row>> ScanEngine::HashJoin(
    std::vector<Row> probe, const RowKeyExtractor& probe_key,
    std::vector<Row> build, const RowKeyExtractor& build_key) {
  stats_.joins.fetch_add(1, std::memory_order_relaxed);
  const size_t probe_bytes = RowsBytes(probe);
  const size_t build_bytes = RowsBytes(build);
  const size_t cluster_budget =
      options_.join_memory_budget_bytes * cluster_->num_nodes();

  // Pick the bucket count: 1 bucket == pure in-memory join; otherwise a
  // grace join that spills both inputs and processes bucket by bucket.
  size_t num_buckets = 1;
  if (probe_bytes + build_bytes > cluster_budget) {
    num_buckets = (probe_bytes + build_bytes + cluster_budget - 1) /
                  std::max<size_t>(1, cluster_budget) * 2;
    stats_.grace_joins.fetch_add(1, std::memory_order_relaxed);
  }

  auto bucket_of = [&](const std::string& key) {
    return num_buckets == 1
               ? size_t{0}
               : static_cast<size_t>(Fnv1a64(key) % num_buckets);
  };

  std::vector<std::vector<Row>> probe_buckets(num_buckets);
  std::vector<std::vector<Row>> build_buckets(num_buckets);
  for (auto& row : probe) {
    LH_ASSIGN_OR_RETURN(std::string key, probe_key(row));
    probe_buckets[bucket_of(key)].push_back(std::move(row));
  }
  for (auto& row : build) {
    LH_ASSIGN_OR_RETURN(std::string key, build_key(row));
    build_buckets[bucket_of(key)].push_back(std::move(row));
  }
  probe.clear();
  build.clear();

  if (num_buckets > 1) {
    // Charge the spill: both inputs are written out partitioned and read
    // back once, spread round-robin over the cluster's disks.
    uint64_t spill = 0;
    for (size_t b = 0; b < num_buckets; ++b) {
      uint64_t bytes =
          RowsBytes(probe_buckets[b]) + RowsBytes(build_buckets[b]);
      spill += bytes;
      sim::NodeId node =
          static_cast<sim::NodeId>(b % cluster_->num_nodes());
      LH_RETURN_NOT_OK(cluster_->ChargeWrite(node, node, bytes));
      LH_RETURN_NOT_OK(cluster_->ChargeSequentialRead(node, node, bytes));
    }
    stats_.spilled_bytes.fetch_add(spill, std::memory_order_relaxed);
  }

  return JoinBuckets(std::move(probe_buckets), probe_key,
                     std::move(build_buckets), build_key);
}

StatusOr<std::vector<Row>> ScanEngine::JoinBuckets(
    std::vector<std::vector<Row>> probe_buckets,
    const RowKeyExtractor& probe_key,
    std::vector<std::vector<Row>> build_buckets,
    const RowKeyExtractor& build_key) {
  const size_t num_buckets = probe_buckets.size();
  std::vector<std::vector<Row>> per_bucket_output(num_buckets);
  ErrorSlot error;
  InflightTracker inflight;
  inflight.Add(static_cast<int64_t>(num_buckets));
  for (size_t b = 0; b < num_buckets; ++b) {
    bool submitted = pool_.Submit([&, b] {
      auto run = [&]() -> Status {
        std::unordered_multimap<std::string, const Row*> table;
        table.reserve(build_buckets[b].size());
        for (const Row& row : build_buckets[b]) {
          LH_ASSIGN_OR_RETURN(std::string key, build_key(row));
          table.emplace(std::move(key), &row);
        }
        std::vector<Row>& out = per_bucket_output[b];
        for (const Row& row : probe_buckets[b]) {
          LH_ASSIGN_OR_RETURN(std::string key, probe_key(row));
          auto [begin, end] = table.equal_range(key);
          for (auto it = begin; it != end; ++it) {
            Row joined = row;
            joined.insert(joined.end(), it->second->begin(),
                          it->second->end());
            out.push_back(std::move(joined));
          }
        }
        return Status::OK();
      };
      Status status = run();
      if (!status.ok()) error.Record(status);
      inflight.Done();
    });
    LH_CHECK_MSG(submitted, "join pool shut down");
  }
  inflight.AwaitZero();
  LH_RETURN_NOT_OK(error.Take().WithContext("hash join"));

  std::vector<Row> output;
  size_t total = 0;
  for (const auto& bucket : per_bucket_output) total += bucket.size();
  output.reserve(total);
  for (auto& bucket : per_bucket_output) {
    for (auto& row : bucket) output.push_back(std::move(row));
  }
  stats_.join_output_rows.fetch_add(output.size(), std::memory_order_relaxed);
  return output;
}

}  // namespace lakeharbor::baseline
