#pragma once

#include <atomic>
#include <cstdint>

namespace lakeharbor::baseline {

/// Counters of the baseline engine.
struct ScanStats {
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> records_scanned{0};
  std::atomic<uint64_t> joins{0};
  std::atomic<uint64_t> grace_joins{0};       ///< joins that spilled
  std::atomic<uint64_t> spilled_bytes{0};
  std::atomic<uint64_t> join_output_rows{0};

  void Reset() {
    scans = 0;
    records_scanned = 0;
    joins = 0;
    grace_joins = 0;
    spilled_bytes = 0;
    join_output_rows = 0;
  }
};

}  // namespace lakeharbor::baseline
