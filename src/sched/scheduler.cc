#include "sched/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/macros.h"

namespace lakeharbor::sched {

const char* JobClassToString(JobClass job_class) {
  switch (job_class) {
    case JobClass::kPointLookup:
      return "point-lookup";
    case JobClass::kAnalyticalScan:
      return "analytical-scan";
    case JobClass::kMigration:
      return "migration";
  }
  return "unknown";
}

JobScheduler::JobScheduler(rede::Executor* executor, SchedulerOptions options)
    : executor_(executor), options_(options) {
  LH_CHECK(executor_ != nullptr);
  LH_CHECK_MSG(options_.execution_slots > 0,
               "scheduler needs at least one execution slot");
  if (options_.io_tokens > 0) {
    io_tokens_ = std::make_unique<Semaphore>(options_.io_tokens);
  }
  workers_.reserve(options_.execution_slots);
  for (size_t i = 0; i < options_.execution_slots; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  timer_ = std::thread([this] { TimerLoop(); });
}

JobScheduler::~JobScheduler() { Shutdown(); }

size_t JobScheduler::IoTokensFor(JobClass job_class) const {
  size_t tokens = 0;
  switch (job_class) {
    case JobClass::kPointLookup:
      tokens = options_.point_lookup_io_tokens;
      break;
    case JobClass::kAnalyticalScan:
      tokens = options_.analytical_scan_io_tokens;
      break;
    case JobClass::kMigration:
      tokens = options_.migration_io_tokens;
      break;
  }
  if (tokens == 0) tokens = 1;
  // A cost above the whole pool could never be satisfied; clamp instead of
  // deadlocking the class.
  if (options_.io_tokens > 0) tokens = std::min(tokens, options_.io_tokens);
  return tokens;
}

double JobScheduler::WeightFor(JobClass job_class) const {
  double weight = 1.0;
  switch (job_class) {
    case JobClass::kPointLookup:
      weight = options_.point_lookup_weight;
      break;
    case JobClass::kAnalyticalScan:
      weight = options_.analytical_scan_weight;
      break;
    case JobClass::kMigration:
      weight = options_.migration_weight;
      break;
  }
  return weight > 0.0 ? weight : 1.0;
}

StatusOr<JobHandlePtr> JobScheduler::Submit(const rede::Job& job,
                                            JobSpec spec) {
  auto handle = std::make_shared<JobHandle>(spec.tenant, spec.job_class);
  const int64_t submit_us = NowMicros();
  const uint64_t deadline_ms =
      spec.deadline_ms > 0 ? spec.deadline_ms : options_.default_deadline_ms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::Aborted("scheduler is shut down");
    }
    if (options_.max_queue_depth > 0 &&
        queued_jobs_ >= options_.max_queue_depth) {
      // Admission control: shed load at the door with a retryable status
      // (kResourceExhausted) instead of queueing without bound.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "scheduler queue full (" + std::to_string(queued_jobs_) + "/" +
          std::to_string(options_.max_queue_depth) + " jobs queued)");
    }
    QueuedJob queued;
    queued.handle = handle;
    queued.job = &job;
    queued.sink = std::move(spec.sink);
    queued.seq = next_seq_++;
    queued.submit_us = submit_us;
    // Start-time fair queueing tags: a flow re-arriving after idling starts
    // at the current virtual time (no credit for sleeping); a backlogged
    // flow chains behind its own last finish tag. The finish tag advances
    // by cost/weight, so heavier classes move through virtual time faster
    // and get dispatched less often per unit weight.
    Flow& flow = flows_[{spec.tenant, static_cast<int>(spec.job_class)}];
    const double cost = static_cast<double>(IoTokensFor(spec.job_class));
    queued.start_tag = std::max(virtual_time_, flow.last_finish_tag);
    queued.finish_tag = queued.start_tag + cost / WeightFor(spec.job_class);
    flow.last_finish_tag = queued.finish_tag;
    flow.jobs.push_back(std::move(queued));
    ++queued_jobs_;
    if (deadline_ms > 0) {
      deadlines_.push(DeadlineEntry{
          submit_us + static_cast<int64_t>(deadline_ms) * 1000, handle});
      timer_cv_.notify_all();
    }
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  return handle;
}

StatusOr<rede::JobResult> JobScheduler::Run(const rede::Job& job,
                                            JobSpec spec) {
  LH_ASSIGN_OR_RETURN(JobHandlePtr handle, Submit(job, std::move(spec)));
  return handle->Wait();
}

std::optional<JobScheduler::QueuedJob> JobScheduler::PickNextLocked() {
  // Fair mode: the head with the minimum virtual start tag (ties broken by
  // submission order, for determinism). FIFO mode: the globally oldest job
  // — each flow is seq-ordered, so the min over flow heads is the min
  // overall.
  auto best = flows_.end();
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it->second.jobs.empty()) continue;
    if (best == flows_.end()) {
      best = it;
      continue;
    }
    const QueuedJob& candidate = it->second.jobs.front();
    const QueuedJob& incumbent = best->second.jobs.front();
    if (options_.fair) {
      if (candidate.start_tag < incumbent.start_tag ||
          (candidate.start_tag == incumbent.start_tag &&
           candidate.seq < incumbent.seq)) {
        best = it;
      }
    } else if (candidate.seq < incumbent.seq) {
      best = it;
    }
  }
  if (best == flows_.end()) return std::nullopt;
  QueuedJob next = std::move(best->second.jobs.front());
  best->second.jobs.pop_front();
  --queued_jobs_;
  if (options_.fair) virtual_time_ = std::max(virtual_time_, next.start_tag);
  return next;
}

void JobScheduler::FinishJob(QueuedJob& next, Status error,
                             rede::JobResult result, int64_t dispatch_us,
                             bool executed) {
  const int64_t now_us = NowMicros();
  const uint64_t queue_wait_us =
      dispatch_us > next.submit_us
          ? static_cast<uint64_t>(dispatch_us - next.submit_us)
          : 0;
  const uint64_t total_us = now_us > next.submit_us
                                ? static_cast<uint64_t>(now_us - next.submit_us)
                                : 0;
  PerClassHist& hist =
      per_class_[static_cast<size_t>(next.handle->job_class())];
  hist.queue_wait_us.Record(queue_wait_us);
  hist.total_us.Record(total_us);
  if (executed && now_us > dispatch_us) {
    hist.exec_us.Record(static_cast<uint64_t>(now_us - dispatch_us));
  }
  if (error.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (next.handle->cancel_token().cancelled()) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  next.handle->Finish(std::move(error), std::move(result), queue_wait_us,
                      total_us);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_jobs_;
  }
  work_cv_.notify_all();
}

void JobScheduler::WorkerLoop() {
  for (;;) {
    std::optional<QueuedJob> next;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutting_down_ || queued_jobs_ > 0; });
      if (queued_jobs_ == 0) {
        if (shutting_down_) return;
        continue;
      }
      next = PickNextLocked();
      if (!next.has_value()) continue;
      ++running_jobs_;
    }
    const int64_t dispatch_us = NowMicros();
    CancelToken& cancel = next->handle->cancel_token();
    // A job cancelled while queued (user Cancel; the deadline timer already
    // removes ITS victims from the queue) completes here without touching
    // the executor.
    if (cancel.cancelled()) {
      FinishJob(*next, cancel.cause(), rede::JobResult{}, dispatch_us,
                /*executed=*/false);
      continue;
    }
    // Disk-slot gate: hold the class's token cost for the whole run. The
    // wait is cancellable, so deadline expiry or Cancel() while waiting
    // for tokens releases this slot promptly.
    size_t tokens = 0;
    if (io_tokens_ != nullptr) {
      tokens = IoTokensFor(next->handle->job_class());
      if (!io_tokens_->Acquire(tokens, &cancel)) {
        FinishJob(*next, cancel.cause(), rede::JobResult{}, dispatch_us,
                  /*executed=*/false);
        continue;
      }
    }
    StatusOr<rede::JobResult> result =
        executor_->Execute(*next->job, next->sink, &cancel);
    if (io_tokens_ != nullptr) io_tokens_->Release(tokens);
    if (result.ok()) {
      FinishJob(*next, Status::OK(), std::move(result).value(), dispatch_us,
                /*executed=*/true);
    } else {
      FinishJob(*next, result.status(), rede::JobResult{}, dispatch_us,
                /*executed=*/true);
    }
  }
}

void JobScheduler::TimerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutting_down_) return;
    if (deadlines_.empty()) {
      timer_cv_.wait(lock,
                     [&] { return shutting_down_ || !deadlines_.empty(); });
      continue;
    }
    DeadlineEntry top = deadlines_.top();
    JobHandlePtr handle = top.handle.lock();
    if (handle == nullptr || handle->done()) {
      deadlines_.pop();  // completed (or abandoned) before its deadline
      continue;
    }
    const int64_t now_us = NowMicros();
    if (top.expiry_us > now_us) {
      timer_cv_.wait_for(lock,
                         std::chrono::microseconds(top.expiry_us - now_us));
      continue;
    }
    deadlines_.pop();
    Status cause = Status::DeadlineExceeded(
        "job for tenant '" + handle->tenant() + "' (" +
        JobClassToString(handle->job_class()) + ") exceeded its deadline");
    handle->Cancel(cause);
    // Still queued? Pull it out now so it completes within the quantum
    // instead of waiting for a free slot to notice the flipped token.
    for (auto& [key, flow] : flows_) {
      auto it = std::find_if(
          flow.jobs.begin(), flow.jobs.end(),
          [&](const QueuedJob& q) { return q.handle == handle; });
      if (it == flow.jobs.end()) continue;
      QueuedJob victim = std::move(*it);
      flow.jobs.erase(it);
      --queued_jobs_;
      lock.unlock();
      failed_.fetch_add(1, std::memory_order_relaxed);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t waited_us =
          now_us > victim.submit_us
              ? static_cast<uint64_t>(now_us - victim.submit_us)
              : 0;
      PerClassHist& hist =
          per_class_[static_cast<size_t>(victim.handle->job_class())];
      hist.queue_wait_us.Record(waited_us);
      hist.total_us.Record(waited_us);
      victim.handle->Finish(cause, rede::JobResult{}, waited_us, waited_us);
      lock.lock();
      break;
    }
    // Running jobs drain through the executor's fail-fast path: the flipped
    // token interrupts any retry backoff and queued tasks drop unexecuted.
  }
}

void JobScheduler::Shutdown() {
  std::vector<QueuedJob> orphans;
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (auto& [key, flow] : flows_) {
      for (QueuedJob& queued : flow.jobs) orphans.push_back(std::move(queued));
      flow.jobs.clear();
    }
    queued_jobs_ = 0;
    to_join.swap(workers_);
    if (timer_.joinable()) to_join.push_back(std::move(timer_));
  }
  work_cv_.notify_all();
  timer_cv_.notify_all();
  const int64_t now_us = NowMicros();
  for (QueuedJob& queued : orphans) {
    Status cause = Status::Aborted("scheduler shut down with job queued");
    queued.handle->Cancel(cause);
    failed_.fetch_add(1, std::memory_order_relaxed);
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t waited_us =
        now_us > queued.submit_us
            ? static_cast<uint64_t>(now_us - queued.submit_us)
            : 0;
    queued.handle->Finish(cause, rede::JobResult{}, waited_us, waited_us);
  }
  for (std::thread& thread : to_join) {
    if (thread.joinable()) thread.join();
  }
}

SchedulerStats JobScheduler::stats() const {
  SchedulerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  for (size_t c = 0; c < kNumJobClasses; ++c) {
    s.per_class[c].queue_wait_us = per_class_[c].queue_wait_us.Snapshot();
    s.per_class[c].exec_us = per_class_[c].exec_us.Snapshot();
    s.per_class[c].total_us = per_class_[c].total_us.Snapshot();
  }
  // Per-flow backlog view: current depth and the age of the oldest queued
  // job (flows are FIFO internally, so the front is the oldest).
  const int64_t now_us = NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  s.flows.reserve(flows_.size());
  for (const auto& [key, flow] : flows_) {
    SchedulerStats::FlowStats fs;
    fs.tenant = key.first;
    fs.job_class = static_cast<JobClass>(key.second);
    fs.queue_depth = flow.jobs.size();
    if (!flow.jobs.empty() && now_us > flow.jobs.front().submit_us) {
      fs.oldest_queued_age_us =
          static_cast<uint64_t>(now_us - flow.jobs.front().submit_us);
    }
    s.flows.push_back(std::move(fs));
  }
  return s;
}

size_t JobScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_jobs_;
}

size_t JobScheduler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_jobs_;
}

}  // namespace lakeharbor::sched
