#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status_or.h"
#include "concurrent/semaphore.h"
#include "obs/histogram.h"
#include "rede/executor.h"

/// \file scheduler.h
/// Multi-tenant job scheduling in front of the ReDe executors — the
/// serving-system layer ROADMAP item 1 calls for. The scheduler owns the
/// right to call Executor::Execute(): jobs are submitted with a tenant id
/// and a priority class, admission control bounds the queue when the system
/// saturates, and a weighted-fair (start-time fair queueing) dispatcher
/// shares the execution slots across tenants and classes so an analytical
/// scan burst cannot starve another tenant's point lookups.
///
/// Per-job isolation falls out of the executor contract this PR fixed:
/// every Execute() call carries its own metrics, trace, and CancelToken,
/// and cache activity is charged at its call sites — so each completed
/// job's JobProfile reconciles exactly, overlap or not.

namespace lakeharbor::sched {

/// The serving classes of the traffic mix (Q5'/claims analytics vs
/// primary-key lookups) plus the background migration class rebalancing
/// rides on. Classes pick weights and disk-slot costs; tenants within a
/// class still get fair shares of the class's throughput.
enum class JobClass {
  kPointLookup = 0,
  kAnalyticalScan = 1,
  /// Background partition copies issued by io::Rebalancer. Deliberately the
  /// lightest weight: a rebalance must never starve foreground serving.
  kMigration = 2,
};
inline constexpr size_t kNumJobClasses = 3;

const char* JobClassToString(JobClass job_class);

struct SchedulerOptions {
  /// Concurrent Execute() calls (the scheduler's execution slots). Each
  /// slot is one worker thread driving one blocking executor run.
  size_t execution_slots = 4;

  /// Admission control: queued (not-yet-dispatched) jobs beyond this bound
  /// are rejected at Submit with kResourceExhausted — backpressure to the
  /// client instead of unbounded memory growth. 0 = unbounded.
  size_t max_queue_depth = 0;

  /// true: weighted start-time fair queueing across (tenant, class) flows.
  /// false: one global FIFO in submission order — the baseline the
  /// traffic-mix bench contrasts against.
  bool fair = true;

  /// Class weights for fair dispatch (higher = larger share). Lookups
  /// default to the larger weight: they are cheap and latency-sensitive,
  /// scans are throughput work.
  double point_lookup_weight = 4.0;
  double analytical_scan_weight = 1.0;
  /// Background partition migrations: smallest share by default so
  /// rebalancing yields to any backlogged foreground flow.
  double migration_weight = 0.5;

  /// Per-node disk slots: a pooled budget of concurrently dispatched I/O
  /// weight, gating dispatch (not Submit). A job must hold its class's
  /// token cost before its Execute() starts and returns the tokens when it
  /// finishes; waiting is cancellable, so a job whose deadline expires in
  /// the token queue leaves promptly. 0 = ungated.
  size_t io_tokens = 0;
  size_t point_lookup_io_tokens = 1;
  size_t analytical_scan_io_tokens = 4;
  /// Disk-slot cost of one migration job (a sequential partition copy).
  size_t migration_io_tokens = 2;

  /// Deadline applied to jobs whose spec leaves deadline_ms == 0. Measured
  /// from Submit (queue time counts — serving semantics). 0 = none.
  uint64_t default_deadline_ms = 0;
};

/// Per-submission parameters.
struct JobSpec {
  std::string tenant = "default";
  JobClass job_class = JobClass::kAnalyticalScan;
  /// Wall-clock deadline from Submit; 0 defers to default_deadline_ms.
  uint64_t deadline_ms = 0;
  /// Output tuple sink (nullable; must be thread-safe).
  rede::ResultSink sink;
};

/// One submitted job's future. Returned by Submit; Wait() blocks until the
/// job finished (or was rejected/cancelled/deadline-exceeded) and yields
/// the executor's JobResult with exact per-job metrics. Cancel() flips the
/// job's own CancelToken: queued jobs complete immediately with the cause,
/// running jobs drain through the executor's fail-fast path, interrupting
/// any retry backoff mid-sleep.
class JobHandle {
 public:
  JobHandle(std::string tenant, JobClass job_class)
      : tenant_(std::move(tenant)), job_class_(job_class) {}
  JobHandle(const JobHandle&) = delete;
  JobHandle& operator=(const JobHandle&) = delete;

  const std::string& tenant() const { return tenant_; }
  JobClass job_class() const { return job_class_; }

  /// Request cancellation (first cause wins, shared with deadline expiry
  /// and executor-internal errors).
  void Cancel(Status cause) { cancel_.Cancel(std::move(cause)); }
  CancelToken& cancel_token() { return cancel_; }

  bool done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
  }

  /// Block until the job completes; returns the executor result or the
  /// failure/cancellation cause. Safe to call from multiple threads and
  /// more than once (the result is retained).
  StatusOr<rede::JobResult> Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return done_; });
    if (!error_.ok()) return error_;
    return result_;
  }

  /// Microseconds the job spent queued before its slot (set at dispatch;
  /// for a job completed without dispatch, set at completion).
  uint64_t queue_wait_us() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_wait_us_;
  }
  /// Submit-to-completion microseconds (valid once done()).
  uint64_t total_us() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_us_;
  }

 private:
  friend class JobScheduler;

  /// Publish the outcome: a non-OK `error` wins over `result`. First
  /// completion wins; later calls are dropped.
  void Finish(Status error, rede::JobResult result, uint64_t queue_wait_us,
              uint64_t total_us) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (done_) return;
      done_ = true;
      error_ = std::move(error);
      result_ = std::move(result);
      queue_wait_us_ = queue_wait_us;
      total_us_ = total_us;
    }
    cv_.notify_all();
  }

  const std::string tenant_;
  const JobClass job_class_;
  CancelToken cancel_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Status error_;
  rede::JobResult result_;
  uint64_t queue_wait_us_ = 0;
  uint64_t total_us_ = 0;
};

using JobHandlePtr = std::shared_ptr<JobHandle>;

/// Counters plus per-class latency distributions, snapshotted by stats().
struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;   ///< admission-control refusals
  uint64_t completed = 0;  ///< finished with an OK executor status
  uint64_t failed = 0;     ///< finished with an error (incl. cancel/deadline)
  uint64_t cancelled = 0;  ///< subset of failed: token was cancelled
  struct PerClass {
    obs::HistogramSnapshot queue_wait_us;
    obs::HistogramSnapshot exec_us;
    obs::HistogramSnapshot total_us;  ///< submit -> completion
  };
  PerClass per_class[kNumJobClasses];
  /// Point-in-time view of one (tenant, class) flow's backlog: how many
  /// jobs sit queued (not yet dispatched) and how long the oldest has been
  /// waiting. Flows that have emptied still appear (depth 0, age 0) until
  /// the scheduler is destroyed — a flow that went quiet is a signal too.
  struct FlowStats {
    std::string tenant;
    JobClass job_class = JobClass::kAnalyticalScan;
    size_t queue_depth = 0;
    uint64_t oldest_queued_age_us = 0;
  };
  std::vector<FlowStats> flows;
};

/// The multi-tenant scheduler. One instance fronts one Executor (whose
/// Execute() is concurrency-safe); `execution_slots` worker threads drain
/// the queue in weighted-fair or FIFO order. Thread-safe.
///
/// The submitted Job (and the spec's sink) must outlive the job's
/// completion — hold them until Wait() returns or done() is true.
class JobScheduler {
 public:
  JobScheduler(rede::Executor* executor, SchedulerOptions options);
  ~JobScheduler();
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueue a job. Fails with kResourceExhausted when the queue is at
  /// max_queue_depth (admission control) or kAborted after Shutdown().
  StatusOr<JobHandlePtr> Submit(const rede::Job& job, JobSpec spec);

  /// Submit and block for the result (convenience).
  StatusOr<rede::JobResult> Run(const rede::Job& job, JobSpec spec = {});

  /// Stop accepting work, fail every queued job with kAborted, cancel
  /// nothing that is already running, and join all workers once running
  /// jobs drain. Idempotent; the destructor calls it.
  void Shutdown();

  SchedulerStats stats() const;
  size_t queued() const;
  size_t running() const;
  const SchedulerOptions& options() const { return options_; }

 private:
  struct QueuedJob {
    JobHandlePtr handle;
    const rede::Job* job = nullptr;
    rede::ResultSink sink;
    uint64_t seq = 0;           ///< global submission order (FIFO key)
    int64_t submit_us = 0;      ///< NowMicros at Submit
    double start_tag = 0.0;     ///< SFQ virtual start time
    double finish_tag = 0.0;    ///< SFQ virtual finish time
  };
  /// One (tenant, class) backlog: internally FIFO, tagged for SFQ.
  struct Flow {
    std::deque<QueuedJob> jobs;
    double last_finish_tag = 0.0;
  };

  void WorkerLoop();
  void TimerLoop();
  /// Pop the next job under `mutex_` (SFQ min-start-tag or FIFO min-seq).
  std::optional<QueuedJob> PickNextLocked();
  void FinishJob(QueuedJob& next, Status error, rede::JobResult result,
                 int64_t dispatch_us, bool executed);
  size_t IoTokensFor(JobClass job_class) const;
  double WeightFor(JobClass job_class) const;

  rede::Executor* executor_;
  SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  bool shutting_down_ = false;
  uint64_t next_seq_ = 0;
  size_t queued_jobs_ = 0;
  size_t running_jobs_ = 0;
  /// SFQ virtual clock: max start tag ever dispatched.
  double virtual_time_ = 0.0;
  std::map<std::pair<std::string, int>, Flow> flows_;

  /// Deadline timer: min-heap of (expiry_us, handle), serviced by one
  /// timer thread that flips expired handles' tokens.
  struct DeadlineEntry {
    int64_t expiry_us;
    std::weak_ptr<JobHandle> handle;
    bool operator>(const DeadlineEntry& other) const {
      return expiry_us > other.expiry_us;
    }
  };
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;
  std::condition_variable timer_cv_;

  /// Pooled disk-slot budget (nullptr when io_tokens == 0).
  std::unique_ptr<Semaphore> io_tokens_;

  /// Counters + always-on latency histograms (see obs/histogram.h).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cancelled_{0};
  struct PerClassHist {
    obs::LatencyHistogram queue_wait_us;
    obs::LatencyHistogram exec_us;
    obs::LatencyHistogram total_us;
  };
  PerClassHist per_class_[kNumJobClasses];

  std::vector<std::thread> workers_;
  std::thread timer_;
};

}  // namespace lakeharbor::sched
