#pragma once

#include <memory>
#include <string>
#include <utility>

/// \file status.h
/// Arrow/RocksDB-style error handling. All fallible public APIs in
/// LakeHarbor return Status (or StatusOr<T>) rather than throwing.

namespace lakeharbor {

/// Error taxonomy for the whole library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIoError = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kOutOfRange = 7,
  kAborted = 8,
  kInternal = 9,
  kResourceExhausted = 10,
  kUnavailable = 11,
  kDeadlineExceeded = 12,
};

/// Returns a stable human-readable name ("IOError", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Transient/permanent classification of the taxonomy. Retryable codes are
/// the ones real storage and network layers emit for conditions that a
/// bounded retry with backoff can outlast: a device hiccup (kIoError), a
/// node or link that is temporarily down (kUnavailable), or an exhausted
/// quota/queue (kResourceExhausted). Everything else — corruption, bad
/// arguments, aborted protocols — is permanent and must fail fast.
bool StatusCodeIsRetryable(StatusCode code);

/// A Status holds either success (ok) or an error code plus message.
/// The ok state is represented by a null pimpl so that returning OK is free.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// True when the error is transient (kIoError / kUnavailable /
  /// kResourceExhausted) and a bounded retry is a sensible reaction.
  bool IsRetryable() const { return StatusCodeIsRetryable(code()); }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `prefix + ": "` prepended to the
  /// message (no-op when ok). Useful for adding call-site context.
  Status WithContext(const std::string& prefix) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status cheap to copy; statuses are immutable.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace lakeharbor
