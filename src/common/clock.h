#pragma once

#include <chrono>
#include <cstdint>

namespace lakeharbor {

/// Monotonic wall-clock helpers used by benchmarks and executor metrics.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple stopwatch over the steady clock.
class StopWatch {
 public:
  StopWatch() : start_(NowMicros()) {}
  void Reset() { start_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_;
};

}  // namespace lakeharbor
