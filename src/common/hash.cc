#include "common/hash.h"

namespace lakeharbor {

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashInt64(int64_t key) { return Mix64(static_cast<uint64_t>(key)); }

}  // namespace lakeharbor
