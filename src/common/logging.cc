#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/clock.h"

namespace lakeharbor {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
/// Flips on the first explicit SetLevel: code wins over the environment.
std::atomic<bool> g_level_explicit{false};
std::mutex g_mutex;
/// Zero of the per-line monotonic timestamps: first logger touch.
const int64_t g_log_epoch_us = NowMicros();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// One-time LH_LOG_LEVEL=debug|info|warn|error pickup, so any binary's
/// verbosity is switchable without a rebuild or a flag. Unknown values are
/// ignored (the compiled-in default stays).
void InitLevelFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("LH_LOG_LEVEL");
    if (env == nullptr || g_level_explicit.load(std::memory_order_relaxed)) {
      return;
    }
    int level = -1;
    if (std::strcmp(env, "debug") == 0) {
      level = static_cast<int>(LogLevel::kDebug);
    } else if (std::strcmp(env, "info") == 0) {
      level = static_cast<int>(LogLevel::kInfo);
    } else if (std::strcmp(env, "warn") == 0) {
      level = static_cast<int>(LogLevel::kWarn);
    } else if (std::strcmp(env, "error") == 0) {
      level = static_cast<int>(LogLevel::kError);
    }
    if (level >= 0) g_level.store(level, std::memory_order_relaxed);
  });
}

/// Short stable id of the calling thread (hash folded to 4 hex digits —
/// for correlating interleaved lines, not for identification).
unsigned ThreadTag() {
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<unsigned>(h & 0xffff);
}
}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level_explicit.store(true, std::memory_order_relaxed);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  InitLevelFromEnvOnce();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& msg) {
  InitLevelFromEnvOnce();
  const int64_t elapsed_us = NowMicros() - g_log_epoch_us;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%10.6f %04x %s] %s\n",
               static_cast<double>(elapsed_us) / 1e6, ThreadTag(),
               LevelName(level), msg.c_str());
}

}  // namespace lakeharbor
