#pragma once

#include <cstring>
#include <string>
#include <string_view>

namespace lakeharbor {

/// A non-owning view over a byte range (RocksDB-style). Thin wrapper around
/// std::string_view that adds the couple of helpers the storage layer wants.
class Slice {
 public:
  Slice() = default;
  Slice(const char* data, size_t size) : view_(data, size) {}
  Slice(const std::string& s) : view_(s) {}              // NOLINT implicit
  Slice(const char* cstr) : view_(cstr) {}               // NOLINT implicit
  Slice(std::string_view v) : view_(v) {}                // NOLINT implicit

  const char* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  char operator[](size_t i) const { return view_[i]; }

  std::string ToString() const { return std::string(view_); }
  std::string_view view() const { return view_; }

  /// Drop the first n bytes (n must be <= size()).
  void RemovePrefix(size_t n) { view_.remove_prefix(n); }

  bool StartsWith(Slice prefix) const {
    return view_.substr(0, prefix.size()) == prefix.view_;
  }

  int Compare(Slice other) const { return view_.compare(other.view_); }

  friend bool operator==(Slice a, Slice b) { return a.view_ == b.view_; }
  friend bool operator!=(Slice a, Slice b) { return a.view_ != b.view_; }
  friend bool operator<(Slice a, Slice b) { return a.view_ < b.view_; }

 private:
  std::string_view view_;
};

}  // namespace lakeharbor
