#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace lakeharbor {

/// 64-bit FNV-1a over arbitrary bytes. Deterministic across platforms, used
/// for hash partitioning so that data placement is reproducible.
uint64_t Fnv1a64(Slice data);

/// splitmix64 finalizer — cheap integer mixing for numeric keys.
uint64_t Mix64(uint64_t x);

/// Hash of a signed integer key (two's-complement bytes, mixed).
uint64_t HashInt64(int64_t key);

}  // namespace lakeharbor
