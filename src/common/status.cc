#include "common/status.h"

namespace lakeharbor {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool StatusCodeIsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& prefix) const {
  if (ok()) return *this;
  return Status(code(), prefix + ": " + message());
}

}  // namespace lakeharbor
