#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

/// \file string_util.h
/// Delimited-text helpers. Records in LakeHarbor are raw bytes and all the
/// shipped datasets (TPC-H, insurance claims) are delimited text, so these
/// small parsers are the substrate of every schema-on-read Interpreter.

namespace lakeharbor {

/// Split `s` on `delim`. Keeps empty fields ("a||b" -> {"a","","b"}).
std::vector<std::string_view> SplitView(std::string_view s, char delim);

/// Split into owned strings.
std::vector<std::string> Split(std::string_view s, char delim);

/// Return the i-th delimited field of `s` without materializing a vector.
/// Returns empty view when there are fewer than i+1 fields.
std::string_view FieldAt(std::string_view s, char delim, size_t i);

/// Count of delimited fields in `s` (empty string -> 1 field).
size_t FieldCount(std::string_view s, char delim);

/// Join with delimiter.
std::string Join(const std::vector<std::string>& parts, char delim);

/// Strict integer parse of the full string.
StatusOr<int64_t> ParseInt64(std::string_view s);

/// Strict floating-point parse of the full string.
StatusOr<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True when `value` starts with `prefix`.
bool StartsWith(std::string_view value, std::string_view prefix);

}  // namespace lakeharbor
