#pragma once

#include <cstdio>
#include <cstdlib>

/// \file macros.h
/// Invariant-checking macros for programmer errors. Recoverable failures use
/// Status/StatusOr instead; a failed CHECK aborts the process.

#define LH_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                               \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define LH_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond, msg,  \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define LH_DCHECK(cond) LH_CHECK(cond)
#else
#define LH_DCHECK(cond) \
  do {                  \
  } while (0)
#endif

/// Propagate a non-ok Status from an expression returning Status.
#define LH_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::lakeharbor::Status _st = (expr);         \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluate an expression returning StatusOr<T>; on error return the Status,
/// otherwise bind the value to `lhs`.
#define LH_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                             \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()

#define LH_CONCAT_INNER(a, b) a##b
#define LH_CONCAT(a, b) LH_CONCAT_INNER(a, b)

#define LH_ASSIGN_OR_RETURN(lhs, rexpr) \
  LH_ASSIGN_OR_RETURN_IMPL(LH_CONCAT(_status_or_, __LINE__), lhs, rexpr)

#define LH_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;         \
  TypeName& operator=(const TypeName&) = delete
