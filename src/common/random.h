#pragma once

#include <cstdint>
#include <string>

#include "common/macros.h"

namespace lakeharbor {

/// Deterministic xoshiro256**-based PRNG. Used by the data generators so
/// that datasets (and therefore experiment results) are reproducible from a
/// seed alone, independent of the standard library implementation.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // seed via splitmix64 so that nearby seeds give unrelated streams.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    LH_DCHECK(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    LH_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random uppercase-alphanumeric string of length n.
  std::string NextString(size_t n) {
    static const char kAlphabet[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(kAlphabet[Uniform(36)]);
    return out;
  }

  /// Zipf-like skewed pick in [0, n) via the inverse transform of the
  /// continuous density p(x) ~ x^{-theta} on [1, n+1). Cheap approximation,
  /// good enough for skewed foreign-key popularity in synthetic workloads.
  uint64_t Skewed(uint64_t n, double theta = 0.99) {
    LH_DCHECK(n > 0);
    if (theta >= 1.0) theta = 0.999;  // avoid the log-form special case
    const double u = NextDouble();
    const double a = 1.0 - theta;
    const double lo = 1.0, hi = static_cast<double>(n) + 1.0;
    const double num = u * (PowA(hi, a) - PowA(lo, a)) + PowA(lo, a);
    const double x = PowA(num, 1.0 / a);
    const uint64_t idx = static_cast<uint64_t>(x) - 1;
    return idx >= n ? n - 1 : idx;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double PowA(double base, double exp) {
    return __builtin_pow(base, exp);
  }

  uint64_t s_[4];
};

}  // namespace lakeharbor
