#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

/// \file json.h
/// A minimal JSON document model and parser, built as the substrate for the
/// FHIR-style nested records of §IV ("FHIR has a similar design to the
/// Japanese insurance claims format, employing the nested record
/// organization"). Schema-on-read Interpreters walk these documents the
/// same way the claims Interpreters walk the IR/RE/... sub-records.
///
/// Supported: objects, arrays, strings (with escapes incl. \uXXXX basic
/// multilingual plane), numbers (double), booleans, null. Input must be a
/// single complete document; trailing garbage is an error.

namespace lakeharbor {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json MakeBool(bool b);
  static Json MakeNumber(double v);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Typed accessors; calling the wrong one aborts (programmer error).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Json>& AsArray() const;
  const std::map<std::string, Json>& AsObject() const;

  /// Object field lookup; returns null when absent or not an object.
  const Json* Find(const std::string& key) const;
  /// Dotted-path lookup across nested objects ("code.coding").
  const Json* FindPath(const std::string& dotted_path) const;

  /// Mutators (builder-style).
  void Append(Json value);                      // arrays
  void Set(const std::string& key, Json value); // objects

  /// Serialize (stable field order: std::map). Not pretty-printed.
  std::string Dump() const;

  /// Parse one complete document.
  static StatusOr<Json> Parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace lakeharbor
