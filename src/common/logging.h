#pragma once

#include <sstream>
#include <string>

namespace lakeharbor {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal thread-safe logger writing to stderr. Verbosity is a process-wide
/// setting; tests default it to kWarn to keep output quiet.
///
/// At startup the level is picked up once from the LH_LOG_LEVEL environment
/// variable (debug|info|warn|error; anything else is ignored); an explicit
/// SetLevel always wins over the environment. Each line is prefixed with a
/// monotonic seconds-since-start timestamp and a short thread tag:
///   [  1.042317 9f3a INFO] message
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  static void Log(LogLevel level, const std::string& msg);
};

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define LH_LOG(level)                                                 \
  if (::lakeharbor::LogLevel::level >= ::lakeharbor::Logger::GetLevel()) \
  ::lakeharbor::internal::LogMessage(::lakeharbor::LogLevel::level).stream()

#define LH_LOG_DEBUG LH_LOG(kDebug)
#define LH_LOG_INFO LH_LOG(kInfo)
#define LH_LOG_WARN LH_LOG(kWarn)
#define LH_LOG_ERROR LH_LOG(kError)

}  // namespace lakeharbor
