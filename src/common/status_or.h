#pragma once

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace lakeharbor {

/// StatusOr<T> holds either a value of T or a non-ok Status.
/// Accessing value() on an error aborts (programmer error); callers must
/// check ok() or use LH_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value.
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from error Status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    LH_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const& { return status_; }

  const T& value() const& {
    LH_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    LH_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    LH_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `alt` when this holds an error.
  T value_or(T alt) const& { return ok() ? *value_ : std::move(alt); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lakeharbor
