#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/cancel.h"
#include "common/hash.h"
#include "common/status.h"

/// \file retry.h
/// Bounded retry with exponential backoff for transient failures
/// (Status::IsRetryable). Shared by the executors (per-task Dereferencer
/// retry), statistics builders (per-partition scan retry), and anything
/// else that talks to the fallible simulated devices.

namespace lakeharbor {

/// Knobs of one retry loop. The default policy performs NO retries — every
/// caller keeps today's fail-fast semantics unless it opts in — so turning
/// retries on is always an explicit decision (and the fault-tolerance bench
/// sweeps both sides of it).
struct RetryPolicy {
  /// Retries beyond the first attempt (0 = fail fast on the first error).
  size_t max_retries = 0;
  /// Backoff before the first retry.
  uint64_t backoff_initial_us = 100;
  /// Growth factor of successive backoffs (exponential backoff).
  double backoff_multiplier = 2.0;
  /// Upper bound on a single backoff sleep.
  uint64_t backoff_max_us = 5000;
  /// Jitter fraction in [0, 1]: each backoff is scaled by a deterministic
  /// per-(seed, retry) factor drawn from [1 - jitter, 1]. 0 keeps the exact
  /// classic ladder. Concurrent jobs hammering the same faulty node pass
  /// distinct seeds (job id ⊕ node ⊕ attempt) so their retries de-sync
  /// instead of storming the device in lockstep — while a fixed
  /// `deterministic_seed` still reproduces the same schedule run-to-run.
  double jitter = 0.0;

  bool enabled() const { return max_retries > 0; }

  /// Backoff before retry number `retry_index` (1-based):
  /// min(backoff_max_us, backoff_initial_us * multiplier^(retry_index-1)).
  uint64_t BackoffUs(size_t retry_index) const {
    double us = static_cast<double>(backoff_initial_us);
    for (size_t i = 1; i < retry_index; ++i) {
      us *= backoff_multiplier;
      if (us >= static_cast<double>(backoff_max_us)) break;
    }
    if (us >= static_cast<double>(backoff_max_us)) return backoff_max_us;
    return static_cast<uint64_t>(us);
  }

  /// BackoffUs with the deterministic jitter applied. `seed` identifies the
  /// retrying context (job ⊕ node ⊕ task); two contexts with different
  /// seeds land on different points of the [1 - jitter, 1] band, so their
  /// ladders diverge from the very first retry.
  uint64_t JitteredBackoffUs(size_t retry_index, uint64_t seed) const {
    const uint64_t base = BackoffUs(retry_index);
    if (jitter <= 0.0 || base == 0) return base;
    const uint64_t bits = Mix64(seed ^ (0x9e3779b97f4a7c15ULL *
                                        static_cast<uint64_t>(retry_index)));
    // 53 mantissa bits -> uniform double in [0, 1).
    const double unit = static_cast<double>(bits >> 11) *
                        (1.0 / 9007199254740992.0);
    const double factor = 1.0 - jitter * unit;
    const double us = static_cast<double>(base) * factor;
    return us < 1.0 ? 1 : static_cast<uint64_t>(us);
  }
};

/// Called before each backoff sleep with the 1-based retry index and the
/// backoff about to be slept — metrics hooks.
using RetryObserver = std::function<void(size_t retry_index,
                                         uint64_t backoff_us)>;

/// Run `op` (a callable returning Status) under `policy`: retryable errors
/// are retried up to policy.max_retries times with exponential backoff;
/// permanent errors and exhausted retries surface immediately. An exhausted
/// retryable error keeps its original code and message, prefixed with the
/// attempt count for context.
///
/// When `cancel` is non-null the backoff waits on the token instead of an
/// unconditional sleep_for: a cancelled job stops within one backoff
/// quantum, returning the token's cause. `jitter_seed` feeds
/// JitteredBackoffUs (ignored when policy.jitter == 0).
template <typename Op>
Status RunWithRetry(const RetryPolicy& policy, Op&& op,
                    const RetryObserver& observe = nullptr,
                    CancelToken* cancel = nullptr,
                    uint64_t jitter_seed = 0) {
  size_t attempt = 0;
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) return cancel->cause();
    Status status = op();
    if (status.ok() || !status.IsRetryable()) return status;
    if (attempt >= policy.max_retries) {
      return attempt == 0
                 ? status
                 : status.WithContext("after " + std::to_string(attempt + 1) +
                                      " attempts");
    }
    ++attempt;
    const uint64_t backoff_us = policy.JitteredBackoffUs(attempt, jitter_seed);
    if (observe) observe(attempt, backoff_us);
    if (backoff_us > 0) {
      if (cancel != nullptr) {
        if (cancel->WaitFor(backoff_us)) return cancel->cause();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
    }
  }
}

}  // namespace lakeharbor
