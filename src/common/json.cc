#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace lakeharbor {

Json Json::MakeBool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::MakeNumber(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  LH_CHECK_MSG(is_bool(), "json value is not a bool");
  return bool_;
}

double Json::AsNumber() const {
  LH_CHECK_MSG(is_number(), "json value is not a number");
  return number_;
}

const std::string& Json::AsString() const {
  LH_CHECK_MSG(is_string(), "json value is not a string");
  return string_;
}

const std::vector<Json>& Json::AsArray() const {
  LH_CHECK_MSG(is_array(), "json value is not an array");
  return array_;
}

const std::map<std::string, Json>& Json::AsObject() const {
  LH_CHECK_MSG(is_object(), "json value is not an object");
  return object_;
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const Json* Json::FindPath(const std::string& dotted_path) const {
  const Json* current = this;
  size_t start = 0;
  while (current != nullptr && start <= dotted_path.size()) {
    size_t dot = dotted_path.find('.', start);
    std::string key = dot == std::string::npos
                          ? dotted_path.substr(start)
                          : dotted_path.substr(start, dot - start);
    current = current->Find(key);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return current;
}

void Json::Append(Json value) {
  LH_CHECK_MSG(is_array(), "Append on non-array json value");
  array_.push_back(std::move(value));
}

void Json::Set(const std::string& key, Json value) {
  LH_CHECK_MSG(is_object(), "Set on non-object json value");
  object_[key] = std::move(value);
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpInto(const Json& value, std::string* out);

void DumpNumber(double v, std::string* out) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

void DumpInto(const Json& value, std::string* out) {
  switch (value.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += value.AsBool() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      DumpNumber(value.AsNumber(), out);
      break;
    case Json::Type::kString:
      EscapeInto(value.AsString(), out);
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : value.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        DumpInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, item] : value.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        DumpInto(item, out);
      }
      out->push_back('}');
      break;
    }
  }
}

/// Recursive-descent parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    LH_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::Corruption("json parse error at offset " +
                              std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    StatusOr<Json> result = [&]() -> StatusOr<Json> {
      switch (text_[pos_]) {
        case '{':
          return ParseObject();
        case '[':
          return ParseArray();
        case '"':
          return ParseString();
        case 't':
        case 'f':
          return ParseBool();
        case 'n':
          return ParseNull();
        default:
          return ParseNumber();
      }
    }();
    --depth_;
    return result;
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // '{'
    Json object = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      LH_ASSIGN_OR_RETURN(Json key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      LH_ASSIGN_OR_RETURN(Json value, ParseValue());
      object.Set(key.AsString(), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // '['
    Json array = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      LH_ASSIGN_OR_RETURN(Json value, ParseValue());
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<Json> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Json::MakeString(std::move(out));
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("bad escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            // Encode the BMP code point as UTF-8 (surrogates unsupported).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  StatusOr<Json> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Json::MakeBool(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Json::MakeBool(false);
    }
    return Error("bad literal");
  }

  StatusOr<Json> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Json();
    }
    return Error("bad literal");
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char buf[64];
    size_t len = pos_ - start;
    if (len >= sizeof(buf)) return Error("number too long");
    std::memcpy(buf, text_.data() + start, len);
    buf[len] = '\0';
    char* end = nullptr;
    double v = std::strtod(buf, &end);
    if (end != buf + len) return Error("bad number");
    return Json::MakeNumber(v);
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpInto(*this, &out);
  return out;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace lakeharbor
