#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lakeharbor {

std::vector<std::string_view> SplitView(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (auto v : SplitView(s, delim)) out.emplace_back(v);
  return out;
}

std::string_view FieldAt(std::string_view s, char delim, size_t i) {
  size_t start = 0;
  for (size_t field = 0;; ++field) {
    size_t pos = s.find(delim, start);
    if (field == i) {
      return pos == std::string_view::npos ? s.substr(start)
                                           : s.substr(start, pos - start);
    }
    if (pos == std::string_view::npos) return {};
    start = pos + 1;
  }
}

size_t FieldCount(std::string_view s, char delim) {
  size_t n = 1;
  for (char c : s) {
    if (c == delim) ++n;
  }
  return n;
}

std::string Join(const std::vector<std::string>& parts, char delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(delim);
    out += parts[i];
  }
  return out;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  // strtoll needs a NUL terminator; copy into a small buffer.
  char buf[32];
  if (s.size() >= sizeof(buf)) {
    return Status::InvalidArgument("integer field too long: " +
                                   std::string(s));
  }
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) {
    return Status::InvalidArgument("bad integer field: " + std::string(s));
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty double field");
  char buf[64];
  if (s.size() >= sizeof(buf)) {
    return Status::InvalidArgument("double field too long: " +
                                   std::string(s));
  }
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) {
    return Status::InvalidArgument("bad double field: " + std::string(s));
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view value, std::string_view prefix) {
  return value.substr(0, prefix.size()) == prefix;
}

}  // namespace lakeharbor
