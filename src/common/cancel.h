#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/status.h"

/// \file cancel.h
/// Cooperative cancellation for multi-threaded runs. One CancelToken is
/// shared by every task of a run; the first permanent error or deadline
/// expiry flips it, and everything that checks it afterwards drains without
/// doing work. Tokens never force-kill threads — cancellation is observed
/// at task boundaries, which is what keeps in-flight accounting exact.

namespace lakeharbor {

/// First-cause-wins cancellation flag. `cancelled()` is a cheap atomic
/// check suitable for hot loops; the cause is stored under a mutex so the
/// Status (a shared_ptr) is published safely. `WaitFor` makes backoff
/// sleeps interruptible: a cancelled job never drains a full sleep_for.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation with a non-OK `cause`. The first caller wins and
  /// gets `true`; later causes are dropped (the root cause is what the run
  /// reports).
  bool Cancel(Status cause) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cancelled_.load(std::memory_order_relaxed)) return false;
      cause_ = std::move(cause);
      cancelled_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    return true;
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The winning cause, or OK when not cancelled.
  Status cause() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cause_;
  }

  /// Block for up to `timeout_us` microseconds or until the token is
  /// cancelled, whichever comes first. Returns true when the token is
  /// cancelled (the wait was interrupted), false when the full timeout
  /// elapsed. This is the interruptible replacement for backoff
  /// `sleep_for`s: retry ladders wake immediately on cancellation.
  bool WaitFor(uint64_t timeout_us) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
      return cancelled_.load(std::memory_order_relaxed);
    });
  }

  /// Re-arm for a new run (callers must guarantee quiescence).
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    cause_ = Status::OK();
    cancelled_.store(false, std::memory_order_release);
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> cancelled_{false};
  Status cause_;
};

}  // namespace lakeharbor
