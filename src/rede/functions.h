#pragma once

#include <functional>
#include <string>

#include "common/status_or.h"
#include "common/string_util.h"
#include "io/record.h"
#include "rede/tuple.h"

namespace lakeharbor::rede {

/// An Interpreter "interprets a given record with schema-on-read" (§III-B):
/// raw record bytes in, extracted key bytes out. Interpreters are the only
/// place schemas exist in a ReDe job — the engine itself is schema-free.
using Interpreter =
    std::function<StatusOr<std::string>(const io::Record& record)>;

/// A Filter interprets the *bundle* with schema-on-read and drops tuples
/// whose condition does not match (attached to Dereferencers, §III-B).
using Filter = std::function<StatusOr<bool>(const Tuple& tuple)>;

/// Interpreter for '|'-delimited text (the TPC-H table encoding): extracts
/// field `field_index`.
inline Interpreter DelimitedFieldInterpreter(size_t field_index,
                                             char delim = '|') {
  return [field_index, delim](const io::Record& record)
             -> StatusOr<std::string> {
    std::string_view field =
        FieldAt(record.slice().view(), delim, field_index);
    if (field.empty() && FieldCount(record.slice().view(), delim) <=
                             field_index) {
      return Status::InvalidArgument("record has no field " +
                                     std::to_string(field_index));
    }
    return std::string(field);
  };
}

/// Interpreter for '|'-delimited text whose extracted field is an integer,
/// returned in the order-preserving key encoding — the common case when the
/// pointed-at file is keyed by an integer primary key.
Interpreter EncodedInt64FieldInterpreter(size_t field_index, char delim = '|');

/// Filter accepting every tuple (the default when none is supplied).
inline Filter AcceptAllFilter() {
  return [](const Tuple&) -> StatusOr<bool> { return true; };
}

/// Filter comparing two interpreted keys drawn from two bundle positions
/// (cross-record join predicates such as `c_nationkey = s_nationkey`).
inline Filter BundleEqualityFilter(size_t index_a, Interpreter interp_a,
                                   size_t index_b, Interpreter interp_b) {
  return [=](const Tuple& tuple) -> StatusOr<bool> {
    if (index_a >= tuple.records.size() || index_b >= tuple.records.size()) {
      return Status::InvalidArgument("bundle index out of range in filter");
    }
    LH_ASSIGN_OR_RETURN(std::string a, interp_a(tuple.records[index_a]));
    LH_ASSIGN_OR_RETURN(std::string b, interp_b(tuple.records[index_b]));
    return a == b;
  };
}

/// Filter testing an interpreted key of the newest bundle record against an
/// inclusive range.
inline Filter LastRecordRangeFilter(Interpreter interp, std::string lo,
                                    std::string hi) {
  return [=](const Tuple& tuple) -> StatusOr<bool> {
    if (tuple.records.empty()) {
      return Status::InvalidArgument("range filter on empty bundle");
    }
    LH_ASSIGN_OR_RETURN(std::string key, interp(tuple.last_record()));
    return lo <= key && key <= hi;
  };
}

/// Filter testing an interpreted key of the newest bundle record for
/// equality with a constant (e.g. `r_name = 'ASIA'`).
inline Filter LastRecordEqualsFilter(Interpreter interp, std::string value) {
  return [=](const Tuple& tuple) -> StatusOr<bool> {
    if (tuple.records.empty()) {
      return Status::InvalidArgument("equality filter on empty bundle");
    }
    LH_ASSIGN_OR_RETURN(std::string key, interp(tuple.last_record()));
    return key == value;
  };
}

}  // namespace lakeharbor::rede
