#include "rede/functions.h"

#include "io/key_codec.h"

namespace lakeharbor::rede {

Interpreter EncodedInt64FieldInterpreter(size_t field_index, char delim) {
  return [field_index, delim](const io::Record& record)
             -> StatusOr<std::string> {
    LH_ASSIGN_OR_RETURN(
        int64_t value,
        ParseInt64(FieldAt(record.slice().view(), delim, field_index)));
    return io::EncodeInt64Key(value);
  };
}

}  // namespace lakeharbor::rede
