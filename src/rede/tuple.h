#pragma once

#include <string>
#include <vector>

#include "io/pointer.h"
#include "io/record.h"

namespace lakeharbor::rede {

/// The unit of data flowing between stages of a ReDe job.
///
/// `records` is the *bundle*: the records joined so far, in stage order —
/// what "SELECT *" ultimately returns. Referencers read any bundle element
/// (cross-record predicates like `c_nationkey = s_nationkey` need earlier
/// join partners); Dereferencers append the records they fetch.
///
/// `pointer` (plus `pointer_hi` for ranges) is the pending pointer the next
/// Dereferencer resolves. `resolve_local` is Algorithm 1's SETPARTITION(
/// input, LOCAL): this copy of a broadcast tuple must be resolved against
/// the receiving node's local partitions only.
struct Tuple {
  std::vector<io::Record> records;
  io::Pointer pointer;
  io::Pointer pointer_hi;
  bool is_range = false;
  bool resolve_local = false;

  /// Point-lookup tuple (empty bundle) for job initial inputs.
  static Tuple Point(io::Pointer ptr) {
    Tuple t;
    t.pointer = std::move(ptr);
    return t;
  }

  /// Range tuple [lo, hi] (empty bundle) for job initial inputs. Range
  /// pointers without partition information are resolved on every node's
  /// local partitions (the local-secondary-index scan of Fig 7's setup).
  static Tuple Range(io::Pointer lo, io::Pointer hi) {
    Tuple t;
    t.pointer = std::move(lo);
    t.pointer_hi = std::move(hi);
    t.is_range = true;
    return t;
  }

  /// The most recently appended record. Bundle must be non-empty.
  const io::Record& last_record() const { return records.back(); }
};

}  // namespace lakeharbor::rede
