#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/pointer.h"
#include "io/record.h"

namespace lakeharbor::rede {

/// The unit of data flowing between stages of a ReDe job.
///
/// `records` is the *bundle*: the records joined so far, in stage order —
/// what "SELECT *" ultimately returns. Referencers read any bundle element
/// (cross-record predicates like `c_nationkey = s_nationkey` need earlier
/// join partners); Dereferencers append the records they fetch.
///
/// `pointer` (plus `pointer_hi` for ranges) is the pending pointer the next
/// Dereferencer resolves. `resolve_local` is Algorithm 1's SETPARTITION(
/// input, LOCAL): this copy of a broadcast tuple must be resolved against
/// the receiving node's local partitions only.
struct Tuple {
  /// Sentinel for `resolve_owner`: resolve against the receiving node's own
  /// local partitions (the normal broadcast case).
  static constexpr uint32_t kResolveOnSelf = UINT32_MAX;

  std::vector<io::Record> records;
  io::Pointer pointer;
  io::Pointer pointer_hi;
  bool is_range = false;
  bool resolve_local = false;
  /// Which node's local partitions a resolve_local copy consults. Normally
  /// kResolveOnSelf; a broadcast copy REDIRECTED because its target node
  /// was down carries the down node's id — the node that kept the copy then
  /// resolves the down node's partitions on its behalf, reading them via
  /// replica failover. Static ownership (primary holder, or its designated
  /// stand-in) is what keeps broadcast coverage exact under outages.
  uint32_t resolve_owner = kResolveOnSelf;
  /// Placement epoch stamped by the executor at fan-out (the value of
  /// Cluster::placement_epoch() when the tuple was created). Broadcast
  /// ownership is resolved against this epoch's placement snapshot, so
  /// every node of one job agrees on partition ownership even when a
  /// rebalance commit races the run. UINT64_MAX (io::kEpochCurrent) means
  /// "resolve against the live placement" — the default for direct stage
  /// calls outside an executor.
  uint64_t resolve_epoch = UINT64_MAX;

  /// Point-lookup tuple (empty bundle) for job initial inputs.
  static Tuple Point(io::Pointer ptr) {
    Tuple t;
    t.pointer = std::move(ptr);
    return t;
  }

  /// Range tuple [lo, hi] (empty bundle) for job initial inputs. Range
  /// pointers without partition information are resolved on every node's
  /// local partitions (the local-secondary-index scan of Fig 7's setup).
  static Tuple Range(io::Pointer lo, io::Pointer hi) {
    Tuple t;
    t.pointer = std::move(lo);
    t.pointer_hi = std::move(hi);
    t.is_range = true;
    return t;
  }

  /// The most recently appended record. Bundle must be non-empty.
  const io::Record& last_record() const { return records.back(); }
};

}  // namespace lakeharbor::rede
