#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/histogram.h"

namespace lakeharbor::rede {

/// Per-stage counters (invocations of the stage function and tuples it
/// emitted). Sized once per run; elements are stable in memory.
struct StageCounters {
  std::atomic<uint64_t> invocations{0};
  std::atomic<uint64_t> emitted{0};
};

/// Executor-side counters, independent of the device-level sim counters.
/// `peak_parallel_derefs` is the headline SMPE observable: how many
/// fine-grained I/O tasks were genuinely in flight at once.
struct ExecMetricsCounters {
  std::atomic<uint64_t> ref_invocations{0};
  std::atomic<uint64_t> deref_invocations{0};
  std::atomic<uint64_t> tuples_emitted{0};
  std::atomic<uint64_t> broadcasts{0};
  std::atomic<uint64_t> output_tuples{0};
  std::atomic<int64_t> active_derefs{0};
  std::atomic<int64_t> peak_parallel_derefs{0};
  /// Retry/backoff accounting (per-task Dereferencer retries on retryable
  /// statuses; see RetryPolicy).
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> retry_backoff_us{0};
  /// Tasks abandoned because the run failed: the task whose error was
  /// recorded plus tasks drained without executing during fail-fast.
  std::atomic<uint64_t> tasks_dropped_on_failure{0};
  /// Dereference batching: fused ExecuteBatch dispatches and the pointers
  /// they carried (singleton tasks are not counted as batches).
  std::atomic<uint64_t> deref_batches{0};
  std::atomic<uint64_t> deref_batched_pointers{0};
  /// Record-cache activity attributed to this run. Counted at the cache
  /// call sites (builtin_derefs.cc) directly into the run's own counters:
  /// every Lookup hit/miss, committed admission (with the evictions its
  /// insert displaced, via RecordCache::AdmissionOutcome) and call-site
  /// Invalidate is charged to the job that performed it. Per-job exact by
  /// construction — concurrent runs on one executor share the cache but
  /// never each other's counters, and summing these fields across all jobs
  /// of a cache reproduces its global monotonic counters exactly (asserted
  /// by tests/sched_test.cc). This replaced the old snapshot-the-cache-
  /// around-Execute delta scheme, whose per-job split broke under overlap.
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> cache_admissions{0};
  std::atomic<uint64_t> cache_evictions{0};
  std::atomic<uint64_t> cache_invalidations{0};
  /// Replica failover/hedging accounting. `failovers` counts replicas a
  /// read moved past (skipped as known-down, or answered kUnavailable);
  /// `replica_reads` counts reads actually issued against a non-primary
  /// replica; `hedged_reads` counts hedge timers that fired (a second
  /// request raced another replica) and `hedge_wins` the races the hedge
  /// won; `broadcast_redirects` counts broadcast copies re-homed because
  /// their target node was down.
  std::atomic<uint64_t> failovers{0};
  std::atomic<uint64_t> replica_reads{0};
  std::atomic<uint64_t> hedged_reads{0};
  std::atomic<uint64_t> hedge_wins{0};
  std::atomic<uint64_t> broadcast_redirects{0};
  /// Latency/value distributions (log-scale, fixed buckets — see
  /// obs/histogram.h). Always on: Record() is an inline clz plus relaxed
  /// atomic increments, cheap enough for the hot path, and replaces the
  /// "sum-only" view (a mean hides exactly the tail that faults, hedging
  /// and failover exist to manage).
  obs::LatencyHistogram deref_latency_us;   ///< per Dereferencer attempt
  obs::LatencyHistogram queue_dwell_us;     ///< task enqueue -> dispatch
  obs::LatencyHistogram deref_batch_size;   ///< pointers per fused batch
  obs::LatencyHistogram retry_backoff_hist_us;  ///< per backoff sleep
  /// One slot per job stage; constructed by the executor at run start.
  std::vector<StageCounters> per_stage;

  void InitStages(size_t num_stages) {
    per_stage = std::vector<StageCounters>(num_stages);
  }
  void CountStage(size_t stage, uint64_t emitted) {
    if (stage >= per_stage.size()) return;
    per_stage[stage].invocations.fetch_add(1, std::memory_order_relaxed);
    per_stage[stage].emitted.fetch_add(emitted, std::memory_order_relaxed);
  }

  void EnterDeref() {
    int64_t now = active_derefs.fetch_add(1, std::memory_order_relaxed) + 1;
    int64_t peak = peak_parallel_derefs.load(std::memory_order_relaxed);
    while (now > peak && !peak_parallel_derefs.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void ExitDeref() { active_derefs.fetch_sub(1, std::memory_order_relaxed); }

  void Reset() {
    ref_invocations = 0;
    deref_invocations = 0;
    tuples_emitted = 0;
    broadcasts = 0;
    output_tuples = 0;
    active_derefs = 0;
    peak_parallel_derefs = 0;
    retries = 0;
    retry_backoff_us = 0;
    tasks_dropped_on_failure = 0;
    deref_batches = 0;
    deref_batched_pointers = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_admissions = 0;
    cache_evictions = 0;
    cache_invalidations = 0;
    failovers = 0;
    replica_reads = 0;
    hedged_reads = 0;
    hedge_wins = 0;
    broadcast_redirects = 0;
    deref_latency_us.Reset();
    queue_dwell_us.Reset();
    deref_batch_size.Reset();
    retry_backoff_hist_us.Reset();
    for (auto& stage : per_stage) {
      stage.invocations = 0;
      stage.emitted = 0;
    }
  }
};

/// Plain copyable per-stage snapshot.
struct StageSnapshot {
  uint64_t invocations = 0;
  uint64_t emitted = 0;
};

/// Plain copyable snapshot returned with job results.
struct MetricsSnapshot {
  /// Process-unique id of the run that produced this snapshot (see
  /// obs::NextJobId), so metrics, traces, and profiles correlate. All
  /// counters below — including cache_* — are exact per-job values even
  /// when runs overlap on one executor (see ExecMetricsCounters).
  uint64_t job_id = 0;
  uint64_t ref_invocations = 0;
  uint64_t deref_invocations = 0;
  uint64_t tuples_emitted = 0;
  uint64_t broadcasts = 0;
  uint64_t output_tuples = 0;
  int64_t peak_parallel_derefs = 0;
  uint64_t retries = 0;
  uint64_t retry_backoff_us = 0;
  uint64_t tasks_dropped_on_failure = 0;
  uint64_t deref_batches = 0;
  uint64_t deref_batched_pointers = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_admissions = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  uint64_t failovers = 0;
  uint64_t replica_reads = 0;
  uint64_t hedged_reads = 0;
  uint64_t hedge_wins = 0;
  uint64_t broadcast_redirects = 0;
  double wall_ms = 0.0;
  obs::HistogramSnapshot deref_latency_us;
  obs::HistogramSnapshot queue_dwell_us;
  obs::HistogramSnapshot deref_batch_size;
  obs::HistogramSnapshot retry_backoff_us_hist;
  std::vector<StageSnapshot> per_stage;

  /// Expected per-stage invocation counts in stage order — the profiler's
  /// reconciliation input (obs::ProfileInputs::stage_invocations).
  std::vector<uint64_t> StageInvocations() const {
    std::vector<uint64_t> counts;
    counts.reserve(per_stage.size());
    for (const StageSnapshot& stage : per_stage) {
      counts.push_back(stage.invocations);
    }
    return counts;
  }

  static MetricsSnapshot From(const ExecMetricsCounters& c, double wall_ms) {
    MetricsSnapshot s;
    s.ref_invocations = c.ref_invocations.load();
    s.deref_invocations = c.deref_invocations.load();
    s.tuples_emitted = c.tuples_emitted.load();
    s.broadcasts = c.broadcasts.load();
    s.output_tuples = c.output_tuples.load();
    s.peak_parallel_derefs = c.peak_parallel_derefs.load();
    s.retries = c.retries.load();
    s.retry_backoff_us = c.retry_backoff_us.load();
    s.tasks_dropped_on_failure = c.tasks_dropped_on_failure.load();
    s.deref_batches = c.deref_batches.load();
    s.deref_batched_pointers = c.deref_batched_pointers.load();
    s.cache_hits = c.cache_hits.load();
    s.cache_misses = c.cache_misses.load();
    s.cache_admissions = c.cache_admissions.load();
    s.cache_evictions = c.cache_evictions.load();
    s.cache_invalidations = c.cache_invalidations.load();
    s.failovers = c.failovers.load();
    s.replica_reads = c.replica_reads.load();
    s.hedged_reads = c.hedged_reads.load();
    s.hedge_wins = c.hedge_wins.load();
    s.broadcast_redirects = c.broadcast_redirects.load();
    s.wall_ms = wall_ms;
    s.deref_latency_us = c.deref_latency_us.Snapshot();
    s.queue_dwell_us = c.queue_dwell_us.Snapshot();
    s.deref_batch_size = c.deref_batch_size.Snapshot();
    s.retry_backoff_us_hist = c.retry_backoff_hist_us.Snapshot();
    s.per_stage.reserve(c.per_stage.size());
    for (const auto& stage : c.per_stage) {
      s.per_stage.push_back(
          StageSnapshot{stage.invocations.load(), stage.emitted.load()});
    }
    return s;
  }
};

}  // namespace lakeharbor::rede
