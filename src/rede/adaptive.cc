#include "rede/adaptive.h"

#include <algorithm>

namespace lakeharbor::rede {

const char* ActionToString(StructureRecommendation::Action action) {
  switch (action) {
    case StructureRecommendation::Action::kBuild:
      return "build";
    case StructureRecommendation::Action::kKeep:
      return "keep";
    case StructureRecommendation::Action::kDrop:
      return "drop";
  }
  return "?";
}

void AdaptiveStructureManager::DeclareCandidate(const std::string& base_file,
                                                const std::string& attribute,
                                                StructureCostInputs inputs,
                                                bool currently_built) {
  std::lock_guard<std::mutex> lock(mutex_);
  Candidate& candidate = candidates_[KeyOf(base_file, attribute)];
  candidate.inputs = inputs;
  candidate.built = currently_built;
}

void AdaptiveStructureManager::Observe(const AccessObservation& observation) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = candidates_.find(
      KeyOf(observation.base_file, observation.attribute));
  if (it == candidates_.end()) return;  // nobody declared this attribute
  it->second.window.push_back(observation);
  while (it->second.window.size() > options_.window) {
    it->second.window.pop_front();
  }
}

Status AdaptiveStructureManager::SetBuilt(const std::string& base_file,
                                          const std::string& attribute,
                                          bool built) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = candidates_.find(KeyOf(base_file, attribute));
  if (it == candidates_.end()) {
    return Status::NotFound("no declared candidate for " + base_file + "/" +
                            attribute);
  }
  it->second.built = built;
  return Status::OK();
}

double AdaptiveStructureManager::StructureQueryMs(
    const AccessObservation& observation) const {
  const sim::ClusterOptions& options = cluster_->options();
  const double concurrent_ios =
      static_cast<double>(cluster_->num_nodes()) *
      static_cast<double>(options.disk.io_slots == 0 ? 1
                                                     : options.disk.io_slots);
  const double io_ms =
      (static_cast<double>(options.disk.random_read_latency_us) +
       options_.per_io_overhead_us) /
      1000.0;
  return observation.matches * observation.ios_per_match * io_ms /
         concurrent_ios;
}

double AdaptiveStructureManager::ScanQueryMs(
    const AccessObservation& observation) const {
  const sim::ClusterOptions& options = cluster_->options();
  const double bandwidth_per_ms =
      static_cast<double>(options.disk.scan_bandwidth_bytes_per_sec) / 1000.0;
  return static_cast<double>(observation.scan_bytes) /
         (bandwidth_per_ms * cluster_->num_nodes());
}

double AdaptiveStructureManager::BuildCostMs(
    const StructureCostInputs& inputs) const {
  const sim::ClusterOptions& options = cluster_->options();
  const double bandwidth_per_ms =
      static_cast<double>(options.disk.scan_bandwidth_bytes_per_sec) / 1000.0;
  // One scan of the base data plus streaming the postings out (writes are
  // page-batched, so bandwidth-bound rather than IOPS-bound).
  const double scan_ms = static_cast<double>(inputs.base_bytes) /
                         (bandwidth_per_ms * cluster_->num_nodes());
  const double write_ms =
      static_cast<double>(inputs.base_records) * inputs.posting_bytes /
      (bandwidth_per_ms * cluster_->num_nodes());
  return scan_ms + write_ms;
}

std::vector<StructureRecommendation> AdaptiveStructureManager::Recommend()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StructureRecommendation> out;
  out.reserve(candidates_.size());
  for (const auto& [key, candidate] : candidates_) {
    size_t sep = key.find('\x1f');
    StructureRecommendation rec;
    rec.base_file = key.substr(0, sep);
    rec.attribute = key.substr(sep + 1);
    rec.build_cost_ms = BuildCostMs(candidate.inputs);
    rec.observations = candidate.window.size();
    for (const AccessObservation& obs : candidate.window) {
      // A structure only helps queries it would win; an optimizer falls
      // back to scans otherwise (see StructureAdvisor).
      double saving = ScanQueryMs(obs) - StructureQueryMs(obs);
      if (saving > 0) rec.window_saving_ms += saving;
    }
    if (candidate.built) {
      rec.action = rec.window_saving_ms <
                           rec.build_cost_ms * options_.drop_fraction
                       ? StructureRecommendation::Action::kDrop
                       : StructureRecommendation::Action::kKeep;
    } else {
      rec.action = rec.window_saving_ms >
                           rec.build_cost_ms * options_.payoff_factor
                       ? StructureRecommendation::Action::kBuild
                       : StructureRecommendation::Action::kKeep;
    }
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace lakeharbor::rede
