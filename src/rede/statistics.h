#pragma once

#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status_or.h"
#include "io/partitioned_file.h"

namespace lakeharbor::rede {

/// An equi-depth histogram over the key domain of a structure, built by
/// scanning the structure once (a real, charged pass — statistics are not
/// free). Used by the StructureAdvisor to estimate how many entries a key
/// range covers without probing at query time — one concrete step along
/// §V-A's "higher-level abstraction brings ... an opportunity for query
/// optimizations".
///
/// Buckets hold equal entry counts; a range estimate counts fully covered
/// buckets exactly and partially covered boundary buckets at half depth
/// (keys are opaque byte strings, so no intra-bucket interpolation).
class EquiDepthHistogram {
 public:
  /// Scan `index` and build `num_buckets` equi-depth buckets. Charges one
  /// sequential pass over every partition of the structure. Statistics
  /// builds are background maintenance, so a transient scan failure on one
  /// partition is retried per `retry` (the partial partition pass is
  /// discarded and re-scanned); the default policy keeps fail-fast.
  static StatusOr<EquiDepthHistogram> Build(io::PartitionedFile& index,
                                            size_t num_buckets,
                                            const RetryPolicy& retry = {});

  /// Estimated number of entries with lo <= key <= hi (inclusive).
  double EstimateMatches(const std::string& lo, const std::string& hi) const;

  /// Estimated fraction of all entries in [lo, hi].
  double EstimateSelectivity(const std::string& lo,
                             const std::string& hi) const;

  uint64_t total_entries() const { return total_; }
  size_t num_buckets() const { return upper_bounds_.size(); }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

 private:
  // Bucket i covers (upper_bounds_[i-1], upper_bounds_[i]] with depth_[i]
  // entries; the first bucket starts at min_key_.
  std::vector<std::string> upper_bounds_;
  std::vector<uint64_t> depths_;
  std::string min_key_;
  std::string max_key_;
  uint64_t total_ = 0;
};

}  // namespace lakeharbor::rede
