#pragma once

#include <string>
#include <vector>

#include "common/status_or.h"
#include "rede/stage_function.h"
#include "rede/tuple.h"

namespace lakeharbor::rede {

/// A ReDe job: an initial input plus the ordered list of Referencer and
/// Dereferencer functions (§III-B). "The order of funcs specifies data
/// dependencies, and funcs define structural information" (Algorithm 1).
///
/// Jobs are immutable once built and safe to execute concurrently.
class Job {
 public:
  const std::string& name() const { return name_; }
  const std::vector<StageFunctionPtr>& stages() const { return stages_; }
  const Tuple& initial_input() const { return initial_input_; }
  size_t num_stages() const { return stages_.size(); }

  /// Human-readable plan: one line per stage (kind, name, routing), plus
  /// the initial input. Pass a MetricsSnapshot from a finished run to annotate
  /// each stage with its invocation/emission counts.
  std::string Describe(const MetricsSnapshot* metrics = nullptr) const;

 private:
  friend class JobBuilder;
  std::string name_;
  std::vector<StageFunctionPtr> stages_;
  Tuple initial_input_;
};

/// Fluent builder. Composing a job "is similar to creating a MapReduce job
/// caring for how data is partitioned": pick pre-defined stage functions,
/// supply Interpreters/Filters, and chain them.
///
///   LH_ASSIGN_OR_RETURN(Job job, JobBuilder("part-lineitem-join")
///       .Initial(Tuple::Range(lo, hi))
///       .Add(MakeRangeDereferencer("deref-0", retailprice_index))
///       .Add(MakeIndexEntryReferencer("ref-1"))
///       .Add(MakePointDereferencer("deref-1", part_file))
///       ...
///       .Build());
class JobBuilder {
 public:
  explicit JobBuilder(std::string name) { job_.name_ = std::move(name); }

  /// The pointer (or pointer range) fed to the first Dereferencer. A
  /// pointer without partition information is resolved per node against
  /// local partitions, which is how jobs fan out over local indexes.
  JobBuilder& Initial(Tuple input) {
    job_.initial_input_ = std::move(input);
    return *this;
  }

  JobBuilder& Add(StageFunctionPtr stage) {
    job_.stages_.push_back(std::move(stage));
    return *this;
  }

  /// Validates and returns the job:
  ///  - at least one stage;
  ///  - the first stage is a Dereferencer (it consumes the initial pointer);
  ///  - no null stages.
  StatusOr<Job> Build();

 private:
  Job job_;
};

}  // namespace lakeharbor::rede
