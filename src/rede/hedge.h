#pragma once

#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

/// \file hedge.h
/// Hedged-read plumbing. A hedged read races a second replica after the
/// primary has been quiet for `deadline_us`: first success wins, the loser
/// is discarded without touching run metrics or emitting records. The
/// discarded arm may still be executing inside the simulated device stack,
/// so its thread cannot be abandoned — the StragglerReaper parks losers and
/// joins them before Execute returns, keeping teardown (and TSan) clean.

namespace lakeharbor::rede {

/// Per-run hedging knobs (SmpeOptions::hedge). Hedging only applies to
/// point dereferences against files with >= 2 live replicas, and only in
/// the threaded SMPE mode — the deterministic scheduler never races.
struct HedgeOptions {
  bool enabled = false;
  /// How long the primary read may run before a hedge is launched against
  /// a different replica. With timing simulation off, reads complete in
  /// microseconds and virtually never hedge unless this is 0 (hedge
  /// immediately — useful in tests).
  uint64_t deadline_us = 2000;
};

/// Holds threads whose result lost a hedge race. Join happens in two
/// places: opportunistically via Park() callers finishing their task, and
/// definitively via JoinAll() before the executor returns.
class StragglerReaper {
 public:
  StragglerReaper() = default;
  ~StragglerReaper() { JoinAll(); }
  StragglerReaper(const StragglerReaper&) = delete;
  StragglerReaper& operator=(const StragglerReaper&) = delete;

  void Park(std::thread t) {
    std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(std::move(t));
  }

  void JoinAll() {
    std::vector<std::thread> drained;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      drained.swap(threads_);
    }
    for (std::thread& t : drained) {
      if (t.joinable()) t.join();
    }
  }

 private:
  std::mutex mutex_;
  std::vector<std::thread> threads_;
};

}  // namespace lakeharbor::rede
