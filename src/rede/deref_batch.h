#pragma once

#include <cstdint>
#include <vector>

#include "rede/stage_function.h"
#include "rede/tuple.h"

namespace lakeharbor::rede {

/// A group of keyed point tuples that resolve in the same partition of a
/// batchable dereferencer's target file — the unit the SMPE executor
/// enqueues as one Task when batching is enabled.
struct PointerBatch {
  uint32_t partition = 0;
  std::vector<Tuple> tuples;
};

/// Group `tuples` (all keyed point tuples destined for `stage_fn`) by
/// stage_fn.PartitionOfPointer() and split each group into batches of at
/// most `max_batch_size` (>= 1). Batches come out in ascending partition
/// order, preserving input order within a partition — deterministic, so
/// seeded-schedule runs replay exactly.
std::vector<PointerBatch> CoalesceByPartition(std::vector<Tuple> tuples,
                                              const StageFunction& stage_fn,
                                              size_t max_batch_size);

}  // namespace lakeharbor::rede
