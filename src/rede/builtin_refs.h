#pragma once

#include <memory>
#include <string>

#include "rede/functions.h"
#include "rede/stage_function.h"

/// \file builtin_refs.h
/// Pre-defined Referencers (§III-B "Usability": the system ships the
/// Referencers covering the indexing-scheme taxonomy; job authors supply
/// only Interpreters). Each factory returns a shared, reusable function.

namespace lakeharbor::rede {

/// Emits one keyed pointer per input tuple: the in-partition key comes from
/// `key_interp` applied to bundle record `bundle_index` (SIZE_MAX = newest),
/// and the partition key from `partition_interp` (defaults to the same
/// value — the common case where the target file is partitioned by the
/// looked-up key). This is Referencer-2 of Fig 4 (foreign-key extraction).
StageFunctionPtr MakeKeyReferencer(std::string name, Interpreter key_interp,
                                   size_t bundle_index = SIZE_MAX,
                                   Interpreter partition_interp = nullptr);

/// Emits one *broadcast* pointer per input tuple: partition information is
/// left null, so the executor replicates it to all partitions (§III-B
/// broadcast joins).
StageFunctionPtr MakeBroadcastReferencer(std::string name,
                                         Interpreter key_interp,
                                         size_t bundle_index = SIZE_MAX);

/// Interprets the newest bundle record as an index entry (as produced by
/// index::MakeIndexEntry) and emits the pointer it encodes, removing the
/// entry record from the bundle. This is Referencer-1 of Fig 4: the bridge
/// from an index dereference to the base-file dereference.
StageFunctionPtr MakeIndexEntryReferencer(std::string name);

/// Emits one range pointer [lo_interp(r), hi_interp(r)] per input tuple,
/// routed by `partition_interp` when given, broadcast otherwise. Used for
/// prefix lookups on composite-keyed BtreeFiles.
StageFunctionPtr MakeRangeReferencer(std::string name, Interpreter lo_interp,
                                     Interpreter hi_interp,
                                     size_t bundle_index = SIZE_MAX,
                                     Interpreter partition_interp = nullptr);

}  // namespace lakeharbor::rede
