#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "io/pointer.h"
#include "obs/trace.h"
#include "rede/hedge.h"
#include "rede/metrics.h"
#include "rede/tuple.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

class RecordCache;

/// Per-invocation execution context: which simulated node the function is
/// running on (determines locality of charged I/O) plus shared counters.
struct ExecContext {
  sim::NodeId node = 0;
  sim::Cluster* cluster = nullptr;
  ExecMetricsCounters* metrics = nullptr;
  /// Node-local record cache, or nullptr when caching is disabled.
  /// Dereferencers consult it before touching simulated storage.
  RecordCache* record_cache = nullptr;
  /// Hedged-read knobs; hedging is off unless the executor enables it
  /// (threaded SMPE mode only) AND supplies a straggler reaper.
  HedgeOptions hedge{};
  StragglerReaper* stragglers = nullptr;
  /// Run-wide cancellation token, or nullptr when the executor does not
  /// support cooperative cancellation. Long-running stage functions should
  /// poll it and bail out early with its cause.
  const CancelToken* cancel = nullptr;
  /// Trace recorder of a traced run, or nullptr (the common case — tracing
  /// is sampled per job, see SmpeOptions::trace_sample_n). Stage functions
  /// emit failover/hedge spans through it; `stage` tells them which job
  /// stage the invocation belongs to.
  obs::TraceRecorder* trace = nullptr;
  uint32_t stage = 0;
};

/// Base of the two function kinds composing a ReDe job (§III-B). The
/// executor dispatches on IsDereferencer(): Dereferencers incur I/O and run
/// on pool threads; Referencers are CPU-cheap and by default run inline on
/// the emitting thread ("ReDe does not switch threads for Referencers").
class StageFunction {
 public:
  virtual ~StageFunction() = default;

  virtual bool IsDereferencer() const = 0;
  virtual const std::string& name() const = 0;

  /// How the executor should treat an incoming tuple WITHOUT partition
  /// information. True (default): replicate it to every node for local
  /// resolution (the paper's broadcast). False: keep it on one node — the
  /// function can locate the relevant partitions itself (e.g. a range
  /// dereference over a range-partitioned structure prunes to the
  /// partitions its key range intersects).
  virtual bool WantsBroadcast() const { return true; }

  /// Replication factor of the structure this stage resolves against
  /// (1 for Referencers and unreplicated files). The executor uses it to
  /// decide whether a broadcast copy whose target node is down can be
  /// redirected — with replicas, another node can resolve the down node's
  /// partitions on its behalf; without, the broadcast must fail.
  virtual uint32_t TargetReplication() const { return 1; }

  /// Consume one input tuple, append emitted tuples to `out`. Emissions
  /// feed the next stage (or the job output when this is the last stage).
  virtual Status Execute(const ExecContext& ctx, const Tuple& input,
                         std::vector<Tuple>* out) const = 0;

  /// True when this stage can resolve many keyed point tuples in one fused
  /// invocation. The executor then groups enqueued tuples by
  /// PartitionOfPointer() and dispatches one ExecuteBatch per group.
  virtual bool SupportsBatchedDereference() const { return false; }

  /// Partition of the stage's target file that `ptr` resolves in — the
  /// coalescing group key. Only called for keyed pointers on stages that
  /// report SupportsBatchedDereference().
  virtual uint32_t PartitionOfPointer(const io::Pointer& ptr) const {
    (void)ptr;
    return 0;
  }

  /// Consume a batch of input tuples at once. Emission order within the
  /// batch is unspecified (SMPE output is unordered anyway), but the emitted
  /// SET must equal what per-tuple Execute calls would produce. On error the
  /// whole batch is unconsumed: implementations must undo any cache
  /// admissions they made so a retry re-reads instead of re-admitting. The
  /// default degrades to a per-tuple loop.
  virtual Status ExecuteBatch(const ExecContext& ctx,
                              const std::vector<Tuple>& inputs,
                              std::vector<Tuple>* out) const {
    for (const Tuple& input : inputs) {
      LH_RETURN_NOT_OK(Execute(ctx, input, out));
    }
    return Status::OK();
  }
};

/// A Referencer takes a record (bundle) and produces pointers to records it
/// is associated with. Pure CPU; never touches storage.
class Referencer : public StageFunction {
 public:
  explicit Referencer(std::string name) : name_(std::move(name)) {}
  bool IsDereferencer() const final { return false; }
  const std::string& name() const final { return name_; }

 private:
  std::string name_;
};

/// A Dereferencer takes a pointer (or pointer range) and produces the
/// records it points to, reading from the File or BtreeFile it manages.
class Dereferencer : public StageFunction {
 public:
  explicit Dereferencer(std::string name) : name_(std::move(name)) {}
  bool IsDereferencer() const final { return true; }
  const std::string& name() const final { return name_; }

 private:
  std::string name_;
};

using StageFunctionPtr = std::shared_ptr<const StageFunction>;

}  // namespace lakeharbor::rede
