#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rede/metrics.h"
#include "rede/tuple.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// Per-invocation execution context: which simulated node the function is
/// running on (determines locality of charged I/O) plus shared counters.
struct ExecContext {
  sim::NodeId node = 0;
  sim::Cluster* cluster = nullptr;
  ExecMetricsCounters* metrics = nullptr;
};

/// Base of the two function kinds composing a ReDe job (§III-B). The
/// executor dispatches on IsDereferencer(): Dereferencers incur I/O and run
/// on pool threads; Referencers are CPU-cheap and by default run inline on
/// the emitting thread ("ReDe does not switch threads for Referencers").
class StageFunction {
 public:
  virtual ~StageFunction() = default;

  virtual bool IsDereferencer() const = 0;
  virtual const std::string& name() const = 0;

  /// How the executor should treat an incoming tuple WITHOUT partition
  /// information. True (default): replicate it to every node for local
  /// resolution (the paper's broadcast). False: keep it on one node — the
  /// function can locate the relevant partitions itself (e.g. a range
  /// dereference over a range-partitioned structure prunes to the
  /// partitions its key range intersects).
  virtual bool WantsBroadcast() const { return true; }

  /// Consume one input tuple, append emitted tuples to `out`. Emissions
  /// feed the next stage (or the job output when this is the last stage).
  virtual Status Execute(const ExecContext& ctx, const Tuple& input,
                         std::vector<Tuple>* out) const = 0;
};

/// A Referencer takes a record (bundle) and produces pointers to records it
/// is associated with. Pure CPU; never touches storage.
class Referencer : public StageFunction {
 public:
  explicit Referencer(std::string name) : name_(std::move(name)) {}
  bool IsDereferencer() const final { return false; }
  const std::string& name() const final { return name_; }

 private:
  std::string name_;
};

/// A Dereferencer takes a pointer (or pointer range) and produces the
/// records it points to, reading from the File or BtreeFile it manages.
class Dereferencer : public StageFunction {
 public:
  explicit Dereferencer(std::string name) : name_(std::move(name)) {}
  bool IsDereferencer() const final { return true; }
  const std::string& name() const final { return name_; }

 private:
  std::string name_;
};

using StageFunctionPtr = std::shared_ptr<const StageFunction>;

}  // namespace lakeharbor::rede
