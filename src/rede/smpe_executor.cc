#include "rede/smpe_executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/random.h"
#include "obs/trace.h"
#include "rede/deref_batch.h"

namespace lakeharbor::rede {

namespace {
/// Approximate wire size of a tuple shipped in a broadcast message.
size_t ApproxTupleBytes(const Tuple& tuple) {
  size_t bytes = tuple.pointer.key.size() + tuple.pointer.partition_key.size();
  for (const auto& record : tuple.records) bytes += record.size();
  return bytes + 16;
}

/// Emit the queue-wait span of a dequeued task (traced runs only).
void RecordQueueWaitSpan(obs::TraceRecorder* trace, size_t stage,
                         sim::NodeId node, int64_t enqueue_us,
                         int64_t dequeue_us) {
  if (trace == nullptr || enqueue_us <= 0 || dequeue_us < enqueue_us) return;
  obs::Span span;
  span.name = "queue-wait";
  span.kind = obs::SpanKind::kQueueWait;
  span.stage = static_cast<uint32_t>(stage);
  span.node = node;
  span.t_start_us = enqueue_us;
  span.t_end_us = dequeue_us;
  trace->Record(std::move(span));
}
}  // namespace

/// All state of one Execute() call. Kept off the executor object so that
/// concurrent Execute() calls (sharing only the immutable pools) are safe.
struct SmpeExecutor::RunState {
  const Job* job = nullptr;
  uint64_t job_id = 0;
  /// Node count CAPTURED at Execute start. The run's queues, dispatchers
  /// and broadcast fan-out all use this snapshot, never the live
  /// cluster->num_nodes(): a node joining mid-run becomes visible to the
  /// NEXT run, instead of indexing past this run's queues.
  uint32_t num_nodes = 0;
  /// Cluster placement epoch at Execute start, stamped on every broadcast
  /// tuple at fan-out: all nodes of this run resolve broadcast ownership
  /// against the same placement snapshot even when a rebalance commit
  /// races the run.
  uint64_t fanout_epoch = 0;
  /// Stable per-node pool pointers for this run (threaded mode only).
  std::vector<ThreadPool*> pools;
  /// Recorder of a sampled run, nullptr otherwise (the untraced fast path
  /// is this null check — no span work, no allocations).
  obs::TraceRecorder* trace = nullptr;
  ExecMetricsCounters metrics;
  InflightTracker inflight;
  std::vector<std::unique_ptr<MpmcQueue<Task>>> queues;

  std::mutex sink_mutex;
  ResultSink sink;

  /// Run-wide cooperative cancellation: the first permanent error, the
  /// deadline watchdog, OR an external Cancel() on an injected token flips
  /// it (first cause wins); every task checks it before executing, so
  /// queues drain without doing work, and retry backoffs wait on it so
  /// cancellation interrupts them mid-sleep. Points at `owned_cancel`
  /// unless the caller injected a token (scheduler-managed jobs).
  CancelToken* cancel = nullptr;
  CancelToken owned_cancel;
  /// Hedge-race losers parked here; joined before Execute returns.
  StragglerReaper stragglers;

  void RecordError(const Status& status, const std::string& where) {
    cancel->Cancel(status.WithContext(where));
  }

  bool Failed() const { return cancel->cancelled(); }

  void Emit(const Tuple& tuple) {
    metrics.output_tuples.fetch_add(1, std::memory_order_relaxed);
    if (!sink) return;
    std::lock_guard<std::mutex> lock(sink_mutex);
    sink(tuple);
  }
};

SmpeExecutor::SmpeExecutor(sim::Cluster* cluster, SmpeOptions options)
    : cluster_(cluster), options_(options) {
  LH_CHECK(cluster_ != nullptr);
  LH_CHECK_MSG(options_.threads_per_node > 0,
               "SMPE needs at least one thread per node");
  if (options_.deterministic_seed == 0) {
    // Seeded-schedule mode runs everything on the calling thread; pools
    // would only sit idle. Pools for nodes joining later are appended
    // lazily by SnapshotPools at the start of their first run.
    SnapshotPools(cluster_->num_nodes());
  }
  if (options_.cache.enabled) {
    cache_ = std::make_unique<RecordCache>(options_.cache);
  }
}

std::vector<ThreadPool*> SmpeExecutor::SnapshotPools(uint32_t num_nodes) {
  std::lock_guard<std::mutex> lock(pools_mutex_);
  while (pools_.size() < num_nodes) {
    pools_.push_back(std::make_unique<ThreadPool>(options_.threads_per_node,
                                                  &pool_dwell_));
  }
  std::vector<ThreadPool*> snapshot(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) snapshot[n] = pools_[n].get();
  return snapshot;
}

SmpeExecutor::~SmpeExecutor() = default;

void SmpeExecutor::RunTask(RunState& state, sim::NodeId node,
                           Task task) const {
  if (state.Failed()) {
    // Fail-fast drain: another task recorded a permanent error, so this one
    // is dropped unexecuted (it only balances the in-flight count).
    state.metrics.tasks_dropped_on_failure.fetch_add(1,
                                                     std::memory_order_relaxed);
    state.inflight.Done();
    return;
  }
  LH_CHECK(!task.tuples.empty());
  // Queue dwell: stamped at enqueue (Route/SeedInitial), measured here. The
  // histogram is always on; the span only exists on traced runs.
  const int64_t dequeue_us = NowMicros();
  if (task.enqueue_us > 0 && dequeue_us >= task.enqueue_us) {
    state.metrics.queue_dwell_us.Record(
        static_cast<uint64_t>(dequeue_us - task.enqueue_us));
  }
  RecordQueueWaitSpan(state.trace, task.stage, node, task.enqueue_us,
                      dequeue_us);
  const StageFunction& fn = *state.job->stages()[task.stage];
  ExecContext ctx{node, cluster_, &state.metrics, cache_.get()};
  ctx.cancel = state.cancel;
  ctx.trace = state.trace;
  ctx.stage = static_cast<uint32_t>(task.stage);
  if (options_.deterministic_seed == 0 && options_.hedge.enabled) {
    ctx.hedge = options_.hedge;
    ctx.stragglers = &state.stragglers;
  }
  std::vector<Tuple> outs;
  Status status;
  size_t retry = 0;
  const bool batched = task.tuples.size() > 1;
  if (batched) {
    state.metrics.deref_batches.fetch_add(1, std::memory_order_relaxed);
    state.metrics.deref_batched_pointers.fetch_add(task.tuples.size(),
                                                   std::memory_order_relaxed);
    state.metrics.deref_batch_size.Record(task.tuples.size());
  }
  const int64_t work_start_us = dequeue_us;
  for (;;) {
    outs.clear();  // discard partial emissions of a failed attempt
    if (fn.IsDereferencer()) {
      state.metrics.deref_invocations.fetch_add(1, std::memory_order_relaxed);
      state.metrics.EnterDeref();
      // A failed ExecuteBatch invalidated its own cache admissions, so a
      // retry below re-reads the whole batch instead of re-admitting it.
      const int64_t attempt_start_us = NowMicros();
      status = batched ? fn.ExecuteBatch(ctx, task.tuples, &outs)
                       : fn.Execute(ctx, task.tuples.front(), &outs);
      const int64_t attempt_us = NowMicros() - attempt_start_us;
      state.metrics.deref_latency_us.Record(
          attempt_us > 0 ? static_cast<uint64_t>(attempt_us) : 0);
      state.metrics.ExitDeref();
    } else {
      // Referencer tasks are always singletons (Route never batches them).
      state.metrics.ref_invocations.fetch_add(1, std::memory_order_relaxed);
      status = fn.Execute(ctx, task.tuples.front(), &outs);
    }
    // Only Dereferencer failures can be transient (they touch devices);
    // Referencer errors are logic errors and always fail fast. Stop
    // retrying once some other task has already failed the job.
    if (status.ok() || !fn.IsDereferencer() || !status.IsRetryable() ||
        retry >= options_.retry.max_retries || state.Failed()) {
      break;
    }
    ++retry;
    // Jitter (seeded by job ⊕ node ⊕ stage) keeps concurrent jobs that hit
    // the same faulty device from retrying in lockstep; the default
    // jitter=0 policy reproduces the exact classic ladder.
    const uint64_t jitter_seed =
        state.job_id ^ (static_cast<uint64_t>(node) << 32) ^
        static_cast<uint64_t>(task.stage);
    const uint64_t backoff_us =
        options_.retry.JitteredBackoffUs(retry, jitter_seed);
    state.metrics.retries.fetch_add(1, std::memory_order_relaxed);
    state.metrics.retry_backoff_us.fetch_add(backoff_us,
                                             std::memory_order_relaxed);
    state.metrics.retry_backoff_hist_us.Record(backoff_us);
    if (backoff_us > 0) {
      const int64_t sleep_start_us = NowMicros();
      // Wait on the run's CancelToken, not an unconditional sleep: a
      // cancelled or deadline-exceeded job exits its backoff ladder within
      // one quantum instead of draining every remaining sleep.
      const bool interrupted = state.cancel->WaitFor(backoff_us);
      if (state.trace != nullptr) {
        obs::Span span;
        span.name = "retry-backoff";
        span.kind = obs::SpanKind::kRetryBackoff;
        span.stage = static_cast<uint32_t>(task.stage);
        span.node = node;
        span.t_start_us = sleep_start_us;
        span.t_end_us = NowMicros();
        span.AddAttr("retry", static_cast<int64_t>(retry));
        span.AddAttr("backoff_us", static_cast<int64_t>(backoff_us));
        if (interrupted) span.AddAttr("interrupted", 1);
        state.trace->Record(std::move(span));
      }
      if (interrupted) break;  // cancelled mid-backoff: drop the task now
    }
  }
  if (state.trace != nullptr) {
    // One work span per counted invocation: the profiler reconciles
    // successful work-span counts against CountStage's counters, so a span
    // of a failed task is marked and excluded rather than skipped.
    obs::Span span;
    span.name = fn.name();
    span.kind = batched ? obs::SpanKind::kDerefBatch
                : fn.IsDereferencer() ? obs::SpanKind::kDereference
                                      : obs::SpanKind::kReferencer;
    span.stage = static_cast<uint32_t>(task.stage);
    span.node = node;
    span.t_start_us = work_start_us;
    span.t_end_us = NowMicros();
    span.AddAttr("emitted", static_cast<int64_t>(outs.size()));
    span.AddAttr("attempts", static_cast<int64_t>(retry + 1));
    if (batched) span.AddAttr("batch", static_cast<int64_t>(task.tuples.size()));
    if (!status.ok()) span.AddAttr("failed", 1);
    state.trace->Record(std::move(span));
  }
  if (!status.ok()) {
    state.metrics.tasks_dropped_on_failure.fetch_add(1,
                                                     std::memory_order_relaxed);
    // Annotate with everything a post-mortem needs: which stage, which
    // function, which node, and how hard we tried.
    state.RecordError(status, "stage " + std::to_string(task.stage) + " (" +
                                  fn.name() + ") on node " +
                                  std::to_string(node) + " after " +
                                  std::to_string(retry + 1) + " attempts");
  } else {
    state.metrics.CountStage(task.stage, outs.size());
    Route(state, node, task.stage + 1, std::move(outs));
  }
  state.inflight.Done();
}

void SmpeExecutor::Route(RunState& state, sim::NodeId node, size_t next_stage,
                         std::vector<Tuple>&& tuples) const {
  state.metrics.tuples_emitted.fetch_add(tuples.size(),
                                         std::memory_order_relaxed);
  // Explicit LIFO work stack instead of recursion: a chain of inline
  // Referencers used to cascade via recursive Route calls, growing the call
  // stack per stage per tuple; long Referencer chains (or wide fan-outs of
  // single-tuple cascades) could overflow the thread stack.
  struct Pending {
    size_t stage;
    Tuple tuple;
  };
  std::vector<Pending> work;
  work.reserve(tuples.size());
  // Keyed tuples destined for batchable Dereferencer stages are buffered
  // here across the WHOLE cascade (an index-scan → referencer chain can
  // emit hundreds of same-partition pointers one at a time) and flushed as
  // coalesced per-partition batch tasks at the end. Buffered tuples are not
  // yet registered in-flight, so the fail-fast early returns below drop
  // them without unbalancing the tracker.
  std::map<size_t, std::vector<Tuple>> batch_buffer;
  for (auto it = tuples.rbegin(); it != tuples.rend(); ++it) {
    work.push_back(Pending{next_stage, std::move(*it)});
  }
  while (!work.empty()) {
    if (state.Failed()) return;
    Pending pending = std::move(work.back());
    work.pop_back();
    if (pending.stage >= state.job->num_stages()) {
      state.Emit(pending.tuple);
      continue;
    }
    const StageFunction& next_fn = *state.job->stages()[pending.stage];
    if (!next_fn.IsDereferencer() && options_.inline_referencers) {
      // The paper's optimization: Referencers are lightweight, so run them
      // on the emitting thread instead of round-tripping through the queue.
      ExecContext ctx{node, cluster_, &state.metrics};
      ctx.trace = state.trace;
      ctx.stage = static_cast<uint32_t>(pending.stage);
      std::vector<Tuple> outs;
      state.metrics.ref_invocations.fetch_add(1, std::memory_order_relaxed);
      const int64_t start_us = state.trace != nullptr ? NowMicros() : 0;
      Status status = next_fn.Execute(ctx, pending.tuple, &outs);
      if (state.trace != nullptr) {
        obs::Span span;
        span.name = next_fn.name();
        span.kind = obs::SpanKind::kReferencer;
        span.stage = static_cast<uint32_t>(pending.stage);
        span.node = node;
        span.t_start_us = start_us;
        span.t_end_us = NowMicros();
        span.AddAttr("emitted", static_cast<int64_t>(outs.size()));
        span.AddAttr("inline", 1);
        if (!status.ok()) span.AddAttr("failed", 1);
        state.trace->Record(std::move(span));
      }
      if (!status.ok()) {
        state.RecordError(status, next_fn.name());
        return;
      }
      state.metrics.CountStage(pending.stage, outs.size());
      state.metrics.tuples_emitted.fetch_add(outs.size(),
                                             std::memory_order_relaxed);
      for (auto it = outs.rbegin(); it != outs.rend(); ++it) {
        work.push_back(Pending{pending.stage + 1, std::move(*it)});
      }
      continue;
    }
    if (next_fn.IsDereferencer() && !pending.tuple.pointer.has_partition &&
        !pending.tuple.resolve_local && next_fn.WantsBroadcast()) {
      // Broadcast: replicate to every node's queue marked for local
      // resolution (Algorithm 1, lines 28-33). When the destination node is
      // down AND the stage's structure is replicated, the copy is REDIRECTED
      // instead of failing the job: it stays on the emitting node carrying
      // the down node's id as resolve_owner, so this node resolves the down
      // node's partitions on its behalf via replica failover. Ownership
      // stays static (every partition is covered exactly once) whatever the
      // outage timing. Unreplicated stages keep the seed behavior: a dead
      // destination fails the broadcast.
      state.metrics.broadcasts.fetch_add(1, std::memory_order_relaxed);
      const size_t bytes = ApproxTupleBytes(pending.tuple);
      const sim::NodeId last = state.num_nodes - 1;
      const bool replicated = next_fn.TargetReplication() > 1;
      for (sim::NodeId m = 0; m <= last; ++m) {
        sim::NodeId dest = m;
        uint32_t owner = Tuple::kResolveOnSelf;
        if (m != node) {
          if (replicated && cluster_->NodeIsDown(m)) {
            // Known-down destination: keep the copy here, no message.
            dest = node;
            owner = m;
            state.metrics.broadcast_redirects.fetch_add(
                1, std::memory_order_relaxed);
          } else {
            // The self-node replica is a local enqueue, not a message.
            Status status = cluster_->ChargeMessage(node, m, bytes);
            if (!status.ok()) {
              if (replicated && status.IsUnavailable()) {
                // Outage raced the liveness check: redirect all the same.
                dest = node;
                owner = m;
                state.metrics.broadcast_redirects.fetch_add(
                    1, std::memory_order_relaxed);
              } else {
                state.RecordError(status, "broadcast");
                return;
              }
            }
          }
        }
        // The last replica takes the tuple by move; only the first
        // num_nodes-1 replicas pay a deep copy.
        Tuple copy = (m == last) ? std::move(pending.tuple) : pending.tuple;
        copy.resolve_local = true;
        copy.resolve_owner = owner;
        copy.resolve_epoch = state.fanout_epoch;
        state.inflight.Add();
        if (!state.queues[dest]->Push(
                Task{pending.stage, {std::move(copy)}, NowMicros()})) {
          // Queue already closed (shutdown): the task will never run, so
          // balance the in-flight count or AwaitZero() hangs forever.
          state.inflight.Done();
        }
      }
      continue;
    }
    if (options_.batch.enabled && next_fn.IsDereferencer() &&
        !pending.tuple.is_range && pending.tuple.pointer.has_partition &&
        next_fn.SupportsBatchedDereference()) {
      batch_buffer[pending.stage].push_back(std::move(pending.tuple));
      continue;
    }
    // Keyed (or already-localized) tuple: the task stays on the emitting
    // node; its Dereferencer performs the possibly-remote fetch.
    state.inflight.Add();
    if (!state.queues[node]->Push(
            Task{pending.stage, {std::move(pending.tuple)}, NowMicros()})) {
      state.inflight.Done();  // rejected enqueue: balance or deadlock
    }
  }
  for (auto& [stage, buffered] : batch_buffer) {
    if (state.Failed()) return;
    const StageFunction& fn = *state.job->stages()[stage];
    for (PointerBatch& batch : CoalesceByPartition(
             std::move(buffered), fn, options_.batch.max_batch_size)) {
      state.inflight.Add();
      if (!state.queues[node]->Push(
              Task{stage, std::move(batch.tuples), NowMicros()})) {
        state.inflight.Done();
      }
    }
  }
}

void SmpeExecutor::SeedInitial(RunState& state) const {
  // Seed: a broadcast initial input (the common case — e.g. a range over a
  // local secondary index; resolve_local was set by JobBuilder::Build)
  // starts on every node; a keyed or partition-pruning one is one task.
  const uint32_t num_nodes = state.num_nodes;
  Tuple initial = state.job->initial_input();
  initial.resolve_epoch = state.fanout_epoch;
  if (initial.resolve_local) {
    state.inflight.Add(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) {
      if (!state.queues[n]->Push(Task{0, {initial}, NowMicros()})) {
        state.inflight.Done();
      }
    }
  } else {
    state.inflight.Add();
    if (!state.queues[0]->Push(Task{0, {std::move(initial)}, NowMicros()})) {
      state.inflight.Done();
    }
  }
}

void SmpeExecutor::RunDeterministic(RunState& state) const {
  // One thread, one PRNG: repeatedly pick a uniformly random nonempty node
  // queue and run its head task to completion (including its inline
  // cascade). Every interleaving this explores is a prefix-respecting
  // serialization of the real executor's task DAG, and the same seed walks
  // the same sequence exactly.
  Random rng(options_.deterministic_seed);
  StopWatch watch;
  std::vector<uint32_t> ready;
  for (;;) {
    // Single-threaded mode has no watchdog thread; the scheduling loop
    // checks the deadline between tasks instead. Expiry flips the token and
    // the remaining tasks drain through RunTask's fail-fast path.
    if (options_.deadline_ms > 0 && !state.Failed() &&
        watch.ElapsedMillis() >= static_cast<double>(options_.deadline_ms)) {
      state.cancel->Cancel(Status::DeadlineExceeded(
          "job '" + state.job->name() + "' exceeded deadline of " +
          std::to_string(options_.deadline_ms) + "ms"));
    }
    ready.clear();
    for (uint32_t n = 0; n < state.queues.size(); ++n) {
      if (!state.queues[n]->empty()) ready.push_back(n);
    }
    if (ready.empty()) break;  // no queued tasks ⇒ nothing in flight either
    uint32_t n = ready[rng.Uniform(ready.size())];
    if (auto task = state.queues[n]->TryPop()) {
      RunTask(state, n, std::move(*task));
    }
  }
  LH_CHECK_MSG(state.inflight.count() == 0,
               "deterministic schedule drained with tasks still in flight");
}

StatusOr<JobResult> SmpeExecutor::Execute(const Job& job,
                                          const ResultSink& sink,
                                          CancelToken* cancel) {
  StopWatch watch;
  RunState state;
  state.job = &job;
  state.job_id = obs::NextJobId();
  state.sink = sink;
  state.cancel = cancel != nullptr ? cancel : &state.owned_cancel;
  state.metrics.InitStages(job.num_stages());
  // Per-JOB sampling: either the whole run is traced (so profiles reconcile
  // exactly against the run's counters) or no recorder exists at all and
  // tracing costs one null check per task.
  const uint64_t run_seq = run_seq_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (options_.trace_sample_n > 0 && run_seq % options_.trace_sample_n == 0) {
    recorder = std::make_unique<obs::TraceRecorder>(state.job_id);
    state.trace = recorder.get();
  }
  const uint32_t num_nodes = cluster_->num_nodes();
  state.num_nodes = num_nodes;
  state.fanout_epoch = cluster_->placement_epoch();
  state.queues.reserve(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    state.queues.push_back(std::make_unique<MpmcQueue<Task>>());
  }

  if (options_.deterministic_seed != 0) {
    SeedInitial(state);
    RunDeterministic(state);
    for (auto& queue : state.queues) queue->Close();
  } else {
    state.pools = SnapshotPools(num_nodes);
    // Dispatchers: one per node, handing queued tasks to the node's pool so
    // that executing a function never blocks dequeueing (Fig 6's model).
    std::vector<std::thread> dispatchers;
    dispatchers.reserve(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) {
      dispatchers.emplace_back([this, &state, n] {
        while (auto task = state.queues[n]->Pop()) {
          bool submitted = state.pools[n]->Submit(
              [this, &state, n, t = std::move(*task)]() mutable {
                RunTask(state, n, std::move(t));
              });
          if (!submitted) {
            // Pool shut down under us: the task will never run; balance the
            // in-flight count registered at enqueue time or AwaitZero()
            // hangs.
            state.metrics.tasks_dropped_on_failure.fetch_add(
                1, std::memory_order_relaxed);
            state.inflight.Done();
          }
        }
      });
    }

    SeedInitial(state);

    // Deadline watchdog: waits on a cv (no polling) for either deadline
    // expiry — then flips the run's CancelToken — or run completion.
    std::thread watchdog;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    bool run_done = false;
    if (options_.deadline_ms > 0) {
      watchdog = std::thread([&] {
        std::unique_lock<std::mutex> lock(done_mutex);
        const bool completed = done_cv.wait_for(
            lock, std::chrono::milliseconds(options_.deadline_ms),
            [&] { return run_done; });
        if (!completed) {
          state.cancel->Cancel(Status::DeadlineExceeded(
              "job '" + job.name() + "' exceeded deadline of " +
              std::to_string(options_.deadline_ms) + "ms"));
        }
      });
    }

    state.inflight.AwaitZero();
    if (watchdog.joinable()) {
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        run_done = true;
      }
      done_cv.notify_all();
      watchdog.join();
    }
    for (auto& queue : state.queues) queue->Close();
    for (auto& dispatcher : dispatchers) dispatcher.join();
  }
  // Hedge-race losers may still be inside the simulated device stack; they
  // must finish before this run's state is torn down. Zero leaked tasks.
  state.stragglers.JoinAll();
  // Cache activity was charged per call site into state.metrics by the
  // dereferencers (builtin_derefs.cc), so the counters are exact for THIS
  // run even with other Execute() calls overlapping on the shared cache.

  if (state.cancel->cancelled()) return state.cancel->cause();
  JobResult result;
  result.metrics = MetricsSnapshot::From(state.metrics, watch.ElapsedMillis());
  result.metrics.job_id = state.job_id;
  if (recorder != nullptr) {
    auto log = std::make_shared<obs::TraceLog>();
    log->job_id = state.job_id;
    log->job_name = job.name();
    log->executor = name_;
    log->spans = recorder->Collect();
    result.trace = std::move(log);
  }
  return result;
}

}  // namespace lakeharbor::rede
