#pragma once

#include <memory>
#include <string>

#include "index/bloom.h"
#include "io/partitioned_file.h"
#include "rede/functions.h"
#include "rede/stage_function.h"

/// \file builtin_derefs.h
/// Pre-defined Dereferencers (§III-B). "Every Dereferencer manages either a
/// File or a BtreeFile to access"; the optional Filter drops fetched tuples
/// whose schema-on-read predicate fails.

namespace lakeharbor::rede {

/// Point dereference: resolve the tuple's pending pointer against `file`.
/// A keyed pointer is routed through the file's partitioner (cross-
/// partition accesses pay network cost); a broadcast copy (resolve_local)
/// is resolved against every partition of `file` local to the executing
/// node. Fetched records are appended to the bundle, one output tuple per
/// record.
///
/// `bloom` (optional) is a per-partition membership structure over the
/// file's in-partition keys: during broadcast resolution, partitions whose
/// filter rules the key out are skipped without a device probe (counted in
/// the file's AccessStats::bloom_skips). Keyed lookups ignore it.
StageFunctionPtr MakePointDereferencer(
    std::string name, std::shared_ptr<io::File> file, Filter filter = nullptr,
    std::shared_ptr<const index::PartitionBloom> bloom = nullptr);

/// How a range dereferencer resolves a range pointer that carries no
/// partition information.
enum class RangeRouting {
  /// The paper's default: the executor broadcasts the tuple and every node
  /// probes its local partitions — required for local secondary indexes
  /// and for hash-partitioned structures, where a key range can live
  /// anywhere.
  kBroadcast,
  /// Partition pruning: the structure is partitioned *by the indexed key*
  /// with an order-preserving (range) partitioner, so only the partitions
  /// intersecting [lo, hi] are probed, from the executing node. No
  /// broadcast happens.
  kPruneByKeyRange,
};

/// Range dereference over a BtreeFile: resolve [pointer, pointer_hi]. A
/// partitioned range stays within the partition of its partition key; a
/// partition-less range is routed per `routing`.
StageFunctionPtr MakeRangeDereferencer(
    std::string name, std::shared_ptr<io::BtreeFile> file,
    Filter filter = nullptr, RangeRouting routing = RangeRouting::kBroadcast);

/// Decorate a Dereferencer with bounded retries on transient failures. Any
/// non-retryable status (see Status::IsRetryable) fails immediately; a
/// retryable one (kIoError, kUnavailable, kResourceExhausted) is retried up
/// to `max_attempts` executions total before surfacing. Emissions of failed
/// attempts are discarded, so a retried invocation is exactly-once with
/// respect to downstream stages. This is how fine-grained jobs survive the
/// retryable faults real devices and object stores exhibit, without
/// restarting the whole job.
StageFunctionPtr MakeRetryingDereferencer(StageFunctionPtr inner,
                                          size_t max_attempts = 3);

}  // namespace lakeharbor::rede
