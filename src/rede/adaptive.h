#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// One observed selective access over an attribute of a base file —
/// recorded whether or not a structure existed to serve it. Carries enough
/// for the cost model to price both plans after the fact.
struct AccessObservation {
  std::string base_file;
  std::string attribute;
  /// Matches the predicate selected (driving-structure cardinality).
  double matches = 0;
  /// Average chained random reads per match for the job shape.
  double ios_per_match = 10.0;
  /// Bytes a scan-based fallback plan reads for this query.
  uint64_t scan_bytes = 0;
};

/// Everything the manager needs to price building a structure over
/// (base_file, attribute).
struct StructureCostInputs {
  uint64_t base_bytes = 0;    ///< scanned once during the build
  uint64_t base_records = 0;  ///< one posting per record (approximation)
  size_t posting_bytes = 40;  ///< entry + key bytes written per posting
};

/// What the manager recommends for one (base_file, attribute) pair.
struct StructureRecommendation {
  enum class Action { kBuild, kKeep, kDrop };
  std::string base_file;
  std::string attribute;
  Action action = Action::kKeep;
  /// Modeled total saving of the structure plan over the scan plan across
  /// the observation window (negative: the structure loses).
  double window_saving_ms = 0;
  /// Modeled cost of building the structure.
  double build_cost_ms = 0;
  size_t observations = 0;
};

const char* ActionToString(StructureRecommendation::Action action);

struct AdaptiveOptions {
  /// Sliding window: only the most recent N observations per attribute
  /// count, so recommendations follow workload shifts (§V-B: "workloads
  /// are not static in recent analytics").
  size_t window = 64;
  /// Build only when the window's saving exceeds build cost by this factor.
  double payoff_factor = 1.0;
  /// Drop an existing structure when its window saving falls below this
  /// fraction of its build cost (hysteresis against thrashing).
  double drop_fraction = 0.1;
  /// Engine overhead per chained I/O (see StructureAdvisor).
  double per_io_overhead_us = 0.0;
};

/// The §V-B decision loop: observe the workload, price each candidate
/// structure against it with the device cost model, and recommend
/// build/keep/drop per (base_file, attribute). The caller (or a background
/// daemon) applies recommendations via Engine::BuildStructure /
/// Catalog::Drop — the manager itself only decides, keeping the policy
/// testable in isolation.
class AdaptiveStructureManager {
 public:
  AdaptiveStructureManager(sim::Cluster* cluster, AdaptiveOptions options = {})
      : cluster_(cluster), options_(options) {
    LH_CHECK(cluster_ != nullptr);
  }

  /// Declare a candidate structure and its build-cost inputs. Observations
  /// against undeclared attributes are ignored by Recommend().
  void DeclareCandidate(const std::string& base_file,
                        const std::string& attribute,
                        StructureCostInputs inputs, bool currently_built);

  /// Record one query's access pattern.
  void Observe(const AccessObservation& observation);

  /// Tell the manager a structure was built/dropped (keeps state in sync).
  Status SetBuilt(const std::string& base_file, const std::string& attribute,
                  bool built);

  /// Price every declared candidate against its observation window.
  std::vector<StructureRecommendation> Recommend() const;

 private:
  struct Candidate {
    StructureCostInputs inputs;
    bool built = false;
    std::deque<AccessObservation> window;
  };

  double StructureQueryMs(const AccessObservation& observation) const;
  double ScanQueryMs(const AccessObservation& observation) const;
  double BuildCostMs(const StructureCostInputs& inputs) const;

  static std::string KeyOf(const std::string& base_file,
                           const std::string& attribute) {
    return base_file + "\x1f" + attribute;
  }

  sim::Cluster* cluster_;
  AdaptiveOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Candidate> candidates_;
};

}  // namespace lakeharbor::rede
