#include "rede/deref_batch.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/macros.h"

namespace lakeharbor::rede {

std::vector<PointerBatch> CoalesceByPartition(std::vector<Tuple> tuples,
                                              const StageFunction& stage_fn,
                                              size_t max_batch_size) {
  LH_CHECK_MSG(max_batch_size >= 1, "max_batch_size must be >= 1");
  // std::map keeps partitions sorted so the emitted batch sequence is a
  // pure function of the input — required for deterministic replay.
  std::map<uint32_t, std::vector<Tuple>> by_partition;
  for (Tuple& tuple : tuples) {
    LH_CHECK_MSG(!tuple.is_range && tuple.pointer.has_partition,
                 "only keyed point tuples can be coalesced");
    uint32_t partition = stage_fn.PartitionOfPointer(tuple.pointer);
    by_partition[partition].push_back(std::move(tuple));
  }
  std::vector<PointerBatch> batches;
  for (auto& [partition, group] : by_partition) {
    for (size_t start = 0; start < group.size(); start += max_batch_size) {
      PointerBatch batch;
      batch.partition = partition;
      size_t end = std::min(group.size(), start + max_batch_size);
      batch.tuples.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch.tuples.push_back(std::move(group[i]));
      }
      batches.push_back(std::move(batch));
    }
  }
  return batches;
}

}  // namespace lakeharbor::rede
