#pragma once

#include <memory>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "index/index_catalog.h"
#include "io/catalog.h"
#include "rede/executor.h"
#include "rede/partitioned_executor.h"
#include "rede/smpe_executor.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// Which execution strategy to use (the Fig 7 contrast).
enum class ExecutionMode {
  kSmpe,         ///< scalable massively parallel execution (Algorithm 1)
  kPartitioned,  ///< structures + partitioned parallelism only
};

const char* ExecutionModeToString(ExecutionMode mode);

struct EngineOptions {
  SmpeOptions smpe;
};

/// Materialized job output, for callers that want tuples in hand.
struct CollectedResult {
  std::vector<Tuple> tuples;
  MetricsSnapshot metrics;
  /// The run's span trace when it was traced (SmpeOptions::trace_sample_n),
  /// nullptr otherwise. Profile with rede::ProfileOf.
  std::shared_ptr<const obs::TraceLog> trace;
};

/// Build the query profile of a traced collected run (empty otherwise).
inline obs::JobProfile ProfileOf(const CollectedResult& result) {
  JobResult as_job;
  as_job.metrics = result.metrics;
  as_job.trace = result.trace;
  return ProfileOf(as_job);
}

/// The ReDe engine facade: one simulated cluster, a file catalog, the
/// structure-maintenance machinery, and the two executors. This is the
/// top-level public API — see examples/quickstart.cpp for the intended
/// usage pattern:
///
///   sim::Cluster cluster(cluster_options);
///   rede::Engine engine(&cluster);
///   ... load raw files into engine.catalog() ...
///   ... register access methods, build structures via engine ...
///   LH_ASSIGN_OR_RETURN(Job job, JobBuilder("q").... .Build());
///   LH_ASSIGN_OR_RETURN(CollectedResult r,
///                       engine.ExecuteCollect(job, ExecutionMode::kSmpe));
class Engine {
 public:
  explicit Engine(sim::Cluster* cluster, EngineOptions options = {});
  LH_DISALLOW_COPY_AND_ASSIGN(Engine);

  sim::Cluster& cluster() { return *cluster_; }
  io::Catalog& catalog() { return catalog_; }
  index::IndexBuilder& index_builder() { return index_builder_; }
  index::IndexCatalog& index_catalog() { return index_catalog_; }

  /// Register an access-method definition: build the structure described
  /// by `spec` (synchronously) and record it in the index catalog under
  /// `attribute`. This is the paradigm's "post hoc definition of access
  /// methods" entry point.
  StatusOr<std::shared_ptr<io::BtreeFile>> BuildStructure(
      const index::IndexSpec& spec, const std::string& attribute);

  /// Execute a job, streaming outputs into `sink` (nullable). `cancel`
  /// optionally injects an external CancelToken (see Executor::Execute).
  StatusOr<JobResult> Execute(const Job& job, ExecutionMode mode,
                              const ResultSink& sink = nullptr,
                              CancelToken* cancel = nullptr);

  /// Execute and materialize output tuples.
  StatusOr<CollectedResult> ExecuteCollect(const Job& job, ExecutionMode mode);

  /// The executor behind `mode` — what a sched::JobScheduler fronts when
  /// scheduling jobs of this engine.
  Executor& executor(ExecutionMode mode) {
    return mode == ExecutionMode::kSmpe
               ? static_cast<Executor&>(smpe_executor_)
               : static_cast<Executor&>(partitioned_executor_);
  }

  /// The SMPE executor's record cache (nullptr when caching is off) — for
  /// cross-checking per-job cache attribution against global counters.
  RecordCache* smpe_record_cache() const {
    return smpe_executor_.record_cache();
  }

 private:
  sim::Cluster* cluster_;
  io::Catalog catalog_;
  index::IndexBuilder index_builder_;
  index::IndexCatalog index_catalog_;
  SmpeExecutor smpe_executor_;
  PartitionedExecutor partitioned_executor_;
};

}  // namespace lakeharbor::rede
