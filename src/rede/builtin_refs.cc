#include "rede/builtin_refs.h"

#include "index/index_entry.h"

namespace lakeharbor::rede {

namespace {

StatusOr<size_t> ResolveBundleIndex(const Tuple& input, size_t bundle_index) {
  if (input.records.empty()) {
    return Status::InvalidArgument("referencer on empty bundle");
  }
  size_t i =
      bundle_index == SIZE_MAX ? input.records.size() - 1 : bundle_index;
  if (i >= input.records.size()) {
    return Status::InvalidArgument("referencer bundle index out of range");
  }
  return i;
}

class KeyReferencer final : public Referencer {
 public:
  KeyReferencer(std::string name, Interpreter key_interp, size_t bundle_index,
                Interpreter partition_interp, bool broadcast)
      : Referencer(std::move(name)),
        key_interp_(std::move(key_interp)),
        partition_interp_(std::move(partition_interp)),
        bundle_index_(bundle_index),
        broadcast_(broadcast) {}

  Status Execute(const ExecContext&, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    LH_ASSIGN_OR_RETURN(size_t i, ResolveBundleIndex(input, bundle_index_));
    const io::Record& record = input.records[i];
    LH_ASSIGN_OR_RETURN(std::string key, key_interp_(record));
    Tuple next;
    next.records = input.records;
    if (broadcast_) {
      next.pointer = io::Pointer::Broadcast(std::move(key));
    } else if (partition_interp_) {
      LH_ASSIGN_OR_RETURN(std::string pkey, partition_interp_(record));
      next.pointer = io::Pointer(std::move(pkey), std::move(key));
    } else {
      next.pointer = io::Pointer::Keyed(std::move(key));
    }
    out->push_back(std::move(next));
    return Status::OK();
  }

 private:
  Interpreter key_interp_;
  Interpreter partition_interp_;
  size_t bundle_index_;
  bool broadcast_;
};

class IndexEntryReferencer final : public Referencer {
 public:
  explicit IndexEntryReferencer(std::string name)
      : Referencer(std::move(name)) {}

  Status Execute(const ExecContext&, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    if (input.records.empty()) {
      return Status::InvalidArgument("index-entry referencer on empty bundle");
    }
    LH_ASSIGN_OR_RETURN(io::Pointer ptr,
                        index::ParseIndexEntry(input.last_record()));
    Tuple next;
    // The entry record was only a pointer carrier; drop it from the bundle
    // so join output contains base records only.
    next.records.assign(input.records.begin(), input.records.end() - 1);
    next.pointer = std::move(ptr);
    out->push_back(std::move(next));
    return Status::OK();
  }
};

class RangeReferencer final : public Referencer {
 public:
  RangeReferencer(std::string name, Interpreter lo_interp,
                  Interpreter hi_interp, size_t bundle_index,
                  Interpreter partition_interp)
      : Referencer(std::move(name)),
        lo_interp_(std::move(lo_interp)),
        hi_interp_(std::move(hi_interp)),
        partition_interp_(std::move(partition_interp)),
        bundle_index_(bundle_index) {}

  Status Execute(const ExecContext&, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    LH_ASSIGN_OR_RETURN(size_t i, ResolveBundleIndex(input, bundle_index_));
    const io::Record& record = input.records[i];
    LH_ASSIGN_OR_RETURN(std::string lo, lo_interp_(record));
    LH_ASSIGN_OR_RETURN(std::string hi, hi_interp_(record));
    Tuple next;
    next.records = input.records;
    next.is_range = true;
    if (partition_interp_) {
      LH_ASSIGN_OR_RETURN(std::string pkey, partition_interp_(record));
      next.pointer = io::Pointer(pkey, std::move(lo));
      next.pointer_hi = io::Pointer(std::move(pkey), std::move(hi));
    } else {
      next.pointer = io::Pointer::Broadcast(std::move(lo));
      next.pointer_hi = io::Pointer::Broadcast(std::move(hi));
    }
    out->push_back(std::move(next));
    return Status::OK();
  }

 private:
  Interpreter lo_interp_;
  Interpreter hi_interp_;
  Interpreter partition_interp_;
  size_t bundle_index_;
};

}  // namespace

StageFunctionPtr MakeKeyReferencer(std::string name, Interpreter key_interp,
                                   size_t bundle_index,
                                   Interpreter partition_interp) {
  return std::make_shared<KeyReferencer>(std::move(name),
                                         std::move(key_interp), bundle_index,
                                         std::move(partition_interp),
                                         /*broadcast=*/false);
}

StageFunctionPtr MakeBroadcastReferencer(std::string name,
                                         Interpreter key_interp,
                                         size_t bundle_index) {
  return std::make_shared<KeyReferencer>(std::move(name),
                                         std::move(key_interp), bundle_index,
                                         nullptr, /*broadcast=*/true);
}

StageFunctionPtr MakeIndexEntryReferencer(std::string name) {
  return std::make_shared<IndexEntryReferencer>(std::move(name));
}

StageFunctionPtr MakeRangeReferencer(std::string name, Interpreter lo_interp,
                                     Interpreter hi_interp,
                                     size_t bundle_index,
                                     Interpreter partition_interp) {
  return std::make_shared<RangeReferencer>(
      std::move(name), std::move(lo_interp), std::move(hi_interp),
      bundle_index, std::move(partition_interp));
}

}  // namespace lakeharbor::rede
