#pragma once

#include <memory>
#include <string>

#include "common/status_or.h"
#include "io/partitioned_file.h"
#include "rede/statistics.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// What the advisor recommends for a selective job.
enum class PlanKind {
  kStructure,  ///< index-driven Reference-Dereference job (ReDe w/ SMPE)
  kScan,       ///< full-scan plan (hash joins) — the high-selectivity regime
};

const char* PlanKindToString(PlanKind kind);

/// Inputs describing the candidate index-driven plan.
struct PlanQuery {
  /// The driving structure (the index whose range the job starts from).
  std::shared_ptr<io::BtreeFile> driving_index;
  /// Inclusive key range on the driving structure.
  std::string range_lo, range_hi;
  /// Average random reads the pointer-chasing chain performs per driving
  /// match (stage count times fan-out; job authors know their chains).
  double ios_per_match = 10.0;
  /// Non-device cost per chained I/O (queue hops, network latency,
  /// referencer CPU), added to the device service time. Calibrate once by
  /// timing a sample job; 0 models a perfectly overlapped engine.
  double per_io_overhead_us = 0.0;
  /// Bytes a scan-based plan must read (sum of the scanned files).
  uint64_t scan_bytes = 0;
  /// Optional pre-built statistics over the driving structure. When set,
  /// match estimation reads the histogram (no query-time probe at all);
  /// otherwise one partition of the structure is probed and extrapolated.
  const EquiDepthHistogram* histogram = nullptr;
};

struct PlanEstimate {
  PlanKind choice = PlanKind::kStructure;
  double estimated_matches = 0;  ///< extrapolated driving-index matches
  double structure_ms = 0;       ///< modeled index-plan time
  double scan_ms = 0;            ///< modeled scan-plan time
};

/// A minimal cost-based plan chooser — the facility the paper's evaluation
/// note asks for: "If ReDe implements [a query optimizer], ReDe could
/// choose data processing plans appropriately based on query selectivities;
/// i.e., ReDe would perform comparably with Impala in the high selectivity
/// range" (§III-E). It also serves §V-B's structure-maintenance question by
/// exposing when a structure stops paying for itself.
///
/// Selectivity is estimated by probing ONE partition of the driving index
/// (paying one real index probe) and extrapolating by the partition count;
/// plan costs come from the cluster's device model:
///   structure_ms ~ matches * ios_per_match * latency / (nodes * io_slots)
///   scan_ms      ~ scan_bytes / (nodes * scan_bandwidth)
class StructureAdvisor {
 public:
  explicit StructureAdvisor(sim::Cluster* cluster) : cluster_(cluster) {
    LH_CHECK(cluster_ != nullptr);
  }

  StatusOr<PlanEstimate> Choose(const PlanQuery& query) const;

 private:
  sim::Cluster* cluster_;
};

}  // namespace lakeharbor::rede
