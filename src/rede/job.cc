#include "rede/job.h"

#include "common/string_util.h"

namespace lakeharbor::rede {

std::string Job::Describe(const MetricsSnapshot* metrics) const {
  std::string out = "job '" + name_ + "'\n";
  out += "  initial: ";
  if (initial_input_.is_range) {
    out += "range [" + initial_input_.pointer.key + ", " +
           initial_input_.pointer_hi.key + "]";
  } else {
    out += "point " + initial_input_.pointer.key;
  }
  if (!initial_input_.pointer.has_partition) {
    out += initial_input_.resolve_local ? " (broadcast, resolved locally)"
                                        : " (partition-pruned)";
  }
  out += "\n";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const StageFunction& fn = *stages_[i];
    out += StrFormat("  stage %zu: %-13s %s", i,
                     fn.IsDereferencer() ? "Dereferencer" : "Referencer",
                     fn.name().c_str());
    if (fn.IsDereferencer() && !fn.WantsBroadcast()) {
      out += " [prunes partitions]";
    }
    if (metrics != nullptr && i < metrics->per_stage.size()) {
      out += StrFormat("  (invoked %llu, emitted %llu)",
                       static_cast<unsigned long long>(
                           metrics->per_stage[i].invocations),
                       static_cast<unsigned long long>(
                           metrics->per_stage[i].emitted));
    }
    out += "\n";
  }
  return out;
}

StatusOr<Job> JobBuilder::Build() {
  if (job_.stages_.empty()) {
    return Status::InvalidArgument("job '" + job_.name_ + "' has no stages");
  }
  for (size_t i = 0; i < job_.stages_.size(); ++i) {
    if (job_.stages_[i] == nullptr) {
      return Status::InvalidArgument("job '" + job_.name_ + "' stage " +
                                     std::to_string(i) + " is null");
    }
  }
  if (!job_.stages_.front()->IsDereferencer()) {
    return Status::InvalidArgument(
        "job '" + job_.name_ +
        "' must start with a Dereferencer consuming the initial pointer");
  }
  // The initial input reaches the first dereferencer exactly like a
  // broadcast tuple when it carries no partition information — unless the
  // first stage opts out of broadcasting (partition-pruning dereferencers
  // locate their partitions themselves and must run exactly once).
  if (!job_.initial_input_.pointer.has_partition &&
      job_.stages_.front()->WantsBroadcast()) {
    job_.initial_input_.resolve_local = true;
  }
  return std::move(job_);
}

}  // namespace lakeharbor::rede
