#pragma once

#include <memory>
#include <vector>

#include "common/retry.h"
#include "concurrent/inflight_tracker.h"
#include "concurrent/mpmc_queue.h"
#include "concurrent/thread_pool.h"
#include "rede/executor.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// Tuning knobs for scalable massively parallel execution.
struct SmpeOptions {
  /// Worker threads per simulated node. The paper's engine defaults to 1000
  /// threads per node; we default lower for laptop-scale clusters and sweep
  /// this knob in the thread-pool ablation bench.
  size_t threads_per_node = 64;

  /// The paper's optimization: "ReDe does not switch threads for
  /// Referencers by default to avoid excessive context switching". When
  /// true, a Referencer runs inline on the thread that produced its input;
  /// when false, every Referencer invocation is a separate pool task.
  bool inline_referencers = true;

  /// Per-task retry of Dereferencer failures whose Status is retryable
  /// (kIoError / kUnavailable / kResourceExhausted): the failed invocation
  /// is re-executed on the same thread after exponential backoff, and its
  /// earlier partial emissions are discarded, so a retried task remains
  /// exactly-once with respect to downstream stages. Permanent errors (and
  /// exhausted retries) fail the job fast. Disabled by default — the
  /// pre-existing fail-fast semantics.
  RetryPolicy retry;
};

/// Scalable Massively Parallel Execution (Algorithm 1).
///
/// The job is distributed to every node. Each node owns an input queue of
/// fine-grained tasks {stage, tuple}; a dispatcher thread drains the queue
/// and hands tasks to the node's thread pool, so executing one function
/// never blocks the execution of other stages and functions. Emissions are
/// routed by the data itself:
///   - next stage is a Referencer (inline mode): run immediately, cascade;
///   - tuple carries partition information: stay on the emitting node (the
///     Dereferencer performs the possibly-remote fetch);
///   - tuple carries none: replicate to every node's queue marked LOCAL
///     (broadcast, lines 28-33).
/// Completion is detected by an in-flight task tracker reaching zero.
///
/// Thread pools are created once per executor and reused across jobs, as in
/// the prototype ("manages threads in a thread pool and reuses them").
class SmpeExecutor final : public Executor {
 public:
  SmpeExecutor(sim::Cluster* cluster, SmpeOptions options);
  ~SmpeExecutor() override;
  LH_DISALLOW_COPY_AND_ASSIGN(SmpeExecutor);

  const std::string& name() const override { return name_; }
  const SmpeOptions& options() const { return options_; }

  StatusOr<JobResult> Execute(const Job& job, const ResultSink& sink) override;

 private:
  struct Task {
    size_t stage;
    Tuple tuple;
  };
  struct RunState;  // per-Execute state; defined in .cc

  void RunTask(RunState& state, sim::NodeId node, Task task) const;
  void Route(RunState& state, sim::NodeId node, size_t next_stage,
             std::vector<Tuple>&& tuples) const;

  std::string name_ = "rede-smpe";
  sim::Cluster* cluster_;
  SmpeOptions options_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;  // one per node
};

}  // namespace lakeharbor::rede
