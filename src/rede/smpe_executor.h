#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/retry.h"
#include "concurrent/inflight_tracker.h"
#include "concurrent/mpmc_queue.h"
#include "concurrent/thread_pool.h"
#include "rede/executor.h"
#include "rede/hedge.h"
#include "rede/record_cache.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// Dereference batching: coalesce same-partition keyed pointers emitted by
/// one task's cascade into a single fused batch read (one seek plus cheap
/// follow-ups) instead of one task — and one random read — per pointer.
/// Off by default; broadcast and localized tuples are never batched.
struct DerefBatchOptions {
  bool enabled = false;
  /// Largest fused batch; bigger same-partition groups are split. Bounds
  /// both the single-task latency and the blast radius of a batch retry.
  size_t max_batch_size = 64;
};

/// Tuning knobs for scalable massively parallel execution.
struct SmpeOptions {
  /// Worker threads per simulated node. The paper's engine defaults to 1000
  /// threads per node; we default lower for laptop-scale clusters and sweep
  /// this knob in the thread-pool ablation bench.
  size_t threads_per_node = 64;

  /// The paper's optimization: "ReDe does not switch threads for
  /// Referencers by default to avoid excessive context switching". When
  /// true, a Referencer runs inline on the thread that produced its input;
  /// when false, every Referencer invocation is a separate pool task.
  bool inline_referencers = true;

  /// Per-task retry of Dereferencer failures whose Status is retryable
  /// (kIoError / kUnavailable / kResourceExhausted): the failed invocation
  /// is re-executed on the same thread after exponential backoff, and its
  /// earlier partial emissions are discarded, so a retried task remains
  /// exactly-once with respect to downstream stages. Permanent errors (and
  /// exhausted retries) fail the job fast. Disabled by default — the
  /// pre-existing fail-fast semantics.
  RetryPolicy retry;

  /// Same-partition pointer coalescing (off by default).
  DerefBatchOptions batch;

  /// Node-local record cache consulted by Dereferencers (off by default).
  /// One cache per executor, shared across that executor's runs — files are
  /// immutable after Seal(), so entries never go stale.
  RecordCacheOptions cache;

  /// Hedged reads against a second replica when the primary is slow (off
  /// by default). Threaded mode only: under deterministic_seed schedules
  /// are single-threaded and never race, so the knob is ignored there.
  HedgeOptions hedge;

  /// Wall-clock deadline of one Execute() call in milliseconds (0 = no
  /// deadline). On expiry the run's CancelToken flips: queued tasks drain
  /// without executing, in-flight ones finish their current attempt, and
  /// Execute returns kDeadlineExceeded with zero leaked tasks. Promptness
  /// is bounded by the longest single device operation plus one retry
  /// backoff interval.
  uint64_t deadline_ms = 0;

  /// When nonzero, Execute() runs single-threaded on the calling thread,
  /// picking the next task from a seeded PRNG over the nonempty node
  /// queues. The same seed replays the same interleaving exactly; different
  /// seeds explore different (but valid) schedules. No dispatcher threads
  /// or pools are used. For tests.
  uint64_t deterministic_seed = 0;

  /// Per-job trace sampling: 0 disables tracing entirely (the default — the
  /// hot path then performs no span work and no allocations), 1 traces
  /// every job, N traces every Nth Execute() call. A traced job records a
  /// span for every stage invocation, dereference batch, queue wait,
  /// retry-backoff sleep, failover hop, and hedge arm; the trace rides back
  /// on JobResult::trace (export with obs::ToChromeTraceJson, profile with
  /// rede::ProfileOf).
  uint64_t trace_sample_n = 0;
};

/// Scalable Massively Parallel Execution (Algorithm 1).
///
/// The job is distributed to every node. Each node owns an input queue of
/// fine-grained tasks {stage, tuple}; a dispatcher thread drains the queue
/// and hands tasks to the node's thread pool, so executing one function
/// never blocks the execution of other stages and functions. Emissions are
/// routed by the data itself:
///   - next stage is a Referencer (inline mode): run immediately, cascade;
///   - tuple carries partition information: stay on the emitting node (the
///     Dereferencer performs the possibly-remote fetch);
///   - tuple carries none: replicate to every node's queue marked LOCAL
///     (broadcast, lines 28-33).
/// Completion is detected by an in-flight task tracker reaching zero.
///
/// Thread pools are created once per executor and reused across jobs, as in
/// the prototype ("manages threads in a thread pool and reuses them").
class SmpeExecutor final : public Executor {
 public:
  SmpeExecutor(sim::Cluster* cluster, SmpeOptions options);
  ~SmpeExecutor() override;
  LH_DISALLOW_COPY_AND_ASSIGN(SmpeExecutor);

  const std::string& name() const override { return name_; }
  const SmpeOptions& options() const { return options_; }

  using Executor::Execute;
  StatusOr<JobResult> Execute(const Job& job, const ResultSink& sink,
                              CancelToken* cancel) override;

  /// The executor's record cache, or nullptr when caching is disabled.
  RecordCache* record_cache() const { return cache_.get(); }

  /// Dwell distribution of the per-node thread-pool queues, accumulated
  /// across every run of this executor (the pools outlive runs).
  const obs::LatencyHistogram& pool_dwell_us() const { return pool_dwell_; }

 private:
  /// A fine-grained unit of work: one tuple normally, or a coalesced batch
  /// of same-partition keyed tuples when batching is enabled.
  /// `enqueue_us` is stamped when the task enters a node queue, so the
  /// dequeueing thread can attribute queue dwell.
  struct Task {
    size_t stage;
    std::vector<Tuple> tuples;
    int64_t enqueue_us = 0;
  };
  struct RunState;  // per-Execute state; defined in .cc

  void RunTask(RunState& state, sim::NodeId node, Task task) const;
  void Route(RunState& state, sim::NodeId node, size_t next_stage,
             std::vector<Tuple>&& tuples) const;
  void SeedInitial(RunState& state) const;
  /// Single-threaded seeded-schedule drain (deterministic_seed != 0).
  void RunDeterministic(RunState& state) const;

  /// Stable per-node pool pointers for a run over `num_nodes` nodes,
  /// lazily growing `pools_` when the cluster gained nodes since the last
  /// run (elastic membership). Pools are only ever appended, never
  /// destroyed, so the returned raw pointers stay valid for the run even
  /// while a concurrent Execute grows the vector.
  std::vector<ThreadPool*> SnapshotPools(uint32_t num_nodes);

  std::string name_ = "rede-smpe";
  sim::Cluster* cluster_;
  SmpeOptions options_;
  obs::LatencyHistogram pool_dwell_;  // must outlive pools_
  /// One pool per node; guarded by pools_mutex_ for elastic growth.
  mutable std::mutex pools_mutex_;
  mutable std::vector<std::unique_ptr<ThreadPool>> pools_;
  std::unique_ptr<RecordCache> cache_;  // nullptr unless cache.enabled
  /// Monotonic Execute() counter driving per-job trace sampling.
  std::atomic<uint64_t> run_seq_{0};
};

}  // namespace lakeharbor::rede
