#include "rede/statistics.h"

#include <algorithm>

namespace lakeharbor::rede {

StatusOr<EquiDepthHistogram> EquiDepthHistogram::Build(
    io::PartitionedFile& index, size_t num_buckets, const RetryPolicy& retry) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  // Collect the key multiset with one charged pass over every partition
  // (the build runs on each partition's owning node, so scans are local).
  std::vector<std::string> keys;
  keys.reserve(index.num_records());
  for (uint32_t p = 0; p < index.num_partitions(); ++p) {
    const size_t keys_before = keys.size();
    LH_RETURN_NOT_OK(RunWithRetry(retry, [&]() -> Status {
      keys.resize(keys_before);  // drop the failed attempt's partial pass
      return index.ScanPartitionKeyed(
          index.NodeOfPartition(p), p,
          [&](const std::string& key, const io::Record&) {
            keys.push_back(key);
            return true;
          });
    }));
  }
  EquiDepthHistogram histogram;
  histogram.total_ = keys.size();
  if (keys.empty()) return histogram;

  std::sort(keys.begin(), keys.end());
  histogram.min_key_ = keys.front();
  histogram.max_key_ = keys.back();

  const size_t depth = std::max<size_t>(1, keys.size() / num_buckets);
  size_t start = 0;
  while (start < keys.size()) {
    size_t end = std::min(keys.size(), start + depth);
    // Never split a run of duplicates across buckets: extend the bucket to
    // the end of the run so that upper bounds are distinct.
    while (end < keys.size() && keys[end] == keys[end - 1]) ++end;
    histogram.upper_bounds_.push_back(keys[end - 1]);
    histogram.depths_.push_back(static_cast<uint64_t>(end - start));
    start = end;
  }
  return histogram;
}

double EquiDepthHistogram::EstimateMatches(const std::string& lo,
                                           const std::string& hi) const {
  if (total_ == 0 || hi < lo || hi < min_key_ || lo > max_key_) return 0.0;
  double estimate = 0.0;
  std::string bucket_lo = min_key_;
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    const std::string& bucket_hi = upper_bounds_[i];
    // Bucket i spans [bucket_lo, bucket_hi] (first bucket) or
    // (prev_hi, bucket_hi] — treated as a closed span for overlap tests.
    const bool overlaps = !(hi < bucket_lo || lo > bucket_hi);
    if (overlaps) {
      const bool fully_covered = lo <= bucket_lo && bucket_hi <= hi;
      // Boundary buckets count half their depth: keys are opaque bytes, so
      // no finer intra-bucket interpolation is possible.
      estimate += fully_covered ? static_cast<double>(depths_[i])
                                : static_cast<double>(depths_[i]) / 2.0;
    }
    bucket_lo = bucket_hi;
    if (bucket_hi > hi) break;
  }
  return std::min(estimate, static_cast<double>(total_));
}

double EquiDepthHistogram::EstimateSelectivity(const std::string& lo,
                                               const std::string& hi) const {
  if (total_ == 0) return 0.0;
  return EstimateMatches(lo, hi) / static_cast<double>(total_);
}

}  // namespace lakeharbor::rede
