#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "io/record.h"

namespace lakeharbor::rede {

/// Knobs for the node-local record cache. Off by default so existing
/// executor semantics (fail-fast, retry exactly-once emission) are
/// unchanged unless a job opts in.
struct RecordCacheOptions {
  bool enabled = false;
  /// Total byte budget across all shards (records + key + entry overhead).
  size_t byte_budget = 64ull * 1024 * 1024;
  /// Lock striping. Rounded up to at least 1.
  size_t shards = 16;
  /// Fixed accounting overhead charged per entry (node + map bookkeeping),
  /// so caching many tiny records cannot blow past the budget for free.
  size_t entry_overhead_bytes = 64;
};

/// Monotonic counters, snapshotted by executors into MetricsSnapshot.
struct RecordCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  /// Admissions abandoned (error paths) or rejected (entry alone exceeds
  /// the shard budget).
  uint64_t aborted_admissions = 0;
  uint64_t rejected_admissions = 0;
};

/// A sharded LRU cache of resolved pointer lookups: key is
/// "(file, partition, in-partition key)", value is the full result set of
/// that lookup — including the EMPTY result, which is cached too (negative
/// caching), since files are immutable after Seal().
///
/// Admission is two-phase so that retried batches can never double-admit:
///   if (StartAdmission(k)) { read...; ok ? CommitAdmission(k, recs)
///                                        : AbortAdmission(k); }
/// StartAdmission returns false while another thread holds the same key's
/// reservation or the key is already resident; CommitAdmission requires the
/// reservation, so "admit the same read twice" is structurally impossible.
/// The pending-reservation count is exposed as inflight() and must drain to
/// zero at executor quiescence.
///
/// Pins protect entries from eviction (working-set residency for hot
/// dimension records). Lookup returns a *copy* of the record handles
/// (Records are cheap shared_ptr wrappers), so pins are a residency
/// guarantee, not a memory-safety requirement; Invalidate is allowed on
/// pinned entries (holders keep their copies).
class RecordCache {
 public:
  explicit RecordCache(RecordCacheOptions options);
  LH_DISALLOW_COPY_AND_ASSIGN(RecordCache);

  /// Canonical cache key for a lookup against `file_name`.
  static std::string MakeKey(const std::string& file_name, uint32_t partition,
                             const std::string& key);

  /// Hit: promotes to MRU and returns a copy of the cached result (possibly
  /// an empty vector — a cached miss). Miss: returns nullopt.
  std::optional<std::vector<io::Record>> Lookup(const std::string& key);

  /// Reserve `key` for admission. False if already resident or reserved.
  bool StartAdmission(const std::string& key);

  /// What a CommitAdmission actually did, so the committing job can charge
  /// the admission (and the evictions its insert triggered) to its own
  /// metrics: per-job sums of these outcomes equal the global counters
  /// exactly, which is what retires the old snapshot-delta attribution.
  struct AdmissionOutcome {
    bool admitted = false;   ///< false = rejected (oversize entry)
    uint32_t evictions = 0;  ///< entries displaced by this insert
  };

  /// Publish the result of a reserved read. Must follow a successful
  /// StartAdmission for the same key. The entry may still be rejected if it
  /// alone exceeds the shard budget (counted, not an error).
  AdmissionOutcome CommitAdmission(const std::string& key,
                                   std::vector<io::Record> records);

  /// Drop a reservation without publishing (the read failed).
  void AbortAdmission(const std::string& key);

  /// Pin/unpin a resident entry. Pin returns false on a non-resident key.
  /// Pins nest; eviction skips entries with pins > 0.
  bool Pin(const std::string& key);
  void Unpin(const std::string& key);

  /// Remove `key` if resident (pinned or not). Returns true if removed.
  /// Used by executors to invalidate entries admitted by a batch that
  /// subsequently failed, so its retry re-reads instead of re-admitting.
  bool Invalidate(const std::string& key);

  /// Drop every resident entry (reservations are untouched).
  void Clear();

  size_t entries() const;
  size_t bytes() const;
  /// Outstanding admission reservations. Zero at executor quiescence.
  size_t inflight() const;
  size_t byte_budget() const { return options_.byte_budget; }
  const RecordCacheOptions& options() const { return options_; }

  RecordCacheStats stats() const;

  /// Invariant audit for tests: per-shard byte accounting matches the
  /// resident entries and map/LRU-list agree. Returns false on corruption.
  bool CheckConsistency() const;

 private:
  struct Entry {
    std::string key;
    std::vector<io::Record> records;
    size_t bytes = 0;
    uint32_t pins = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    std::unordered_set<std::string> pending;  // reserved, not yet resident
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  size_t EntryBytes(const std::string& key,
                    const std::vector<io::Record>& records) const;
  /// Evict from the LRU tail (skipping pinned entries) until the shard fits
  /// its budget. Caller holds the shard lock. Returns how many entries were
  /// evicted.
  uint32_t EvictIfNeeded(Shard& shard);

  RecordCacheOptions options_;
  size_t shard_budget_;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> admissions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> aborted_admissions_{0};
  std::atomic<uint64_t> rejected_admissions_{0};
};

}  // namespace lakeharbor::rede
