#include "rede/record_cache.h"

#include <functional>

namespace lakeharbor::rede {

RecordCache::RecordCache(RecordCacheOptions options)
    : options_(options),
      shards_(options.shards == 0 ? 1 : options.shards) {
  if (options_.shards == 0) options_.shards = 1;
  shard_budget_ = options_.byte_budget / shards_.size();
  if (shard_budget_ == 0) shard_budget_ = 1;
}

std::string RecordCache::MakeKey(const std::string& file_name,
                                 uint32_t partition, const std::string& key) {
  // '\x1f' (unit separator) cannot collide with partition digits and is not
  // produced by the key codec, so distinct (file, partition, key) triples
  // map to distinct cache keys.
  std::string out;
  out.reserve(file_name.size() + key.size() + 12);
  out.append(file_name);
  out.push_back('\x1f');
  out.append(std::to_string(partition));
  out.push_back('\x1f');
  out.append(key);
  return out;
}

RecordCache::Shard& RecordCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const RecordCache::Shard& RecordCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

size_t RecordCache::EntryBytes(const std::string& key,
                               const std::vector<io::Record>& records) const {
  size_t bytes = key.size() + options_.entry_overhead_bytes;
  for (const io::Record& r : records) bytes += r.size();
  return bytes;
}

std::optional<std::vector<io::Record>> RecordCache::Lookup(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->records;
}

bool RecordCache::StartAdmission(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.count(key) != 0) return false;
  return shard.pending.insert(key).second;
}

RecordCache::AdmissionOutcome RecordCache::CommitAdmission(
    const std::string& key, std::vector<io::Record> records) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  LH_CHECK_MSG(shard.pending.erase(key) == 1,
               "CommitAdmission without StartAdmission");
  // Invalidate-then-readmit races are legal; a resident duplicate is not
  // (StartAdmission refuses resident keys, and the reservation blocks
  // concurrent admitters).
  LH_CHECK_MSG(shard.map.count(key) == 0,
               "key became resident while reserved");
  size_t entry_bytes = EntryBytes(key, records);
  if (entry_bytes > shard_budget_) {
    rejected_admissions_.fetch_add(1, std::memory_order_relaxed);
    return AdmissionOutcome{};
  }
  shard.lru.push_front(Entry{key, std::move(records), entry_bytes, 0});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += entry_bytes;
  admissions_.fetch_add(1, std::memory_order_relaxed);
  return AdmissionOutcome{true, EvictIfNeeded(shard)};
}

void RecordCache::AbortAdmission(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  LH_CHECK_MSG(shard.pending.erase(key) == 1,
               "AbortAdmission without StartAdmission");
  aborted_admissions_.fetch_add(1, std::memory_order_relaxed);
}

bool RecordCache::Pin(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  ++it->second->pins;
  return true;
}

void RecordCache::Unpin(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  // The entry may have been invalidated while pinned (and possibly even
  // re-admitted with zero pins): pins are advisory residency hints, so a
  // dangling Unpin is ignored rather than treated as corruption.
  if (it == shard.map.end() || it->second->pins == 0) return;
  --it->second->pins;
}

bool RecordCache::Invalidate(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  shard.bytes -= it->second->bytes;
  shard.lru.erase(it->second);
  shard.map.erase(it);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RecordCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.map.clear();
    shard.bytes = 0;
  }
}

size_t RecordCache::entries() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

size_t RecordCache::bytes() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.bytes;
  }
  return n;
}

size_t RecordCache::inflight() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.pending.size();
  }
  return n;
}

RecordCacheStats RecordCache::stats() const {
  RecordCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.admissions = admissions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.aborted_admissions = aborted_admissions_.load(std::memory_order_relaxed);
  s.rejected_admissions = rejected_admissions_.load(std::memory_order_relaxed);
  return s;
}

bool RecordCache::CheckConsistency() const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.size() != shard.lru.size()) return false;
    size_t bytes = 0;
    for (const Entry& e : shard.lru) {
      auto it = shard.map.find(e.key);
      if (it == shard.map.end() || &*it->second != &e) return false;
      if (shard.pending.count(e.key) != 0) return false;  // resident+reserved
      bytes += e.bytes;
    }
    if (bytes != shard.bytes) return false;
    if (shard.bytes > shard_budget_ &&
        // over budget is only legal when everything left is pinned
        [&] {
          for (const Entry& e : shard.lru) {
            if (e.pins == 0) return true;
          }
          return false;
        }()) {
      return false;
    }
  }
  return true;
}

uint32_t RecordCache::EvictIfNeeded(Shard& shard) {
  uint32_t evicted = 0;
  auto it = shard.lru.end();
  while (shard.bytes > shard_budget_ && it != shard.lru.begin()) {
    --it;
    if (it->pins > 0) continue;  // pinned entries are eviction-exempt
    shard.bytes -= it->bytes;
    shard.map.erase(it->key);
    it = shard.lru.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    ++evicted;
  }
  return evicted;
}

}  // namespace lakeharbor::rede
