#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "rede/job.h"
#include "rede/metrics.h"

namespace lakeharbor::rede {

/// Receives job output tuples (emissions of the final stage). Called from
/// many executor threads concurrently; implementations must be thread-safe.
using ResultSink = std::function<void(const Tuple& tuple)>;

/// What an executor returns besides the output stream.
struct JobResult {
  MetricsSnapshot metrics;
};

/// Common interface of the two ReDe execution strategies evaluated in
/// Fig 7: SmpeExecutor (w/ SMPE) and PartitionedExecutor (w/o SMPE).
class Executor {
 public:
  virtual ~Executor() = default;
  virtual const std::string& name() const = 0;

  /// Run the job, streaming output tuples into `sink` (may be null when
  /// only metrics are wanted). Blocking; returns when the job has drained.
  virtual StatusOr<JobResult> Execute(const Job& job,
                                      const ResultSink& sink) = 0;
};

/// Thread-safe tuple collector for callers that want materialized results.
class TupleCollector {
 public:
  ResultSink AsSink() {
    return [this](const Tuple& tuple) {
      std::lock_guard<std::mutex> lock(mutex_);
      tuples_.push_back(tuple);
    };
  }

  std::vector<Tuple> TakeTuples() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(tuples_);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return tuples_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Tuple> tuples_;
};

}  // namespace lakeharbor::rede
