#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include <memory>

#include "common/cancel.h"
#include "common/status_or.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "rede/job.h"
#include "rede/metrics.h"

namespace lakeharbor::rede {

/// Receives job output tuples (emissions of the final stage). Called from
/// many executor threads concurrently; implementations must be thread-safe.
using ResultSink = std::function<void(const Tuple& tuple)>;

/// What an executor returns besides the output stream.
struct JobResult {
  MetricsSnapshot metrics;
  /// The run's span trace when this run was traced (see
  /// SmpeOptions::trace_sample_n), nullptr otherwise.
  std::shared_ptr<const obs::TraceLog> trace;
};

/// Build the per-stage/per-node query profile of a traced run, reconciled
/// against the run's invocation counters. Returns an empty profile when the
/// run was not traced.
inline obs::JobProfile ProfileOf(const JobResult& result) {
  if (result.trace == nullptr) return obs::JobProfile();
  obs::ProfileInputs inputs;
  inputs.stage_invocations = result.metrics.StageInvocations();
  inputs.wall_ms = result.metrics.wall_ms;
  return obs::JobProfile::Build(*result.trace, inputs);
}

/// Common interface of the two ReDe execution strategies evaluated in
/// Fig 7: SmpeExecutor (w/ SMPE) and PartitionedExecutor (w/o SMPE).
///
/// Execute() is safe to call concurrently from many threads: all per-run
/// state (metrics, trace, in-flight tracking, cancellation) lives in a
/// per-call RunState, and cache activity is charged at its call sites to
/// the performing run — overlapping runs share pools and the record cache
/// but never each other's counters.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual const std::string& name() const = 0;

  /// Run the job, streaming output tuples into `sink` (may be null when
  /// only metrics are wanted). Blocking; returns when the job has drained.
  ///
  /// `cancel` optionally injects an external CancelToken (the scheduler's
  /// per-job token): the run adopts it as its fail-fast flag, so an outside
  /// Cancel() — deadline expiry, tenant eviction — drains the run exactly
  /// like an internal permanent error, interrupting retry backoffs. Pass
  /// nullptr (or use the 2-arg overload) for a self-contained run. The
  /// token must outlive the call and be un-cancelled at entry.
  virtual StatusOr<JobResult> Execute(const Job& job, const ResultSink& sink,
                                      CancelToken* cancel) = 0;

  /// Convenience overload: run without an external cancellation token.
  StatusOr<JobResult> Execute(const Job& job, const ResultSink& sink) {
    return Execute(job, sink, nullptr);
  }
};

/// Thread-safe tuple collector for callers that want materialized results.
class TupleCollector {
 public:
  ResultSink AsSink() {
    return [this](const Tuple& tuple) {
      std::lock_guard<std::mutex> lock(mutex_);
      tuples_.push_back(tuple);
    };
  }

  std::vector<Tuple> TakeTuples() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(tuples_);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return tuples_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Tuple> tuples_;
};

}  // namespace lakeharbor::rede
