#include "rede/engine.h"

namespace lakeharbor::rede {

const char* ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kSmpe:
      return "smpe";
    case ExecutionMode::kPartitioned:
      return "partitioned";
  }
  return "?";
}

Engine::Engine(sim::Cluster* cluster, EngineOptions options)
    : cluster_(cluster),
      index_builder_(&catalog_),
      smpe_executor_(cluster, options.smpe),
      // Both execution modes share one retry policy, cache config, and
      // trace-sampling cadence, so ExecuteCollect comparisons across modes
      // see identical failure, caching, and observability semantics (each
      // executor still owns a separate cache and run counter).
      partitioned_executor_(cluster, options.smpe.retry, options.smpe.cache,
                            options.smpe.trace_sample_n) {
  LH_CHECK(cluster_ != nullptr);
}

StatusOr<std::shared_ptr<io::BtreeFile>> Engine::BuildStructure(
    const index::IndexSpec& spec, const std::string& attribute) {
  index::IndexMeta meta;
  meta.index_name = spec.index_name;
  meta.base_file = spec.base_file;
  meta.attribute = attribute;
  meta.placement = spec.placement;
  meta.state = index::IndexMeta::State::kBuilding;
  LH_RETURN_NOT_OK(index_catalog_.Add(meta));
  auto result = index_builder_.Build(spec);
  LH_RETURN_NOT_OK(index_catalog_.SetState(
      spec.index_name, result.ok() ? index::IndexMeta::State::kReady
                                   : index::IndexMeta::State::kFailed));
  return result;
}

StatusOr<JobResult> Engine::Execute(const Job& job, ExecutionMode mode,
                                    const ResultSink& sink,
                                    CancelToken* cancel) {
  switch (mode) {
    case ExecutionMode::kSmpe:
      return smpe_executor_.Execute(job, sink, cancel);
    case ExecutionMode::kPartitioned:
      return partitioned_executor_.Execute(job, sink, cancel);
  }
  return Status::InvalidArgument("unknown execution mode");
}

StatusOr<CollectedResult> Engine::ExecuteCollect(const Job& job,
                                                 ExecutionMode mode) {
  TupleCollector collector;
  LH_ASSIGN_OR_RETURN(JobResult result, Execute(job, mode, collector.AsSink()));
  CollectedResult collected;
  collected.tuples = collector.TakeTuples();
  collected.metrics = result.metrics;
  collected.trace = result.trace;
  return collected;
}

}  // namespace lakeharbor::rede
