#include "rede/builtin_derefs.h"

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "rede/record_cache.h"

namespace lakeharbor::rede {

namespace {

/// Count one event on the run metrics, tolerating contexts without metrics
/// (direct stage-function calls in tests).
void Bump(const ExecContext& ctx,
          std::atomic<uint64_t> ExecMetricsCounters::*member,
          uint64_t n = 1) {
  if (ctx.metrics != nullptr && n != 0) {
    (ctx.metrics->*member).fetch_add(n, std::memory_order_relaxed);
  }
}

/// Charge a committed admission (and the evictions it displaced) to the
/// run that performed it. Call-site counting is what makes per-job cache
/// attribution exact under overlapped runs: the cache's global counters
/// are the sum of these per-job charges, nothing is double-counted.
void CountAdmission(const ExecContext& ctx,
                    const RecordCache::AdmissionOutcome& outcome) {
  if (outcome.admitted) Bump(ctx, &ExecMetricsCounters::cache_admissions);
  Bump(ctx, &ExecMetricsCounters::cache_evictions, outcome.evictions);
}

/// Record one failover hop on a traced run: a known-down replica skipped
/// without a probe (zero-length span, skipped=1) or a read re-issued
/// against the next replica (span covers the re-issued read).
void RecordFailoverSpan(const ExecContext& ctx, uint32_t replica,
                        int64_t t_start_us, int64_t t_end_us, bool skipped) {
  if (ctx.trace == nullptr) return;
  obs::Span span;
  span.name = "failover";
  span.kind = obs::SpanKind::kFailover;
  span.stage = ctx.stage;
  span.node = ctx.node;
  span.t_start_us = t_start_us;
  span.t_end_us = t_end_us;
  span.AddAttr("replica", replica);
  if (skipped) span.AddAttr("skipped", 1);
  ctx.trace->Record(std::move(span));
}

/// Issue a partition read with transparent replica failover. `read` is
/// invoked with a replica index and must be restartable (clear its outputs
/// on entry): replicas known to be down are skipped without a probe, and a
/// replica answering kUnavailable (outage raced the liveness check) hands
/// the read to the next one — BEFORE any retry backoff, which is what keeps
/// a whole-node outage from burning the retry budget against a dead disk.
/// Only kUnavailable fails over: other transient errors (kIoError) are a
/// device hiccup, not a dead node, and stay with the retry policy.
/// When every replica is down the primary is probed anyway so the caller
/// sees the real outage error.
template <typename ReadFn>
Status ReadWithFailover(const ExecContext& ctx, const io::File& file,
                        uint32_t partition, const ReadFn& read) {
  // Per-PARTITION slot count, not the file-level rf: during a rebalance a
  // flipped partition exposes new replicas first with the old set appended
  // as a failover tail (old-or-new reads; see io::PlacementManager).
  const uint32_t rf = file.ReplicaCountFor(partition);
  if (rf <= 1 || ctx.cluster == nullptr) return read(0);
  Status last;
  bool attempted = false;
  for (uint32_t r = 0; r < rf; ++r) {
    if (ctx.cluster->NodeIsDown(file.NodeOfReplica(partition, r))) {
      Bump(ctx, &ExecMetricsCounters::failovers);
      const int64_t now_us = ctx.trace != nullptr ? NowMicros() : 0;
      RecordFailoverSpan(ctx, r, now_us, now_us, /*skipped=*/true);
      continue;
    }
    const bool is_hop = attempted;  // a prior replica already answered
    if (attempted) Bump(ctx, &ExecMetricsCounters::failovers);
    if (r > 0) Bump(ctx, &ExecMetricsCounters::replica_reads);
    const int64_t start_us =
        (is_hop && ctx.trace != nullptr) ? NowMicros() : 0;
    Status status = read(r);
    if (is_hop && ctx.trace != nullptr) {
      RecordFailoverSpan(ctx, r, start_us, NowMicros(), /*skipped=*/false);
    }
    attempted = true;
    if (status.ok() || !status.IsUnavailable()) return status;
    last = status;
  }
  if (!attempted) return read(0);
  return last;
}

/// One side of a hedged read: the spawned primary arm publishes its result
/// here; the calling thread waits with a deadline.
struct HedgeArm {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::vector<io::Record> records;
};

/// Append `record` to a copy of `input`'s bundle, run the filter, and emit.
Status EmitFetched(const Tuple& input, const io::Record& record,
                   const Filter& filter, std::vector<Tuple>* out) {
  Tuple next;
  next.records.reserve(input.records.size() + 1);
  next.records = input.records;
  next.records.push_back(record);
  if (filter) {
    LH_ASSIGN_OR_RETURN(bool keep, filter(next));
    if (!keep) return Status::OK();
  }
  out->push_back(std::move(next));
  return Status::OK();
}

class PointDereferencer final : public Dereferencer {
 public:
  PointDereferencer(std::string name, std::shared_ptr<io::File> file,
                    Filter filter,
                    std::shared_ptr<const index::PartitionBloom> bloom)
      : Dereferencer(std::move(name)),
        file_(std::move(file)),
        filter_(std::move(filter)),
        bloom_(std::move(bloom)) {
    LH_CHECK(file_ != nullptr);
  }

  bool SupportsBatchedDereference() const override { return true; }

  uint32_t PartitionOfPointer(const io::Pointer& ptr) const override {
    return file_->partitioner().PartitionOf(ptr.partition_key);
  }

  uint32_t TargetReplication() const override {
    return file_->replication_factor();
  }

  Status Execute(const ExecContext& ctx, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    if (input.is_range) {
      return Status::InvalidArgument(
          "point dereferencer '" + name() +
          "' received a range pointer; use a range dereferencer");
    }
    std::vector<io::Record> fetched;
    if (input.pointer.has_partition) {
      uint32_t partition = PartitionOfPointer(input.pointer);
      LH_RETURN_NOT_OK(
          FetchOne(ctx, partition, input.pointer.key, &fetched));
    } else {
      // Broadcast pointer. Under SMPE the executor replicated this tuple to
      // every node and marked it resolve_local, so we consult only the
      // partitions local to this node (Algorithm 1: SETPARTITION(input,
      // LOCAL)). Without the mark (partitioned executor: no cross-node task
      // shipping) the single owner consults every partition, paying remote
      // reads instead of broadcast messages. A redirected copy (its target
      // node was down at fan-out) carries that node's id in resolve_owner:
      // this node stands in for it, resolving ITS partitions via failover.
      const sim::NodeId owner = input.resolve_owner == Tuple::kResolveOnSelf
                                    ? ctx.node
                                    : input.resolve_owner;
      for (uint32_t p = 0; p < file_->num_partitions(); ++p) {
        // Ownership is resolved against the tuple's fan-out epoch so a
        // rebalance commit racing this job cannot duplicate or drop a
        // partition across nodes.
        if (input.resolve_local &&
            file_->BroadcastOwner(p, input.resolve_epoch) != owner) {
          continue;
        }
        if (bloom_ != nullptr &&
            !bloom_->MightContain(p, input.pointer.key)) {
          // Membership structure rules this partition out: no probe.
          file_->mutable_access_stats().bloom_skips.fetch_add(
              1, std::memory_order_relaxed);
          continue;
        }
        LH_RETURN_NOT_OK(FetchOne(ctx, p, input.pointer.key, &fetched));
      }
    }
    for (const io::Record& record : fetched) {
      LH_RETURN_NOT_OK(EmitFetched(input, record, filter_, out));
    }
    return Status::OK();
  }

  Status ExecuteBatch(const ExecContext& ctx, const std::vector<Tuple>& inputs,
                      std::vector<Tuple>* out) const override {
    // The executor only batches keyed point tuples, but a direct caller
    // might not: anything else degrades to the per-tuple loop.
    for (const Tuple& t : inputs) {
      if (t.is_range || !t.pointer.has_partition) {
        return StageFunction::ExecuteBatch(ctx, inputs, out);
      }
    }
    if (inputs.empty()) return Status::OK();
    RecordCache* cache = ctx.record_cache;

    // Resolve each DISTINCT (partition, key) once; duplicate pointers in the
    // batch share the result. Cache hits are pinned for the duration of the
    // call so concurrent evictions cannot churn the working set mid-batch.
    using LookupKey = std::pair<uint32_t, std::string>;
    std::map<LookupKey, std::vector<io::Record>> resolved;
    std::map<uint32_t, std::vector<std::string>> missing;  // per partition
    std::vector<std::string> pinned;
    for (const Tuple& input : inputs) {
      uint32_t partition = PartitionOfPointer(input.pointer);
      LookupKey lk{partition, input.pointer.key};
      if (resolved.count(lk) != 0) continue;
      if (cache != nullptr) {
        std::string ck =
            RecordCache::MakeKey(file_->name(), partition, input.pointer.key);
        if (auto hit = cache->Lookup(ck)) {
          Bump(ctx, &ExecMetricsCounters::cache_hits);
          resolved.emplace(std::move(lk), std::move(*hit));
          if (cache->Pin(ck)) pinned.push_back(std::move(ck));
          continue;
        }
        Bump(ctx, &ExecMetricsCounters::cache_misses);
      }
      resolved.emplace(std::move(lk), std::vector<io::Record>{});
      missing[partition].push_back(input.pointer.key);
    }

    // Entries admitted by THIS call, invalidated wholesale if a later
    // partition's read fails: the executor's retry must re-read the whole
    // batch, never observe (or double-admit) a partial one.
    std::vector<std::string> admitted;
    auto unwind = [&](const Status& error) {
      for (const std::string& ck : admitted) {
        if (cache->Invalidate(ck)) {
          Bump(ctx, &ExecMetricsCounters::cache_invalidations);
        }
      }
      for (const std::string& ck : pinned) cache->Unpin(ck);
      return error;
    };
    for (auto& [partition, keys] : missing) {
      // The fused batch read fails over like a point read (hedging is a
      // point-lookup latency tool and does not apply to batches).
      std::vector<std::vector<io::Record>> results;
      Status read = ReadWithFailover(
          ctx, *file_, partition, [&](uint32_t replica) {
            results.clear();
            return file_->GetBatchInPartitionOnReplica(ctx.node, partition,
                                                       replica, keys,
                                                       &results);
          });
      if (!read.ok()) return unwind(read);
      LH_CHECK(results.size() == keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        if (cache != nullptr) {
          std::string ck =
              RecordCache::MakeKey(file_->name(), partition, keys[i]);
          if (cache->StartAdmission(ck)) {
            CountAdmission(ctx, cache->CommitAdmission(ck, results[i]));
            admitted.push_back(std::move(ck));
          }
        }
        resolved[LookupKey{partition, keys[i]}] = std::move(results[i]);
      }
    }

    for (const Tuple& input : inputs) {
      const std::vector<io::Record>& fetched =
          resolved[LookupKey{PartitionOfPointer(input.pointer),
                             input.pointer.key}];
      for (const io::Record& record : fetched) {
        Status emit = EmitFetched(input, record, filter_, out);
        // Emission failures (filter errors) are permanent, not transient:
        // keep the admitted entries (the reads succeeded) but drop pins.
        if (!emit.ok()) {
          for (const std::string& ck : pinned) cache->Unpin(ck);
          return emit;
        }
      }
    }
    if (cache != nullptr) {
      for (const std::string& ck : pinned) cache->Unpin(ck);
    }
    return Status::OK();
  }

 private:
  /// Probe one partition for `key`, consulting the record cache when the
  /// context carries one. Admission is two-phase (reserve → read → commit or
  /// abort) so a concurrent admitter of the same key cannot double-admit.
  /// Device reads go through ReadReplicated (failover + optional hedging).
  Status FetchOne(const ExecContext& ctx, uint32_t partition,
                  const std::string& key,
                  std::vector<io::Record>* fetched) const {
    RecordCache* cache = ctx.record_cache;
    if (cache == nullptr) {
      std::vector<io::Record> read;
      LH_RETURN_NOT_OK(ReadReplicated(ctx, partition, key, &read));
      fetched->insert(fetched->end(), read.begin(), read.end());
      return Status::OK();
    }
    std::string ck = RecordCache::MakeKey(file_->name(), partition, key);
    if (auto hit = cache->Lookup(ck)) {
      Bump(ctx, &ExecMetricsCounters::cache_hits);
      fetched->insert(fetched->end(), hit->begin(), hit->end());
      return Status::OK();
    }
    Bump(ctx, &ExecMetricsCounters::cache_misses);
    const bool admitting = cache->StartAdmission(ck);
    std::vector<io::Record> read;
    Status status = ReadReplicated(ctx, partition, key, &read);
    if (!status.ok()) {
      if (admitting) cache->AbortAdmission(ck);
      return status;
    }
    if (admitting) CountAdmission(ctx, cache->CommitAdmission(ck, read));
    fetched->insert(fetched->end(), read.begin(), read.end());
    return status;
  }

  /// Replica-aware point read of one (partition, key): hedged when the run
  /// enables hedging and >= 2 replicas are live, sequential failover
  /// otherwise. `read` is cleared and receives the adopted result.
  Status ReadReplicated(const ExecContext& ctx, uint32_t partition,
                        const std::string& key,
                        std::vector<io::Record>* read) const {
    if (ctx.hedge.enabled && ctx.stragglers != nullptr) {
      if (std::optional<Status> hedged =
              TryHedgedRead(ctx, partition, key, read)) {
        if (hedged->ok() || !hedged->IsUnavailable()) return *hedged;
        // An outage surfaced mid-hedge (both raced replicas went down):
        // fall back to sequential failover over the full replica set.
        read->clear();
      }
    }
    return ReadWithFailover(ctx, *file_, partition, [&](uint32_t replica) {
      read->clear();
      return file_->GetInPartitionOnReplica(ctx.node, partition, replica, key,
                                            read);
    });
  }

  /// Race two live replicas: the first (usually the primary) runs on a
  /// spawned arm; if it is still quiet after hedge.deadline_us the second
  /// is read synchronously and, on success, adopted — the straggler arm is
  /// parked with the run's reaper and joined before Execute returns, and
  /// its result is dropped without touching metrics or emissions (the
  /// discarded arm's device charges remain: hedging trades device work for
  /// tail latency). Returns nullopt when fewer than two replicas are live
  /// (caller falls back to sequential failover).
  std::optional<Status> TryHedgedRead(const ExecContext& ctx,
                                      uint32_t partition,
                                      const std::string& key,
                                      std::vector<io::Record>* read) const {
    const uint32_t rf = file_->ReplicaCountFor(partition);
    if (rf < 2 || ctx.cluster == nullptr) return std::nullopt;
    uint32_t live[2] = {0, 0};
    uint32_t n = 0;
    for (uint32_t r = 0; r < rf && n < 2; ++r) {
      if (!ctx.cluster->NodeIsDown(file_->NodeOfReplica(partition, r))) {
        live[n++] = r;
      }
    }
    if (n < 2) return std::nullopt;

    auto arm = std::make_shared<HedgeArm>();
    // The arm captures everything it touches by value/shared_ptr: a parked
    // straggler may outlive this call (but never the run).
    std::shared_ptr<io::File> file = file_;
    const sim::NodeId node = ctx.node;
    const uint32_t primary = live[0];
    std::thread runner([arm, file, node, partition, primary, key]() {
      std::vector<io::Record> records;
      Status status =
          file->GetInPartitionOnReplica(node, partition, primary, key,
                                        &records);
      std::lock_guard<std::mutex> lock(arm->mutex);
      arm->status = std::move(status);
      arm->records = std::move(records);
      arm->done = true;
      arm->cv.notify_all();
    });

    {
      std::unique_lock<std::mutex> lock(arm->mutex);
      if (arm->cv.wait_for(lock,
                           std::chrono::microseconds(ctx.hedge.deadline_us),
                           [&] { return arm->done; })) {
        lock.unlock();
        runner.join();
        *read = std::move(arm->records);
        return arm->status;
      }
    }
    // Deadline passed with the primary still in flight: hedge.
    Bump(ctx, &ExecMetricsCounters::hedged_reads);
    if (primary != live[1] && live[1] > 0) {
      Bump(ctx, &ExecMetricsCounters::replica_reads);
    }
    const int64_t hedge_start_us = ctx.trace != nullptr ? NowMicros() : 0;
    std::vector<io::Record> secondary;
    Status status = file_->GetInPartitionOnReplica(ctx.node, partition,
                                                   live[1], key, &secondary);
    if (ctx.trace != nullptr) {
      obs::Span span;
      span.name = "hedge";
      span.kind = obs::SpanKind::kHedge;
      span.stage = ctx.stage;
      span.node = ctx.node;
      span.t_start_us = hedge_start_us;
      span.t_end_us = NowMicros();
      span.AddAttr("replica", live[1]);
      span.AddAttr("won", status.ok() ? 1 : 0);
      ctx.trace->Record(std::move(span));
    }
    if (status.ok()) {
      Bump(ctx, &ExecMetricsCounters::hedge_wins);
      ctx.stragglers->Park(std::move(runner));
      *read = std::move(secondary);
      return status;
    }
    // The hedge failed; the primary arm is still authoritative.
    runner.join();
    *read = std::move(arm->records);
    return arm->status;
  }

  std::shared_ptr<io::File> file_;
  Filter filter_;
  std::shared_ptr<const index::PartitionBloom> bloom_;
};

class RangeDereferencer final : public Dereferencer {
 public:
  RangeDereferencer(std::string name, std::shared_ptr<io::BtreeFile> file,
                    Filter filter, RangeRouting routing)
      : Dereferencer(std::move(name)),
        file_(std::move(file)),
        filter_(std::move(filter)),
        routing_(routing) {
    LH_CHECK(file_ != nullptr);
  }

  bool WantsBroadcast() const override {
    return routing_ == RangeRouting::kBroadcast;
  }

  uint32_t TargetReplication() const override {
    return file_->replication_factor();
  }

  Status Execute(const ExecContext& ctx, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    if (!input.is_range) {
      return Status::InvalidArgument("range dereferencer '" + name() +
                                     "' received a point pointer");
    }
    Status emit_status = Status::OK();
    auto visit = [&](const io::Record& record) {
      emit_status = EmitFetched(input, record, filter_, out);
      return emit_status.ok();
    };
    // A range read emits WHILE iterating, so switching replicas must first
    // retract what the failed attempt emitted: the wrapper snapshots the
    // output size and truncates back before every attempt — exactly-once
    // emission whatever replica ends up serving the range.
    auto range_with_failover = [&](uint32_t partition) {
      const size_t out_mark = out->size();
      return ReadWithFailover(ctx, *file_, partition, [&](uint32_t replica) {
        out->resize(out_mark);
        emit_status = Status::OK();
        return file_->GetRangeInPartitionOnReplica(ctx.node, partition,
                                                   replica, input.pointer.key,
                                                   input.pointer_hi.key,
                                                   visit);
      });
    };
    if (input.pointer.has_partition) {
      uint32_t partition =
          file_->partitioner().PartitionOf(input.pointer.partition_key);
      LH_RETURN_NOT_OK(range_with_failover(partition));
    } else if (routing_ == RangeRouting::kPruneByKeyRange) {
      // The structure is partitioned by the indexed key with an
      // order-preserving partitioner: only the partitions whose key range
      // intersects [lo, hi] can hold matches.
      uint32_t lo_p = file_->partitioner().PartitionOf(input.pointer.key);
      uint32_t hi_p = file_->partitioner().PartitionOf(input.pointer_hi.key);
      if (hi_p < lo_p) std::swap(lo_p, hi_p);  // defensive
      for (uint32_t p = lo_p; p <= hi_p; ++p) {
        LH_RETURN_NOT_OK(range_with_failover(p));
      }
    } else {
      // Same broadcast-resolution (and redirect stand-in) rule as the point
      // dereferencer above.
      const sim::NodeId owner = input.resolve_owner == Tuple::kResolveOnSelf
                                    ? ctx.node
                                    : input.resolve_owner;
      for (uint32_t p = 0; p < file_->num_partitions(); ++p) {
        if (input.resolve_local &&
            file_->BroadcastOwner(p, input.resolve_epoch) != owner) {
          continue;
        }
        LH_RETURN_NOT_OK(range_with_failover(p));
      }
    }
    return emit_status;
  }

 private:
  std::shared_ptr<io::BtreeFile> file_;
  Filter filter_;
  RangeRouting routing_;
};

class RetryingDereferencer final : public Dereferencer {
 public:
  RetryingDereferencer(StageFunctionPtr inner, size_t max_attempts)
      : Dereferencer(inner->name() + "-retry"),
        inner_(std::move(inner)),
        max_attempts_(max_attempts) {
    LH_CHECK_MSG(inner_->IsDereferencer(),
                 "retry decorator wraps Dereferencers only");
    LH_CHECK_MSG(max_attempts_ >= 1, "need at least one attempt");
  }

  bool WantsBroadcast() const override { return inner_->WantsBroadcast(); }

  uint32_t TargetReplication() const override {
    return inner_->TargetReplication();
  }

  bool SupportsBatchedDereference() const override {
    return inner_->SupportsBatchedDereference();
  }

  uint32_t PartitionOfPointer(const io::Pointer& ptr) const override {
    return inner_->PartitionOfPointer(ptr);
  }

  Status Execute(const ExecContext& ctx, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    Status last;
    for (size_t attempt = 0; attempt < max_attempts_; ++attempt) {
      std::vector<Tuple> scratch;
      last = inner_->Execute(ctx, input, &scratch);
      if (last.ok()) {
        for (auto& tuple : scratch) out->push_back(std::move(tuple));
        return Status::OK();
      }
      if (!last.IsRetryable()) return last;  // not transient: fail fast
    }
    return last.WithContext("after " + std::to_string(max_attempts_) +
                            " attempts");
  }

  Status ExecuteBatch(const ExecContext& ctx, const std::vector<Tuple>& inputs,
                      std::vector<Tuple>* out) const override {
    // The inner batch already invalidates its own partial cache admissions
    // on failure, so each retry re-reads from a clean slate.
    Status last;
    for (size_t attempt = 0; attempt < max_attempts_; ++attempt) {
      std::vector<Tuple> scratch;
      last = inner_->ExecuteBatch(ctx, inputs, &scratch);
      if (last.ok()) {
        for (auto& tuple : scratch) out->push_back(std::move(tuple));
        return Status::OK();
      }
      if (!last.IsRetryable()) return last;
    }
    return last.WithContext("after " + std::to_string(max_attempts_) +
                            " attempts");
  }

 private:
  StageFunctionPtr inner_;
  size_t max_attempts_;
};

}  // namespace

StageFunctionPtr MakeRetryingDereferencer(StageFunctionPtr inner,
                                          size_t max_attempts) {
  return std::make_shared<RetryingDereferencer>(std::move(inner),
                                                max_attempts);
}

StageFunctionPtr MakePointDereferencer(
    std::string name, std::shared_ptr<io::File> file, Filter filter,
    std::shared_ptr<const index::PartitionBloom> bloom) {
  return std::make_shared<PointDereferencer>(std::move(name), std::move(file),
                                             std::move(filter),
                                             std::move(bloom));
}

StageFunctionPtr MakeRangeDereferencer(std::string name,
                                       std::shared_ptr<io::BtreeFile> file,
                                       Filter filter, RangeRouting routing) {
  return std::make_shared<RangeDereferencer>(std::move(name), std::move(file),
                                             std::move(filter), routing);
}

}  // namespace lakeharbor::rede
