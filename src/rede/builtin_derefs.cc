#include "rede/builtin_derefs.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "rede/record_cache.h"

namespace lakeharbor::rede {

namespace {

/// Append `record` to a copy of `input`'s bundle, run the filter, and emit.
Status EmitFetched(const Tuple& input, const io::Record& record,
                   const Filter& filter, std::vector<Tuple>* out) {
  Tuple next;
  next.records.reserve(input.records.size() + 1);
  next.records = input.records;
  next.records.push_back(record);
  if (filter) {
    LH_ASSIGN_OR_RETURN(bool keep, filter(next));
    if (!keep) return Status::OK();
  }
  out->push_back(std::move(next));
  return Status::OK();
}

class PointDereferencer final : public Dereferencer {
 public:
  PointDereferencer(std::string name, std::shared_ptr<io::File> file,
                    Filter filter,
                    std::shared_ptr<const index::PartitionBloom> bloom)
      : Dereferencer(std::move(name)),
        file_(std::move(file)),
        filter_(std::move(filter)),
        bloom_(std::move(bloom)) {
    LH_CHECK(file_ != nullptr);
  }

  bool SupportsBatchedDereference() const override { return true; }

  uint32_t PartitionOfPointer(const io::Pointer& ptr) const override {
    return file_->partitioner().PartitionOf(ptr.partition_key);
  }

  Status Execute(const ExecContext& ctx, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    if (input.is_range) {
      return Status::InvalidArgument(
          "point dereferencer '" + name() +
          "' received a range pointer; use a range dereferencer");
    }
    std::vector<io::Record> fetched;
    if (input.pointer.has_partition) {
      uint32_t partition = PartitionOfPointer(input.pointer);
      LH_RETURN_NOT_OK(
          FetchOne(ctx, partition, input.pointer.key, &fetched));
    } else {
      // Broadcast pointer. Under SMPE the executor replicated this tuple to
      // every node and marked it resolve_local, so we consult only the
      // partitions local to this node (Algorithm 1: SETPARTITION(input,
      // LOCAL)). Without the mark (partitioned executor: no cross-node task
      // shipping) the single owner consults every partition, paying remote
      // reads instead of broadcast messages.
      for (uint32_t p = 0; p < file_->num_partitions(); ++p) {
        if (input.resolve_local && file_->NodeOfPartition(p) != ctx.node) {
          continue;
        }
        if (bloom_ != nullptr &&
            !bloom_->MightContain(p, input.pointer.key)) {
          // Membership structure rules this partition out: no probe.
          file_->mutable_access_stats().bloom_skips.fetch_add(
              1, std::memory_order_relaxed);
          continue;
        }
        LH_RETURN_NOT_OK(FetchOne(ctx, p, input.pointer.key, &fetched));
      }
    }
    for (const io::Record& record : fetched) {
      LH_RETURN_NOT_OK(EmitFetched(input, record, filter_, out));
    }
    return Status::OK();
  }

  Status ExecuteBatch(const ExecContext& ctx, const std::vector<Tuple>& inputs,
                      std::vector<Tuple>* out) const override {
    // The executor only batches keyed point tuples, but a direct caller
    // might not: anything else degrades to the per-tuple loop.
    for (const Tuple& t : inputs) {
      if (t.is_range || !t.pointer.has_partition) {
        return StageFunction::ExecuteBatch(ctx, inputs, out);
      }
    }
    if (inputs.empty()) return Status::OK();
    RecordCache* cache = ctx.record_cache;

    // Resolve each DISTINCT (partition, key) once; duplicate pointers in the
    // batch share the result. Cache hits are pinned for the duration of the
    // call so concurrent evictions cannot churn the working set mid-batch.
    using LookupKey = std::pair<uint32_t, std::string>;
    std::map<LookupKey, std::vector<io::Record>> resolved;
    std::map<uint32_t, std::vector<std::string>> missing;  // per partition
    std::vector<std::string> pinned;
    for (const Tuple& input : inputs) {
      uint32_t partition = PartitionOfPointer(input.pointer);
      LookupKey lk{partition, input.pointer.key};
      if (resolved.count(lk) != 0) continue;
      if (cache != nullptr) {
        std::string ck =
            RecordCache::MakeKey(file_->name(), partition, input.pointer.key);
        if (auto hit = cache->Lookup(ck)) {
          resolved.emplace(std::move(lk), std::move(*hit));
          if (cache->Pin(ck)) pinned.push_back(std::move(ck));
          continue;
        }
      }
      resolved.emplace(std::move(lk), std::vector<io::Record>{});
      missing[partition].push_back(input.pointer.key);
    }

    // Entries admitted by THIS call, invalidated wholesale if a later
    // partition's read fails: the executor's retry must re-read the whole
    // batch, never observe (or double-admit) a partial one.
    std::vector<std::string> admitted;
    auto unwind = [&](const Status& error) {
      for (const std::string& ck : admitted) cache->Invalidate(ck);
      for (const std::string& ck : pinned) cache->Unpin(ck);
      return error;
    };
    for (auto& [partition, keys] : missing) {
      std::vector<std::vector<io::Record>> results;
      Status read =
          file_->GetBatchInPartition(ctx.node, partition, keys, &results);
      if (!read.ok()) return unwind(read);
      LH_CHECK(results.size() == keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        if (cache != nullptr) {
          std::string ck =
              RecordCache::MakeKey(file_->name(), partition, keys[i]);
          if (cache->StartAdmission(ck)) {
            cache->CommitAdmission(ck, results[i]);
            admitted.push_back(std::move(ck));
          }
        }
        resolved[LookupKey{partition, keys[i]}] = std::move(results[i]);
      }
    }

    for (const Tuple& input : inputs) {
      const std::vector<io::Record>& fetched =
          resolved[LookupKey{PartitionOfPointer(input.pointer),
                             input.pointer.key}];
      for (const io::Record& record : fetched) {
        Status emit = EmitFetched(input, record, filter_, out);
        // Emission failures (filter errors) are permanent, not transient:
        // keep the admitted entries (the reads succeeded) but drop pins.
        if (!emit.ok()) {
          for (const std::string& ck : pinned) cache->Unpin(ck);
          return emit;
        }
      }
    }
    if (cache != nullptr) {
      for (const std::string& ck : pinned) cache->Unpin(ck);
    }
    return Status::OK();
  }

 private:
  /// Probe one partition for `key`, consulting the record cache when the
  /// context carries one. Admission is two-phase (reserve → read → commit or
  /// abort) so a concurrent admitter of the same key cannot double-admit.
  Status FetchOne(const ExecContext& ctx, uint32_t partition,
                  const std::string& key,
                  std::vector<io::Record>* fetched) const {
    RecordCache* cache = ctx.record_cache;
    if (cache == nullptr) {
      return file_->GetInPartition(ctx.node, partition, key, fetched);
    }
    std::string ck = RecordCache::MakeKey(file_->name(), partition, key);
    if (auto hit = cache->Lookup(ck)) {
      fetched->insert(fetched->end(), hit->begin(), hit->end());
      return Status::OK();
    }
    const bool admitting = cache->StartAdmission(ck);
    std::vector<io::Record> read;
    Status status = file_->GetInPartition(ctx.node, partition, key, &read);
    if (!status.ok()) {
      if (admitting) cache->AbortAdmission(ck);
      return status;
    }
    if (admitting) cache->CommitAdmission(ck, read);
    fetched->insert(fetched->end(), read.begin(), read.end());
    return status;
  }

  std::shared_ptr<io::File> file_;
  Filter filter_;
  std::shared_ptr<const index::PartitionBloom> bloom_;
};

class RangeDereferencer final : public Dereferencer {
 public:
  RangeDereferencer(std::string name, std::shared_ptr<io::BtreeFile> file,
                    Filter filter, RangeRouting routing)
      : Dereferencer(std::move(name)),
        file_(std::move(file)),
        filter_(std::move(filter)),
        routing_(routing) {
    LH_CHECK(file_ != nullptr);
  }

  bool WantsBroadcast() const override {
    return routing_ == RangeRouting::kBroadcast;
  }

  Status Execute(const ExecContext& ctx, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    if (!input.is_range) {
      return Status::InvalidArgument("range dereferencer '" + name() +
                                     "' received a point pointer");
    }
    Status emit_status = Status::OK();
    auto visit = [&](const io::Record& record) {
      emit_status = EmitFetched(input, record, filter_, out);
      return emit_status.ok();
    };
    if (input.pointer.has_partition) {
      uint32_t partition =
          file_->partitioner().PartitionOf(input.pointer.partition_key);
      LH_RETURN_NOT_OK(file_->GetRangeInPartition(
          ctx.node, partition, input.pointer.key, input.pointer_hi.key,
          visit));
    } else if (routing_ == RangeRouting::kPruneByKeyRange) {
      // The structure is partitioned by the indexed key with an
      // order-preserving partitioner: only the partitions whose key range
      // intersects [lo, hi] can hold matches.
      uint32_t lo_p = file_->partitioner().PartitionOf(input.pointer.key);
      uint32_t hi_p = file_->partitioner().PartitionOf(input.pointer_hi.key);
      if (hi_p < lo_p) std::swap(lo_p, hi_p);  // defensive
      for (uint32_t p = lo_p; p <= hi_p; ++p) {
        LH_RETURN_NOT_OK(file_->GetRangeInPartition(
            ctx.node, p, input.pointer.key, input.pointer_hi.key, visit));
      }
    } else {
      // Same broadcast-resolution rule as the point dereferencer above.
      for (uint32_t p = 0; p < file_->num_partitions(); ++p) {
        if (input.resolve_local && file_->NodeOfPartition(p) != ctx.node) {
          continue;
        }
        LH_RETURN_NOT_OK(file_->GetRangeInPartition(
            ctx.node, p, input.pointer.key, input.pointer_hi.key, visit));
      }
    }
    return emit_status;
  }

 private:
  std::shared_ptr<io::BtreeFile> file_;
  Filter filter_;
  RangeRouting routing_;
};

class RetryingDereferencer final : public Dereferencer {
 public:
  RetryingDereferencer(StageFunctionPtr inner, size_t max_attempts)
      : Dereferencer(inner->name() + "-retry"),
        inner_(std::move(inner)),
        max_attempts_(max_attempts) {
    LH_CHECK_MSG(inner_->IsDereferencer(),
                 "retry decorator wraps Dereferencers only");
    LH_CHECK_MSG(max_attempts_ >= 1, "need at least one attempt");
  }

  bool WantsBroadcast() const override { return inner_->WantsBroadcast(); }

  bool SupportsBatchedDereference() const override {
    return inner_->SupportsBatchedDereference();
  }

  uint32_t PartitionOfPointer(const io::Pointer& ptr) const override {
    return inner_->PartitionOfPointer(ptr);
  }

  Status Execute(const ExecContext& ctx, const Tuple& input,
                 std::vector<Tuple>* out) const override {
    Status last;
    for (size_t attempt = 0; attempt < max_attempts_; ++attempt) {
      std::vector<Tuple> scratch;
      last = inner_->Execute(ctx, input, &scratch);
      if (last.ok()) {
        for (auto& tuple : scratch) out->push_back(std::move(tuple));
        return Status::OK();
      }
      if (!last.IsRetryable()) return last;  // not transient: fail fast
    }
    return last.WithContext("after " + std::to_string(max_attempts_) +
                            " attempts");
  }

  Status ExecuteBatch(const ExecContext& ctx, const std::vector<Tuple>& inputs,
                      std::vector<Tuple>* out) const override {
    // The inner batch already invalidates its own partial cache admissions
    // on failure, so each retry re-reads from a clean slate.
    Status last;
    for (size_t attempt = 0; attempt < max_attempts_; ++attempt) {
      std::vector<Tuple> scratch;
      last = inner_->ExecuteBatch(ctx, inputs, &scratch);
      if (last.ok()) {
        for (auto& tuple : scratch) out->push_back(std::move(tuple));
        return Status::OK();
      }
      if (!last.IsRetryable()) return last;
    }
    return last.WithContext("after " + std::to_string(max_attempts_) +
                            " attempts");
  }

 private:
  StageFunctionPtr inner_;
  size_t max_attempts_;
};

}  // namespace

StageFunctionPtr MakeRetryingDereferencer(StageFunctionPtr inner,
                                          size_t max_attempts) {
  return std::make_shared<RetryingDereferencer>(std::move(inner),
                                                max_attempts);
}

StageFunctionPtr MakePointDereferencer(
    std::string name, std::shared_ptr<io::File> file, Filter filter,
    std::shared_ptr<const index::PartitionBloom> bloom) {
  return std::make_shared<PointDereferencer>(std::move(name), std::move(file),
                                             std::move(filter),
                                             std::move(bloom));
}

StageFunctionPtr MakeRangeDereferencer(std::string name,
                                       std::shared_ptr<io::BtreeFile> file,
                                       Filter filter, RangeRouting routing) {
  return std::make_shared<RangeDereferencer>(std::move(name), std::move(file),
                                             std::move(filter), routing);
}

}  // namespace lakeharbor::rede
