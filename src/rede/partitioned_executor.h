#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "common/retry.h"
#include "rede/executor.h"
#include "rede/record_cache.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// "ReDe (w/o SMPE)" of Fig 7: the same structures and the same Reference-
/// Dereference job, executed with only the *partitioned parallelism given
/// from data partitions* — one worker per node, each processing its local
/// partitions depth-first, synchronously, with no fine-grained task
/// decomposition. This is the conservative execution style the paper
/// ascribes to existing structure-on-lake systems.
///
/// Shares the SMPE executor's failure semantics: retryable Dereferencer
/// failures are retried per invocation under `retry` (with exponential
/// backoff and discarded partial emissions); permanent errors fail fast.
class PartitionedExecutor final : public Executor {
 public:
  /// `trace_sample_n` has the same semantics as SmpeOptions::trace_sample_n:
  /// 0 = never trace, 1 = every run, N = every Nth Execute() call.
  explicit PartitionedExecutor(sim::Cluster* cluster, RetryPolicy retry = {},
                               RecordCacheOptions cache = {},
                               uint64_t trace_sample_n = 0)
      : cluster_(cluster), retry_(retry), trace_sample_n_(trace_sample_n) {
    LH_CHECK(cluster_ != nullptr);
    if (cache.enabled) cache_ = std::make_unique<RecordCache>(cache);
  }
  LH_DISALLOW_COPY_AND_ASSIGN(PartitionedExecutor);

  const std::string& name() const override { return name_; }
  const RetryPolicy& retry() const { return retry_; }

  /// The executor's record cache, or nullptr when caching is disabled.
  RecordCache* record_cache() const { return cache_.get(); }

  using Executor::Execute;
  StatusOr<JobResult> Execute(const Job& job, const ResultSink& sink,
                              CancelToken* cancel) override;

 private:
  std::string name_ = "rede-partitioned";
  sim::Cluster* cluster_;
  RetryPolicy retry_;
  uint64_t trace_sample_n_ = 0;
  std::unique_ptr<RecordCache> cache_;  // nullptr unless cache.enabled
  /// Monotonic Execute() counter driving per-job trace sampling.
  std::atomic<uint64_t> run_seq_{0};
};

}  // namespace lakeharbor::rede
