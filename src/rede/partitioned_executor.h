#pragma once

#include <string>

#include "rede/executor.h"
#include "sim/cluster.h"

namespace lakeharbor::rede {

/// "ReDe (w/o SMPE)" of Fig 7: the same structures and the same Reference-
/// Dereference job, executed with only the *partitioned parallelism given
/// from data partitions* — one worker per node, each processing its local
/// partitions depth-first, synchronously, with no fine-grained task
/// decomposition. This is the conservative execution style the paper
/// ascribes to existing structure-on-lake systems.
class PartitionedExecutor final : public Executor {
 public:
  explicit PartitionedExecutor(sim::Cluster* cluster) : cluster_(cluster) {
    LH_CHECK(cluster_ != nullptr);
  }
  LH_DISALLOW_COPY_AND_ASSIGN(PartitionedExecutor);

  const std::string& name() const override { return name_; }

  StatusOr<JobResult> Execute(const Job& job, const ResultSink& sink) override;

 private:
  std::string name_ = "rede-partitioned";
  sim::Cluster* cluster_;
};

}  // namespace lakeharbor::rede
