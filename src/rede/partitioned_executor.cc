#include "rede/partitioned_executor.h"

#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace lakeharbor::rede {

namespace {

struct WorkerShared {
  const Job* job;
  sim::Cluster* cluster;
  RetryPolicy retry;
  RecordCache* cache = nullptr;
  ExecMetricsCounters metrics;
  std::mutex sink_mutex;
  const ResultSink* sink;
};

/// Depth-first, single-threaded evaluation of the stage chain: each emitted
/// tuple is driven through the remaining stages before the next sibling —
/// no intra-partition parallelism, by design.
Status ProcessTuple(WorkerShared& shared, sim::NodeId node, size_t stage,
                    const Tuple& tuple) {
  if (stage >= shared.job->num_stages()) {
    shared.metrics.output_tuples.fetch_add(1, std::memory_order_relaxed);
    if (shared.sink != nullptr && *shared.sink) {
      std::lock_guard<std::mutex> lock(shared.sink_mutex);
      (*shared.sink)(tuple);
    }
    return Status::OK();
  }
  const StageFunction& fn = *shared.job->stages()[stage];
  ExecContext ctx{node, shared.cluster, &shared.metrics, shared.cache};
  std::vector<Tuple> outs;
  if (fn.IsDereferencer()) {
    // Bounded per-invocation retry of retryable device failures, with the
    // same exactly-once guarantee as SMPE: partial emissions of a failed
    // attempt are discarded before re-executing.
    Status status = RunWithRetry(
        shared.retry,
        [&]() -> Status {
          outs.clear();
          shared.metrics.deref_invocations.fetch_add(1,
                                                     std::memory_order_relaxed);
          shared.metrics.EnterDeref();
          Status attempt = fn.Execute(ctx, tuple, &outs);
          shared.metrics.ExitDeref();
          return attempt;
        },
        [&](size_t, uint64_t backoff_us) {
          shared.metrics.retries.fetch_add(1, std::memory_order_relaxed);
          shared.metrics.retry_backoff_us.fetch_add(backoff_us,
                                                    std::memory_order_relaxed);
        });
    // RunWithRetry already appended the attempt count; add which stage,
    // function, and node so a post-mortem needs no guessing.
    LH_RETURN_NOT_OK(status.WithContext("stage " + std::to_string(stage) +
                                        " (" + fn.name() + ") on node " +
                                        std::to_string(node)));
  } else {
    shared.metrics.ref_invocations.fetch_add(1, std::memory_order_relaxed);
    LH_RETURN_NOT_OK(fn.Execute(ctx, tuple, &outs)
                         .WithContext("stage " + std::to_string(stage) + " (" +
                                      fn.name() + ") on node " +
                                      std::to_string(node)));
  }
  shared.metrics.tuples_emitted.fetch_add(outs.size(),
                                          std::memory_order_relaxed);
  shared.metrics.CountStage(stage, outs.size());
  for (const Tuple& out : outs) {
    LH_RETURN_NOT_OK(ProcessTuple(shared, node, stage + 1, out));
  }
  return Status::OK();
}

}  // namespace

StatusOr<JobResult> PartitionedExecutor::Execute(const Job& job,
                                                 const ResultSink& sink) {
  StopWatch watch;
  WorkerShared shared;
  shared.job = &job;
  shared.cluster = cluster_;
  shared.retry = retry_;
  shared.cache = cache_.get();
  shared.sink = &sink;
  shared.metrics.InitStages(job.num_stages());
  RecordCacheStats cache_before;
  if (cache_ != nullptr) cache_before = cache_->stats();

  const Tuple& initial = job.initial_input();
  std::vector<Status> statuses;
  if (!initial.resolve_local) {
    // Keyed (or partition-pruning) initial pointer: exactly one evaluation.
    statuses.push_back(ProcessTuple(shared, /*node=*/0, 0, initial));
  } else {
    // One worker per node, each resolving the initial input against its
    // local partitions (resolve_local was set by JobBuilder::Build).
    const uint32_t num_nodes = cluster_->num_nodes();
    statuses.resize(num_nodes);
    std::vector<std::thread> workers;
    workers.reserve(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) {
      workers.emplace_back([&shared, &statuses, &initial, n] {
        statuses[n] = ProcessTuple(shared, n, 0, initial);
      });
    }
    for (auto& worker : workers) worker.join();
  }
  if (cache_ != nullptr) {
    RecordCacheStats after = cache_->stats();
    shared.metrics.cache_hits.fetch_add(after.hits - cache_before.hits);
    shared.metrics.cache_misses.fetch_add(after.misses - cache_before.misses);
    shared.metrics.cache_admissions.fetch_add(after.admissions -
                                              cache_before.admissions);
    shared.metrics.cache_evictions.fetch_add(after.evictions -
                                             cache_before.evictions);
    shared.metrics.cache_invalidations.fetch_add(after.invalidations -
                                                 cache_before.invalidations);
  }
  for (const Status& status : statuses) {
    LH_RETURN_NOT_OK(status);
  }
  JobResult result;
  result.metrics = MetricsSnapshot::From(shared.metrics, watch.ElapsedMillis());
  return result;
}

}  // namespace lakeharbor::rede
