#include "rede/partitioned_executor.h"

#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/trace.h"

namespace lakeharbor::rede {

namespace {

struct WorkerShared {
  const Job* job;
  sim::Cluster* cluster;
  RetryPolicy retry;
  RecordCache* cache = nullptr;
  /// Recorder of a sampled run, nullptr otherwise (same fast-path contract
  /// as the SMPE executor: untraced runs only ever pay this null check).
  obs::TraceRecorder* trace = nullptr;
  /// Run-wide cancellation (external token or the run's own): checked
  /// between stages and waited on during retry backoff, so cancelled runs
  /// stop within one backoff quantum.
  CancelToken* cancel = nullptr;
  uint64_t job_id = 0;
  ExecMetricsCounters metrics;
  std::mutex sink_mutex;
  const ResultSink* sink;
};

/// Depth-first, single-threaded evaluation of the stage chain: each emitted
/// tuple is driven through the remaining stages before the next sibling —
/// no intra-partition parallelism, by design.
Status ProcessTuple(WorkerShared& shared, sim::NodeId node, size_t stage,
                    const Tuple& tuple) {
  if (shared.cancel->cancelled()) return shared.cancel->cause();
  if (stage >= shared.job->num_stages()) {
    shared.metrics.output_tuples.fetch_add(1, std::memory_order_relaxed);
    if (shared.sink != nullptr && *shared.sink) {
      std::lock_guard<std::mutex> lock(shared.sink_mutex);
      (*shared.sink)(tuple);
    }
    return Status::OK();
  }
  const StageFunction& fn = *shared.job->stages()[stage];
  ExecContext ctx{node, shared.cluster, &shared.metrics, shared.cache};
  ctx.cancel = shared.cancel;
  ctx.trace = shared.trace;
  ctx.stage = static_cast<uint32_t>(stage);
  std::vector<Tuple> outs;
  const int64_t work_start_us = shared.trace != nullptr ? NowMicros() : 0;
  size_t attempts = 1;
  Status work_status;
  if (fn.IsDereferencer()) {
    // Bounded per-invocation retry of retryable device failures, with the
    // same exactly-once guarantee as SMPE: partial emissions of a failed
    // attempt are discarded before re-executing.
    work_status = RunWithRetry(
        shared.retry,
        [&]() -> Status {
          outs.clear();
          shared.metrics.deref_invocations.fetch_add(1,
                                                     std::memory_order_relaxed);
          shared.metrics.EnterDeref();
          const int64_t attempt_start_us = NowMicros();
          Status attempt = fn.Execute(ctx, tuple, &outs);
          const int64_t attempt_us = NowMicros() - attempt_start_us;
          shared.metrics.deref_latency_us.Record(
              attempt_us > 0 ? static_cast<uint64_t>(attempt_us) : 0);
          shared.metrics.ExitDeref();
          return attempt;
        },
        [&](size_t retry_index, uint64_t backoff_us) {
          attempts = retry_index + 1;
          shared.metrics.retries.fetch_add(1, std::memory_order_relaxed);
          shared.metrics.retry_backoff_us.fetch_add(backoff_us,
                                                    std::memory_order_relaxed);
          shared.metrics.retry_backoff_hist_us.Record(backoff_us);
          if (shared.trace != nullptr) {
            // The observer fires just before RunWithRetry sleeps; the span
            // covers the REQUESTED backoff interval.
            obs::Span span;
            span.name = "retry-backoff";
            span.kind = obs::SpanKind::kRetryBackoff;
            span.stage = static_cast<uint32_t>(stage);
            span.node = node;
            span.t_start_us = NowMicros();
            span.t_end_us = span.t_start_us + static_cast<int64_t>(backoff_us);
            span.AddAttr("retry", static_cast<int64_t>(retry_index));
            span.AddAttr("backoff_us", static_cast<int64_t>(backoff_us));
            shared.trace->Record(std::move(span));
          }
        },
        // Backoff waits on the run's token (prompt cancellation) and is
        // de-synchronized across jobs/nodes by the seeded jitter.
        shared.cancel,
        shared.job_id ^ (static_cast<uint64_t>(node) << 32) ^
            static_cast<uint64_t>(stage));
  } else {
    shared.metrics.ref_invocations.fetch_add(1, std::memory_order_relaxed);
    work_status = fn.Execute(ctx, tuple, &outs);
  }
  if (shared.trace != nullptr) {
    obs::Span span;
    span.name = fn.name();
    span.kind = fn.IsDereferencer() ? obs::SpanKind::kDereference
                                    : obs::SpanKind::kReferencer;
    span.stage = static_cast<uint32_t>(stage);
    span.node = node;
    span.t_start_us = work_start_us;
    span.t_end_us = NowMicros();
    span.AddAttr("emitted", static_cast<int64_t>(outs.size()));
    span.AddAttr("attempts", static_cast<int64_t>(attempts));
    if (!work_status.ok()) span.AddAttr("failed", 1);
    shared.trace->Record(std::move(span));
  }
  // The retry loop already appended the attempt count; add which stage,
  // function, and node so a post-mortem needs no guessing.
  LH_RETURN_NOT_OK(work_status.WithContext(
      "stage " + std::to_string(stage) + " (" + fn.name() + ") on node " +
      std::to_string(node)));
  shared.metrics.tuples_emitted.fetch_add(outs.size(),
                                          std::memory_order_relaxed);
  shared.metrics.CountStage(stage, outs.size());
  for (const Tuple& out : outs) {
    LH_RETURN_NOT_OK(ProcessTuple(shared, node, stage + 1, out));
  }
  return Status::OK();
}

}  // namespace

StatusOr<JobResult> PartitionedExecutor::Execute(const Job& job,
                                                 const ResultSink& sink,
                                                 CancelToken* cancel) {
  StopWatch watch;
  CancelToken owned_cancel;
  WorkerShared shared;
  shared.job = &job;
  shared.cluster = cluster_;
  shared.retry = retry_;
  shared.cache = cache_.get();
  shared.cancel = cancel != nullptr ? cancel : &owned_cancel;
  shared.sink = &sink;
  shared.metrics.InitStages(job.num_stages());
  const uint64_t job_id = obs::NextJobId();
  shared.job_id = job_id;
  const uint64_t run_seq = run_seq_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (trace_sample_n_ > 0 && run_seq % trace_sample_n_ == 0) {
    recorder = std::make_unique<obs::TraceRecorder>(job_id);
    shared.trace = recorder.get();
  }

  // Stamp the run's placement epoch so broadcast ownership stays coherent
  // across a rebalance commit racing the run (same rule as SMPE fan-out).
  Tuple initial = job.initial_input();
  initial.resolve_epoch = cluster_->placement_epoch();
  std::vector<Status> statuses;
  if (!initial.resolve_local) {
    // Keyed (or partition-pruning) initial pointer: exactly one evaluation.
    statuses.push_back(ProcessTuple(shared, /*node=*/0, 0, initial));
  } else {
    // One worker per node, each resolving the initial input against its
    // local partitions (resolve_local was set by JobBuilder::Build).
    const uint32_t num_nodes = cluster_->num_nodes();
    statuses.resize(num_nodes);
    std::vector<std::thread> workers;
    workers.reserve(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) {
      workers.emplace_back([&shared, &statuses, &initial, n] {
        statuses[n] = ProcessTuple(shared, n, 0, initial);
      });
    }
    for (auto& worker : workers) worker.join();
  }
  // Cache activity was charged per call site into shared.metrics by the
  // dereferencers, so the counters are exact for this run even when other
  // Execute() calls overlap on the shared cache.
  if (shared.cancel->cancelled()) return shared.cancel->cause();
  for (const Status& status : statuses) {
    LH_RETURN_NOT_OK(status);
  }
  JobResult result;
  result.metrics = MetricsSnapshot::From(shared.metrics, watch.ElapsedMillis());
  result.metrics.job_id = job_id;
  if (recorder != nullptr) {
    // All workers joined above, so collecting the chunks is race-free.
    auto log = std::make_shared<obs::TraceLog>();
    log->job_id = job_id;
    log->job_name = job.name();
    log->executor = name_;
    log->spans = recorder->Collect();
    result.trace = std::move(log);
  }
  return result;
}

}  // namespace lakeharbor::rede
