#include "rede/advisor.h"

namespace lakeharbor::rede {

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kStructure:
      return "structure";
    case PlanKind::kScan:
      return "scan";
  }
  return "?";
}

StatusOr<PlanEstimate> StructureAdvisor::Choose(const PlanQuery& query) const {
  if (query.driving_index == nullptr) {
    return Status::InvalidArgument("advisor needs a driving index");
  }
  if (query.range_hi < query.range_lo) {
    return Status::InvalidArgument("advisor range is inverted");
  }

  PlanEstimate estimate;
  if (query.histogram != nullptr) {
    // Pre-built statistics: no query-time probe.
    estimate.estimated_matches =
        query.histogram->EstimateMatches(query.range_lo, query.range_hi);
  } else {
    // Sample: count matches in one partition (a real probe — it is charged
    // to the devices like any other index descent) and extrapolate.
    io::BtreeFile& index = *query.driving_index;
    uint64_t sampled = 0;
    uint32_t sample_partition = 0;
    LH_RETURN_NOT_OK(index.GetRangeInPartition(
        index.NodeOfPartition(sample_partition), sample_partition,
        query.range_lo, query.range_hi, [&](const io::Record&) {
          ++sampled;
          return true;
        }));
    estimate.estimated_matches =
        static_cast<double>(sampled) * index.num_partitions();
  }

  const sim::ClusterOptions& options = cluster_->options();
  const double concurrent_ios =
      static_cast<double>(cluster_->num_nodes()) *
      static_cast<double>(options.disk.io_slots == 0 ? 1
                                                     : options.disk.io_slots);
  const double io_ms =
      (static_cast<double>(options.disk.random_read_latency_us) +
       query.per_io_overhead_us) /
      1000.0;
  estimate.structure_ms =
      estimate.estimated_matches * query.ios_per_match * io_ms /
      concurrent_ios;

  const double bandwidth_per_ms =
      static_cast<double>(options.disk.scan_bandwidth_bytes_per_sec) / 1000.0;
  estimate.scan_ms = static_cast<double>(query.scan_bytes) /
                     (bandwidth_per_ms * cluster_->num_nodes());

  estimate.choice = estimate.structure_ms <= estimate.scan_ms
                        ? PlanKind::kStructure
                        : PlanKind::kScan;
  return estimate;
}

}  // namespace lakeharbor::rede
