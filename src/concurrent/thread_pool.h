#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "concurrent/mpmc_queue.h"

namespace lakeharbor {

/// Fixed-size worker pool. ReDe "manages threads in a thread pool and reuses
/// them instead of creating them every time" (§III-C); the pool size is the
/// SMPE parallelism knob (paper default: 1000).
///
/// Tasks must not throw. Submit after Shutdown is rejected (returns false).
///
/// `dwell` (optional, must outlive the pool) receives the submit->dispatch
/// dwell of every task in microseconds — how long work sat in the pool's
/// queue before a worker picked it up.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads,
                      obs::LatencyHistogram* dwell = nullptr)
      : queue_(0, dwell) {
    LH_CHECK(num_threads > 0);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }
  LH_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueue a task; returns false after Shutdown.
  bool Submit(std::function<void()> task) {
    return queue_.Push(std::move(task));
  }

  /// Drain remaining tasks and join all workers. Idempotent.
  void Shutdown() {
    queue_.Close();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  size_t num_threads() const { return workers_.size(); }
  size_t queued() const { return queue_.size(); }

 private:
  void WorkerLoop() {
    while (auto task = queue_.Pop()) {
      (*task)();
    }
  }

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace lakeharbor
