#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/macros.h"

namespace lakeharbor {

/// Tracks outstanding fine-grained tasks so the SMPE executor can detect
/// quiescence ("until all tasks are finished" in Algorithm 1). A task in
/// flight must be registered *before* it is enqueued, and a task spawning
/// children registers the children before finishing itself, so the count can
/// only reach zero when the whole task DAG has drained.
class InflightTracker {
 public:
  InflightTracker() = default;
  LH_DISALLOW_COPY_AND_ASSIGN(InflightTracker);

  void Add(int64_t n = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    count_ += n;
  }

  void Done(int64_t n = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    count_ -= n;
    LH_CHECK_MSG(count_ >= 0, "InflightTracker underflow");
    // Notify while still holding the mutex: the waiter in AwaitZero() often
    // destroys this tracker as soon as it observes zero, and it cannot
    // re-acquire the mutex (and return) until this thread has finished
    // notifying and released it. Unlock-then-notify would let destruction
    // race the notify_all call on the dead condition variable.
    if (count_ == 0) cv_.notify_all();
  }

  /// Blocks until the in-flight count reaches zero.
  void AwaitZero() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  int64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

}  // namespace lakeharbor
