#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/clock.h"
#include "common/macros.h"
#include "obs/histogram.h"

namespace lakeharbor {

/// Multi-producer multi-consumer blocking queue. This is the inter-stage
/// queue of the SMPE execution model (Fig 6 of the paper): the output queue
/// of one stage is the input queue of the next.
///
/// Close() wakes all blocked consumers; after close, Pop drains remaining
/// elements and then returns nullopt. Push after close is a silent no-op
/// (executors close the queue only once all producers are finished, so a
/// late push indicates shutdown and its element is intentionally dropped).
///
/// When constructed with a dwell histogram, every element is stamped at
/// enqueue and its queue dwell (push -> pop, microseconds) is recorded at
/// dequeue — the observability subsystem's queue-dwell metric. Without one,
/// no clocks are read.
template <typename T>
class MpmcQueue {
 public:
  /// capacity == 0 means unbounded. `dwell` (optional) must outlive the
  /// queue; it receives one sample per element popped.
  explicit MpmcQueue(size_t capacity = 0,
                     obs::LatencyHistogram* dwell = nullptr)
      : capacity_(capacity), dwell_(dwell) {}
  LH_DISALLOW_COPY_AND_ASSIGN(MpmcQueue);

  /// Blocks while the queue is full (bounded mode). Returns false when the
  /// queue was closed and the element was dropped.
  bool Push(T value) {
    const int64_t enq_us = dwell_ != nullptr ? NowMicros() : 0;
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(Entry{std::move(value), enq_us});
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T value) {
    const int64_t enq_us = dwell_ != nullptr ? NowMicros() : 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      if (capacity_ != 0 && items_.size() >= capacity_) return false;
      items_.push_back(Entry{std::move(value), enq_us});
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    Entry entry = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    RecordDwell(entry.enq_us);
    return std::move(entry.value);
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    Entry entry = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    RecordDwell(entry.enq_us);
    return std::move(entry.value);
  }

  /// Closes the queue: consumers drain what is left, producers are rejected.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    T value;
    int64_t enq_us;  ///< NowMicros() at push; 0 when dwell is untracked
  };

  void RecordDwell(int64_t enq_us) {
    if (dwell_ == nullptr || enq_us == 0) return;
    const int64_t dwell = NowMicros() - enq_us;
    dwell_->Record(dwell > 0 ? static_cast<uint64_t>(dwell) : 0);
  }

  const size_t capacity_;
  obs::LatencyHistogram* const dwell_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Entry> items_;
  bool closed_ = false;
};

}  // namespace lakeharbor
