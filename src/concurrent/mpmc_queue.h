#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/macros.h"

namespace lakeharbor {

/// Multi-producer multi-consumer blocking queue. This is the inter-stage
/// queue of the SMPE execution model (Fig 6 of the paper): the output queue
/// of one stage is the input queue of the next.
///
/// Close() wakes all blocked consumers; after close, Pop drains remaining
/// elements and then returns nullopt. Push after close is a silent no-op
/// (executors close the queue only once all producers are finished, so a
/// late push indicates shutdown and its element is intentionally dropped).
template <typename T>
class MpmcQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit MpmcQueue(size_t capacity = 0) : capacity_(capacity) {}
  LH_DISALLOW_COPY_AND_ASSIGN(MpmcQueue);

  /// Blocks while the queue is full (bounded mode). Returns false when the
  /// queue was closed and the element was dropped.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      if (capacity_ != 0 && items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Closes the queue: consumers drain what is left, producers are rejected.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lakeharbor
