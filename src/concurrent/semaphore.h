#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/cancel.h"
#include "common/macros.h"

namespace lakeharbor {

/// Counting semaphore with a runtime-chosen permit count (std::counting_
/// semaphore fixes the maximum at compile time). Models bounded device
/// concurrency in sim::Disk — the queue-depth analogue of the paper's
/// `queue_depth=1008` setting — and the scheduler's per-node disk slots.
class Semaphore {
 public:
  explicit Semaphore(size_t permits) : permits_(permits) {}
  LH_DISALLOW_COPY_AND_ASSIGN(Semaphore);

  void Acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return permits_ > 0; });
    --permits_;
  }

  /// Cancellable bulk acquire of `n` permits (all-or-nothing). Blocks until
  /// the permits are available or `cancel` fires; returns true on success,
  /// false when cancelled without taking any permits. Admission queueing
  /// uses this so a job whose deadline expires while waiting for disk slots
  /// leaves the queue promptly instead of grabbing slots it can't use. The
  /// wait re-checks the token on a coarse poll (≤1ms) as a backstop, so
  /// cancellation never needs to know which semaphore a waiter sits on
  /// (Cancel() wakes the token's own cv, not ours).
  bool Acquire(size_t n, const CancelToken* cancel) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (cancel != nullptr && cancel->cancelled()) return false;
      if (permits_ >= n) {
        permits_ -= n;
        return true;
      }
      if (cancel == nullptr) {
        cv_.wait(lock, [&] { return permits_ >= n; });
      } else {
        cv_.wait_for(lock, std::chrono::milliseconds(1),
                     [&] { return permits_ >= n; });
      }
    }
  }

  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (permits_ == 0) return false;
    --permits_;
    return true;
  }

  /// All-or-nothing non-blocking bulk acquire.
  bool TryAcquire(size_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (permits_ < n) return false;
    permits_ -= n;
    return true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++permits_;
    }
    cv_.notify_one();
  }

  /// Bulk release of `n` permits in one lock round-trip, with notify_all so
  /// every waiter (including bulk waiters needing more than one permit)
  /// re-evaluates — returning a cancelled job's disk slots wakes the whole
  /// admission queue at once instead of one waiter per permit.
  void Release(size_t n) {
    if (n == 0) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      permits_ += n;
    }
    cv_.notify_all();
  }

  size_t available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return permits_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t permits_;
};

/// RAII permit holder.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(sem) { sem_.Acquire(); }
  ~SemaphoreGuard() { sem_.Release(); }
  LH_DISALLOW_COPY_AND_ASSIGN(SemaphoreGuard);

 private:
  Semaphore& sem_;
};

}  // namespace lakeharbor
