#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/macros.h"

namespace lakeharbor {

/// Counting semaphore with a runtime-chosen permit count (std::counting_
/// semaphore fixes the maximum at compile time). Models bounded device
/// concurrency in sim::Disk — the queue-depth analogue of the paper's
/// `queue_depth=1008` setting.
class Semaphore {
 public:
  explicit Semaphore(size_t permits) : permits_(permits) {}
  LH_DISALLOW_COPY_AND_ASSIGN(Semaphore);

  void Acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return permits_ > 0; });
    --permits_;
  }

  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (permits_ == 0) return false;
    --permits_;
    return true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++permits_;
    }
    cv_.notify_one();
  }

  size_t available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return permits_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t permits_;
};

/// RAII permit holder.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(sem) { sem_.Acquire(); }
  ~SemaphoreGuard() { sem_.Release(); }
  LH_DISALLOW_COPY_AND_ASSIGN(SemaphoreGuard);

 private:
  Semaphore& sem_;
};

}  // namespace lakeharbor
