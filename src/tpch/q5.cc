#include "tpch/q5.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "tpch/dates.h"
#include "tpch/schema.h"

namespace lakeharbor::tpch {

namespace {

std::string_view Field(const io::Record& record, size_t field) {
  return FieldAt(record.slice().view(), kDelim, field);
}

std::string_view Field(const std::string& row, size_t field) {
  return FieldAt(row, kDelim, field);
}

rede::Interpreter RawFieldInterp(size_t field) {
  return rede::DelimitedFieldInterpreter(field, kDelim);
}

rede::Interpreter IntKeyInterp(size_t field) {
  return rede::EncodedInt64FieldInterpreter(field, kDelim);
}

}  // namespace

Q5Params MakeQ5Params(double selectivity, std::string region_name) {
  Q5Params params;
  params.region_name = std::move(region_name);
  int total_days = kMaxOrderDay - kMinOrderDay + 1;
  int width = static_cast<int>(selectivity * total_days + 0.5);
  if (width < 1) width = 1;
  if (width > total_days) width = total_days;
  params.date_lo = DayToDate(kMinOrderDay);
  params.date_hi = DayToDate(kMinOrderDay + width - 1);
  return params;
}

StatusOr<rede::Job> BuildQ5RedeJob(rede::Engine& engine,
                                   const Q5Params& params) {
  io::Catalog& catalog = engine.catalog();
  LH_ASSIGN_OR_RETURN(auto orders, catalog.Get(names::kOrders));
  LH_ASSIGN_OR_RETURN(auto customer, catalog.Get(names::kCustomer));
  LH_ASSIGN_OR_RETURN(auto nation, catalog.Get(names::kNation));
  LH_ASSIGN_OR_RETURN(auto region, catalog.Get(names::kRegion));
  LH_ASSIGN_OR_RETURN(auto lineitem, catalog.Get(names::kLineitem));
  LH_ASSIGN_OR_RETURN(auto supplier, catalog.Get(names::kSupplier));
  LH_ASSIGN_OR_RETURN(auto date_idx_file, catalog.Get(names::kOrdersDateIndex));
  LH_ASSIGN_OR_RETURN(auto li_idx_file,
                      catalog.Get(names::kLineitemOrderKeyIndex));
  auto date_idx = std::dynamic_pointer_cast<io::BtreeFile>(date_idx_file);
  if (date_idx == nullptr) {
    return Status::InvalidArgument("o_orderdate index is not a BtreeFile");
  }

  using namespace rede;  // NOLINT
  return JobBuilder("tpch-q5prime")
      // Stage 0: range dereference of the local secondary date index; the
      // broadcast range is resolved on every node's local partitions.
      .Initial(Tuple::Range(io::Pointer::Broadcast(params.date_lo),
                            io::Pointer::Broadcast(params.date_hi)))
      .Add(MakeRangeDereferencer("deref0-orders-date-idx", date_idx))
      // Stage 1-2: entry -> orders record.
      .Add(MakeIndexEntryReferencer("ref1-orders-ptr"))
      .Add(MakePointDereferencer("deref1-orders", orders))
      // Stage 3-4: o_custkey -> customer.
      .Add(MakeKeyReferencer("ref2-custkey", IntKeyInterp(orders::kCustKey)))
      .Add(MakePointDereferencer("deref2-customer", customer))
      // Stage 5-6: c_nationkey -> nation.
      .Add(MakeKeyReferencer("ref3-nationkey",
                             IntKeyInterp(customer::kNationKey)))
      .Add(MakePointDereferencer("deref3-nation", nation))
      // Stage 7-8: n_regionkey -> region, filtered on r_name.
      .Add(MakeKeyReferencer("ref4-regionkey",
                             IntKeyInterp(nation::kRegionKey)))
      .Add(MakePointDereferencer(
          "deref4-region", region,
          LastRecordEqualsFilter(RawFieldInterp(region::kName),
                                 params.region_name)))
      // Stage 9-10: o_orderkey -> lineitem global index (entries for every
      // line of the order).
      .Add(MakeKeyReferencer("ref5-orderkey", IntKeyInterp(orders::kOrderKey),
                             q5_bundle::kOrders))
      .Add(MakePointDereferencer("deref5-lineitem-idx", li_idx_file))
      // Stage 11-12: entry -> lineitem record (cross-partition fetches).
      .Add(MakeIndexEntryReferencer("ref6-lineitem-ptr"))
      .Add(MakePointDereferencer("deref6-lineitem", lineitem))
      // Stage 13-14: l_suppkey -> supplier, filtered on the cross-record
      // predicate s_nationkey = c_nationkey.
      .Add(MakeKeyReferencer("ref7-suppkey",
                             IntKeyInterp(lineitem::kSuppKey)))
      .Add(MakePointDereferencer(
          "deref7-supplier", supplier,
          BundleEqualityFilter(q5_bundle::kCustomer,
                               RawFieldInterp(customer::kNationKey),
                               q5_bundle::kSupplier,
                               RawFieldInterp(supplier::kNationKey))))
      .Build();
}

StatusOr<std::vector<baseline::Row>> RunQ5Baseline(
    baseline::ScanEngine& engine, io::Catalog& catalog,
    const Q5Params& params) {
  using baseline::Row;
  LH_ASSIGN_OR_RETURN(auto region_file, catalog.Get(names::kRegion));
  LH_ASSIGN_OR_RETURN(auto nation_file, catalog.Get(names::kNation));
  LH_ASSIGN_OR_RETURN(auto customer_file, catalog.Get(names::kCustomer));
  LH_ASSIGN_OR_RETURN(auto orders_file, catalog.Get(names::kOrders));
  LH_ASSIGN_OR_RETURN(auto lineitem_file, catalog.Get(names::kLineitem));
  LH_ASSIGN_OR_RETURN(auto supplier_file, catalog.Get(names::kSupplier));

  // Scans with predicate pushdown where the query has single-table
  // predicates (r_name, o_orderdate).
  LH_ASSIGN_OR_RETURN(
      std::vector<Row> region_rows,
      engine.Scan(*region_file, baseline::FieldEqualsPredicate(
                                    region::kName, params.region_name)));
  LH_ASSIGN_OR_RETURN(std::vector<Row> nation_rows,
                      engine.Scan(*nation_file, nullptr));
  // nation JOIN region on n_regionkey = r_regionkey -> [nation, region]
  LH_ASSIGN_OR_RETURN(
      std::vector<Row> nr,
      engine.HashJoin(std::move(nation_rows),
                      baseline::FieldKeyOfRow(0, nation::kRegionKey),
                      std::move(region_rows),
                      baseline::FieldKeyOfRow(0, region::kRegionKey)));
  // customer JOIN (n, r) on c_nationkey = n_nationkey -> [c, n, r]
  LH_ASSIGN_OR_RETURN(std::vector<Row> customer_rows,
                      engine.Scan(*customer_file, nullptr));
  LH_ASSIGN_OR_RETURN(
      std::vector<Row> cnr,
      engine.HashJoin(std::move(customer_rows),
                      baseline::FieldKeyOfRow(0, customer::kNationKey),
                      std::move(nr),
                      baseline::FieldKeyOfRow(0, nation::kNationKey)));
  // orders (date range pushed down) JOIN (c, n, r) -> [o, c, n, r]
  LH_ASSIGN_OR_RETURN(
      std::vector<Row> orders_rows,
      engine.Scan(*orders_file,
                  baseline::FieldRangePredicate(orders::kOrderDate,
                                                params.date_lo,
                                                params.date_hi)));
  LH_ASSIGN_OR_RETURN(
      std::vector<Row> ocnr,
      engine.HashJoin(std::move(orders_rows),
                      baseline::FieldKeyOfRow(0, orders::kCustKey),
                      std::move(cnr),
                      baseline::FieldKeyOfRow(0, customer::kCustKey)));
  // lineitem JOIN (o, c, n, r) -> [l, o, c, n, r]
  LH_ASSIGN_OR_RETURN(std::vector<Row> lineitem_rows,
                      engine.Scan(*lineitem_file, nullptr));
  LH_ASSIGN_OR_RETURN(
      std::vector<Row> locnr,
      engine.HashJoin(std::move(lineitem_rows),
                      baseline::FieldKeyOfRow(0, lineitem::kOrderKey),
                      std::move(ocnr),
                      baseline::FieldKeyOfRow(0, orders::kOrderKey)));
  // ... JOIN supplier on (s_suppkey, s_nationkey) = (l_suppkey, c_nationkey)
  LH_ASSIGN_OR_RETURN(std::vector<Row> supplier_rows,
                      engine.Scan(*supplier_file, nullptr));
  auto probe_key = [](const Row& row) -> StatusOr<std::string> {
    std::string key(Field(row[0], lineitem::kSuppKey));
    key.push_back('|');
    key.append(Field(row[2], customer::kNationKey));
    return key;
  };
  auto build_key = [](const Row& row) -> StatusOr<std::string> {
    std::string key(Field(row[0], supplier::kSuppKey));
    key.push_back('|');
    key.append(Field(row[0], supplier::kNationKey));
    return key;
  };
  return engine.HashJoin(std::move(locnr), probe_key,
                         std::move(supplier_rows), build_key);
}

namespace {

std::string RowKey(std::string_view orderkey, std::string_view linenumber) {
  std::string key(orderkey);
  key.push_back(':');
  key.append(linenumber);
  return key;
}

}  // namespace

StatusOr<Q5Summary> SummarizeRedeOutput(
    const std::vector<rede::Tuple>& tuples) {
  Q5Summary summary;
  for (const rede::Tuple& tuple : tuples) {
    if (tuple.records.size() <= q5_bundle::kSupplier) {
      return Status::Internal("Q5 output bundle too small");
    }
    const io::Record& li = tuple.records[q5_bundle::kLineitem];
    summary.keys.push_back(RowKey(Field(li, lineitem::kOrderKey),
                                  Field(li, lineitem::kLineNumber)));
  }
  summary.rows = summary.keys.size();
  std::sort(summary.keys.begin(), summary.keys.end());
  return summary;
}

StatusOr<Q5Summary> SummarizeBaselineOutput(
    const std::vector<baseline::Row>& rows) {
  Q5Summary summary;
  for (const baseline::Row& row : rows) {
    if (row.empty()) return Status::Internal("empty baseline Q5 row");
    const io::Record& li = row[0];
    summary.keys.push_back(RowKey(Field(li, lineitem::kOrderKey),
                                  Field(li, lineitem::kLineNumber)));
  }
  summary.rows = summary.keys.size();
  std::sort(summary.keys.begin(), summary.keys.end());
  return summary;
}

StatusOr<Q5Summary> Q5Oracle(const TpchData& data, const Q5Params& params) {
  // region key of the requested name
  std::string region_key;
  for (const auto& row : data.region) {
    if (Field(row, region::kName) == params.region_name) {
      region_key = std::string(Field(row, region::kRegionKey));
    }
  }
  if (region_key.empty()) {
    return Status::InvalidArgument("unknown region " + params.region_name);
  }
  // nations in the region
  std::unordered_set<std::string> nations;
  for (const auto& row : data.nation) {
    if (Field(row, nation::kRegionKey) == region_key) {
      nations.insert(std::string(Field(row, nation::kNationKey)));
    }
  }
  // customer -> nation (only region nations)
  std::unordered_map<std::string, std::string> customer_nation;
  for (const auto& row : data.customer) {
    std::string nk(Field(row, customer::kNationKey));
    if (nations.count(nk)) {
      customer_nation.emplace(std::string(Field(row, customer::kCustKey)),
                              std::move(nk));
    }
  }
  // supplier -> nation
  std::unordered_map<std::string, std::string> supplier_nation;
  for (const auto& row : data.supplier) {
    supplier_nation.emplace(std::string(Field(row, supplier::kSuppKey)),
                            std::string(Field(row, supplier::kNationKey)));
  }
  // orders in date range whose customer is in the region: orderkey -> c_nation
  std::unordered_map<std::string, std::string> order_nation;
  for (const auto& row : data.orders) {
    std::string_view date = Field(row, orders::kOrderDate);
    if (date < std::string_view(params.date_lo) ||
        date > std::string_view(params.date_hi)) {
      continue;
    }
    auto it = customer_nation.find(std::string(Field(row, orders::kCustKey)));
    if (it == customer_nation.end()) continue;
    order_nation.emplace(std::string(Field(row, orders::kOrderKey)),
                         it->second);
  }
  // lineitems of those orders whose supplier shares the customer's nation
  Q5Summary summary;
  for (const auto& row : data.lineitem) {
    auto oit = order_nation.find(std::string(Field(row, lineitem::kOrderKey)));
    if (oit == order_nation.end()) continue;
    auto sit =
        supplier_nation.find(std::string(Field(row, lineitem::kSuppKey)));
    if (sit == supplier_nation.end() || sit->second != oit->second) continue;
    summary.keys.push_back(RowKey(Field(row, lineitem::kOrderKey),
                                  Field(row, lineitem::kLineNumber)));
  }
  summary.rows = summary.keys.size();
  std::sort(summary.keys.begin(), summary.keys.end());
  return summary;
}

}  // namespace lakeharbor::tpch
