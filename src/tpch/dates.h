#pragma once

#include <cstdint>
#include <string>

#include "common/status_or.h"

/// \file dates.h
/// Gregorian-calendar helpers for TPC-H order dates. TPC-H populates
/// o_orderdate uniformly in [1992-01-01, 1998-08-02]; Fig 7's selectivity
/// knob is the width of a date-range predicate over that interval.

namespace lakeharbor::tpch {

/// First and last valid order dates (inclusive), as day offsets from
/// 1992-01-01.
inline constexpr int kMinOrderDay = 0;
inline constexpr int kMaxOrderDay = 2405;  // 1998-08-02

/// Convert a day offset from 1992-01-01 to "YYYY-MM-DD".
std::string DayToDate(int day_offset);

/// Inverse of DayToDate.
StatusOr<int> DateToDay(const std::string& date);

}  // namespace lakeharbor::tpch
