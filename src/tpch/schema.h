#pragma once

#include <cstddef>

/// \file schema.h
/// Field positions of the '|'-delimited TPC-H table encodings. These
/// constants exist only inside Interpreters/Filters — the engine itself
/// never sees them (schema-on-read).

namespace lakeharbor::tpch {

inline constexpr char kDelim = '|';

// region: r_regionkey|r_name|r_comment
namespace region {
inline constexpr size_t kRegionKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kComment = 2;
}  // namespace region

// nation: n_nationkey|n_name|n_regionkey|n_comment
namespace nation {
inline constexpr size_t kNationKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kRegionKey = 2;
inline constexpr size_t kComment = 3;
}  // namespace nation

// supplier: s_suppkey|s_name|s_address|s_nationkey|s_phone|s_acctbal
namespace supplier {
inline constexpr size_t kSuppKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kAddress = 2;
inline constexpr size_t kNationKey = 3;
inline constexpr size_t kPhone = 4;
inline constexpr size_t kAcctBal = 5;
}  // namespace supplier

// customer: c_custkey|c_name|c_address|c_nationkey|c_phone|c_acctbal|c_mktsegment
namespace customer {
inline constexpr size_t kCustKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kAddress = 2;
inline constexpr size_t kNationKey = 3;
inline constexpr size_t kPhone = 4;
inline constexpr size_t kAcctBal = 5;
inline constexpr size_t kMktSegment = 6;
}  // namespace customer

// part: p_partkey|p_name|p_brand|p_type|p_size|p_container|p_retailprice
namespace part {
inline constexpr size_t kPartKey = 0;
inline constexpr size_t kName = 1;
inline constexpr size_t kBrand = 2;
inline constexpr size_t kType = 3;
inline constexpr size_t kSize = 4;
inline constexpr size_t kContainer = 5;
inline constexpr size_t kRetailPrice = 6;
}  // namespace part

// orders: o_orderkey|o_custkey|o_orderstatus|o_totalprice|o_orderdate|o_orderpriority|o_clerk
namespace orders {
inline constexpr size_t kOrderKey = 0;
inline constexpr size_t kCustKey = 1;
inline constexpr size_t kOrderStatus = 2;
inline constexpr size_t kTotalPrice = 3;
inline constexpr size_t kOrderDate = 4;
inline constexpr size_t kOrderPriority = 5;
inline constexpr size_t kClerk = 6;
}  // namespace orders

// lineitem: l_orderkey|l_partkey|l_suppkey|l_linenumber|l_quantity|
//           l_extendedprice|l_discount|l_tax|l_shipdate
namespace lineitem {
inline constexpr size_t kOrderKey = 0;
inline constexpr size_t kPartKey = 1;
inline constexpr size_t kSuppKey = 2;
inline constexpr size_t kLineNumber = 3;
inline constexpr size_t kQuantity = 4;
inline constexpr size_t kExtendedPrice = 5;
inline constexpr size_t kDiscount = 6;
inline constexpr size_t kTax = 7;
inline constexpr size_t kShipDate = 8;
}  // namespace lineitem

/// Catalog names of the loaded files and structures.
namespace names {
inline constexpr const char* kRegion = "tpch.region";
inline constexpr const char* kNation = "tpch.nation";
inline constexpr const char* kSupplier = "tpch.supplier";
inline constexpr const char* kCustomer = "tpch.customer";
inline constexpr const char* kPart = "tpch.part";
inline constexpr const char* kOrders = "tpch.orders";
inline constexpr const char* kLineitem = "tpch.lineitem";
inline constexpr const char* kOrdersDateIndex = "tpch.orders.o_orderdate.idx";
inline constexpr const char* kOrdersDateRangeIndex =
    "tpch.orders.o_orderdate.ridx";
inline constexpr const char* kLineitemOrderKeyIndex =
    "tpch.lineitem.l_orderkey.idx";
inline constexpr const char* kLineitemPartKeyIndex =
    "tpch.lineitem.l_partkey.idx";
inline constexpr const char* kPartRetailPriceIndex =
    "tpch.part.p_retailprice.idx";
}  // namespace names

}  // namespace lakeharbor::tpch
