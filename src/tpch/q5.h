#pragma once

#include <string>
#include <vector>

#include "baseline/scan_engine.h"
#include "rede/engine.h"
#include "tpch/generator.h"

/// \file q5.h
/// TPC-H Q5' — the evaluation query of Fig 7: Q5 with sorting and
/// aggregation removed, i.e. the pure SPJ core
///
///   SELECT * FROM region, nation, customer, orders, lineitem, supplier
///   WHERE r_name = :region AND n_regionkey = r_regionkey
///     AND c_nationkey = n_nationkey AND o_custkey = c_custkey
///     AND l_orderkey = o_orderkey AND s_suppkey = l_suppkey
///     AND s_nationkey = c_nationkey
///     AND o_orderdate BETWEEN :lo AND :hi        -- the selectivity knob
///
/// implemented three ways: as a Reference-Dereference job (for both ReDe
/// executors), as a scan + grace-hash-join plan on the baseline engine, and
/// as an in-memory oracle over the generated data (tests only).

namespace lakeharbor::tpch {

struct Q5Params {
  std::string date_lo;  ///< inclusive "YYYY-MM-DD"
  std::string date_hi;  ///< inclusive
  std::string region_name = "ASIA";
};

/// Derive params whose date predicate covers `selectivity` (0..1] of the
/// order-date domain, starting at its low end.
Q5Params MakeQ5Params(double selectivity, std::string region_name = "ASIA");

/// ReDe job: index range scan on o_orderdate, then the pointer-chasing join
/// chain orders -> customer -> nation -> region(filter) -> lineitem-index ->
/// lineitem -> supplier(filter s_nationkey = c_nationkey). Output bundles
/// are [orders, customer, nation, region, lineitem, supplier].
StatusOr<rede::Job> BuildQ5RedeJob(rede::Engine& engine,
                                   const Q5Params& params);

/// Bundle positions of the ReDe job's output tuples.
namespace q5_bundle {
inline constexpr size_t kOrders = 0;
inline constexpr size_t kCustomer = 1;
inline constexpr size_t kNation = 2;
inline constexpr size_t kRegion = 3;
inline constexpr size_t kLineitem = 4;
inline constexpr size_t kSupplier = 5;
}  // namespace q5_bundle

/// Baseline plan (scan + hash joins). Output rows are
/// [lineitem, orders, customer, nation, region, supplier].
StatusOr<std::vector<baseline::Row>> RunQ5Baseline(baseline::ScanEngine& engine,
                                                   io::Catalog& catalog,
                                                   const Q5Params& params);

/// Canonical result summary for cross-engine comparison: one string
/// "o_orderkey:l_linenumber" per output row (sorted) plus the row count.
struct Q5Summary {
  std::vector<std::string> keys;  // sorted
  uint64_t rows = 0;

  bool operator==(const Q5Summary& other) const {
    return rows == other.rows && keys == other.keys;
  }
};

/// Summaries of the three implementations' outputs.
StatusOr<Q5Summary> SummarizeRedeOutput(const std::vector<rede::Tuple>& tuples);
StatusOr<Q5Summary> SummarizeBaselineOutput(
    const std::vector<baseline::Row>& rows);

/// In-memory oracle over generated data (ground truth for tests).
StatusOr<Q5Summary> Q5Oracle(const TpchData& data, const Q5Params& params);

}  // namespace lakeharbor::tpch
