#include "tpch/part_join.h"

#include <algorithm>

#include "common/string_util.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "tpch/schema.h"

namespace lakeharbor::tpch {

StatusOr<rede::Job> BuildPartLineitemJoinJob(rede::Engine& engine,
                                             const PartJoinParams& params) {
  io::Catalog& catalog = engine.catalog();
  LH_ASSIGN_OR_RETURN(auto part, catalog.Get(names::kPart));
  LH_ASSIGN_OR_RETURN(auto lineitem, catalog.Get(names::kLineitem));
  LH_ASSIGN_OR_RETURN(auto price_idx_file,
                      catalog.Get(names::kPartRetailPriceIndex));
  LH_ASSIGN_OR_RETURN(auto partkey_idx,
                      catalog.Get(names::kLineitemPartKeyIndex));
  auto price_idx = std::dynamic_pointer_cast<io::BtreeFile>(price_idx_file);
  if (price_idx == nullptr) {
    return Status::InvalidArgument("p_retailprice index is not a BtreeFile");
  }

  using namespace rede;  // NOLINT
  Interpreter partkey_interp =
      EncodedInt64FieldInterpreter(part::kPartKey, kDelim);
  StageFunctionPtr partkey_ref =
      params.broadcast
          ? MakeBroadcastReferencer("ref2-partkey-bcast", partkey_interp)
          : MakeKeyReferencer("ref2-partkey", partkey_interp);

  return JobBuilder(params.broadcast ? "part-lineitem-broadcast"
                                     : "part-lineitem-global")
      // Dereferencer-0: B-tree range on p_retailprice (Fig 4).
      .Initial(Tuple::Range(
          io::Pointer::Broadcast(io::EncodeDoubleKey(params.price_lo)),
          io::Pointer::Broadcast(io::EncodeDoubleKey(params.price_hi))))
      .Add(MakeRangeDereferencer("deref0-price-idx", price_idx))
      // Referencer-1 / Dereferencer-1: entry -> Part record.
      .Add(MakeIndexEntryReferencer("ref1-part-ptr"))
      .Add(MakePointDereferencer("deref1-part", part))
      // Referencer-2 / Dereferencer-2: p_partkey -> l_partkey index.
      .Add(partkey_ref)
      .Add(MakePointDereferencer("deref2-lineitem-idx", partkey_idx, nullptr,
                                 params.index_bloom))
      // Referencer-3 / Dereferencer-3: entry -> Lineitem record
      // (cross-partition accesses, as the paper notes).
      .Add(MakeIndexEntryReferencer("ref3-lineitem-ptr"))
      .Add(MakePointDereferencer("deref3-lineitem", lineitem))
      .Build();
}

std::vector<std::string> PartJoinOracle(const TpchData& data,
                                        const PartJoinParams& params) {
  std::vector<std::string> matching_parts;
  for (const auto& row : data.part) {
    auto price = ParseDouble(FieldAt(row, kDelim, part::kRetailPrice));
    LH_CHECK(price.ok());
    if (*price >= params.price_lo && *price <= params.price_hi) {
      matching_parts.emplace_back(FieldAt(row, kDelim, part::kPartKey));
    }
  }
  std::vector<std::string> keys;
  for (const auto& row : data.lineitem) {
    std::string_view pk = FieldAt(row, kDelim, lineitem::kPartKey);
    for (const auto& part_key : matching_parts) {
      if (pk == part_key) {
        std::string key(part_key);
        key.push_back(':');
        key.append(FieldAt(row, kDelim, lineitem::kOrderKey));
        key.push_back(':');
        key.append(FieldAt(row, kDelim, lineitem::kLineNumber));
        keys.push_back(std::move(key));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

StatusOr<std::vector<std::string>> SummarizePartJoinOutput(
    const std::vector<rede::Tuple>& tuples) {
  std::vector<std::string> keys;
  keys.reserve(tuples.size());
  for (const rede::Tuple& tuple : tuples) {
    if (tuple.records.size() != 2) {
      return Status::Internal("part-join bundle should be [part, lineitem]");
    }
    std::string key(
        FieldAt(tuple.records[0].slice().view(), kDelim, part::kPartKey));
    key.push_back(':');
    key.append(
        FieldAt(tuple.records[1].slice().view(), kDelim, lineitem::kOrderKey));
    key.push_back(':');
    key.append(FieldAt(tuple.records[1].slice().view(), kDelim,
                       lineitem::kLineNumber));
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace lakeharbor::tpch
