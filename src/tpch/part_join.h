#pragma once

#include <memory>
#include <string>
#include <vector>

#include "index/bloom.h"
#include "rede/engine.h"
#include "tpch/generator.h"

/// \file part_join.h
/// The worked example of Fig 3/4: the Part–Lineitem join
///
///   SELECT * FROM Part p JOIN Lineitem l ON p.p_partkey = l.l_partkey
///   WHERE p.p_retailprice BETWEEN :lo AND :hi
///
/// expressed as Referencers and Dereferencers over the local secondary
/// B-tree on p_retailprice and the global index on l_partkey (load with
/// LoadOptions::build_part_join_indexes). The join can route the partkey
/// pointer by the index's hash partitioning (global-index join) or
/// broadcast it to all partitions (broadcast join) — both are expressible,
/// as §III-B claims, and must produce identical results.

namespace lakeharbor::tpch {

struct PartJoinParams {
  double price_lo = 900.0;
  double price_hi = 910.0;
  /// Broadcast the l_partkey pointer instead of routing it by hash.
  bool broadcast = false;
  /// Optional membership structure over the l_partkey index partitions:
  /// broadcast resolution skips partitions the filter rules out, cutting
  /// the probe blow-up broadcast joins otherwise pay.
  std::shared_ptr<const index::PartitionBloom> index_bloom;
};

/// Output bundles are [part, lineitem].
StatusOr<rede::Job> BuildPartLineitemJoinJob(rede::Engine& engine,
                                             const PartJoinParams& params);

/// In-memory oracle: sorted "p_partkey:l_orderkey:l_linenumber" keys.
std::vector<std::string> PartJoinOracle(const TpchData& data,
                                        const PartJoinParams& params);

/// Canonicalize engine output the same way.
StatusOr<std::vector<std::string>> SummarizePartJoinOutput(
    const std::vector<rede::Tuple>& tuples);

}  // namespace lakeharbor::tpch
