#include "tpch/dates.h"

#include "common/string_util.h"

namespace lakeharbor::tpch {

namespace {

/// Howard Hinnant's civil-date algorithms (public domain).
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(year + (*m <= 2));
}

const int64_t kEpochDay = DaysFromCivil(1992, 1, 1);

}  // namespace

std::string DayToDate(int day_offset) {
  int y;
  unsigned m, d;
  CivilFromDays(kEpochDay + day_offset, &y, &m, &d);
  return StrFormat("%04d-%02u-%02u", y, m, d);
}

StatusOr<int> DateToDay(const std::string& date) {
  if (date.size() != 10 || date[4] != '-' || date[7] != '-') {
    return Status::InvalidArgument("bad date: " + date);
  }
  LH_ASSIGN_OR_RETURN(int64_t y, ParseInt64(std::string_view(date).substr(0, 4)));
  LH_ASSIGN_OR_RETURN(int64_t m, ParseInt64(std::string_view(date).substr(5, 2)));
  LH_ASSIGN_OR_RETURN(int64_t d, ParseInt64(std::string_view(date).substr(8, 2)));
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("bad date: " + date);
  }
  return static_cast<int>(DaysFromCivil(static_cast<int>(y),
                                        static_cast<unsigned>(m),
                                        static_cast<unsigned>(d)) -
                          kEpochDay);
}

}  // namespace lakeharbor::tpch
