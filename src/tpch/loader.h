#pragma once

#include <cstdint>

#include "common/status.h"
#include "rede/engine.h"
#include "tpch/generator.h"

/// \file loader.h
/// Loads a generated TPC-H dataset into a ReDe engine's lake, replicating
/// the paper's experimental setup (§III-E):
///   - base files hash-partitioned by their primary keys (lineitem by
///     l_orderkey),
///   - a local secondary B-tree on the date column of orders,
///   - global indexes on the foreign keys used by the evaluated joins.
/// Structures are built through the engine's access-method registration
/// path, so their build cost is charged to the simulated devices.

namespace lakeharbor::tpch {

struct LoadOptions {
  /// Partitions per base file; defaults to one per simulated node.
  uint32_t partitions = 0;
  /// Build the Part/Lineitem(l_partkey) structures used by the Fig 3/4
  /// example join in addition to the Q5' structures.
  bool build_part_join_indexes = false;
  /// Additionally build a *range-partitioned global* structure on
  /// o_orderdate (boundaries sampled from the data), which range
  /// dereferences can prune — the contrast to the local secondary index.
  bool build_range_partitioned_date_index = false;
  size_t btree_fanout = 64;
  /// Replicas of every partition (base files AND the structures built over
  /// them, which inherit it). 1 = the unreplicated seed layout; 2+ lets
  /// queries survive whole-node outages via replica failover.
  uint32_t replication_factor = 1;
};

/// Load `data` into `engine`'s catalog and build the structures.
Status LoadIntoLake(rede::Engine& engine, const TpchData& data,
                    LoadOptions options = {});

}  // namespace lakeharbor::tpch
