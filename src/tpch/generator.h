#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file generator.h
/// Deterministic dbgen-like TPC-H generator. Substitutes for the paper's
/// SF=128K dataset: table cardinalities follow the TPC-H ratios, scaled to
/// laptop size; dates, keys, and prices follow the spec's distributions
/// closely enough that Q5'-style selectivity math holds exactly.

namespace lakeharbor::tpch {

struct TpchConfig {
  /// TPC-H scale factor. SF=1 would give 150k customers / 1.5M orders;
  /// benches default to a small fraction.
  double scale_factor = 0.01;
  uint64_t seed = 20240611;

  uint64_t num_customers() const {
    return Scaled(150000);
  }
  uint64_t num_orders() const { return num_customers() * 10; }
  uint64_t num_suppliers() const { return Scaled(10000); }
  uint64_t num_parts() const { return Scaled(20000); }

 private:
  uint64_t Scaled(uint64_t base) const {
    uint64_t n = static_cast<uint64_t>(static_cast<double>(base) *
                                       scale_factor);
    return n == 0 ? 1 : n;
  }
};

/// The generated dataset, one '|'-delimited text row per record. Kept in
/// memory both for loading into the lake and as ground truth for the
/// in-memory query oracles used in tests.
struct TpchData {
  TpchConfig config;
  std::vector<std::string> region;
  std::vector<std::string> nation;
  std::vector<std::string> supplier;
  std::vector<std::string> customer;
  std::vector<std::string> part;
  std::vector<std::string> orders;
  std::vector<std::string> lineitem;

  uint64_t total_rows() const {
    return region.size() + nation.size() + supplier.size() + customer.size() +
           part.size() + orders.size() + lineitem.size();
  }
};

/// Generate the dataset for `config`. Deterministic in (scale_factor, seed).
TpchData Generate(const TpchConfig& config);

/// The five TPC-H region names, indexed by r_regionkey.
extern const char* const kRegionNames[5];

/// Number of nations (25, as in the spec).
inline constexpr int kNumNations = 25;

}  // namespace lakeharbor::tpch
