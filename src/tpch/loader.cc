#include "tpch/loader.h"

#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "io/key_codec.h"
#include "tpch/schema.h"

namespace lakeharbor::tpch {

namespace {

/// Extract delimited field `field` of a row and return it int64-encoded.
StatusOr<std::string> EncodedIntField(std::string_view row, size_t field) {
  LH_ASSIGN_OR_RETURN(int64_t v, ParseInt64(FieldAt(row, kDelim, field)));
  return io::EncodeInt64Key(v);
}

/// Load rows into a new file keyed and partitioned by an integer field.
template <typename FileT>
StatusOr<std::shared_ptr<FileT>> LoadTable(
    rede::Engine& engine, const char* name,
    const std::vector<std::string>& rows, size_t key_field,
    uint32_t partitions, size_t fanout, uint32_t replication_factor,
    size_t secondary_key_field = SIZE_MAX) {
  auto file = std::make_shared<FileT>(
      name, std::make_shared<io::HashPartitioner>(partitions),
      &engine.cluster(), fanout);
  file->SetReplicationFactor(replication_factor);
  if (const io::PlacementMap placement = file->placement();
      placement.clamped()) {
    LH_LOG_WARN << "tpch loader: file '" << name << "' requested rf "
                << placement.requested_replication_factor()
                << " but runs with effective rf "
                << placement.replication_factor() << " ("
                << placement.num_nodes() << " active nodes)";
  }
  for (const std::string& row : rows) {
    LH_ASSIGN_OR_RETURN(std::string key, EncodedIntField(row, key_field));
    std::string in_key = key;
    if (secondary_key_field != SIZE_MAX) {
      LH_ASSIGN_OR_RETURN(std::string second,
                          EncodedIntField(row, secondary_key_field));
      in_key = io::ComposeKey(key, second);
    }
    LH_RETURN_NOT_OK(
        file->Append(key, std::move(in_key), io::Record(std::string(row))));
  }
  file->Seal();
  LH_RETURN_NOT_OK(engine.catalog().Register(file));
  return file;
}

/// Posting extractor: index key = raw text field `index_field` (already
/// ordered, e.g. a date); target = (encoded int `target_field`, same).
index::PostingExtractor TextKeyExtractor(size_t index_field,
                                         size_t target_field) {
  return [index_field, target_field](const io::Record& record,
                                     std::vector<index::Posting>* out) {
    std::string_view row = record.slice().view();
    index::Posting posting;
    posting.index_key = std::string(FieldAt(row, kDelim, index_field));
    LH_ASSIGN_OR_RETURN(posting.target_partition_key,
                        EncodedIntField(row, target_field));
    posting.target_key = posting.target_partition_key;
    out->push_back(std::move(posting));
    return Status::OK();
  };
}

}  // namespace

Status LoadIntoLake(rede::Engine& engine, const TpchData& data,
                    LoadOptions options) {
  uint32_t partitions = options.partitions == 0
                            ? engine.cluster().num_nodes()
                            : options.partitions;
  const size_t fanout = options.btree_fanout;
  const uint32_t rf = options.replication_factor;

  LH_RETURN_NOT_OK(LoadTable<io::PartitionedFile>(
                       engine, names::kRegion, data.region,
                       region::kRegionKey, partitions, fanout, rf)
                       .status());
  LH_RETURN_NOT_OK(LoadTable<io::PartitionedFile>(
                       engine, names::kNation, data.nation,
                       nation::kNationKey, partitions, fanout, rf)
                       .status());
  LH_RETURN_NOT_OK(LoadTable<io::PartitionedFile>(
                       engine, names::kSupplier, data.supplier,
                       supplier::kSuppKey, partitions, fanout, rf)
                       .status());
  LH_RETURN_NOT_OK(LoadTable<io::PartitionedFile>(
                       engine, names::kCustomer, data.customer,
                       customer::kCustKey, partitions, fanout, rf)
                       .status());
  LH_RETURN_NOT_OK(LoadTable<io::PartitionedFile>(
                       engine, names::kPart, data.part, part::kPartKey,
                       partitions, fanout, rf)
                       .status());
  LH_RETURN_NOT_OK(LoadTable<io::PartitionedFile>(
                       engine, names::kOrders, data.orders,
                       orders::kOrderKey, partitions, fanout, rf)
                       .status());
  // Lineitem: partitioned by l_orderkey, primary key (l_orderkey,
  // l_linenumber).
  LH_RETURN_NOT_OK(LoadTable<io::PartitionedFile>(
                       engine, names::kLineitem, data.lineitem,
                       lineitem::kOrderKey, partitions, fanout, rf,
                       lineitem::kLineNumber)
                       .status());

  // Local secondary B-tree on o_orderdate (entries point at local orders).
  {
    index::IndexSpec spec;
    spec.index_name = names::kOrdersDateIndex;
    spec.base_file = names::kOrders;
    spec.placement = index::IndexPlacement::kLocal;
    spec.btree_fanout = fanout;
    spec.extract = TextKeyExtractor(orders::kOrderDate, orders::kOrderKey);
    LH_RETURN_NOT_OK(engine.BuildStructure(spec, "o_orderdate").status());
  }
  // Global index on l_orderkey: entry key = encoded l_orderkey, target =
  // (l_orderkey partition key, composite (l_orderkey, l_linenumber) pk).
  {
    index::IndexSpec spec;
    spec.index_name = names::kLineitemOrderKeyIndex;
    spec.base_file = names::kLineitem;
    spec.placement = index::IndexPlacement::kGlobal;
    spec.btree_fanout = fanout;
    spec.extract = [](const io::Record& record,
                      std::vector<index::Posting>* out) {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(posting.index_key,
                          EncodedIntField(row, lineitem::kOrderKey));
      posting.target_partition_key = posting.index_key;
      LH_ASSIGN_OR_RETURN(std::string line,
                          EncodedIntField(row, lineitem::kLineNumber));
      posting.target_key = io::ComposeKey(posting.index_key, line);
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_RETURN_NOT_OK(engine.BuildStructure(spec, "l_orderkey").status());
  }

  if (options.build_range_partitioned_date_index) {
    // Range-partitioned global structure on o_orderdate: boundaries are
    // quantiles of the actual dates, so a date-range dereference can prune
    // to the partitions the range intersects.
    std::vector<std::string> sample;
    sample.reserve(data.orders.size());
    for (const std::string& row : data.orders) {
      sample.emplace_back(FieldAt(row, kDelim, orders::kOrderDate));
    }
    index::IndexSpec spec;
    spec.index_name = names::kOrdersDateRangeIndex;
    spec.base_file = names::kOrders;
    spec.placement = index::IndexPlacement::kGlobal;
    spec.btree_fanout = fanout;
    spec.partitioner =
        io::BuildRangePartitionerFromSample(std::move(sample), partitions);
    spec.extract = TextKeyExtractor(orders::kOrderDate, orders::kOrderKey);
    LH_RETURN_NOT_OK(
        engine.BuildStructure(spec, "o_orderdate.range").status());
  }

  if (options.build_part_join_indexes) {
    // Local secondary B-tree on p_retailprice (the Fig 3/4 example).
    index::IndexSpec price;
    price.index_name = names::kPartRetailPriceIndex;
    price.base_file = names::kPart;
    price.placement = index::IndexPlacement::kLocal;
    price.btree_fanout = fanout;
    price.extract = [](const io::Record& record,
                       std::vector<index::Posting>* out) {
      std::string_view row = record.slice().view();
      LH_ASSIGN_OR_RETURN(double v,
                          ParseDouble(FieldAt(row, kDelim,
                                              part::kRetailPrice)));
      index::Posting posting;
      posting.index_key = io::EncodeDoubleKey(v);
      LH_ASSIGN_OR_RETURN(posting.target_partition_key,
                          EncodedIntField(row, part::kPartKey));
      posting.target_key = posting.target_partition_key;
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_RETURN_NOT_OK(engine.BuildStructure(price, "p_retailprice").status());

    // Global index on l_partkey, hash-partitioned by l_partkey.
    index::IndexSpec partkey;
    partkey.index_name = names::kLineitemPartKeyIndex;
    partkey.base_file = names::kLineitem;
    partkey.placement = index::IndexPlacement::kGlobal;
    partkey.btree_fanout = fanout;
    partkey.extract = [](const io::Record& record,
                         std::vector<index::Posting>* out) {
      std::string_view row = record.slice().view();
      index::Posting posting;
      LH_ASSIGN_OR_RETURN(posting.index_key,
                          EncodedIntField(row, lineitem::kPartKey));
      LH_ASSIGN_OR_RETURN(posting.target_partition_key,
                          EncodedIntField(row, lineitem::kOrderKey));
      LH_ASSIGN_OR_RETURN(std::string line,
                          EncodedIntField(row, lineitem::kLineNumber));
      posting.target_key =
          io::ComposeKey(posting.target_partition_key, line);
      out->push_back(std::move(posting));
      return Status::OK();
    };
    LH_RETURN_NOT_OK(engine.BuildStructure(partkey, "l_partkey").status());
  }
  return Status::OK();
}

}  // namespace lakeharbor::tpch
