#include "tpch/generator.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "tpch/dates.h"
#include "tpch/schema.h"

namespace lakeharbor::tpch {

const char* const kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

namespace {

const char* const kNationNames[kNumNations] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

/// Region of each nation, following the TPC-H mapping.
const int kNationRegion[kNumNations] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                        4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* const kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "HOUSEHOLD", "MACHINERY"};
const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECIFIED", "5-LOW"};
const char* const kBrands[5] = {"Brand#11", "Brand#22", "Brand#33", "Brand#44",
                                "Brand#55"};
const char* const kTypes[6] = {"STANDARD ANODIZED", "SMALL PLATED",
                               "MEDIUM POLISHED", "LARGE BRUSHED",
                               "ECONOMY BURNISHED", "PROMO TIN"};
const char* const kContainers[4] = {"SM CASE", "MED BOX", "LG DRUM",
                                    "JUMBO PKG"};

}  // namespace

TpchData Generate(const TpchConfig& config) {
  TpchData data;
  data.config = config;
  Random rng(config.seed);

  for (int r = 0; r < 5; ++r) {
    data.region.push_back(
        StrFormat("%d|%s|region comment %d", r, kRegionNames[r], r));
  }
  for (int n = 0; n < kNumNations; ++n) {
    data.nation.push_back(StrFormat("%d|%s|%d|nation comment %d", n,
                                    kNationNames[n], kNationRegion[n], n));
  }

  const uint64_t num_suppliers = config.num_suppliers();
  data.supplier.reserve(num_suppliers);
  for (uint64_t s = 1; s <= num_suppliers; ++s) {
    int nation = static_cast<int>(rng.Uniform(kNumNations));
    data.supplier.push_back(StrFormat(
        "%llu|Supplier#%09llu|addr-%s|%d|%02d-%03llu-%03llu|%.2f",
        static_cast<unsigned long long>(s),
        static_cast<unsigned long long>(s), rng.NextString(8).c_str(), nation,
        nation + 10, static_cast<unsigned long long>(rng.Uniform(1000)),
        static_cast<unsigned long long>(rng.Uniform(1000)),
        rng.NextDouble() * 9999.99));
  }

  const uint64_t num_customers = config.num_customers();
  data.customer.reserve(num_customers);
  for (uint64_t c = 1; c <= num_customers; ++c) {
    int nation = static_cast<int>(rng.Uniform(kNumNations));
    data.customer.push_back(StrFormat(
        "%llu|Customer#%09llu|addr-%s|%d|%02d-%03llu-%03llu|%.2f|%s",
        static_cast<unsigned long long>(c),
        static_cast<unsigned long long>(c), rng.NextString(10).c_str(),
        nation, nation + 10,
        static_cast<unsigned long long>(rng.Uniform(1000)),
        static_cast<unsigned long long>(rng.Uniform(1000)),
        rng.NextDouble() * 9999.99, kSegments[rng.Uniform(5)]));
  }

  const uint64_t num_parts = config.num_parts();
  data.part.reserve(num_parts);
  for (uint64_t p = 1; p <= num_parts; ++p) {
    data.part.push_back(StrFormat(
        "%llu|part-%s|%s|%s|%llu|%s|%.2f",
        static_cast<unsigned long long>(p), rng.NextString(12).c_str(),
        kBrands[rng.Uniform(5)], kTypes[rng.Uniform(6)],
        static_cast<unsigned long long>(1 + rng.Uniform(50)),
        kContainers[rng.Uniform(4)],
        // p_retailprice per spec: 900 + partkey/10 mod 1000 + cents
        900.0 + static_cast<double>(p % 10000) / 10.0));
  }

  const uint64_t num_orders = config.num_orders();
  data.orders.reserve(num_orders);
  data.lineitem.reserve(num_orders * 4);
  for (uint64_t o = 1; o <= num_orders; ++o) {
    uint64_t cust = 1 + rng.Uniform(num_customers);
    int day = static_cast<int>(rng.Uniform(kMaxOrderDay + 1));
    std::string date = DayToDate(day);
    double total_price = 0.0;
    uint64_t num_lines = 1 + rng.Uniform(7);
    for (uint64_t l = 1; l <= num_lines; ++l) {
      uint64_t partkey = 1 + rng.Uniform(num_parts);
      uint64_t suppkey = 1 + rng.Uniform(num_suppliers);
      uint64_t quantity = 1 + rng.Uniform(50);
      double price = static_cast<double>(quantity) *
                     (900.0 + static_cast<double>(partkey % 10000) / 10.0);
      total_price += price;
      int ship_day = std::min<int>(kMaxOrderDay, day + 1 +
                                   static_cast<int>(rng.Uniform(121)));
      data.lineitem.push_back(StrFormat(
          "%llu|%llu|%llu|%llu|%llu|%.2f|%.2f|%.2f|%s",
          static_cast<unsigned long long>(o),
          static_cast<unsigned long long>(partkey),
          static_cast<unsigned long long>(suppkey),
          static_cast<unsigned long long>(l),
          static_cast<unsigned long long>(quantity), price,
          rng.NextDouble() * 0.1, rng.NextDouble() * 0.08,
          DayToDate(ship_day).c_str()));
    }
    data.orders.push_back(StrFormat(
        "%llu|%llu|%c|%.2f|%s|%s|Clerk#%09llu",
        static_cast<unsigned long long>(o),
        static_cast<unsigned long long>(cust), "OFP"[rng.Uniform(3)],
        total_price, date.c_str(), kPriorities[rng.Uniform(5)],
        static_cast<unsigned long long>(1 + rng.Uniform(1000))));
  }
  return data;
}

}  // namespace lakeharbor::tpch
