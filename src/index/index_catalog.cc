#include "index/index_catalog.h"

namespace lakeharbor::index {

Status IndexCatalog::Add(IndexMeta meta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_name_.emplace(meta.index_name, std::move(meta));
  if (!inserted) {
    return Status::AlreadyExists("index '" + it->first +
                                 "' already in index catalog");
  }
  return Status::OK();
}

Status IndexCatalog::SetState(const std::string& index_name,
                              IndexMeta::State state) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(index_name);
  if (it == by_name_.end()) {
    return Status::NotFound("index '" + index_name + "' not in catalog");
  }
  it->second.state = state;
  return Status::OK();
}

std::optional<IndexMeta> IndexCatalog::FindReady(
    const std::string& base_file, const std::string& attribute) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, meta] : by_name_) {
    if (meta.base_file == base_file && meta.attribute == attribute &&
        meta.state == IndexMeta::State::kReady) {
      return meta;
    }
  }
  return std::nullopt;
}

std::vector<IndexMeta> IndexCatalog::ListForBase(
    const std::string& base_file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<IndexMeta> out;
  for (const auto& [name, meta] : by_name_) {
    if (meta.base_file == base_file) out.push_back(meta);
  }
  return out;
}

std::vector<IndexMeta> IndexCatalog::ListAll() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<IndexMeta> out;
  out.reserve(by_name_.size());
  for (const auto& [name, meta] : by_name_) out.push_back(meta);
  return out;
}

}  // namespace lakeharbor::index
