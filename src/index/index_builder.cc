#include "index/index_builder.h"

#include "index/index_entry.h"

namespace lakeharbor::index {

const char* IndexPlacementToString(IndexPlacement placement) {
  switch (placement) {
    case IndexPlacement::kLocal:
      return "local";
    case IndexPlacement::kGlobal:
      return "global";
  }
  return "?";
}

StatusOr<std::shared_ptr<io::BtreeFile>> IndexBuilder::Build(
    const IndexSpec& spec) {
  if (!spec.extract) {
    return Status::InvalidArgument("index spec '" + spec.index_name +
                                   "' has no posting extractor");
  }
  LH_ASSIGN_OR_RETURN(std::shared_ptr<io::File> base,
                      catalog_->Get(spec.base_file));
  sim::Cluster* cluster = base->cluster();

  // Local indexes share placement with the base (partition i ~ base
  // partition i); global ones are partitioned by the index key — hashed by
  // default, or by a caller-supplied (e.g. range) partitioner.
  std::shared_ptr<io::Partitioner> partitioner = spec.partitioner;
  if (partitioner == nullptr || spec.placement == IndexPlacement::kLocal) {
    partitioner = std::make_shared<io::HashPartitioner>(
        base->num_partitions());
  }
  const uint32_t num_partitions = partitioner->num_partitions();
  if (spec.placement == IndexPlacement::kLocal) {
    LH_CHECK_MSG(num_partitions == base->num_partitions(),
                 "local index partitions must mirror the base file");
  }
  auto index = std::make_shared<io::BtreeFile>(
      spec.index_name, std::move(partitioner), cluster, spec.btree_fanout);
  index->SetReplicationFactor(spec.replication_factor != 0
                                  ? spec.replication_factor
                                  : base->replication_factor());

  std::vector<Posting> postings;
  // Entry writes are buffered per target partition and charged one page at
  // a time, as a buffered bulk build would.
  std::vector<size_t> pending_bytes(num_partitions, 0);
  const size_t batch = spec.write_batch_bytes == 0 ? 1 : spec.write_batch_bytes;
  const uint32_t base_partitions = base->num_partitions();
  for (uint32_t p = 0; p < base_partitions; ++p) {
    // The build runs "on" the node owning the base partition, so the scan
    // is local; entry writes may cross the network for global indexes.
    sim::NodeId build_node = base->NodeOfPartition(p);
    Status scan_status = Status::OK();
    Status status = base->ScanPartition(
        build_node, p, [&](const io::Record& record) {
          postings.clear();
          scan_status = spec.extract(record, &postings);
          if (!scan_status.ok()) return false;
          for (auto& posting : postings) {
            io::Record entry = MakeIndexEntry(posting.target_partition_key,
                                              posting.target_key);
            uint32_t target_partition =
                spec.placement == IndexPlacement::kLocal
                    ? p
                    : index->partitioner().PartitionOf(posting.index_key);
            pending_bytes[target_partition] +=
                entry.size() + posting.index_key.size();
            if (pending_bytes[target_partition] >= batch) {
              // Every replica of the target partition receives the page —
              // replication pays its write amplification at build time.
              scan_status = cluster->ChargeReplicatedWrite(
                  build_node,
                  index->placement().ReplicaNodes(target_partition),
                  pending_bytes[target_partition]);
              pending_bytes[target_partition] = 0;
              if (!scan_status.ok()) return false;
            }
            scan_status = index->AppendToPartition(
                target_partition, std::move(posting.index_key),
                std::move(entry));
            if (!scan_status.ok()) return false;
          }
          return true;
        });
    LH_RETURN_NOT_OK(status.WithContext("index build scan"));
    LH_RETURN_NOT_OK(scan_status.WithContext("index build extract"));
  }
  for (uint32_t t = 0; t < num_partitions; ++t) {
    if (pending_bytes[t] > 0) {
      LH_RETURN_NOT_OK(cluster->ChargeReplicatedWrite(
          index->NodeOfPartition(t), index->placement().ReplicaNodes(t),
          pending_bytes[t]));
    }
  }
  index->Seal();
  catalog_->RegisterOrReplace(index);
  return index;
}

Status IndexBuilder::Handle::Join() {
  if (thread_.joinable()) thread_.join();
  joined_ = true;
  return status_;
}

std::unique_ptr<IndexBuilder::Handle> IndexBuilder::BuildInBackground(
    IndexSpec spec) {
  auto handle = std::unique_ptr<Handle>(new Handle());
  Handle* raw = handle.get();
  raw->thread_ = std::thread([this, raw, spec = std::move(spec)] {
    auto result = Build(spec);
    raw->status_ = result.ok() ? Status::OK() : result.status();
  });
  return handle;
}

}  // namespace lakeharbor::index
