#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/status_or.h"
#include "io/partitioned_file.h"

namespace lakeharbor::index {

/// A Bloom filter over opaque keys (double hashing over FNV-1a/mix64).
/// Structures in LakeHarbor are not only B-trees: a membership filter is
/// the cheapest structure that makes *broadcast* point lookups affordable,
/// by skipping partitions that certainly lack the key.
class BloomFilter {
 public:
  /// Sized for `expected_keys` at the given false-positive rate.
  BloomFilter(size_t expected_keys, double false_positive_rate = 0.01);

  void Add(Slice key);
  bool MightContain(Slice key) const;

  size_t num_bits() const { return num_bits_; }
  size_t num_hashes() const { return num_hashes_; }
  size_t memory_bytes() const { return bits_.size() * sizeof(uint64_t); }

 private:
  std::pair<uint64_t, uint64_t> BaseHashes(Slice key) const {
    uint64_t h1 = Fnv1a64(key);
    uint64_t h2 = Mix64(h1) | 1;  // odd, so probe strides cover the table
    return {h1, h2};
  }

  size_t num_bits_;
  size_t num_hashes_;
  std::vector<uint64_t> bits_;
};

/// One BloomFilter per partition of a file, built with a charged scan —
/// the structure-maintenance path for membership structures. Thread-safe
/// for concurrent reads once built.
class PartitionBloom {
 public:
  /// Scan `file` and build per-partition filters over the in-partition
  /// keys.
  static StatusOr<PartitionBloom> Build(io::PartitionedFile& file,
                                        double false_positive_rate = 0.01);

  /// False means the partition definitely lacks the key; true means it
  /// might hold it (probe required).
  bool MightContain(uint32_t partition, Slice key) const;

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(filters_.size());
  }
  size_t memory_bytes() const;

 private:
  std::vector<std::unique_ptr<BloomFilter>> filters_;
};

}  // namespace lakeharbor::index
