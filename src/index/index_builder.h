#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status_or.h"
#include "io/catalog.h"
#include "io/partitioned_file.h"

namespace lakeharbor::index {

/// One index posting extracted from a base record: the key the index is
/// ordered by plus the location of the record it points back to.
struct Posting {
  std::string index_key;
  std::string target_partition_key;
  std::string target_key;
};

/// Schema-on-read extraction of postings from one raw record. A record may
/// yield zero postings (attribute absent) or several (nested/repeating
/// attributes, e.g. one posting per SY sub-record of an insurance claim).
using PostingExtractor =
    std::function<Status(const io::Record& record, std::vector<Posting>* out)>;

/// Where index partitions live relative to the base file (Taniar & Rahayu
/// taxonomy, which the paper adopts):
///   kLocal  — index partition i mirrors base partition i; lookups by index
///             key must consult every partition, but entries point at local
///             records (the o_orderdate index in Fig 7's setup).
///   kGlobal — index is hash-partitioned by the index key itself; a point
///             lookup touches exactly one partition, but entries may point
///             at remote records (the foreign-key indexes).
enum class IndexPlacement { kLocal, kGlobal };

const char* IndexPlacementToString(IndexPlacement placement);

/// Specification of a structure to build over a base file.
struct IndexSpec {
  std::string index_name;
  std::string base_file;
  IndexPlacement placement = IndexPlacement::kGlobal;
  PostingExtractor extract;
  /// B-tree fanout of the index partitions.
  size_t btree_fanout = 64;
  /// Entry writes are buffered and charged to the target disk one page at a
  /// time (per target partition), modelling a buffered bulk build.
  size_t write_batch_bytes = 64 * 1024;
  /// Partitioner of the structure itself. Null: hash by the index key with
  /// the base file's partition count. Global indexes may instead supply an
  /// order-preserving RangePartitioner (see
  /// io::BuildRangePartitionerFromSample), which lets range dereferences
  /// prune to the partitions their key range intersects. Ignored for
  /// kLocal placement (local partitions mirror the base file 1:1).
  std::shared_ptr<io::Partitioner> partitioner;
  /// Replication factor of the index itself. 0 (default) inherits the base
  /// file's replication factor — an index over a replicated file should
  /// survive the same outages as its base.
  uint32_t replication_factor = 0;
};

/// Builds B-tree structures over lake files from registered access-method
/// functions (§III-D): scans the base file partition by partition, runs the
/// posting extractor on every raw record, and writes index entries — paying
/// simulated scan and write costs, which the ablation benches measure.
class IndexBuilder {
 public:
  explicit IndexBuilder(io::Catalog* catalog) : catalog_(catalog) {
    LH_CHECK(catalog_ != nullptr);
  }

  /// Build synchronously and register the index in the catalog.
  StatusOr<std::shared_ptr<io::BtreeFile>> Build(const IndexSpec& spec);

  /// Lazy background build (the paper's model). Join() waits and returns
  /// the build status; the index appears in the catalog only on success.
  class Handle {
   public:
    ~Handle() { Join(); }
    Status Join();

   private:
    friend class IndexBuilder;
    std::thread thread_;
    Status status_;
    bool joined_ = false;
  };
  std::unique_ptr<Handle> BuildInBackground(IndexSpec spec);

 private:
  io::Catalog* catalog_;
};

}  // namespace lakeharbor::index
