#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/index_builder.h"

namespace lakeharbor::index {

/// Metadata about one structure the lake maintains. The structure itself is
/// a BtreeFile in the io::Catalog; this record tracks *why* it exists —
/// which base file and attribute it covers — so query authors (and, per
/// §V-B, a future adaptive advisor) can discover usable structures.
struct IndexMeta {
  std::string index_name;
  std::string base_file;
  std::string attribute;  ///< human-readable attribute path, e.g. "o_orderdate"
  IndexPlacement placement = IndexPlacement::kGlobal;
  enum class State { kBuilding, kReady, kFailed } state = State::kBuilding;
};

/// Registry of structures, keyed by (base_file, attribute).
class IndexCatalog {
 public:
  IndexCatalog() = default;
  LH_DISALLOW_COPY_AND_ASSIGN(IndexCatalog);

  Status Add(IndexMeta meta);
  Status SetState(const std::string& index_name, IndexMeta::State state);

  /// Find a ready structure covering (base_file, attribute).
  std::optional<IndexMeta> FindReady(const std::string& base_file,
                                     const std::string& attribute) const;

  std::vector<IndexMeta> ListForBase(const std::string& base_file) const;
  std::vector<IndexMeta> ListAll() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, IndexMeta> by_name_;
};

}  // namespace lakeharbor::index
