#include "index/bloom.h"

#include <algorithm>

namespace lakeharbor::index {

BloomFilter::BloomFilter(size_t expected_keys, double false_positive_rate) {
  LH_CHECK_MSG(false_positive_rate > 0 && false_positive_rate < 1,
               "false-positive rate must be in (0, 1)");
  expected_keys = std::max<size_t>(1, expected_keys);
  // Standard sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
  const double ln2 = 0.6931471805599453;
  double bits = -static_cast<double>(expected_keys) *
                std::log(false_positive_rate) / (ln2 * ln2);
  num_bits_ = std::max<size_t>(64, static_cast<size_t>(bits));
  num_hashes_ = std::max<size_t>(
      1, static_cast<size_t>(std::round(
             bits / static_cast<double>(expected_keys) * ln2)));
  bits_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::Add(Slice key) {
  auto [h1, h2] = BaseHashes(key);
  for (size_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % num_bits_;
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
}

bool BloomFilter::MightContain(Slice key) const {
  auto [h1, h2] = BaseHashes(key);
  for (size_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % num_bits_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

StatusOr<PartitionBloom> PartitionBloom::Build(io::PartitionedFile& file,
                                               double false_positive_rate) {
  PartitionBloom bloom;
  bloom.filters_.reserve(file.num_partitions());
  for (uint32_t p = 0; p < file.num_partitions(); ++p) {
    auto filter = std::make_unique<BloomFilter>(
        static_cast<size_t>(file.partition_records(p)), false_positive_rate);
    LH_RETURN_NOT_OK(file.ScanPartitionKeyed(
        file.NodeOfPartition(p), p,
        [&](const std::string& key, const io::Record&) {
          filter->Add(key);
          return true;
        }));
    bloom.filters_.push_back(std::move(filter));
  }
  return bloom;
}

bool PartitionBloom::MightContain(uint32_t partition, Slice key) const {
  if (partition >= filters_.size()) return true;  // unknown: must probe
  return filters_[partition]->MightContain(key);
}

size_t PartitionBloom::memory_bytes() const {
  size_t total = 0;
  for (const auto& filter : filters_) total += filter->memory_bytes();
  return total;
}

}  // namespace lakeharbor::index
