#pragma once

#include <string>
#include <string_view>

#include "common/status_or.h"
#include "io/pointer.h"
#include "io/record.h"

namespace lakeharbor::index {

/// Index entries are themselves Records — "the obtained records consist of
/// logical pointers of the Part file" (§III-B). An entry stores the target
/// record's partition key and in-partition key, separated by an unprintable
/// byte that cannot occur in the order-preserving key encodings.
inline constexpr char kEntrySeparator = '\x1f';

/// Build the index-entry record pointing at (partition_key, key).
inline io::Record MakeIndexEntry(std::string_view target_partition_key,
                                 std::string_view target_key) {
  std::string payload;
  payload.reserve(target_partition_key.size() + 1 + target_key.size());
  payload.append(target_partition_key);
  payload.push_back(kEntrySeparator);
  payload.append(target_key);
  return io::Record(std::move(payload));
}

/// Parse an index-entry record back into a Pointer at the target record.
inline StatusOr<io::Pointer> ParseIndexEntry(const io::Record& entry) {
  std::string_view bytes = entry.slice().view();
  size_t sep = bytes.find(kEntrySeparator);
  if (sep == std::string_view::npos) {
    return Status::Corruption("malformed index entry");
  }
  io::Pointer ptr;
  ptr.partition_key = std::string(bytes.substr(0, sep));
  ptr.key = std::string(bytes.substr(sep + 1));
  return ptr;
}

}  // namespace lakeharbor::index
