#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"

namespace lakeharbor::index {

/// An in-memory B+tree with duplicate-key support, modelling the on-disk
/// B-tree structures LakeHarbor builds over lake data. Inner nodes hold
/// separator keys; all values live in leaves, which are chained for range
/// scans. Keys are opaque byte strings in order-preserving encoding (see
/// io/key_codec.h), so one tree type serves integer, double, and date keys.
///
/// The tree is the in-partition storage of both PartitionedFile (primary
/// order) and BtreeFile (secondary/global indexes). Fanout is configurable
/// so tests can force deep trees.
///
/// Thread-safety: concurrent readers are safe once loading is finished;
/// Insert is not thread-safe (files are sealed before queries run, matching
/// the lazy background build model of §III-D).
template <typename V>
class Btree {
 public:
  explicit Btree(size_t fanout = 64) : fanout_(fanout) {
    LH_CHECK_MSG(fanout_ >= 4, "btree fanout must be >= 4");
    root_ = MakeLeaf();
    first_leaf_ = static_cast<Leaf*>(root_.get());
  }
  LH_DISALLOW_COPY_AND_ASSIGN(Btree);

  using Visitor = std::function<bool(const std::string& key, const V& value)>;

  /// Insert a key/value pair. Duplicate keys are allowed and kept in
  /// insertion order among equals.
  void Insert(std::string key, V value) {
    InsertResult result = InsertRec(root_.get(), std::move(key),
                                    std::move(value));
    if (result.split_right != nullptr) {
      // Root split: grow the tree by one level.
      auto new_root = std::make_unique<Inner>();
      new_root->keys.push_back(std::move(result.split_key));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(result.split_right));
      root_ = std::move(new_root);
      ++height_;
    }
    ++size_;
  }

  /// Collect every value whose key equals `key`.
  void Get(const std::string& key, std::vector<V>* out) const {
    const Leaf* leaf = FindLeaf(key);
    while (leaf != nullptr) {
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
      size_t i = static_cast<size_t>(it - leaf->keys.begin());
      if (i == leaf->keys.size()) {
        leaf = leaf->next;
        continue;
      }
      for (; i < leaf->keys.size(); ++i) {
        if (leaf->keys[i] != key) return;
        out->push_back(leaf->values[i]);
      }
      leaf = leaf->next;  // duplicates may spill into the next leaf
    }
  }

  /// Visit every pair with lo <= key <= hi in key order. The visitor
  /// returns false to stop early.
  void GetRange(const std::string& lo, const std::string& hi,
                const Visitor& visit) const {
    if (hi < lo) return;
    const Leaf* leaf = FindLeaf(lo);
    while (leaf != nullptr) {
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo);
      for (size_t i = static_cast<size_t>(it - leaf->keys.begin());
           i < leaf->keys.size(); ++i) {
        if (leaf->keys[i] > hi) return;
        if (!visit(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  /// Visit every pair in key order.
  void Scan(const Visitor& visit) const {
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (!visit(leaf->keys[i], leaf->values[i])) return;
      }
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t height() const { return height_; }
  size_t fanout() const { return fanout_; }

  /// Structural invariant check for tests: key ordering within and across
  /// leaves, separator consistency, and size agreement. Aborts on violation.
  void CheckInvariants() const {
    size_t counted = 0;
    std::string prev;
    bool first = true;
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (const auto& k : leaf->keys) {
        if (!first) LH_CHECK_MSG(prev <= k, "btree key order violated");
        prev = k;
        first = false;
        ++counted;
      }
      LH_CHECK_MSG(leaf->keys.size() == leaf->values.size(),
                   "leaf key/value size mismatch");
    }
    LH_CHECK_MSG(counted == size_, "btree size mismatch");
  }

 private:
  struct Node {
    virtual ~Node() = default;
    virtual bool is_leaf() const = 0;
  };
  struct Leaf final : Node {
    bool is_leaf() const override { return true; }
    std::vector<std::string> keys;
    std::vector<V> values;
    Leaf* next = nullptr;
  };
  struct Inner final : Node {
    bool is_leaf() const override { return false; }
    // children[i] covers keys < keys[i]; children.back() covers the rest.
    std::vector<std::string> keys;
    std::vector<std::unique_ptr<Node>> children;
  };

  struct InsertResult {
    std::string split_key;
    std::unique_ptr<Node> split_right;  // null when no split happened
  };

  std::unique_ptr<Node> MakeLeaf() { return std::make_unique<Leaf>(); }

  /// Descend to the LEFTMOST leaf that can contain `key`. A separator equals
  /// the first key of its right child, and a run of duplicates can straddle
  /// a split, so the left sibling may hold keys equal to the separator —
  /// hence lower_bound here (lookups) vs upper_bound in InsertRec (inserts
  /// go after existing equals).
  const Leaf* FindLeaf(const std::string& key) const {
    const Node* node = root_.get();
    while (!node->is_leaf()) {
      const Inner* inner = static_cast<const Inner*>(node);
      auto it = std::lower_bound(inner->keys.begin(), inner->keys.end(), key);
      size_t i = static_cast<size_t>(it - inner->keys.begin());
      node = inner->children[i].get();
    }
    return static_cast<const Leaf*>(node);
  }

  InsertResult InsertRec(Node* node, std::string key, V value) {
    if (node->is_leaf()) {
      Leaf* leaf = static_cast<Leaf*>(node);
      // upper_bound keeps equal keys in insertion order.
      auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key);
      size_t i = static_cast<size_t>(it - leaf->keys.begin());
      leaf->keys.insert(leaf->keys.begin() + i, std::move(key));
      leaf->values.insert(leaf->values.begin() + i, std::move(value));
      if (leaf->keys.size() <= fanout_) return {};
      // Split the leaf in half.
      auto right = std::make_unique<Leaf>();
      size_t mid = leaf->keys.size() / 2;
      right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                         std::make_move_iterator(leaf->keys.end()));
      right->values.assign(
          std::make_move_iterator(leaf->values.begin() + mid),
          std::make_move_iterator(leaf->values.end()));
      leaf->keys.resize(mid);
      leaf->values.resize(mid);
      right->next = leaf->next;
      leaf->next = right.get();
      InsertResult result;
      result.split_key = right->keys.front();
      result.split_right = std::move(right);
      return result;
    }
    Inner* inner = static_cast<Inner*>(node);
    auto it = std::upper_bound(inner->keys.begin(), inner->keys.end(), key);
    size_t i = static_cast<size_t>(it - inner->keys.begin());
    InsertResult child_result =
        InsertRec(inner->children[i].get(), std::move(key), std::move(value));
    if (child_result.split_right == nullptr) return {};
    inner->keys.insert(inner->keys.begin() + i,
                       std::move(child_result.split_key));
    inner->children.insert(inner->children.begin() + i + 1,
                           std::move(child_result.split_right));
    if (inner->keys.size() <= fanout_) return {};
    // Split the inner node; the middle key moves up.
    auto right = std::make_unique<Inner>();
    size_t mid = inner->keys.size() / 2;
    InsertResult result;
    result.split_key = std::move(inner->keys[mid]);
    right->keys.assign(std::make_move_iterator(inner->keys.begin() + mid + 1),
                       std::make_move_iterator(inner->keys.end()));
    right->children.assign(
        std::make_move_iterator(inner->children.begin() + mid + 1),
        std::make_move_iterator(inner->children.end()));
    inner->keys.resize(mid);
    inner->children.resize(mid + 1);
    result.split_right = std::move(right);
    return result;
  }

  size_t fanout_;
  size_t size_ = 0;
  size_t height_ = 1;
  std::unique_ptr<Node> root_;
  Leaf* first_leaf_ = nullptr;
};

}  // namespace lakeharbor::index
