file(REMOVE_RECURSE
  "../bench/ablation_index_build"
  "../bench/ablation_index_build.pdb"
  "CMakeFiles/ablation_index_build.dir/ablation_index_build.cc.o"
  "CMakeFiles/ablation_index_build.dir/ablation_index_build.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
