# Empty compiler generated dependencies file for ablation_index_build.
# This may be replaced when dependencies are built.
