
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_thread_pool.cc" "bench-cmake/CMakeFiles/ablation_thread_pool.dir/ablation_thread_pool.cc.o" "gcc" "bench-cmake/CMakeFiles/ablation_thread_pool.dir/ablation_thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tpch/CMakeFiles/lh_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/claims/CMakeFiles/lh_claims.dir/DependInfo.cmake"
  "/root/repo/build/src/rede/CMakeFiles/lh_rede.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/lh_index.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lh_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lh_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
