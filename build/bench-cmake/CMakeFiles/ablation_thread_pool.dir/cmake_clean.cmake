file(REMOVE_RECURSE
  "../bench/ablation_thread_pool"
  "../bench/ablation_thread_pool.pdb"
  "CMakeFiles/ablation_thread_pool.dir/ablation_thread_pool.cc.o"
  "CMakeFiles/ablation_thread_pool.dir/ablation_thread_pool.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
