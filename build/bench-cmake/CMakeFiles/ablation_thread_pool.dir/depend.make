# Empty dependencies file for ablation_thread_pool.
# This may be replaced when dependencies are built.
