file(REMOVE_RECURSE
  "../bench/ablation_advisor"
  "../bench/ablation_advisor.pdb"
  "CMakeFiles/ablation_advisor.dir/ablation_advisor.cc.o"
  "CMakeFiles/ablation_advisor.dir/ablation_advisor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
