# Empty compiler generated dependencies file for ablation_advisor.
# This may be replaced when dependencies are built.
