file(REMOVE_RECURSE
  "../bench/ablation_scaleout"
  "../bench/ablation_scaleout.pdb"
  "CMakeFiles/ablation_scaleout.dir/ablation_scaleout.cc.o"
  "CMakeFiles/ablation_scaleout.dir/ablation_scaleout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
