file(REMOVE_RECURSE
  "../bench/ablation_referencer_inline"
  "../bench/ablation_referencer_inline.pdb"
  "CMakeFiles/ablation_referencer_inline.dir/ablation_referencer_inline.cc.o"
  "CMakeFiles/ablation_referencer_inline.dir/ablation_referencer_inline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_referencer_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
