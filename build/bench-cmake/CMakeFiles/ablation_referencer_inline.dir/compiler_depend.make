# Empty compiler generated dependencies file for ablation_referencer_inline.
# This may be replaced when dependencies are built.
