# Empty compiler generated dependencies file for ablation_broadcast_join.
# This may be replaced when dependencies are built.
