file(REMOVE_RECURSE
  "../bench/ablation_broadcast_join"
  "../bench/ablation_broadcast_join.pdb"
  "CMakeFiles/ablation_broadcast_join.dir/ablation_broadcast_join.cc.o"
  "CMakeFiles/ablation_broadcast_join.dir/ablation_broadcast_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_broadcast_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
