# Empty compiler generated dependencies file for ablation_multiway_join.
# This may be replaced when dependencies are built.
