file(REMOVE_RECURSE
  "../bench/ablation_multiway_join"
  "../bench/ablation_multiway_join.pdb"
  "CMakeFiles/ablation_multiway_join.dir/ablation_multiway_join.cc.o"
  "CMakeFiles/ablation_multiway_join.dir/ablation_multiway_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiway_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
