file(REMOVE_RECURSE
  "../bench/fig7_tpch_q5"
  "../bench/fig7_tpch_q5.pdb"
  "CMakeFiles/fig7_tpch_q5.dir/fig7_tpch_q5.cc.o"
  "CMakeFiles/fig7_tpch_q5.dir/fig7_tpch_q5.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tpch_q5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
