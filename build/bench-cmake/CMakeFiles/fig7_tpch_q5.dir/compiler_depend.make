# Empty compiler generated dependencies file for fig7_tpch_q5.
# This may be replaced when dependencies are built.
