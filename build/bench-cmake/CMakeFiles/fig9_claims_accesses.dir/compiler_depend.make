# Empty compiler generated dependencies file for fig9_claims_accesses.
# This may be replaced when dependencies are built.
