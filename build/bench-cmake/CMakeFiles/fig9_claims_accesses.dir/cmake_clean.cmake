file(REMOVE_RECURSE
  "../bench/fig9_claims_accesses"
  "../bench/fig9_claims_accesses.pdb"
  "CMakeFiles/fig9_claims_accesses.dir/fig9_claims_accesses.cc.o"
  "CMakeFiles/fig9_claims_accesses.dir/fig9_claims_accesses.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_claims_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
