# Empty compiler generated dependencies file for ablation_adaptive_maintenance.
# This may be replaced when dependencies are built.
