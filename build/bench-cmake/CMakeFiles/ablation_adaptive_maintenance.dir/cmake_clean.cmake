file(REMOVE_RECURSE
  "../bench/ablation_adaptive_maintenance"
  "../bench/ablation_adaptive_maintenance.pdb"
  "CMakeFiles/ablation_adaptive_maintenance.dir/ablation_adaptive_maintenance.cc.o"
  "CMakeFiles/ablation_adaptive_maintenance.dir/ablation_adaptive_maintenance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
