# Empty compiler generated dependencies file for ablation_range_partitioning.
# This may be replaced when dependencies are built.
