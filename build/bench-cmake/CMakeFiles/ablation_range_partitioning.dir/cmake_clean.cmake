file(REMOVE_RECURSE
  "../bench/ablation_range_partitioning"
  "../bench/ablation_range_partitioning.pdb"
  "CMakeFiles/ablation_range_partitioning.dir/ablation_range_partitioning.cc.o"
  "CMakeFiles/ablation_range_partitioning.dir/ablation_range_partitioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_range_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
