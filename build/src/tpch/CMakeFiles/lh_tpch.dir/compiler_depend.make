# Empty compiler generated dependencies file for lh_tpch.
# This may be replaced when dependencies are built.
