file(REMOVE_RECURSE
  "CMakeFiles/lh_tpch.dir/dates.cc.o"
  "CMakeFiles/lh_tpch.dir/dates.cc.o.d"
  "CMakeFiles/lh_tpch.dir/generator.cc.o"
  "CMakeFiles/lh_tpch.dir/generator.cc.o.d"
  "CMakeFiles/lh_tpch.dir/loader.cc.o"
  "CMakeFiles/lh_tpch.dir/loader.cc.o.d"
  "CMakeFiles/lh_tpch.dir/part_join.cc.o"
  "CMakeFiles/lh_tpch.dir/part_join.cc.o.d"
  "CMakeFiles/lh_tpch.dir/q5.cc.o"
  "CMakeFiles/lh_tpch.dir/q5.cc.o.d"
  "liblh_tpch.a"
  "liblh_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
