file(REMOVE_RECURSE
  "liblh_tpch.a"
)
