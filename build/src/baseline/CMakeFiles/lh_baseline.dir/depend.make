# Empty dependencies file for lh_baseline.
# This may be replaced when dependencies are built.
