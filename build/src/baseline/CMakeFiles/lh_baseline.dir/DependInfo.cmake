
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/scan_engine.cc" "src/baseline/CMakeFiles/lh_baseline.dir/scan_engine.cc.o" "gcc" "src/baseline/CMakeFiles/lh_baseline.dir/scan_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lh_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
