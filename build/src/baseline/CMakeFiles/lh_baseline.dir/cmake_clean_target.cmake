file(REMOVE_RECURSE
  "liblh_baseline.a"
)
