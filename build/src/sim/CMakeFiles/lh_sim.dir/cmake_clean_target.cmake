file(REMOVE_RECURSE
  "liblh_sim.a"
)
