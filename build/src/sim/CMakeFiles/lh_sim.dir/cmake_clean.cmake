file(REMOVE_RECURSE
  "CMakeFiles/lh_sim.dir/cluster.cc.o"
  "CMakeFiles/lh_sim.dir/cluster.cc.o.d"
  "CMakeFiles/lh_sim.dir/disk.cc.o"
  "CMakeFiles/lh_sim.dir/disk.cc.o.d"
  "CMakeFiles/lh_sim.dir/network.cc.o"
  "CMakeFiles/lh_sim.dir/network.cc.o.d"
  "liblh_sim.a"
  "liblh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
