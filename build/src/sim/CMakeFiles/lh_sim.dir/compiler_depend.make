# Empty compiler generated dependencies file for lh_sim.
# This may be replaced when dependencies are built.
