file(REMOVE_RECURSE
  "CMakeFiles/lh_io.dir/catalog.cc.o"
  "CMakeFiles/lh_io.dir/catalog.cc.o.d"
  "CMakeFiles/lh_io.dir/ingest.cc.o"
  "CMakeFiles/lh_io.dir/ingest.cc.o.d"
  "CMakeFiles/lh_io.dir/key_codec.cc.o"
  "CMakeFiles/lh_io.dir/key_codec.cc.o.d"
  "CMakeFiles/lh_io.dir/partitioned_file.cc.o"
  "CMakeFiles/lh_io.dir/partitioned_file.cc.o.d"
  "CMakeFiles/lh_io.dir/partitioner.cc.o"
  "CMakeFiles/lh_io.dir/partitioner.cc.o.d"
  "liblh_io.a"
  "liblh_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
