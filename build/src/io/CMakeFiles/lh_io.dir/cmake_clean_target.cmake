file(REMOVE_RECURSE
  "liblh_io.a"
)
