# Empty dependencies file for lh_io.
# This may be replaced when dependencies are built.
