
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/catalog.cc" "src/io/CMakeFiles/lh_io.dir/catalog.cc.o" "gcc" "src/io/CMakeFiles/lh_io.dir/catalog.cc.o.d"
  "/root/repo/src/io/ingest.cc" "src/io/CMakeFiles/lh_io.dir/ingest.cc.o" "gcc" "src/io/CMakeFiles/lh_io.dir/ingest.cc.o.d"
  "/root/repo/src/io/key_codec.cc" "src/io/CMakeFiles/lh_io.dir/key_codec.cc.o" "gcc" "src/io/CMakeFiles/lh_io.dir/key_codec.cc.o.d"
  "/root/repo/src/io/partitioned_file.cc" "src/io/CMakeFiles/lh_io.dir/partitioned_file.cc.o" "gcc" "src/io/CMakeFiles/lh_io.dir/partitioned_file.cc.o.d"
  "/root/repo/src/io/partitioner.cc" "src/io/CMakeFiles/lh_io.dir/partitioner.cc.o" "gcc" "src/io/CMakeFiles/lh_io.dir/partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
