# Empty dependencies file for lh_common.
# This may be replaced when dependencies are built.
