file(REMOVE_RECURSE
  "CMakeFiles/lh_common.dir/hash.cc.o"
  "CMakeFiles/lh_common.dir/hash.cc.o.d"
  "CMakeFiles/lh_common.dir/json.cc.o"
  "CMakeFiles/lh_common.dir/json.cc.o.d"
  "CMakeFiles/lh_common.dir/logging.cc.o"
  "CMakeFiles/lh_common.dir/logging.cc.o.d"
  "CMakeFiles/lh_common.dir/status.cc.o"
  "CMakeFiles/lh_common.dir/status.cc.o.d"
  "CMakeFiles/lh_common.dir/string_util.cc.o"
  "CMakeFiles/lh_common.dir/string_util.cc.o.d"
  "liblh_common.a"
  "liblh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
