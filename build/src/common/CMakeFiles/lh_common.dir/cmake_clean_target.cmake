file(REMOVE_RECURSE
  "liblh_common.a"
)
