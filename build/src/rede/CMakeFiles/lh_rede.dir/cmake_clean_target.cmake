file(REMOVE_RECURSE
  "liblh_rede.a"
)
