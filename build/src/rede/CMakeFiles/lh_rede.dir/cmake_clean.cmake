file(REMOVE_RECURSE
  "CMakeFiles/lh_rede.dir/adaptive.cc.o"
  "CMakeFiles/lh_rede.dir/adaptive.cc.o.d"
  "CMakeFiles/lh_rede.dir/advisor.cc.o"
  "CMakeFiles/lh_rede.dir/advisor.cc.o.d"
  "CMakeFiles/lh_rede.dir/builtin_derefs.cc.o"
  "CMakeFiles/lh_rede.dir/builtin_derefs.cc.o.d"
  "CMakeFiles/lh_rede.dir/builtin_refs.cc.o"
  "CMakeFiles/lh_rede.dir/builtin_refs.cc.o.d"
  "CMakeFiles/lh_rede.dir/engine.cc.o"
  "CMakeFiles/lh_rede.dir/engine.cc.o.d"
  "CMakeFiles/lh_rede.dir/functions.cc.o"
  "CMakeFiles/lh_rede.dir/functions.cc.o.d"
  "CMakeFiles/lh_rede.dir/job.cc.o"
  "CMakeFiles/lh_rede.dir/job.cc.o.d"
  "CMakeFiles/lh_rede.dir/partitioned_executor.cc.o"
  "CMakeFiles/lh_rede.dir/partitioned_executor.cc.o.d"
  "CMakeFiles/lh_rede.dir/smpe_executor.cc.o"
  "CMakeFiles/lh_rede.dir/smpe_executor.cc.o.d"
  "CMakeFiles/lh_rede.dir/statistics.cc.o"
  "CMakeFiles/lh_rede.dir/statistics.cc.o.d"
  "liblh_rede.a"
  "liblh_rede.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_rede.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
