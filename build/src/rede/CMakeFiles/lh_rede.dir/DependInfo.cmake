
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rede/adaptive.cc" "src/rede/CMakeFiles/lh_rede.dir/adaptive.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/adaptive.cc.o.d"
  "/root/repo/src/rede/advisor.cc" "src/rede/CMakeFiles/lh_rede.dir/advisor.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/advisor.cc.o.d"
  "/root/repo/src/rede/builtin_derefs.cc" "src/rede/CMakeFiles/lh_rede.dir/builtin_derefs.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/builtin_derefs.cc.o.d"
  "/root/repo/src/rede/builtin_refs.cc" "src/rede/CMakeFiles/lh_rede.dir/builtin_refs.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/builtin_refs.cc.o.d"
  "/root/repo/src/rede/engine.cc" "src/rede/CMakeFiles/lh_rede.dir/engine.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/engine.cc.o.d"
  "/root/repo/src/rede/functions.cc" "src/rede/CMakeFiles/lh_rede.dir/functions.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/functions.cc.o.d"
  "/root/repo/src/rede/job.cc" "src/rede/CMakeFiles/lh_rede.dir/job.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/job.cc.o.d"
  "/root/repo/src/rede/partitioned_executor.cc" "src/rede/CMakeFiles/lh_rede.dir/partitioned_executor.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/partitioned_executor.cc.o.d"
  "/root/repo/src/rede/smpe_executor.cc" "src/rede/CMakeFiles/lh_rede.dir/smpe_executor.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/smpe_executor.cc.o.d"
  "/root/repo/src/rede/statistics.cc" "src/rede/CMakeFiles/lh_rede.dir/statistics.cc.o" "gcc" "src/rede/CMakeFiles/lh_rede.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lh_io.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/lh_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
