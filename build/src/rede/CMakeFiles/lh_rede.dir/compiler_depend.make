# Empty compiler generated dependencies file for lh_rede.
# This may be replaced when dependencies are built.
