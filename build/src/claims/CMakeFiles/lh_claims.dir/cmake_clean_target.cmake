file(REMOVE_RECURSE
  "liblh_claims.a"
)
