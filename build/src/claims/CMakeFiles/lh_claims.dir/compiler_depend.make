# Empty compiler generated dependencies file for lh_claims.
# This may be replaced when dependencies are built.
