file(REMOVE_RECURSE
  "CMakeFiles/lh_claims.dir/fhir.cc.o"
  "CMakeFiles/lh_claims.dir/fhir.cc.o.d"
  "CMakeFiles/lh_claims.dir/format.cc.o"
  "CMakeFiles/lh_claims.dir/format.cc.o.d"
  "CMakeFiles/lh_claims.dir/generator.cc.o"
  "CMakeFiles/lh_claims.dir/generator.cc.o.d"
  "CMakeFiles/lh_claims.dir/loader.cc.o"
  "CMakeFiles/lh_claims.dir/loader.cc.o.d"
  "CMakeFiles/lh_claims.dir/queries.cc.o"
  "CMakeFiles/lh_claims.dir/queries.cc.o.d"
  "liblh_claims.a"
  "liblh_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
