file(REMOVE_RECURSE
  "CMakeFiles/lh_index.dir/bloom.cc.o"
  "CMakeFiles/lh_index.dir/bloom.cc.o.d"
  "CMakeFiles/lh_index.dir/index_builder.cc.o"
  "CMakeFiles/lh_index.dir/index_builder.cc.o.d"
  "CMakeFiles/lh_index.dir/index_catalog.cc.o"
  "CMakeFiles/lh_index.dir/index_catalog.cc.o.d"
  "liblh_index.a"
  "liblh_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
