# Empty compiler generated dependencies file for lh_index.
# This may be replaced when dependencies are built.
