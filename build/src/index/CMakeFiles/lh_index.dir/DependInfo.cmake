
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bloom.cc" "src/index/CMakeFiles/lh_index.dir/bloom.cc.o" "gcc" "src/index/CMakeFiles/lh_index.dir/bloom.cc.o.d"
  "/root/repo/src/index/index_builder.cc" "src/index/CMakeFiles/lh_index.dir/index_builder.cc.o" "gcc" "src/index/CMakeFiles/lh_index.dir/index_builder.cc.o.d"
  "/root/repo/src/index/index_catalog.cc" "src/index/CMakeFiles/lh_index.dir/index_catalog.cc.o" "gcc" "src/index/CMakeFiles/lh_index.dir/index_catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lh_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
