file(REMOVE_RECURSE
  "liblh_index.a"
)
