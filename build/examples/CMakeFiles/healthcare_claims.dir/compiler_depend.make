# Empty compiler generated dependencies file for healthcare_claims.
# This may be replaced when dependencies are built.
