file(REMOVE_RECURSE
  "CMakeFiles/healthcare_claims.dir/healthcare_claims.cpp.o"
  "CMakeFiles/healthcare_claims.dir/healthcare_claims.cpp.o.d"
  "healthcare_claims"
  "healthcare_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
