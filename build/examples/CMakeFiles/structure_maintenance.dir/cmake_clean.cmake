file(REMOVE_RECURSE
  "CMakeFiles/structure_maintenance.dir/structure_maintenance.cpp.o"
  "CMakeFiles/structure_maintenance.dir/structure_maintenance.cpp.o.d"
  "structure_maintenance"
  "structure_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
