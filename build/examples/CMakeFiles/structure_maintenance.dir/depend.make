# Empty dependencies file for structure_maintenance.
# This may be replaced when dependencies are built.
