file(REMOVE_RECURSE
  "CMakeFiles/tpch_join.dir/tpch_join.cpp.o"
  "CMakeFiles/tpch_join.dir/tpch_join.cpp.o.d"
  "tpch_join"
  "tpch_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
