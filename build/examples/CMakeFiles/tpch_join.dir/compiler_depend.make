# Empty compiler generated dependencies file for tpch_join.
# This may be replaced when dependencies are built.
