file(REMOVE_RECURSE
  "CMakeFiles/raw_file_lake.dir/raw_file_lake.cpp.o"
  "CMakeFiles/raw_file_lake.dir/raw_file_lake.cpp.o.d"
  "raw_file_lake"
  "raw_file_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_file_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
