# Empty dependencies file for raw_file_lake.
# This may be replaced when dependencies are built.
