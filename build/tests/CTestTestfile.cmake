# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/ingest_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/rede_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/claims_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/statistics_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
