file(REMOVE_RECURSE
  "CMakeFiles/rede_test.dir/rede_test.cc.o"
  "CMakeFiles/rede_test.dir/rede_test.cc.o.d"
  "rede_test"
  "rede_test.pdb"
  "rede_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rede_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
