# Empty compiler generated dependencies file for rede_test.
# This may be replaced when dependencies are built.
