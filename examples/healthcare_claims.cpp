// The paper's §IV case study: Japanese health-insurance claims analytics.
//
// The same synthetic claims dataset is deployed twice:
//   - raw in a LakeHarbor lake (one nested, dynamically-typed record per
//     claim + a post-hoc disease-code structure), and
//   - normalized into a warehouse schema (claims / diagnosis /
//     prescription / treatment tables + the indexes a fine-grained
//     massively parallel warehouse would use).
// Queries Q1-Q3 ("sum expenses of claims diagnosing D and prescribing M")
// run on both; the record-access counts show why the raw deployment wins
// (Fig 9): schema-on-read eliminates the joins normalization forces.
//
// Build & run:  ./build/examples/healthcare_claims

#include <cstdio>

#include "claims/fhir.h"
#include "claims/loader.h"
#include "claims/queries.h"

using namespace lakeharbor;  // NOLINT — example brevity

int main() {
  claims::ClaimsConfig config;
  config.num_claims = 20000;
  std::printf("generating %llu synthetic insurance claims ...\n",
              static_cast<unsigned long long>(config.num_claims));
  claims::ClaimsData data = claims::GenerateClaims(config);
  std::printf("  %llu sub-records total (IR/RE/HO/SI/IY/SY)\n",
              static_cast<unsigned long long>(data.total_sub_records()));

  sim::ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  sim::Cluster lake_cluster(cluster_options);
  rede::Engine lake(&lake_cluster);
  LH_CHECK(claims::LoadRawClaims(lake, data).ok());

  sim::Cluster wh_cluster(cluster_options);
  rede::Engine warehouse(&wh_cluster);
  LH_CHECK(claims::LoadWarehouseClaims(warehouse, data).ok());

  // Third deployment: the SAME claims re-encoded as FHIR-style JSON
  // Bundles (§IV: "We expect ReDe would also manage and process the FHIR
  // data flexibly and efficiently"). Only the Interpreters change.
  sim::Cluster fhir_cluster(cluster_options);
  rede::Engine fhir(&fhir_cluster);
  LH_CHECK(claims::LoadFhirBundles(fhir, data).ok());

  std::printf("\n%-32s %14s %14s %12s %12s %8s\n", "query", "claims",
              "expense-sum", "wh-accesses", "lake-accesses", "ratio");
  for (const claims::ClaimsQuery& query : claims::AllQueries()) {
    auto raw_job = claims::BuildRawClaimsJob(lake, query);
    auto wh_job = claims::BuildWarehouseClaimsJob(warehouse, query);
    LH_CHECK(raw_job.ok());
    LH_CHECK(wh_job.ok());

    lake.catalog().ResetAccessStats();
    auto raw = lake.ExecuteCollect(*raw_job, rede::ExecutionMode::kSmpe);
    LH_CHECK(raw.ok());
    uint64_t lake_accesses = lake.catalog().TotalRecordAccesses();
    auto answer = claims::SummarizeRawOutput(raw->tuples);
    LH_CHECK(answer.ok());

    warehouse.catalog().ResetAccessStats();
    auto wh = warehouse.ExecuteCollect(*wh_job, rede::ExecutionMode::kSmpe);
    LH_CHECK(wh.ok());
    uint64_t wh_accesses = warehouse.catalog().TotalRecordAccesses();
    auto wh_answer = claims::SummarizeWarehouseOutput(wh->tuples);
    LH_CHECK(wh_answer.ok());
    LH_CHECK_MSG(*wh_answer == *answer, "deployments disagree");

    auto fhir_job = claims::BuildFhirClaimsJob(fhir, query);
    LH_CHECK(fhir_job.ok());
    auto fhir_result =
        fhir.ExecuteCollect(*fhir_job, rede::ExecutionMode::kSmpe);
    LH_CHECK(fhir_result.ok());
    auto fhir_answer = claims::SummarizeFhirOutput(fhir_result->tuples);
    LH_CHECK(fhir_answer.ok());
    LH_CHECK_MSG(*fhir_answer == *answer, "FHIR deployment disagrees");

    std::printf("%-32s %14llu %14lld %12llu %12llu %7.2fx\n",
                query.name.c_str(),
                static_cast<unsigned long long>(answer->distinct_claims),
                static_cast<long long>(answer->total_expense),
                static_cast<unsigned long long>(wh_accesses),
                static_cast<unsigned long long>(lake_accesses),
                static_cast<double>(wh_accesses) /
                    static_cast<double>(lake_accesses));
  }
  std::printf(
      "\nAll three deployments (fixed-text lake, normalized warehouse, and "
      "FHIR-JSON lake) return identical answers; the lakes touch a fraction "
      "of the records because one raw claim carries what the warehouse "
      "splits across four tables, and switching the record format to FHIR "
      "only swapped the Interpreters.\n");
  return 0;
}
