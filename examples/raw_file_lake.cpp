// The lake's file boundary end to end: raw files on disk in, queries out.
//
//   1. Write insurance claims to a real text file (multi-line records,
//      blank-line separated) — the "raw dataset" a data lake holds.
//   2. Ingest the file into a PartitionedFile without interpreting
//      anything beyond record framing and the partition key.
//   3. Register the disease-code access method post hoc and query.
//
// Build & run:  ./build/examples/raw_file_lake

#include <cstdio>
#include <filesystem>

#include "claims/generator.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "io/ingest.h"
#include "io/key_codec.h"

using namespace lakeharbor;  // NOLINT — example brevity

int main() {
  // -- 1. A raw claims file on the local filesystem.
  claims::ClaimsConfig config;
  config.num_claims = 5000;
  claims::ClaimsData data = claims::GenerateClaims(config);
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "lakeharbor_example";
  std::filesystem::create_directories(dir);
  std::string path = (dir / "claims_2024.txt").string();
  LH_CHECK(io::WriteBlocks(path, data.raw).ok());
  std::printf("wrote %zu raw claims to %s (%ju bytes)\n", data.raw.size(),
              path.c_str(),
              static_cast<uintmax_t>(std::filesystem::file_size(path)));

  // -- 2. Ingest: framing + partition key only; the bytes stay raw.
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  rede::Engine engine(&cluster);
  auto file = std::make_shared<io::PartitionedFile>(
      claims::names::kRawClaims, std::make_shared<io::HashPartitioner>(8),
      &cluster);
  auto claim_key = [](const std::string& block)
      -> StatusOr<io::IngestKeys> {
    LH_ASSIGN_OR_RETURN(
        int64_t id, claims::ExtractClaimId(io::Record(std::string(block))));
    std::string key = io::EncodeInt64Key(id);
    return io::IngestKeys{key, key};
  };
  auto count = io::IngestBlockedFile(path, file.get(), claim_key);
  LH_CHECK(count.ok());
  file->Seal();
  LH_CHECK(engine.catalog().Register(file).ok());
  std::printf("ingested %llu claims into %u partitions\n",
              static_cast<unsigned long long>(*count), file->num_partitions());

  // -- 3. Post-hoc access method over the ingested raw bytes, then query.
  index::IndexSpec spec;
  spec.index_name = claims::names::kRawDiseaseIndex;
  spec.base_file = claims::names::kRawClaims;
  spec.placement = index::IndexPlacement::kGlobal;
  spec.extract = [](const io::Record& record,
                    std::vector<index::Posting>* out) {
    LH_ASSIGN_OR_RETURN(int64_t id, claims::ExtractClaimId(record));
    std::string target = io::EncodeInt64Key(id);
    std::vector<std::string> codes;
    LH_RETURN_NOT_OK(claims::ExtractDiseaseCodes(record, &codes));
    for (auto& code : codes) {
      out->push_back(index::Posting{std::move(code), target, target});
    }
    return Status::OK();
  };
  LH_CHECK(engine.BuildStructure(spec, "sy.disease_code").ok());

  for (const claims::ClaimsQuery& query : claims::AllQueries()) {
    auto job = claims::BuildRawClaimsJob(engine, query);
    LH_CHECK(job.ok());
    auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
    LH_CHECK(result.ok());
    auto answer = claims::SummarizeRawOutput(result->tuples);
    LH_CHECK(answer.ok());
    claims::ClaimsAnswer oracle = claims::ClaimsOracle(data, query);
    LH_CHECK_MSG(*answer == oracle, "file-ingested lake disagrees");
    std::printf("%-34s %6llu claims, expense sum %lld (matches oracle)\n",
                query.name.c_str(),
                static_cast<unsigned long long>(answer->distinct_claims),
                static_cast<long long>(answer->total_expense));
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
