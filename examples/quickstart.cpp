// Quickstart: the LakeHarbor workflow end to end on a toy dataset.
//
//   1. Stand up a simulated cluster and a ReDe engine.
//   2. Drop raw records into the lake exactly as they are (schema-free).
//   3. Register an access method post hoc: a schema-on-read extractor that
//      teaches the lake how to index the raw bytes.
//   4. Run a Reference-Dereference job that uses the structure, with
//      scalable massively parallel execution — traced, so the run ends
//      with a per-stage query profile.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/string_util.h"
#include "io/key_codec.h"
#include "io/partitioned_file.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"

using namespace lakeharbor;  // NOLINT — example brevity

int main() {
  // -- 1. A simulated 4-node cluster (timing off: we only care about
  //       results and access counts here).
  sim::ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  sim::Cluster cluster(cluster_options);
  rede::EngineOptions engine_options;
  // Trace every job so step 4 can print a query profile.
  engine_options.smpe.trace_sample_n = 1;
  rede::Engine engine(&cluster, engine_options);

  // -- 2. Raw data: sensor readings "sensor_id|city|temperature_c".
  //       The lake stores bytes; nobody declares a schema.
  auto readings = std::make_shared<io::PartitionedFile>(
      "readings", std::make_shared<io::HashPartitioner>(8), &cluster);
  const char* cities[] = {"tokyo", "osaka", "kyoto", "nagoya"};
  for (int i = 0; i < 400; ++i) {
    std::string key = io::EncodeInt64Key(i);
    std::string row = StrFormat("%d|%s|%d", i, cities[i % 4], -10 + i % 50);
    LH_CHECK(readings->Append(key, key, io::Record(std::move(row))).ok());
  }
  readings->Seal();
  LH_CHECK(engine.catalog().Register(readings).ok());

  // -- 3. Post-hoc access method: index readings by city. The extractor IS
  //       the schema — it interprets the raw bytes on read.
  index::IndexSpec spec;
  spec.index_name = "readings.city.idx";
  spec.base_file = "readings";
  spec.placement = index::IndexPlacement::kGlobal;
  spec.extract = [](const io::Record& record,
                    std::vector<index::Posting>* out) -> Status {
    std::string_view row = record.slice().view();
    index::Posting posting;
    posting.index_key = std::string(FieldAt(row, '|', 1));  // city
    LH_ASSIGN_OR_RETURN(int64_t id, ParseInt64(FieldAt(row, '|', 0)));
    posting.target_partition_key = io::EncodeInt64Key(id);
    posting.target_key = posting.target_partition_key;
    out->push_back(std::move(posting));
    return Status::OK();
  };
  auto index = engine.BuildStructure(spec, "city");
  LH_CHECK(index.ok());
  std::printf("built structure '%s' with %llu entries\n",
              spec.index_name.c_str(),
              static_cast<unsigned long long>((*index)->num_records()));

  // -- 4. A job: fetch every reading in Osaka warmer than 30C.
  //       Dereference the city index, follow the pointers to the raw
  //       records, filter with schema-on-read.
  rede::Filter warm = [](const rede::Tuple& tuple) -> StatusOr<bool> {
    LH_ASSIGN_OR_RETURN(
        int64_t temp,
        ParseInt64(FieldAt(tuple.last_record().slice().view(), '|', 2)));
    return temp > 30;
  };
  auto job = rede::JobBuilder("warm-osaka")
                 .Initial(rede::Tuple::Range(io::Pointer::Broadcast("osaka"),
                                             io::Pointer::Broadcast("osaka")))
                 .Add(rede::MakeRangeDereferencer("deref-city-idx", *index))
                 .Add(rede::MakeIndexEntryReferencer("ref-reading-ptr"))
                 .Add(rede::MakePointDereferencer("deref-reading", readings,
                                                  warm))
                 .Build();
  LH_CHECK(job.ok());

  auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  LH_CHECK(result.ok());

  std::printf("\n%s\n", job->Describe(&result->metrics).c_str());
  std::printf("matched %zu readings:\n", result->tuples.size());
  for (const auto& tuple : result->tuples) {
    std::printf("  %s\n", tuple.last_record().bytes().c_str());
  }
  std::printf(
      "executor: %llu dereferences, %llu references, peak parallel "
      "dereferences %lld\n",
      static_cast<unsigned long long>(result->metrics.deref_invocations),
      static_cast<unsigned long long>(result->metrics.ref_invocations),
      static_cast<long long>(result->metrics.peak_parallel_derefs));
  std::printf("record accesses across the lake: %llu (of %llu records)\n",
              static_cast<unsigned long long>(
                  engine.catalog().TotalRecordAccesses()),
              static_cast<unsigned long long>(readings->num_records()));

  // -- 5. Where did the time go? The traced run carries its span log;
  //       the profiler folds it into a per-stage breakdown.
  std::printf("\n%s", rede::ProfileOf(*result).ToText().c_str());
  return 0;
}
