// Structure maintenance (§III-D): structures are built lazily, in the
// background, from registered access methods — queries start using a
// structure once it reaches the Ready state in the index catalog.
//
// This example registers two access methods over raw TPC-H orders, builds
// one structure in the background while the process keeps working, then
// shows the index catalog being consulted to discover a usable structure
// for a (file, attribute) pair before building a job against it.
//
// Build & run:  ./build/examples/structure_maintenance

#include <cstdio>

#include "common/string_util.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/schema.h"

using namespace lakeharbor;  // NOLINT — example brevity

int main() {
  sim::Cluster cluster(sim::ClusterOptions::ForNodes(4));
  rede::Engine engine(&cluster);

  tpch::TpchConfig config;
  config.scale_factor = 0.005;
  tpch::TpchData data = tpch::Generate(config);
  LH_CHECK(tpch::LoadIntoLake(engine, data).ok());

  // A second, post-hoc access method over the *same* raw orders: index by
  // o_orderpriority. Registered long after load — no reorganization of the
  // base data happens, the structure is derived from it.
  index::IndexSpec spec;
  spec.index_name = "tpch.orders.o_orderpriority.idx";
  spec.base_file = tpch::names::kOrders;
  spec.placement = index::IndexPlacement::kGlobal;
  spec.extract = [](const io::Record& record,
                    std::vector<index::Posting>* out) -> Status {
    std::string_view row = record.slice().view();
    index::Posting posting;
    posting.index_key = std::string(
        FieldAt(row, tpch::kDelim, tpch::orders::kOrderPriority));
    LH_ASSIGN_OR_RETURN(
        int64_t okey,
        ParseInt64(FieldAt(row, tpch::kDelim, tpch::orders::kOrderKey)));
    posting.target_partition_key = io::EncodeInt64Key(okey);
    posting.target_key = posting.target_partition_key;
    out->push_back(std::move(posting));
    return Status::OK();
  };

  // Track it in the index catalog while it builds in the background.
  index::IndexMeta meta;
  meta.index_name = spec.index_name;
  meta.base_file = spec.base_file;
  meta.attribute = "o_orderpriority";
  meta.placement = spec.placement;
  LH_CHECK(engine.index_catalog().Add(meta).ok());

  std::printf("kicking off background build of %s ...\n",
              spec.index_name.c_str());
  auto handle = engine.index_builder().BuildInBackground(spec);
  std::printf("  (build running; query path could keep serving)\n");
  Status build_status = handle->Join();
  LH_CHECK(build_status.ok());
  LH_CHECK(engine.index_catalog()
               .SetState(spec.index_name, index::IndexMeta::State::kReady)
               .ok());

  // Discovery: a job author asks the catalog what structures exist.
  std::printf("\nstructures over %s:\n", tpch::names::kOrders);
  for (const auto& m :
       engine.index_catalog().ListForBase(tpch::names::kOrders)) {
    std::printf("  %-42s attr=%-16s placement=%s\n", m.index_name.c_str(),
                m.attribute.c_str(),
                index::IndexPlacementToString(m.placement));
  }

  auto found = engine.index_catalog().FindReady(tpch::names::kOrders,
                                                "o_orderpriority");
  LH_CHECK(found.has_value());
  auto idx = std::dynamic_pointer_cast<io::BtreeFile>(
      *engine.catalog().Get(found->index_name));
  auto orders = *engine.catalog().Get(tpch::names::kOrders);

  // Count urgent orders through the freshly built structure.
  auto job = rede::JobBuilder("urgent-orders")
                 .Initial(rede::Tuple::Range(
                     io::Pointer::Broadcast("1-URGENT"),
                     io::Pointer::Broadcast("1-URGENT")))
                 .Add(rede::MakeRangeDereferencer("deref-prio-idx", idx))
                 .Add(rede::MakeIndexEntryReferencer("ref-order-ptr"))
                 .Add(rede::MakePointDereferencer("deref-order", orders))
                 .Build();
  LH_CHECK(job.ok());
  auto result = engine.ExecuteCollect(*job, rede::ExecutionMode::kSmpe);
  LH_CHECK(result.ok());
  std::printf("\n1-URGENT orders: %zu of %zu total\n", result->tuples.size(),
              data.orders.size());
  return 0;
}
