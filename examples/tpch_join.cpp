// The worked example of the paper's Fig 3/4: the Part-Lineitem join
//
//   SELECT * FROM Part p JOIN Lineitem l ON p.p_partkey = l.l_partkey
//   WHERE p.p_retailprice BETWEEN X AND Y
//
// run as a chain of pre-defined Referencers/Dereferencers over a local
// secondary B-tree on p_retailprice and a global index on l_partkey —
// executed three ways (SMPE, partitioned, broadcast variant) on a timed
// simulated cluster so the parallelism difference is visible.
//
// Build & run:  ./build/examples/tpch_join

#include <cstdio>

#include "tpch/loader.h"
#include "tpch/part_join.h"
#include "tpch/schema.h"

using namespace lakeharbor;  // NOLINT — example brevity

int main() {
  sim::ClusterOptions cluster_options;
  cluster_options.num_nodes = 8;
  cluster_options.disk.random_read_latency_us = 400;
  cluster_options.disk.io_slots = 24;
  sim::Cluster cluster(cluster_options);  // timing enabled after loading

  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = 64;
  rede::Engine engine(&cluster, engine_options);

  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  std::printf("generating TPC-H SF=%.3f ...\n", config.scale_factor);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.build_part_join_indexes = true;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());
  std::printf("loaded %llu rows, built %zu structures\n",
              static_cast<unsigned long long>(data.total_rows()),
              engine.index_catalog().ListAll().size());
  cluster.SetTimingEnabled(true);  // pay simulated I/O only for queries

  tpch::PartJoinParams params;
  params.price_lo = 900.0;
  params.price_hi = 903.0;

  struct Run {
    const char* label;
    bool broadcast;
    rede::ExecutionMode mode;
  };
  const Run runs[] = {
      {"global-index join, SMPE", false, rede::ExecutionMode::kSmpe},
      {"global-index join, partitioned only", false,
       rede::ExecutionMode::kPartitioned},
      {"broadcast join, SMPE", true, rede::ExecutionMode::kSmpe},
  };

  std::printf("\n%-38s %10s %10s %8s %12s\n", "plan", "rows", "wall-ms",
              "peak-par", "broadcasts");
  for (const Run& run : runs) {
    tpch::PartJoinParams p = params;
    p.broadcast = run.broadcast;
    auto job = tpch::BuildPartLineitemJoinJob(engine, p);
    LH_CHECK(job.ok());
    auto result = engine.ExecuteCollect(*job, run.mode);
    LH_CHECK(result.ok());
    std::printf("%-38s %10zu %10.1f %8lld %12llu\n", run.label,
                result->tuples.size(), result->metrics.wall_ms,
                static_cast<long long>(result->metrics.peak_parallel_derefs),
                static_cast<unsigned long long>(result->metrics.broadcasts));
  }
  std::printf(
      "\nAll three plans return identical join results; SMPE simply "
      "overlaps the fine-grained index and record fetches.\n");
  return 0;
}
