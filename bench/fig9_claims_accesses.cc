// Reproduces Fig 9: "Differences in the number of record accesses between
// a data warehouse system that employs fine-grained massively parallel
// execution and a LakeHarbor system (ReDe)", normalized to the warehouse.
//
// Both deployments run the same three §IV queries as Reference-Dereference
// jobs with SMPE; only the data organization differs: the warehouse holds
// the claims *normalized* (diagnosis/prescription/treatment/claims tables
// + indexes) and must join them back together, while the LakeHarbor lake
// holds one raw nested record per claim and reads everything it needs from
// that single record via schema-on-read.
//
// Record accesses are deterministic device-independent counters, so this
// figure needs no timing simulation.
//
// Env overrides: LH_BENCH_CLAIMS (claim count).

#include <cstdio>

#include "bench/bench_util.h"
#include "claims/loader.h"
#include "claims/queries.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  claims::ClaimsConfig config;
  config.num_claims =
      static_cast<uint64_t>(bench::EnvOr("LH_BENCH_CLAIMS", 50000));
  claims::ClaimsData data = claims::GenerateClaims(config);

  bench::BenchClusterConfig cluster_config;
  sim::Cluster lake_cluster(bench::MakeClusterOptions(cluster_config));
  rede::EngineOptions lake_options;
  lake_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine lake(&lake_cluster, lake_options);
  LH_CHECK(claims::LoadRawClaims(lake, data).ok());

  sim::Cluster wh_cluster(bench::MakeClusterOptions(cluster_config));
  rede::Engine warehouse(&wh_cluster);
  LH_CHECK(claims::LoadWarehouseClaims(warehouse, data).ok());

  baseline::ScanEngine scan_engine(&lake_cluster);

  bench::PrintHeader(
      "Fig 9 — record accesses, warehouse (normalized, FGMP) vs ReDe");
  std::printf("claims=%llu  sub-records=%llu\n\n",
              static_cast<unsigned long long>(config.num_claims),
              static_cast<unsigned long long>(data.total_sub_records()));
  std::printf("%-34s %12s %14s %14s %14s %14s %14s\n", "query", "claims",
              "dwh-accesses", "rede-accesses", "dwh-norm", "rede-norm",
              "lake-scan-norm");

  for (const claims::ClaimsQuery& query : claims::AllQueries()) {
    auto wh_job = claims::BuildWarehouseClaimsJob(warehouse, query);
    auto raw_job = claims::BuildRawClaimsJob(lake, query);
    LH_CHECK(wh_job.ok());
    LH_CHECK(raw_job.ok());

    warehouse.catalog().ResetAccessStats();
    auto wh = warehouse.ExecuteCollect(*wh_job, rede::ExecutionMode::kSmpe);
    LH_CHECK(wh.ok());
    uint64_t wh_accesses = warehouse.catalog().TotalRecordAccesses();
    auto wh_answer = claims::SummarizeWarehouseOutput(wh->tuples);
    LH_CHECK(wh_answer.ok());

    lake.catalog().ResetAccessStats();
    auto raw = lake.ExecuteCollect(*raw_job, rede::ExecutionMode::kSmpe);
    LH_CHECK(raw.ok());
    trace_capture.Observe(*raw, "claims raw-lake " + query.name);
    uint64_t lake_accesses = lake.catalog().TotalRecordAccesses();
    auto raw_answer = claims::SummarizeRawOutput(raw->tuples);
    LH_CHECK(raw_answer.ok());
    LH_CHECK_MSG(*raw_answer == *wh_answer,
                 "deployments disagree on the query answer");

    // Extra series: the plain scan-based data-lake approach the paper's
    // footnote omits from Fig 9 ("a lot slower than the others").
    lake.catalog().ResetAccessStats();
    auto scan_answer =
        claims::RunClaimsScanBaseline(scan_engine, lake.catalog(), query);
    LH_CHECK(scan_answer.ok());
    LH_CHECK_MSG(*scan_answer == *raw_answer, "scan baseline disagrees");
    uint64_t scan_accesses = lake.catalog().TotalRecordAccesses();

    std::printf("%-34s %12llu %14llu %14llu %14.2f %14.2f %14.2f\n",
                query.name.c_str(),
                static_cast<unsigned long long>(raw_answer->distinct_claims),
                static_cast<unsigned long long>(wh_accesses),
                static_cast<unsigned long long>(lake_accesses), 1.0,
                static_cast<double>(lake_accesses) /
                    static_cast<double>(wh_accesses),
                static_cast<double>(scan_accesses) /
                    static_cast<double>(wh_accesses));
  }
  std::printf(
      "\nExpected shape (paper): ReDe's normalized accesses are well below "
      "1.0 on all three queries because schema-on-read over the raw nested "
      "claims avoids the joins of the normalized warehouse schema. The "
      "lake-scan column is the system the paper's footnote omits from "
      "Fig 9: it touches every claim regardless of the query.\n");
  return 0;
}
