// Ablation: structure maintenance economics (§III-D, §V-B — "more
// structures could cause more performance and capacity overheads for
// loading new data. Therefore, we should care about data processing
// performance and loading performance to decide what structures to
// build").
//
// Measures what the Q5' structures cost to build (simulated scan + entry
// writes) against what each query saves versus the scan-based baseline,
// and reports the break-even query count per selectivity.

#include <cstdio>

#include "baseline/scan_engine.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = 125;
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);

  bench::PrintHeader("Ablation — structure build cost vs query speedup");

  // Build the structures with timing ON so the maintenance cost is real.
  cluster.SetTimingEnabled(true);
  StopWatch build_watch;
  LH_CHECK(tpch::LoadIntoLake(engine, data).ok());
  double build_ms = build_watch.ElapsedMillis();
  auto totals = cluster.TotalStats();
  std::printf("structure build (o_orderdate local + l_orderkey global):\n");
  std::printf("  wall %.1f ms, %llu entry writes, %llu bytes written, "
              "%.1f MB base scanned\n\n",
              build_ms, static_cast<unsigned long long>(totals.writes),
              static_cast<unsigned long long>(totals.bytes_written),
              static_cast<double>(totals.bytes_sequential) / (1024 * 1024));

  baseline::ScanEngine scan_engine(&cluster);
  std::printf("%-12s %14s %14s %12s %16s\n", "selectivity", "baseline-ms",
              "rede-smpe-ms", "saved-ms", "break-even-#q");
  for (double selectivity : {0.001, 0.01, 0.1}) {
    tpch::Q5Params params = tpch::MakeQ5Params(selectivity);
    StopWatch base_watch;
    auto rows = tpch::RunQ5Baseline(scan_engine, engine.catalog(), params);
    LH_CHECK(rows.ok());
    double baseline_ms = base_watch.ElapsedMillis();

    auto job = tpch::BuildQ5RedeJob(engine, params);
    LH_CHECK(job.ok());
    auto result = engine.Execute(*job, rede::ExecutionMode::kSmpe, nullptr);
    LH_CHECK(result.ok());
    trace_capture.Observe(*result,
                          "Q5' sel=" + std::to_string(selectivity));
    double rede_ms = result->metrics.wall_ms;
    double saved = baseline_ms - rede_ms;
    if (saved > 0) {
      std::printf("%-12.0e %14.2f %14.2f %12.2f %16.1f\n", selectivity,
                  baseline_ms, rede_ms, saved, build_ms / saved);
    } else {
      std::printf("%-12.0e %14.2f %14.2f %12.2f %16s\n", selectivity,
                  baseline_ms, rede_ms, saved, "never");
    }
  }
  std::printf(
      "\nExpected shape: at low selectivity a handful of queries amortize "
      "the build; at high selectivity the structures never pay off — "
      "exactly the adaptive-maintenance trade-off §V-B poses as future "
      "work.\n");
  return 0;
}
