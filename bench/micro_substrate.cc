// Micro-benchmarks (google-benchmark) for the substrate components: B-tree
// operations, order-preserving key codec, schema-on-read field access,
// claims parsing, MPMC queue and thread-pool overhead, and the simulated
// disk in counting mode. These bound the engine-side (non-simulated)
// overheads that sit under every figure harness.

#include <benchmark/benchmark.h>

#include "claims/fhir.h"
#include "claims/format.h"
#include "claims/generator.h"
#include "common/json.h"
#include "index/bloom.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "concurrent/mpmc_queue.h"
#include "concurrent/thread_pool.h"
#include "index/btree.h"
#include "io/key_codec.h"
#include "sim/disk.h"

namespace lakeharbor {
namespace {

void BM_BtreeInsert(benchmark::State& state) {
  const size_t fanout = static_cast<size_t>(state.range(0));
  Random rng(42);
  for (auto _ : state) {
    state.PauseTiming();
    index::Btree<int> tree(fanout);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      tree.Insert(io::EncodeInt64Key(static_cast<int64_t>(rng.Next() % 100000)),
                  i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BtreeInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_BtreeGet(benchmark::State& state) {
  index::Btree<int> tree(64);
  Random rng(42);
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(io::EncodeInt64Key(i), i);
  }
  std::vector<int> out;
  for (auto _ : state) {
    out.clear();
    tree.Get(io::EncodeInt64Key(static_cast<int64_t>(rng.Next() % 100000)),
             &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeGet);

void BM_BtreeRangeScan(benchmark::State& state) {
  index::Btree<int> tree(64);
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(io::EncodeInt64Key(i), i);
  }
  const int64_t width = state.range(0);
  Random rng(7);
  for (auto _ : state) {
    int64_t lo = static_cast<int64_t>(rng.Next() % (100000 - width));
    int64_t count = 0;
    tree.GetRange(io::EncodeInt64Key(lo), io::EncodeInt64Key(lo + width),
                  [&](const std::string&, const int&) {
                    ++count;
                    return true;
                  });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_BtreeRangeScan)->Arg(10)->Arg(1000);

void BM_EncodeInt64Key(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        io::EncodeInt64Key(static_cast<int64_t>(rng.Next())));
  }
}
BENCHMARK(BM_EncodeInt64Key);

void BM_FieldAt(benchmark::State& state) {
  std::string row =
      "12345|Customer#000012345|addr-QX81JZTQ5R|7|17-123-456|1234.56|AUTO";
  for (auto _ : state) {
    benchmark::DoNotOptimize(FieldAt(row, '|', 4));
  }
}
BENCHMARK(BM_FieldAt);

void BM_ClaimsParse(benchmark::State& state) {
  claims::ClaimsConfig config;
  config.num_claims = 1;
  claims::ClaimsData data = claims::GenerateClaims(config);
  io::Record record{std::string(data.raw[0])};
  for (auto _ : state) {
    auto claim = claims::ParseClaim(record);
    benchmark::DoNotOptimize(claim);
  }
}
BENCHMARK(BM_ClaimsParse);

void BM_ClaimsNarrowExtract(benchmark::State& state) {
  claims::ClaimsConfig config;
  config.num_claims = 1;
  claims::ClaimsData data = claims::GenerateClaims(config);
  io::Record record{std::string(data.raw[0])};
  for (auto _ : state) {
    auto has = claims::HasMedicineInRange(record, "5000", "5019");
    benchmark::DoNotOptimize(has);
  }
}
BENCHMARK(BM_ClaimsNarrowExtract);

void BM_JsonParseFhirBundle(benchmark::State& state) {
  claims::ClaimsConfig config;
  config.num_claims = 1;
  claims::ClaimsData data = claims::GenerateClaims(config);
  std::string bundle = claims::ClaimToFhirJson(data.parsed[0]);
  for (auto _ : state) {
    auto doc = Json::Parse(bundle);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bundle.size()));
}
BENCHMARK(BM_JsonParseFhirBundle);

void BM_BloomMightContain(benchmark::State& state) {
  index::BloomFilter filter(100000, 0.01);
  Random rng(9);
  for (int i = 0; i < 100000; ++i) {
    filter.Add(io::EncodeInt64Key(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MightContain(
        io::EncodeInt64Key(static_cast<int64_t>(rng.Next() % 200000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomMightContain);

void BM_Fnv1a64(benchmark::State& state) {
  std::string key = io::EncodeInt64Key(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(key));
  }
}
BENCHMARK(BM_Fnv1a64);

void BM_MpmcQueuePushPop(benchmark::State& state) {
  MpmcQueue<int> queue;
  for (auto _ : state) {
    queue.Push(1);
    benchmark::DoNotOptimize(queue.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueuePushPop);

void BM_ThreadPoolRoundTrip(benchmark::State& state) {
  ThreadPool pool(4);
  for (auto _ : state) {
    std::atomic<bool> done{false};
    pool.Submit([&] { done.store(true, std::memory_order_release); });
    while (!done.load(std::memory_order_acquire)) {
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThreadPoolRoundTrip);

void BM_SimDiskCountingMode(benchmark::State& state) {
  sim::Disk disk(sim::DiskOptions{});  // timing off: pure counter cost
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.RandomRead(128));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimDiskCountingMode);

}  // namespace
}  // namespace lakeharbor

BENCHMARK_MAIN();
