// Fault-tolerance ablation: TPC-H Q5' under injected transient disk faults,
// with the SMPE executor's per-task retry/backoff on vs off.
//
// The lake substrate injects seeded probabilistic faults (half kIoError,
// half kUnavailable) at rates {0, 1%, 5%, 10%} of device operations. With
// retries enabled the job should complete at every rate (throughput degraded
// by retried I/O and backoff); with retries disabled any nonzero rate should
// fail the job fast — cleanly, surfacing the injected error, not hanging.
//
// Output: one JSON object per (fault_rate, retries) cell, e.g.
//   {"bench":"fault_tolerance","fault_rate":0.05,"retries_enabled":true,
//    "status":"ok","wall_ms":...,"rows":...,"retries":...,
//    "retry_backoff_us":...,"tasks_dropped":...,
//    "throughput_rows_per_sec":...}
//
// Env overrides: LH_BENCH_NODES, LH_BENCH_SF, LH_BENCH_THREADS,
// LH_BENCH_MAX_RETRIES.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/string_util.h"
#include "rede/engine.h"
#include "rede/smpe_executor.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

struct CellResult {
  std::string status = "ok";
  double wall_ms = 0.0;
  uint64_t rows = 0;
  uint64_t retries = 0;
  uint64_t retry_backoff_us = 0;
  uint64_t tasks_dropped = 0;
};

void EmitJson(double fault_rate, bool retries_enabled, const CellResult& r) {
  Json row = Json::MakeObject();
  row.Set("bench", Json::MakeString("fault_tolerance"));
  row.Set("fault_rate", Json::MakeNumber(fault_rate));
  row.Set("retries_enabled", Json::MakeBool(retries_enabled));
  row.Set("status", Json::MakeString(r.status));
  row.Set("wall_ms", Json::MakeNumber(r.wall_ms));
  row.Set("rows", Json::MakeNumber(static_cast<double>(r.rows)));
  row.Set("retries", Json::MakeNumber(static_cast<double>(r.retries)));
  row.Set("retry_backoff_us",
          Json::MakeNumber(static_cast<double>(r.retry_backoff_us)));
  row.Set("tasks_dropped",
          Json::MakeNumber(static_cast<double>(r.tasks_dropped)));
  const double throughput =
      r.wall_ms > 0.0 ? static_cast<double>(r.rows) / (r.wall_ms / 1000.0)
                      : 0.0;
  row.Set("throughput_rows_per_sec", Json::MakeNumber(throughput));
  std::printf("%s\n", row.Dump().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(bench::EnvOr("LH_BENCH_NODES", 8));
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));

  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_THREADS", 64));
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);  // retries disabled

  rede::SmpeOptions retrying_options = engine_options.smpe;
  retrying_options.retry.max_retries =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_MAX_RETRIES", 8));
  retrying_options.retry.backoff_initial_us = 50;
  retrying_options.retry.backoff_max_us = 500;
  rede::SmpeExecutor retrying_executor(&cluster, retrying_options);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.partitions = cluster.num_nodes() * 2;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());

  tpch::Q5Params params = tpch::MakeQ5Params(0.05);
  auto job = tpch::BuildQ5RedeJob(engine, params);
  LH_CHECK(job.ok());

  bench::PrintHeader(
      "Fault-tolerance ablation — TPC-H Q5' under injected transient faults");
  std::printf("nodes=%u  SF=%.4f  smpe-threads/node=%zu  max-retries=%zu\n\n",
              cluster.num_nodes(), config.scale_factor,
              engine_options.smpe.threads_per_node,
              retrying_options.retry.max_retries);

  cluster.SetTimingEnabled(true);
  const double fault_rates[] = {0.0, 0.01, 0.05, 0.10};
  for (double fault_rate : fault_rates) {
    for (bool retries_enabled : {false, true}) {
      sim::FaultOptions faults;
      faults.fault_rate = fault_rate;
      faults.unavailable_fraction = 0.5;
      faults.seed = 0x5EED0000 + static_cast<uint64_t>(fault_rate * 1000);
      cluster.ConfigureDiskFaults(faults);  // rewind the fault stream

      CellResult cell;
      uint64_t rows = 0;
      rede::ResultSink sink = [&rows](const rede::Tuple&) { ++rows; };
      StopWatch watch;
      auto result = retries_enabled
                        ? retrying_executor.Execute(*job, sink)
                        : engine.Execute(*job, rede::ExecutionMode::kSmpe,
                                         sink);
      if (result.ok()) {
        trace_capture.Observe(
            *result, StrFormat("Q5' faults=%.2f retries=%d", fault_rate,
                               retries_enabled ? 1 : 0));
        cell.wall_ms = result->metrics.wall_ms;
        cell.rows = rows;
        cell.retries = result->metrics.retries;
        cell.retry_backoff_us = result->metrics.retry_backoff_us;
        cell.tasks_dropped = result->metrics.tasks_dropped_on_failure;
      } else {
        cell.status = result.status().ToString();
        cell.wall_ms = watch.ElapsedMillis();
        cell.rows = rows;
      }
      EmitJson(fault_rate, retries_enabled, cell);
    }
  }
  cluster.ConfigureDiskFaults(sim::FaultOptions{});
  std::printf(
      "\nExpected shape: every retries_enabled=true cell completes with "
      "status ok (retries and backoff growing with the fault rate); every "
      "retries_enabled=false cell at a nonzero rate fails fast with the "
      "injected transient error.\n");
  return 0;
}
