// Multi-tenant traffic-mix bench: a serving-style workload driven through
// the JobScheduler — an analytical-scan burst (TPC-H Q5' plus claims
// Q1–Q3 from two analytics tenants) saturating the execution slots while
// two serving tenants fire primary-key lookups into the raw claims file.
//
// The same submission list runs twice on identical fresh engines: once
// with weighted start-time fair queueing (the scheduler default) and once
// with a single global FIFO. The harness reports per-class p50/p95/p99
// queue-wait / execution / end-to-end latency from the scheduler's
// LatencyHistograms, and LH_CHECKs that both modes return bit-identical
// answers — scheduling policy must never change results. The headline is
// the point-lookup p99: under scan saturation FIFO makes every lookup
// drain the whole scan backlog first, while fair dispatch lets lookups
// overtake queued scans (small cost, large weight), collapsing tail
// latency without starving the scans.
//
// Output: one JSON object per (mode, class) plus one checksum row per mode
// on stdout, mirrored to BENCH_traffic_mix.json (override with
// LH_BENCH_OUT).
//
// Env overrides: LH_BENCH_NODES, LH_BENCH_SF, LH_BENCH_THREADS,
// LH_BENCH_CLAIMS, LH_BENCH_SLOTS, LH_BENCH_ROUNDS, LH_BENCH_LOOKUPS,
// LH_BENCH_TIMESCALE, LH_BENCH_OUT.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "claims/generator.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "common/clock.h"
#include "common/json.h"
#include "io/key_codec.h"
#include "rede/builtin_derefs.h"
#include "rede/engine.h"
#include "sched/scheduler.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

struct MixConfig {
  uint32_t nodes = 4;
  double scale_factor = 0.003;
  uint64_t num_claims = 6000;
  size_t threads_per_node = 32;
  size_t execution_slots = 2;
  int scan_rounds = 2;    ///< scan burst = rounds × 2 tenants × 4 queries
  int lookups = 48;
  double time_scale = 0.1;
};

struct ClassReport {
  obs::HistogramSnapshot queue_wait_us;
  obs::HistogramSnapshot exec_us;
  obs::HistogramSnapshot total_us;
};

struct ModeOutcome {
  std::string checksum;  ///< order-independent digest of every job's answer
  ClassReport per_class[sched::kNumJobClasses];
  /// Per-(tenant, class) backlog snapshot taken mid-burst, right after the
  /// full submission wave — the moment every slot is saturated.
  std::vector<sched::SchedulerStats::FlowStats> mid_run_flows;
  uint64_t completed = 0;
  double wall_ms = 0.0;
};

uint64_t Fnv1a(uint64_t digest, const std::string& piece) {
  digest ^= std::hash<std::string>{}(piece);
  return digest * 1099511628211ull;
}

/// One full traffic-mix run on a fresh engine. The submission list is a
/// pure function of the configs, so fair and FIFO runs see byte-identical
/// workloads.
ModeOutcome RunMode(bool fair, const MixConfig& mix,
                    const tpch::TpchData& tpch_data,
                    const claims::ClaimsData& claims_data) {
  bench::BenchClusterConfig cluster_config;
  cluster_config.num_nodes = mix.nodes;
  sim::ClusterOptions cluster_options = bench::MakeClusterOptions(
      cluster_config);
  cluster_options.disk.time_scale = mix.time_scale;
  cluster_options.network.time_scale = mix.time_scale;
  sim::Cluster cluster(cluster_options);

  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = mix.threads_per_node;
  engine_options.smpe.cache.enabled = true;
  rede::Engine engine(&cluster, engine_options);
  LH_CHECK(tpch::LoadIntoLake(engine, tpch_data).ok());
  LH_CHECK(claims::LoadRawClaims(engine, claims_data).ok());

  // Scan-class jobs: Q5' plus the three claims queries.
  tpch::Q5Params q5_params = tpch::MakeQ5Params(0.05);
  auto q5_job = tpch::BuildQ5RedeJob(engine, q5_params);
  LH_CHECK(q5_job.ok());
  const std::vector<claims::ClaimsQuery> queries = claims::AllQueries();
  std::vector<rede::Job> claims_jobs;
  claims_jobs.reserve(queries.size());
  for (const claims::ClaimsQuery& query : queries) {
    auto job = claims::BuildRawClaimsJob(engine, query);
    LH_CHECK(job.ok());
    claims_jobs.push_back(*std::move(job));
  }

  // Point-lookup jobs: primary-key fetches spread over the claim id space
  // (ids are 1-based).
  auto claims_file = engine.catalog().Get(claims::names::kRawClaims);
  LH_CHECK(claims_file.ok());
  const uint64_t id_step =
      std::max<uint64_t>(1, claims_data.raw.size() / (mix.lookups + 1));
  std::vector<rede::Job> lookup_jobs;
  lookup_jobs.reserve(mix.lookups);
  for (int i = 0; i < mix.lookups; ++i) {
    const int64_t claim_id =
        static_cast<int64_t>(1 + (i * id_step) % claims_data.raw.size());
    auto job =
        rede::JobBuilder("pk-" + std::to_string(i))
            .Initial(rede::Tuple::Point(
                io::Pointer::Keyed(io::EncodeInt64Key(claim_id))))
            .Add(rede::MakePointDereferencer("pk-deref", *claims_file))
            .Build();
    LH_CHECK(job.ok());
    lookup_jobs.push_back(*std::move(job));
  }

  cluster.SetTimingEnabled(true);  // measured phase

  sched::SchedulerOptions sched_options;
  sched_options.execution_slots = mix.execution_slots;
  sched_options.fair = fair;
  sched_options.io_tokens = 8;
  sched::JobScheduler scheduler(&engine.executor(rede::ExecutionMode::kSmpe),
                                sched_options);

  struct Pending {
    sched::JobHandlePtr handle;
    std::unique_ptr<rede::TupleCollector> collector;
    std::function<std::string(std::vector<rede::Tuple>)> summarize;
  };
  std::vector<Pending> pending;
  auto submit = [&](const rede::Job& job, const std::string& tenant,
                    sched::JobClass job_class,
                    std::function<std::string(std::vector<rede::Tuple>)>
                        summarize) {
    Pending p;
    p.collector = std::make_unique<rede::TupleCollector>();
    p.summarize = std::move(summarize);
    sched::JobSpec spec;
    spec.tenant = tenant;
    spec.job_class = job_class;
    spec.sink = p.collector->AsSink();
    auto handle = scheduler.Submit(job, std::move(spec));
    LH_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
    p.handle = *handle;
    pending.push_back(std::move(p));
  };

  auto q5_digest = [](std::vector<rede::Tuple> tuples) {
    auto summary = tpch::SummarizeRedeOutput(tuples);
    LH_CHECK(summary.ok());
    uint64_t digest = 1469598103934665603ull;
    for (const std::string& key : summary->keys) digest = Fnv1a(digest, key);
    return "q5:" + std::to_string(summary->rows) + ":" +
           std::to_string(digest);
  };
  auto claims_digest = [](std::vector<rede::Tuple> tuples) {
    auto answer = claims::SummarizeRawOutput(tuples);
    LH_CHECK(answer.ok());
    return "claims:" + std::to_string(answer->distinct_claims) + ":" +
           std::to_string(answer->total_expense);
  };
  auto lookup_digest = [](std::vector<rede::Tuple> tuples) {
    LH_CHECK_MSG(tuples.size() == 1, "pk lookup must return exactly one row");
    return std::string("pk:1");
  };

  // The scan burst first — by the time the lookups arrive every execution
  // slot is held by an analytical scan and a scan backlog is queued.
  const int64_t t0 = NowMicros();
  const std::string analytics[2] = {"analytics-a", "analytics-b"};
  for (int round = 0; round < mix.scan_rounds; ++round) {
    for (const std::string& tenant : analytics) {
      submit(*q5_job, tenant, sched::JobClass::kAnalyticalScan, q5_digest);
      for (const rede::Job& job : claims_jobs) {
        submit(job, tenant, sched::JobClass::kAnalyticalScan, claims_digest);
      }
    }
  }
  for (int i = 0; i < mix.lookups; ++i) {
    submit(lookup_jobs[i], i % 2 == 0 ? "serving-a" : "serving-b",
           sched::JobClass::kPointLookup, lookup_digest);
  }

  // Backlog snapshot while the burst is live: per-flow queue depth and
  // oldest-queued age under saturation.
  std::vector<sched::SchedulerStats::FlowStats> mid_run_flows =
      scheduler.stats().flows;

  // Order-independent digest: fold each job's answer digest with FNV (the
  // handles complete in scheduler order, but Fnv1a over the fixed
  // submission order is schedule-independent).
  uint64_t digest = 1469598103934665603ull;
  for (Pending& p : pending) {
    auto result = p.handle->Wait();
    LH_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    digest = Fnv1a(digest, p.summarize(p.collector->TakeTuples()));
  }
  ModeOutcome outcome;
  outcome.wall_ms = static_cast<double>(NowMicros() - t0) / 1000.0;
  outcome.checksum = std::to_string(digest);

  sched::SchedulerStats stats = scheduler.stats();
  LH_CHECK(stats.completed == pending.size());
  LH_CHECK(stats.failed == 0 && stats.rejected == 0);
  outcome.completed = stats.completed;
  for (size_t c = 0; c < sched::kNumJobClasses; ++c) {
    outcome.per_class[c].queue_wait_us = stats.per_class[c].queue_wait_us;
    outcome.per_class[c].exec_us = stats.per_class[c].exec_us;
    outcome.per_class[c].total_us = stats.per_class[c].total_us;
  }
  outcome.mid_run_flows = std::move(mid_run_flows);
  return outcome;
}

void EmitHist(Json* row, const char* prefix,
              const obs::HistogramSnapshot& hist) {
  row->Set(std::string(prefix) + "_p50",
           Json::MakeNumber(static_cast<double>(hist.P50())));
  row->Set(std::string(prefix) + "_p95",
           Json::MakeNumber(static_cast<double>(hist.P95())));
  row->Set(std::string(prefix) + "_p99",
           Json::MakeNumber(static_cast<double>(hist.P99())));
  row->Set(std::string(prefix) + "_mean", Json::MakeNumber(hist.Mean()));
}

void EmitMode(FILE* out, const char* mode, const ModeOutcome& outcome) {
  for (size_t c = 0; c < sched::kNumJobClasses; ++c) {
    const ClassReport& report = outcome.per_class[c];
    Json row = Json::MakeObject();
    row.Set("bench", Json::MakeString("traffic_mix"));
    row.Set("mode", Json::MakeString(mode));
    row.Set("class", Json::MakeString(
                         sched::JobClassToString(static_cast<sched::JobClass>(
                             static_cast<int>(c)))));
    row.Set("jobs",
            Json::MakeNumber(static_cast<double>(report.total_us.count)));
    EmitHist(&row, "queue_wait_us", report.queue_wait_us);
    EmitHist(&row, "exec_us", report.exec_us);
    EmitHist(&row, "total_us", report.total_us);
    std::string line = row.Dump();
    std::printf("%s\n", line.c_str());
    if (out != nullptr) std::fprintf(out, "%s\n", line.c_str());
  }
  for (const sched::SchedulerStats::FlowStats& flow : outcome.mid_run_flows) {
    Json row = Json::MakeObject();
    row.Set("bench", Json::MakeString("traffic_mix"));
    row.Set("mode", Json::MakeString(mode));
    row.Set("flow_tenant", Json::MakeString(flow.tenant));
    row.Set("flow_class",
            Json::MakeString(sched::JobClassToString(flow.job_class)));
    row.Set("queue_depth",
            Json::MakeNumber(static_cast<double>(flow.queue_depth)));
    row.Set("oldest_queued_age_us",
            Json::MakeNumber(static_cast<double>(flow.oldest_queued_age_us)));
    std::string line = row.Dump();
    std::printf("%s\n", line.c_str());
    if (out != nullptr) std::fprintf(out, "%s\n", line.c_str());
  }
  Json row = Json::MakeObject();
  row.Set("bench", Json::MakeString("traffic_mix"));
  row.Set("mode", Json::MakeString(mode));
  row.Set("checksum", Json::MakeString(outcome.checksum));
  row.Set("completed",
          Json::MakeNumber(static_cast<double>(outcome.completed)));
  row.Set("wall_ms", Json::MakeNumber(outcome.wall_ms));
  std::string line = row.Dump();
  std::printf("%s\n", line.c_str());
  if (out != nullptr) std::fprintf(out, "%s\n", line.c_str());
}

}  // namespace

int main() {
  MixConfig mix;
  mix.nodes = static_cast<uint32_t>(bench::EnvOr("LH_BENCH_NODES", 4));
  mix.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.003);
  mix.num_claims =
      static_cast<uint64_t>(bench::EnvOr("LH_BENCH_CLAIMS", 6000));
  mix.threads_per_node =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_THREADS", 32));
  mix.execution_slots =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_SLOTS", 2));
  mix.scan_rounds = static_cast<int>(bench::EnvOr("LH_BENCH_ROUNDS", 2));
  mix.lookups = static_cast<int>(bench::EnvOr("LH_BENCH_LOOKUPS", 48));
  mix.time_scale = bench::EnvOr("LH_BENCH_TIMESCALE", 0.1);

  tpch::TpchConfig tpch_config;
  tpch_config.scale_factor = mix.scale_factor;
  const tpch::TpchData tpch_data = tpch::Generate(tpch_config);
  claims::ClaimsConfig claims_config;
  claims_config.num_claims = mix.num_claims;
  const claims::ClaimsData claims_data = claims::GenerateClaims(claims_config);

  bench::PrintHeader(
      "Traffic mix — multi-tenant scheduling, fair (SFQ) vs FIFO under "
      "analytical-scan saturation");
  std::printf(
      "nodes=%u  SF=%.4f  claims=%llu  slots=%zu  scan-rounds=%d  "
      "lookups=%d  time-scale=%.2f\n\n",
      mix.nodes, mix.scale_factor,
      static_cast<unsigned long long>(mix.num_claims), mix.execution_slots,
      mix.scan_rounds, mix.lookups, mix.time_scale);

  const char* out_path_env = std::getenv("LH_BENCH_OUT");
  const std::string out_path =
      out_path_env != nullptr ? out_path_env : "BENCH_traffic_mix.json";
  FILE* out = std::fopen(out_path.c_str(), "w");
  LH_CHECK_MSG(out != nullptr, ("cannot open " + out_path).c_str());

  const ModeOutcome fair = RunMode(/*fair=*/true, mix, tpch_data, claims_data);
  EmitMode(out, "fair", fair);
  const ModeOutcome fifo = RunMode(/*fair=*/false, mix, tpch_data,
                                   claims_data);
  EmitMode(out, "fifo", fifo);
  std::fclose(out);

  // Scheduling policy must never change answers.
  LH_CHECK_MSG(fair.checksum == fifo.checksum,
               "fair and FIFO runs returned different answers");

  const auto& fair_lookup =
      fair.per_class[static_cast<size_t>(sched::JobClass::kPointLookup)];
  const auto& fifo_lookup =
      fifo.per_class[static_cast<size_t>(sched::JobClass::kPointLookup)];
  const auto& fair_scan =
      fair.per_class[static_cast<size_t>(sched::JobClass::kAnalyticalScan)];
  const auto& fifo_scan =
      fifo.per_class[static_cast<size_t>(sched::JobClass::kAnalyticalScan)];
  std::printf("\npoint-lookup  p50/p99 us:  fair %llu/%llu   fifo %llu/%llu\n",
              static_cast<unsigned long long>(fair_lookup.total_us.P50()),
              static_cast<unsigned long long>(fair_lookup.total_us.P99()),
              static_cast<unsigned long long>(fifo_lookup.total_us.P50()),
              static_cast<unsigned long long>(fifo_lookup.total_us.P99()));
  std::printf("analytical    p50/p99 us:  fair %llu/%llu   fifo %llu/%llu\n",
              static_cast<unsigned long long>(fair_scan.total_us.P50()),
              static_cast<unsigned long long>(fair_scan.total_us.P99()),
              static_cast<unsigned long long>(fifo_scan.total_us.P50()),
              static_cast<unsigned long long>(fifo_scan.total_us.P99()));
  const double p99_ratio =
      fair_lookup.total_us.P99() > 0
          ? static_cast<double>(fifo_lookup.total_us.P99()) /
                static_cast<double>(fair_lookup.total_us.P99())
          : 0.0;
  std::printf(
      "fair scheduling cuts point-lookup p99 by %.1fx vs FIFO "
      "(identical checksums: %s)\n",
      p99_ratio, fair.checksum.c_str());
  std::printf("results written to %s\n", out_path.c_str());
  return 0;
}
