// Ablation: cost-based plan choice (the §III-E evaluation note — "If ReDe
// implements [efficient scan processing and] a query optimizer, ReDe could
// choose data processing plans appropriately based on query selectivities;
// i.e., ReDe would perform comparably with Impala in the high selectivity
// range").
//
// Re-runs the Fig 7 sweep with the StructureAdvisor deciding per query
// whether to run the index-driven ReDe job (SMPE) or fall back to the
// scan-based plan. Expected shape: the advised system tracks
// min(rede-smpe, baseline) across the whole selectivity range.

#include <algorithm>
#include <cstdio>

#include "baseline/scan_engine.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "rede/advisor.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"
#include "tpch/schema.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = 125;
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.partitions = cluster.num_nodes() * 2;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());

  baseline::ScanEngine scan_engine(&cluster);
  rede::StructureAdvisor advisor(&cluster);

  // Bytes the scan plan reads (all six tables) and the chain's average
  // random reads per matching order (order + customer + nation + region +
  // index probe + ~4 entries -> lineitems -> suppliers).
  uint64_t scan_bytes = 0;
  for (const char* name :
       {tpch::names::kRegion, tpch::names::kNation, tpch::names::kSupplier,
        tpch::names::kCustomer, tpch::names::kOrders,
        tpch::names::kLineitem}) {
    scan_bytes += (*engine.catalog().Get(name))->total_bytes();
  }
  auto date_idx = std::dynamic_pointer_cast<io::BtreeFile>(
      *engine.catalog().Get(tpch::names::kOrdersDateIndex));
  LH_CHECK(date_idx != nullptr);

  bench::PrintHeader(
      "Ablation — StructureAdvisor plan choice across the Fig 7 sweep");
  std::printf("%-12s %-10s %12s %12s %12s %12s\n", "selectivity", "chosen",
              "est-matches", "advised-ms", "forced-idx", "forced-scan");

  cluster.SetTimingEnabled(true);
  for (double selectivity : {1e-4, 1e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0}) {
    tpch::Q5Params params = tpch::MakeQ5Params(selectivity);
    auto job = tpch::BuildQ5RedeJob(engine, params);
    LH_CHECK(job.ok());

    // Forced plans, for reference.
    auto forced_idx = engine.Execute(*job, rede::ExecutionMode::kSmpe,
                                     nullptr);
    LH_CHECK(forced_idx.ok());
    trace_capture.Observe(*forced_idx,
                          "Q5' forced-idx sel=" + std::to_string(selectivity));
    StopWatch scan_watch;
    LH_CHECK(tpch::RunQ5Baseline(scan_engine, engine.catalog(), params).ok());
    double forced_scan_ms = scan_watch.ElapsedMillis();

    // Advised plan: estimate, then run whichever side the model picks.
    rede::PlanQuery plan;
    plan.driving_index = date_idx;
    plan.range_lo = params.date_lo;
    plan.range_hi = params.date_hi;
    plan.ios_per_match = 13.0;
    // Engine/network overhead per chained I/O, calibrated once against a
    // timed sample of this job shape on this cluster model.
    plan.per_io_overhead_us = 1500.0;
    plan.scan_bytes = scan_bytes;
    auto estimate = advisor.Choose(plan);
    LH_CHECK(estimate.ok());

    double advised_ms = 0;
    if (estimate->choice == rede::PlanKind::kStructure) {
      StopWatch watch;
      LH_CHECK(engine.Execute(*job, rede::ExecutionMode::kSmpe, nullptr).ok());
      advised_ms = watch.ElapsedMillis();
    } else {
      StopWatch watch;
      LH_CHECK(
          tpch::RunQ5Baseline(scan_engine, engine.catalog(), params).ok());
      advised_ms = watch.ElapsedMillis();
    }
    std::printf("%-12.1e %-10s %12.0f %12.2f %12.2f %12.2f\n", selectivity,
                rede::PlanKindToString(estimate->choice),
                estimate->estimated_matches, advised_ms,
                forced_idx->metrics.wall_ms, forced_scan_ms);
  }
  std::printf(
      "\nExpected shape: the advised column tracks min(forced-idx, "
      "forced-scan) — closing the high-selectivity gap the paper attributes "
      "to the missing query optimizer.\n");
  return 0;
}
