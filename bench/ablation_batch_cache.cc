// Batching + record-cache ablation: sweep dereference batch size × record
// cache budget over the two pointer-chasing workloads — TPC-H Q5' (index
// range scan into a 6-table join chain) and the claims warehouse Q1
// (disease index → diagnosis → prescription index → claims) — and measure
// the simulated random-read counters the features exist to shrink.
//
// Each cell runs on a fresh SmpeExecutor (cold cache) and reports the
// device-counter delta of its own run. Batching fuses same-partition
// pointer groups into one seek-dominated device operation (batched_ops -
// batched_reads = reads saved); the cache short-circuits repeat pointer
// resolutions entirely. Correctness: every cell's result summary must equal
// the baseline (batch off, cache off) cell's.
//
// Output: one JSON object per (workload, batch, cache) cell on stdout, and
// the same lines written to BENCH_batch_cache.json (override with
// LH_BENCH_OUT) so the perf trajectory accumulates across revisions.
//
// Env overrides: LH_BENCH_NODES, LH_BENCH_SF, LH_BENCH_THREADS,
// LH_BENCH_CLAIMS, LH_BENCH_OUT.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "common/json.h"
#include "rede/engine.h"
#include "rede/smpe_executor.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

struct CellResult {
  uint64_t rows = 0;
  std::string checksum;
  uint64_t random_reads = 0;
  uint64_t batched_reads = 0;
  uint64_t batched_ops = 0;
  uint64_t deref_batches = 0;
  uint64_t deref_batched_pointers = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_admissions = 0;
  uint64_t cache_evictions = 0;
  double wall_ms = 0.0;
};

void EmitJson(FILE* out, const std::string& workload, size_t batch,
              size_t cache_budget, const CellResult& r) {
  Json row = Json::MakeObject();
  row.Set("bench", Json::MakeString("batch_cache"));
  row.Set("workload", Json::MakeString(workload));
  row.Set("batch_size", Json::MakeNumber(static_cast<double>(batch)));
  row.Set("cache_budget_bytes",
          Json::MakeNumber(static_cast<double>(cache_budget)));
  row.Set("rows", Json::MakeNumber(static_cast<double>(r.rows)));
  row.Set("checksum", Json::MakeString(r.checksum));
  row.Set("random_reads",
          Json::MakeNumber(static_cast<double>(r.random_reads)));
  row.Set("batched_reads",
          Json::MakeNumber(static_cast<double>(r.batched_reads)));
  row.Set("batched_ops", Json::MakeNumber(static_cast<double>(r.batched_ops)));
  row.Set("deref_batches",
          Json::MakeNumber(static_cast<double>(r.deref_batches)));
  row.Set("deref_batched_pointers",
          Json::MakeNumber(static_cast<double>(r.deref_batched_pointers)));
  row.Set("cache_hits", Json::MakeNumber(static_cast<double>(r.cache_hits)));
  row.Set("cache_misses",
          Json::MakeNumber(static_cast<double>(r.cache_misses)));
  row.Set("cache_admissions",
          Json::MakeNumber(static_cast<double>(r.cache_admissions)));
  row.Set("cache_evictions",
          Json::MakeNumber(static_cast<double>(r.cache_evictions)));
  row.Set("wall_ms", Json::MakeNumber(r.wall_ms));
  std::string line = row.Dump();
  std::printf("%s\n", line.c_str());
  if (out != nullptr) std::fprintf(out, "%s\n", line.c_str());
}

/// Order-independent digest of a result summary's key strings.
std::string DigestKeys(uint64_t rows, const std::vector<std::string>& keys) {
  uint64_t digest = 1469598103934665603ull;  // FNV offset basis
  for (const std::string& key : keys) {
    digest ^= std::hash<std::string>{}(key);
    digest *= 1099511628211ull;  // FNV prime (keys arrive sorted)
  }
  return std::to_string(rows) + ":" + std::to_string(digest);
}

/// One sweep over batch × cache for a prepared (cluster, job, summarize)
/// workload. Returns the baseline (off/off) random-read count and the best
/// (batch+cache on) one for the footer ratio.
struct SweepOutcome {
  uint64_t baseline_reads = 0;
  uint64_t best_reads = 0;
};

SweepOutcome RunSweep(
    FILE* out, const std::string& workload, sim::Cluster& cluster,
    const rede::SmpeOptions& base_options, const rede::Job& job,
    const std::function<std::string(const std::vector<rede::Tuple>&,
                                    uint64_t*)>& summarize,
    bench::TraceCapture& trace_capture) {
  const size_t batch_sizes[] = {0, 8, 32, 128};
  const size_t cache_budgets[] = {0, 1ull << 20, 32ull << 20};
  SweepOutcome outcome;
  std::string baseline_checksum;
  for (size_t batch : batch_sizes) {
    for (size_t budget : cache_budgets) {
      rede::SmpeOptions options = base_options;
      options.trace_sample_n = trace_capture.sample_n();
      options.batch.enabled = batch > 0;
      if (batch > 0) options.batch.max_batch_size = batch;
      options.cache.enabled = budget > 0;
      if (budget > 0) options.cache.byte_budget = budget;
      rede::SmpeExecutor executor(&cluster, options);

      sim::ResourceTotals before = cluster.TotalStats();
      rede::TupleCollector collector;
      auto result = executor.Execute(job, collector.AsSink());
      LH_CHECK_MSG(result.ok(), result.status().ToString().c_str());
      trace_capture.Observe(*result, workload + " batch=" +
                                         std::to_string(batch) + " budget=" +
                                         std::to_string(budget));
      sim::ResourceTotals after = cluster.TotalStats();

      CellResult cell;
      std::vector<rede::Tuple> tuples = collector.TakeTuples();
      cell.checksum = summarize(tuples, &cell.rows);
      cell.random_reads = after.random_reads - before.random_reads;
      cell.batched_reads = after.batched_reads - before.batched_reads;
      cell.batched_ops = after.batched_ops - before.batched_ops;
      cell.deref_batches = result->metrics.deref_batches;
      cell.deref_batched_pointers = result->metrics.deref_batched_pointers;
      cell.cache_hits = result->metrics.cache_hits;
      cell.cache_misses = result->metrics.cache_misses;
      cell.cache_admissions = result->metrics.cache_admissions;
      cell.cache_evictions = result->metrics.cache_evictions;
      cell.wall_ms = result->metrics.wall_ms;
      EmitJson(out, workload, batch, budget, cell);

      if (batch == 0 && budget == 0) {
        outcome.baseline_reads = cell.random_reads;
        baseline_checksum = cell.checksum;
      } else {
        LH_CHECK_MSG(cell.checksum == baseline_checksum,
                     (workload + ": cell result diverged from baseline").c_str());
      }
      if (batch == batch_sizes[3] && budget == cache_budgets[2]) {
        outcome.best_reads = cell.random_reads;
      }
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(bench::EnvOr("LH_BENCH_NODES", 8));

  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_THREADS", 64));

  // TPC-H Q5' workload.
  sim::Cluster tpch_cluster(bench::MakeClusterOptions(cluster_config));
  rede::Engine tpch_engine(&tpch_cluster, engine_options);
  tpch::TpchConfig tpch_config;
  tpch_config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData tpch_data = tpch::Generate(tpch_config);
  tpch::LoadOptions load;
  load.partitions = tpch_cluster.num_nodes() * 2;
  LH_CHECK(tpch::LoadIntoLake(tpch_engine, tpch_data, load).ok());
  tpch::Q5Params q5_params = tpch::MakeQ5Params(0.05);
  auto q5_job = tpch::BuildQ5RedeJob(tpch_engine, q5_params);
  LH_CHECK(q5_job.ok());

  // Claims warehouse workload (the join-back deployment: dimension rows are
  // re-dereferenced per probe, which is what the cache targets).
  sim::Cluster claims_cluster(bench::MakeClusterOptions(cluster_config));
  rede::Engine claims_engine(&claims_cluster, engine_options);
  claims::ClaimsConfig claims_config;
  claims_config.num_claims =
      static_cast<uint64_t>(bench::EnvOr("LH_BENCH_CLAIMS", 20000));
  claims::ClaimsData claims_data = claims::GenerateClaims(claims_config);
  LH_CHECK(claims::LoadWarehouseClaims(claims_engine, claims_data).ok());
  auto claims_job =
      claims::BuildWarehouseClaimsJob(claims_engine, claims::Q1());
  LH_CHECK(claims_job.ok());

  const char* out_path_env = std::getenv("LH_BENCH_OUT");
  const std::string out_path =
      out_path_env != nullptr ? out_path_env : "BENCH_batch_cache.json";
  FILE* out = std::fopen(out_path.c_str(), "w");
  LH_CHECK_MSG(out != nullptr, ("cannot open " + out_path).c_str());

  bench::PrintHeader(
      "Batch + cache ablation — dereference batching and the node-local "
      "record cache");
  std::printf("nodes=%u  SF=%.4f  claims=%llu  smpe-threads/node=%zu\n\n",
              cluster_config.num_nodes, tpch_config.scale_factor,
              static_cast<unsigned long long>(claims_config.num_claims),
              engine_options.smpe.threads_per_node);

  auto q5 = RunSweep(
      out, "tpch_q5", tpch_cluster, engine_options.smpe, *q5_job,
      [](const std::vector<rede::Tuple>& tuples, uint64_t* rows) {
        auto summary = tpch::SummarizeRedeOutput(tuples);
        LH_CHECK(summary.ok());
        *rows = summary->rows;
        return DigestKeys(summary->rows, summary->keys);
      },
      trace_capture);
  auto claims = RunSweep(
      out, "claims_wh_q1", claims_cluster, engine_options.smpe, *claims_job,
      [](const std::vector<rede::Tuple>& tuples, uint64_t* rows) {
        auto answer = claims::SummarizeWarehouseOutput(tuples);
        LH_CHECK(answer.ok());
        *rows = answer->distinct_claims;
        return std::to_string(answer->distinct_claims) + ":" +
               std::to_string(answer->total_expense);
      },
      trace_capture);
  std::fclose(out);

  auto ratio = [](const SweepOutcome& o) {
    return o.best_reads > 0
               ? static_cast<double>(o.baseline_reads) /
                     static_cast<double>(o.best_reads)
               : 0.0;
  };
  std::printf(
      "\nrandom-read reduction (baseline / batch=128+cache=32MB): "
      "tpch_q5 %.2fx (%llu -> %llu), claims_wh_q1 %.2fx (%llu -> %llu)\n",
      ratio(q5), static_cast<unsigned long long>(q5.baseline_reads),
      static_cast<unsigned long long>(q5.best_reads), ratio(claims),
      static_cast<unsigned long long>(claims.baseline_reads),
      static_cast<unsigned long long>(claims.best_reads));
  std::printf(
      "Expected shape: every cell's checksum equals its workload's baseline "
      "cell; random_reads falls monotonically-ish as batch size and cache "
      "budget grow, with the combined best cell at >= 2x fewer reads than "
      "the baseline on tpch_q5. Wrote %zu-cell JSON to the output file.\n",
      static_cast<size_t>(24));
  return 0;
}
