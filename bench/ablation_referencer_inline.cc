// Ablation: the paper's Referencer-inlining optimization (§III-C — "ReDe
// does not switch threads for Referencers by default to avoid excessive
// context switching because Referencers do not usually incur IO").
//
// Runs the same Q5' job with Referencers inlined on the emitting thread vs
// dispatched through the per-node queue as separate pool tasks. Results
// must be identical; the dispatched variant pays queue hops and context
// switches for every Referencer invocation.

#include <cstdio>

#include "bench/bench_util.h"
#include "rede/smpe_executor.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::Engine engine(&cluster);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  LH_CHECK(tpch::LoadIntoLake(engine, data).ok());

  bench::PrintHeader("Ablation — inline vs dispatched Referencers (Q5')");
  std::printf("%-12s %-12s %12s %12s %14s %10s\n", "selectivity", "refs",
              "wall-ms", "rows", "ref-invocs", "peak-par");

  cluster.SetTimingEnabled(true);
  for (double selectivity : {0.003, 0.03, 0.3}) {
    tpch::Q5Params params = tpch::MakeQ5Params(selectivity);
    auto job = tpch::BuildQ5RedeJob(engine, params);
    LH_CHECK(job.ok());
    for (bool inline_refs : {true, false}) {
      rede::SmpeOptions options;
      options.threads_per_node = 125;
      options.inline_referencers = inline_refs;
      options.trace_sample_n = trace_capture.sample_n();
      rede::SmpeExecutor executor(&cluster, options);
      uint64_t rows = 0;
      auto result =
          executor.Execute(*job, [&rows](const rede::Tuple&) { ++rows; });
      LH_CHECK(result.ok());
      trace_capture.Observe(*result, inline_refs ? "Q5' inline refs"
                                                 : "Q5' dispatched refs");
      std::printf("%-12.0e %-12s %12.2f %12llu %14llu %10lld\n", selectivity,
                  inline_refs ? "inline" : "dispatched",
                  result->metrics.wall_ms,
                  static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(
                      result->metrics.ref_invocations),
                  static_cast<long long>(
                      result->metrics.peak_parallel_derefs));
    }
  }
  std::printf(
      "\nBoth variants return identical rows; inlining removes one queue "
      "hop per Referencer invocation (pure engine overhead — simulated I/O "
      "time is unchanged).\n");
  return 0;
}
